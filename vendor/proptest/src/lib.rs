//! Minimal offline stand-in for `proptest`.
//!
//! Property tests run a fixed number of deterministically seeded cases per
//! test function. The strategy combinators this workspace uses are provided
//! (`any`, integer ranges, `collection::vec`, tuples, `Just`, `prop_map`,
//! `prop_flat_map`, `prop::sample::Index`); failing cases panic via the
//! `prop_assert*` macros without shrinking — the deterministic seeding means
//! a failure reproduces exactly on re-run.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Just, Strategy};

/// Per-test configuration (`cases` is the only knob this stand-in honors).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of the `prop` module alias exposed by proptest's prelude
    /// (`prop::sample::Index` et al.).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Skip the current case when an assumption does not hold. Without
/// shrinking there is nothing to abort; the case simply returns early.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests: each `fn name(binding in strategy, ...) { body }`
/// expands to a `#[test]` (the attribute is written at the use site, as with
/// real proptest) running `cases` deterministically seeded iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(
         $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for __case in 0..config.cases {
                    // Each case runs in a closure so `prop_assume!` can
                    // return early without ending the whole test.
                    let __run = |__rng: &mut $crate::test_runner::TestRng| {
                        $(
                            let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);
                        )+
                        $body
                    };
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case as u64,
                    );
                    __run(&mut __rng);
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn composite() -> impl Strategy<Value = (usize, Vec<i32>)> {
        (0usize..=20).prop_flat_map(|n| (Just(n), collection::vec(-10i32..10, n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5i32..5, y in 0usize..=9) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(y <= 9);
        }

        #[test]
        fn vec_respects_size(v in collection::vec(any::<u64>(), 3..6)) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
        }

        #[test]
        fn flat_map_links_length(t in composite()) {
            prop_assert_eq!(t.0, t.1.len());
        }

        #[test]
        fn index_is_in_range(ix in any::<crate::sample::Index>()) {
            prop_assert!(ix.index(7) < 7);
        }

        #[test]
        fn assume_skips_cases(x in 0i32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
