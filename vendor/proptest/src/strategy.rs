//! The `Strategy` trait and the combinators this workspace uses.

use crate::test_runner::TestRng;

/// Generates values for one property-test binding. Unlike real proptest
/// there is no value tree or shrinking — `generate` draws a value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);
impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only; proptest's default also favors finite floats.
        rng.next_f64() * 2e6 - 1e6
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
