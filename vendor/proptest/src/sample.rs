//! `proptest::sample` — the [`Index`] helper for picking positions in
//! collections whose length isn't known until the test body runs.

use crate::strategy::Arbitrary;
use crate::test_runner::TestRng;

/// An index into a collection of as-yet-unknown size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Project onto `0..len`. Panics on `len == 0`, as real proptest does.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}
