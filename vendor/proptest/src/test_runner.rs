//! Deterministic RNG driving case generation.

/// SplitMix64 seeded from the test's module path + case number, so each
/// case is reproducible without recording seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str, case: u64) -> Self {
        // FNV-1a over the test name keeps distinct tests on distinct streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        };
        rng.next_u64(); // decorrelate nearby seeds
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)` for strategy internals.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}
