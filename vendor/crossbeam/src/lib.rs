//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::scope` / `crossbeam::thread::scope` with the
//! crossbeam 0.8 call shape — `scope(|s| { s.spawn(|_| ...) })` returning a
//! `Result` — implemented on top of `std::thread::scope` (which has been
//! stable since Rust 1.63 and auto-joins exactly like crossbeam's scope).

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to the `scope` closure and to every spawned
    /// closure (crossbeam passes it so children can spawn siblings).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; joining yields the closure's result.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope itself,
        /// mirroring crossbeam's `|scope| ...` signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Create a scope for spawning borrowing threads. All threads are joined
    /// before this returns. A child panic propagates as a panic (std
    /// semantics), so the `Err` arm is never produced — callers that
    /// `.expect()` the result behave identically either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u32, 2, 3, 4];
        let mut sums = vec![0u32; 2];
        crate::scope(|s| {
            for (i, out) in sums.iter_mut().enumerate() {
                let chunk = &data[i * 2..i * 2 + 2];
                s.spawn(move |_| {
                    *out = chunk.iter().sum();
                });
            }
        })
        .expect("threads join");
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn spawn_returns_joinable_handle() {
        let r = crate::scope(|s| s.spawn(|_| 41 + 1).join().expect("join")).expect("scope");
        assert_eq!(r, 42);
    }

    #[test]
    fn nested_spawn_from_child() {
        let r = crate::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().expect("inner"))
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(r, 7);
    }
}
