//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are equally unavailable offline). Supports what this workspace
//! declares: non-generic named structs, tuple structs, and enums.
//!
//! * Named structs serialize field-wise to a JSON object.
//! * Tuple structs serialize newtype-style (single field) or to an array.
//! * Enums serialize to their `Debug` rendering — identical to serde for
//!   unit variants, a readable approximation for data variants (nothing in
//!   this workspace round-trips data-carrying enums through JSON).
//! * `Deserialize` derives the marker impl whose default method reports
//!   "unsupported"; only `serde_json::Value` itself is ever decoded.
//! * The `#[serde(...)]` field attribute is accepted; of its options only
//!   `skip_serializing_if = "path"` is honored (the field is omitted from
//!   the object when `path(&field)` is true), the rest are ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    /// Predicate path from `#[serde(skip_serializing_if = "...")]`, if any.
    skip_if: Option<String>,
}

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String },
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let mut kind: Option<&'static str> = None;
    while let Some(tt) = tokens.next() {
        match &tt {
            // Skip outer attributes (`#[...]`) and doc comments.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(if s == "struct" { "struct" } else { "enum" });
                    break;
                }
                // `pub`, `pub(crate)`, etc. — visibility group skipped by
                // the generic match arms below.
            }
            _ => {}
        }
    }
    let kind = kind.expect("derive input must be a struct or enum");
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after `{kind}`, got {other:?}"),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde derive stand-in does not support generic types ({name})")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Item::UnitStruct { name };
            }
            Some(TokenTree::Group(g)) => break g,
            Some(_) => continue,
            None => return Item::UnitStruct { name },
        }
    };
    if kind == "enum" {
        return Item::Enum { name };
    }
    match body.delimiter() {
        Delimiter::Parenthesis => Item::TupleStruct {
            name,
            arity: count_top_level_fields(body.stream()),
        },
        Delimiter::Brace => Item::NamedStruct {
            name,
            fields: named_fields(body.stream()),
        },
        _ => panic!("unexpected struct body delimiter"),
    }
}

/// Count comma-separated entries at angle-bracket depth zero.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut prev = ' ';
    let mut fields = 0usize;
    let mut saw_any = false;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            let c = p.as_char();
            match c {
                '<' => depth += 1,
                '>' if prev != '-' => depth -= 1,
                ',' if depth == 0 => {
                    fields += 1;
                    prev = c;
                    continue;
                }
                _ => {}
            }
            prev = c;
        } else {
            prev = ' ';
            saw_any = true;
        }
    }
    if saw_any {
        fields + 1
    } else {
        fields
    }
}

/// If `stream` is the body of a `#[serde(...)]` attribute, return the
/// `skip_serializing_if` predicate path it names, if any.
fn skip_predicate(stream: TokenStream) -> Option<String> {
    let mut tokens = stream.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match tokens.next() {
        Some(TokenTree::Group(g)) => g.stream(),
        _ => return None,
    };
    let mut inner = inner.into_iter().peekable();
    while let Some(tt) = inner.next() {
        if let TokenTree::Ident(id) = &tt {
            if id.to_string() == "skip_serializing_if" {
                match (inner.next(), inner.next()) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        return Some(lit.to_string().trim_matches('"').to_string());
                    }
                    other => panic!("malformed skip_serializing_if: {other:?}"),
                }
            }
        }
    }
    None
}

/// Extract field names (and serde field options) from a named-struct body.
fn named_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    'outer: loop {
        // Skip attributes and visibility before the field name, keeping any
        // `#[serde(skip_serializing_if = ...)]` predicate we pass over.
        let mut skip_if = None;
        let name = loop {
            match tokens.next() {
                None => break 'outer,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.next() {
                        if let Some(pred) = skip_predicate(g.stream()) {
                            skip_if = Some(pred);
                        }
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(_)) = tokens.peek() {
                        tokens.next();
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("unexpected token in struct body: {other:?}"),
            }
        };
        fields.push(Field { name, skip_if });
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        // Skip the type up to the next top-level comma.
        let mut depth = 0i32;
        let mut prev = ' ';
        loop {
            match tokens.next() {
                None => break 'outer,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    match c {
                        '<' => depth += 1,
                        '>' if prev != '-' => depth -= 1,
                        ',' if depth == 0 => break,
                        _ => {}
                    }
                    prev = c;
                }
                Some(_) => prev = ' ',
            }
        }
    }
    fields
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input.clone()) {
        Item::NamedStruct { name, fields } => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    let fname = &f.name;
                    let push = format!(
                        "entries.push((::std::string::String::from(\"{fname}\"), \
                         serde::Serialize::to_value(&self.{fname})));"
                    );
                    match &f.skip_if {
                        Some(pred) => format!("if !{pred}(&self.{fname}) {{ {push} }}"),
                        None => push,
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut entries: ::std::vec::Vec<(::std::string::String, serde::Value)> \
                             = ::std::vec::Vec::new();\n\
                         {}\n\
                         serde::Value::Object(entries)\n\
                     }}\n\
                 }}",
                pushes.join("\n")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                     serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let entries: Vec<String> = (0..arity)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                     serde::Value::String(format!(\"{{:?}}\", self))\n\
                 }}\n\
             }}"
        ),
    };
    body.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse_item(input) {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name } => name,
    };
    format!("impl serde::Deserialize for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl parses")
}
