//! Minimal offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde` crate's [`Value`] tree as JSON.
//! Covers the workspace's usage: `json!` object/scalar literals, `Value`
//! indexing and accessors, `to_string` / `to_string_pretty`, and `from_str`
//! for `Value`.

pub use serde::{Number, Value};

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Errors from [`from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), None, 0);
    Ok(out)
}

/// Serialize to two-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`serde::Deserialize`] type (in practice:
/// [`Value`], the only type this workspace decodes).
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_value(&value).ok_or(Error {
        msg: "type does not support deserialization in the vendored serde".to_string(),
        offset: 0,
    })
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, level, ('[', ']'), |o, v, l| {
                write_value(o, v, indent, l)
            })
        }
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            level,
            ('{', '}'),
            |o, (k, v), l| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, v, indent, l);
            },
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    level: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, usize),
{
    out.push(brackets.0);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, level + 1);
    }
    if let Some(width) = indent {
        if !empty {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(brackets.1);
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::F64(v) if v.is_finite() => {
            // Keep floats recognizably floating-point (serde_json prints
            // `1.0`, not `1`), while Rust's shortest-roundtrip `Display`
            // handles precision.
            if v == v.trunc() && v.abs() < 1e15 {
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&v.to_string());
            }
        }
        // serde_json has no representation for non-finite floats.
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n = if is_float {
            Number::F64(text.parse().map_err(|_| self.err("invalid float"))?)
        } else if let Ok(v) = text.parse::<i64>() {
            Number::I64(v)
        } else if let Ok(v) = text.parse::<u64>() {
            Number::U64(v)
        } else {
            Number::F64(text.parse().map_err(|_| self.err("invalid number"))?)
        };
        Ok(Value::Number(n))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Build a [`Value`] from a JSON-ish literal. Supports `null`, object
/// literals with string-literal keys and expression values, array literals
/// of expressions, and bare serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (::std::string::String::from($key), $crate::to_value(&$value)) ),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$value) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let name = "abc";
        let v = json!({"a": 1, "b": name, "c": 1.5});
        assert_eq!(v["a"].as_i64(), Some(1));
        assert_eq!(v["b"], "abc");
        assert_eq!(v["c"].as_f64(), Some(1.5));
    }

    #[test]
    fn render_and_parse_roundtrip() {
        let v = json!({"s": "he\"llo", "n": -3, "f": 0.25, "arr": [1, 2], "t": true});
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).expect("parses");
            assert_eq!(back["s"], "he\"llo");
            assert_eq!(back["n"].as_i64(), Some(-3));
            assert_eq!(back["f"].as_f64(), Some(0.25));
            assert_eq!(back["arr"].as_array().map(|a| a.len()), Some(2));
            assert_eq!(back["t"], Value::Bool(true));
        }
    }

    #[test]
    fn floats_render_as_floats() {
        assert_eq!(to_string(&json!(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&json!(2)).unwrap(), "2");
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let v: Value = from_str(r#"{"k": "aA\n\t\\"}"#).unwrap();
        assert_eq!(v["k"], "aA\n\t\\");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{unquoted: 1}").is_err());
        assert!(from_str::<Value>("[1, 2] trailing").is_err());
    }
}
