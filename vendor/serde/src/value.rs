//! The JSON-like value tree shared by the vendored `serde` and `serde_json`.

/// A JSON number: integer or float, mirroring `serde_json::Number`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I64(v) => v as f64,
            Number::U64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(v) => Some(v),
            Number::U64(v) => i64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I64(v) => u64::try_from(v).ok(),
            Number::U64(v) => Some(v),
            Number::F64(_) => None,
        }
    }
}

/// A JSON value tree with `serde_json::Value`-compatible variant names and
/// accessors. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Mutable object field access, inserting `Null` for missing keys —
    /// the `row["col"] = json!(...)` idiom. Panics on non-objects, like
    /// `serde_json` does.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        let Value::Object(fields) = self else {
            panic!("cannot index non-object JSON value with a string key");
        };
        if let Some(pos) = fields.iter().position(|(k, _)| k == key) {
            return &mut fields[pos].1;
        }
        fields.push((key.to_string(), Value::Null));
        &mut fields.last_mut().expect("just pushed").1
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty),*) => {
        $(impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => n.as_f64() == *other as f64,
                    _ => false,
                }
            }
        })*
    };
}

impl_value_eq_num!(i32, i64, u32, u64, usize, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_missing_key_is_null() {
        let v = Value::Object(vec![("a".to_string(), Value::Bool(true))]);
        assert!(v["missing"].is_null());
        assert_eq!(v["a"], Value::Bool(true));
    }

    #[test]
    fn index_mut_inserts() {
        let mut v = Value::Object(vec![]);
        v["x"] = Value::Number(Number::I64(3));
        assert_eq!(v["x"].as_i64(), Some(3));
        v["x"] = Value::Bool(false);
        assert_eq!(v["x"], Value::Bool(false));
    }

    #[test]
    fn comparisons() {
        assert_eq!(Value::String("hi".into()), "hi");
        assert_eq!(Value::Number(Number::U64(4)), 4u64);
        assert_eq!(Value::Number(Number::F64(0.5)), 0.5);
    }
}
