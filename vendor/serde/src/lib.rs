//! Minimal offline stand-in for `serde`.
//!
//! The workspace builds in environments without crates.io access, so serde is
//! replaced by a tiny value-tree framework with the same ergonomics at the
//! use sites this workspace has: `#[derive(Serialize, Deserialize)]` on plain
//! structs and enums, plus `serde_json`-style rendering of the tree.
//!
//! [`Serialize`] converts a value into a [`Value`] tree; the companion
//! vendored `serde_json` crate renders/parses that tree as JSON text.
//! [`Deserialize`] is only exercised through `serde_json::from_str::<Value>`
//! in this workspace, so derived impls fall back to the default
//! "unsupported" method rather than generating full field-wise decoding.

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

/// A type that can be converted into a JSON-like [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
///
/// Derived impls use the default method (decoding is not implemented for
/// arbitrary types in this stand-in); only [`Value`] itself round-trips.
pub trait Deserialize: Sized {
    fn from_value(_v: &Value) -> Option<Self> {
        None
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty => $variant:ident as $as:ty),* $(,)?) => {
        $(impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::$variant(*self as $as))
            }
        })*
    };
}

impl_serialize_int!(
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::String(self.display().to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Option<Self> {
        Some(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(5i32.to_value(), Value::Number(Number::I64(5)));
        assert_eq!(5u64.to_value(), Value::Number(Number::U64(5)));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(Option::<i32>::None.to_value(), Value::Null);
    }

    #[test]
    fn containers_serialize() {
        let v = vec![1i32, 2].to_value();
        assert_eq!(
            v,
            Value::Array(vec![
                Value::Number(Number::I64(1)),
                Value::Number(Number::I64(2))
            ])
        );
    }

    #[test]
    fn value_roundtrips_through_deserialize() {
        let v = Value::Bool(true);
        assert_eq!(Value::from_value(&v), Some(v));
    }
}
