//! Minimal offline stand-in for `rand_distr`: the [`Zipf`] distribution,
//! which is all this workspace samples. Implemented with the
//! rejection-inversion method of Hörmann & Derflinger ("Rejection-inversion
//! to generate variates from monotone discrete distributions", 1996) — O(1)
//! setup and memory for any domain size, exact Zipf probabilities.

pub use rand::Distribution;
use rand::Rng;

/// Error from invalid [`Zipf`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipfError {
    /// The domain must contain at least one element.
    EmptyDomain,
    /// The exponent must be finite and non-negative.
    BadExponent,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipfError::EmptyDomain => write!(f, "Zipf domain must be non-empty"),
            ZipfError::BadExponent => write!(f, "Zipf exponent must be finite and >= 0"),
        }
    }
}

impl std::error::Error for ZipfError {}

/// Zipf distribution over `{1, ..., n}` with `P(k) ∝ k^(-s)`.
///
/// `sample` returns the rank as `f64`, matching `rand_distr::Zipf<f64>`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: f64,
    exponent: f64,
    h_x1: f64,
    h_n: f64,
    shift: f64,
}

impl Zipf {
    pub fn new(n: u64, exponent: f64) -> Result<Self, ZipfError> {
        if n < 1 {
            return Err(ZipfError::EmptyDomain);
        }
        if !exponent.is_finite() || exponent < 0.0 {
            return Err(ZipfError::BadExponent);
        }
        let n_f = n as f64;
        let h_x1 = h_integral(1.5, exponent) - 1.0;
        let h_n = h_integral(n_f + 0.5, exponent);
        let shift =
            2.0 - h_integral_inverse(h_integral(2.5, exponent) - h(2.0, exponent), exponent);
        Ok(Zipf {
            n: n_f,
            exponent,
            h_x1,
            h_n,
            shift,
        })
    }
}

/// Antiderivative of `h(x) = x^(-s)`, normalized so it is continuous in `s`
/// at `s = 1`: `H(x) = (x^(1-s) - 1) / (1-s)`, or `ln x` for `s = 1`.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    if (s - 1.0).abs() < 1e-12 {
        log_x
    } else {
        (((1.0 - s) * log_x).exp() - 1.0) / (1.0 - s)
    }
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(y: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-12 {
        y.exp()
    } else {
        let t = 1.0 + (1.0 - s) * y;
        // Guard tiny negative round-off for strongly skewed exponents.
        (t.max(0.0).ln() / (1.0 - s)).exp()
    }
}

fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

impl Distribution<f64> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u = self.h_n + rng.next_f64() * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.exponent);
            let k = x.round().clamp(1.0, self.n);
            // Accept k if x landed within the "hat" of k, either because the
            // rounding distance is within the shift that always accepts, or
            // by the exact rejection test.
            if k - x <= self.shift || u >= h_integral(k + 0.5, self.exponent) - h(k, self.exponent)
            {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(n: u64, s: f64, samples: usize) -> Vec<u64> {
        let dist = Zipf::new(n, s).expect("valid");
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..samples {
            let k = dist.sample(&mut rng);
            assert!(k >= 1.0 && k <= n as f64, "sample {k} out of [1, {n}]");
            counts[k as usize - 1] += 1;
        }
        counts
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let counts = histogram(16, 0.0, 64_000);
        let expect = 64_000.0 / 16.0;
        for &c in &counts {
            assert!(
                (c as f64 - expect).abs() < 0.15 * expect,
                "uniform bucket off: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn unit_exponent_matches_zipf_ratios() {
        let counts = histogram(64, 1.0, 200_000);
        // P(1)/P(2) = 2 and P(1)/P(4) = 4 under s = 1.
        let r12 = counts[0] as f64 / counts[1] as f64;
        let r14 = counts[0] as f64 / counts[3] as f64;
        assert!((r12 - 2.0).abs() < 0.25, "P1/P2 = {r12}");
        assert!((r14 - 4.0).abs() < 0.5, "P1/P4 = {r14}");
    }

    #[test]
    fn strong_skew_concentrates_mass() {
        let counts = histogram(4096, 1.5, 50_000);
        let hottest = counts[0] as f64 / 50_000.0;
        assert!(hottest > 0.3, "hottest key share {hottest} under Zipf(1.5)");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(Zipf::new(0, 1.0), Err(ZipfError::EmptyDomain));
        assert_eq!(Zipf::new(10, -0.5), Err(ZipfError::BadExponent));
        assert_eq!(Zipf::new(10, f64::NAN), Err(ZipfError::BadExponent));
    }

    #[test]
    fn domain_of_one_always_returns_one() {
        let dist = Zipf::new(1, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut rng), 1.0);
        }
    }
}
