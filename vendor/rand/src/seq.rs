//! Slice sampling helpers (`rand::seq`).

use crate::Rng;

/// Shuffling and choosing on slices.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly pick one element; `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "overwhelmingly unlikely to be identity");
    }

    #[test]
    fn choose_handles_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }
}
