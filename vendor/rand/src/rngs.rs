//! Generator implementations. Only `StdRng` is provided; it is SplitMix64
//! rather than upstream's ChaCha12, which is more than adequate for
//! deterministic workload synthesis.

use crate::{Rng, SeedableRng};

/// The workspace's standard deterministic generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // One warm-up step decorrelates small consecutive seeds.
        let mut rng = StdRng {
            state: state ^ 0x9e37_79b9_7f4a_7c15,
        };
        rng.next_u64();
        rng
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood): additive counter + finalizer.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}
