//! Minimal offline stand-in for the `rand` crate (0.8 API surface).
//!
//! Provides the subset this workspace uses: `StdRng::seed_from_u64`, the
//! `Rng` trait with `gen_range`, `SliceRandom::shuffle`/`choose`, and the
//! `Distribution` trait consumed by the vendored `rand_distr`. The generator
//! is SplitMix64 — statistically solid for workload synthesis and fully
//! deterministic per seed, though its streams differ from upstream `rand`'s
//! ChaCha-based `StdRng`.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::Distribution;

/// Construct a seedable generator. Matches `rand::SeedableRng`'s
/// `seed_from_u64` entry point (the only constructor used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A source of randomness plus the sampling helpers this workspace calls.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from an integer range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl<T: Rng + ?Sized> Rng for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn range_samples_cover_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
