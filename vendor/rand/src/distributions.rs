//! The `Distribution` trait (`rand::distributions`), consumed by the
//! vendored `rand_distr`.

use crate::Rng;

/// A distribution over values of `T`, sampled with any [`Rng`].
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}
