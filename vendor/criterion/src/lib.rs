//! Minimal offline stand-in for `criterion`.
//!
//! Supports the subset of the API this workspace's benches use: benchmark
//! groups, throughput annotation, `bench_function` / `bench_with_input`,
//! and the `criterion_group!` / `criterion_main!` macros. Each benchmark
//! takes `sample_size` wall-clock samples and reports median / min / max
//! plus derived throughput. Like real criterion, the full sampling runs
//! only under `cargo bench` (which passes `--bench`); under `cargo test`
//! each benchmark body executes once as a smoke test.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units the per-iteration throughput is derived from.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Top-level driver configured by `criterion_group!`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the harness with `--bench`; anything else
        // (notably `cargo test`) gets a one-iteration smoke run.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            sample_size: 100,
            bench_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
    }

    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let samples = if self.criterion.bench_mode {
            self.criterion.sample_size
        } else {
            1
        };
        let mut bencher = Bencher {
            samples: Vec::with_capacity(samples),
            target_samples: samples,
            warmup: self.criterion.bench_mode,
        };
        f(&mut bencher);
        report(&self.name, id, &bencher.samples, self.throughput);
    }
}

/// Passed to each benchmark body; `iter` runs and times the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    warmup: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup iteration, then the timed samples. Smoke runs
        // (under `cargo test`) skip the warmup — they only prove the
        // benchmark body executes.
        if self.warmup {
            hint::black_box(f());
        }
        for _ in 0..self.target_samples {
            let start = Instant::now();
            hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!(" ({:.2} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!(
                " ({:.2} MiB/s)",
                n as f64 / median.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!(
        "{group}/{id}: median {median:?} (min {min:?}, max {max:?}, n={}){rate}",
        sorted.len()
    );
}

/// Mirror of criterion's macro: the `name/config/targets` form and the
/// simple `group_name, target...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Elements(1000));
        g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(32), &32u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    #[test]
    fn group_runs_all_targets() {
        criterion_group! {
            name = benches;
            config = Criterion::default().sample_size(3);
            targets = a_bench
        }
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("phj_om").to_string(), "phj_om");
    }
}
