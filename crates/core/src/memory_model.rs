//! The analytic memory-consumption model of Section 4.4 (Tables 1 and 2).
//!
//! Assumptions, exactly as the paper states them: all columns and tuple IDs
//! share one type of `m_c` bytes per column (`|R| = |S| = |T|`), the output
//! relation is pre-allocated, input relations cannot be freed, and the
//! transformation needs `m_t` bytes of intermediate state (histograms etc.).
//! All quantities are *in addition to* the input and output relations.
//!
//! The punchline the paper draws from these tables: GFTR's peak never
//! exceeds GFUR's, so the optimized pattern does not shrink the largest
//! solvable problem.

use serde::{Deserialize, Serialize};

/// One row of Table 1 / Table 2: a phase activity's memory behaviour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseRow {
    /// Phase name (transform / find matches / materialize).
    pub phase: &'static str,
    /// Activity description, matching the paper's wording.
    pub activity: &'static str,
    /// Bytes allocated on entry.
    pub alloc_on_entry: u64,
    /// Bytes freed on exit.
    pub free_on_exit: u64,
    /// Bytes still held after exit.
    pub used_after_exit: u64,
    /// Peak bytes during the activity.
    pub peak: u64,
}

/// Table 1: the GFUR pattern's memory timeline.
pub fn gfur_table(m_t: u64, m_c: u64) -> Vec<PhaseRow> {
    vec![
        PhaseRow {
            phase: "Transform",
            activity: "Initialize ID_R and transform R'",
            alloc_on_entry: m_t + 3 * m_c,
            free_on_exit: m_t + m_c,
            used_after_exit: 2 * m_c,
            peak: m_t + 3 * m_c,
        },
        PhaseRow {
            phase: "Transform",
            activity: "Initialize ID_S and transform S'",
            alloc_on_entry: m_t + 3 * m_c,
            free_on_exit: m_t + m_c,
            used_after_exit: 4 * m_c,
            peak: m_t + 5 * m_c,
        },
        PhaseRow {
            phase: "Find matches",
            activity: "Write matching IDs",
            alloc_on_entry: 2 * m_c,
            free_on_exit: 4 * m_c,
            used_after_exit: 2 * m_c,
            peak: 6 * m_c,
        },
        PhaseRow {
            phase: "Materialize",
            activity: "Materialize payloads",
            alloc_on_entry: 0,
            free_on_exit: 2 * m_c,
            used_after_exit: 0,
            peak: 2 * m_c,
        },
    ]
}

/// Table 2: the GFTR pattern's memory timeline.
pub fn gftr_table(m_t: u64, m_c: u64) -> Vec<PhaseRow> {
    vec![
        PhaseRow {
            phase: "Transform",
            activity: "(R) Transform keys w/ a non-key",
            alloc_on_entry: m_t + 2 * m_c,
            free_on_exit: m_t,
            used_after_exit: 2 * m_c,
            peak: m_t + 2 * m_c,
        },
        PhaseRow {
            phase: "Transform",
            activity: "(S) Transform keys w/ a non-key",
            alloc_on_entry: m_t + 2 * m_c,
            free_on_exit: m_t,
            used_after_exit: 4 * m_c,
            peak: m_t + 4 * m_c,
        },
        PhaseRow {
            phase: "Find matches",
            activity: "Write matching IDs",
            alloc_on_entry: 2 * m_c,
            free_on_exit: 2 * m_c,
            used_after_exit: 4 * m_c,
            peak: 6 * m_c,
        },
        PhaseRow {
            phase: "Materialize",
            activity: "Materialize two already transformed payload columns",
            alloc_on_entry: 0,
            free_on_exit: 2 * m_c,
            used_after_exit: 2 * m_c,
            peak: 4 * m_c,
        },
        PhaseRow {
            phase: "Materialize",
            activity: "Materialize a not yet transformed payload column",
            // The paper's row frees M_t + M_c on exit and releases the
            // remaining transformed column at the next column's entry; we
            // fold both frees into this row so the running balance closes.
            alloc_on_entry: m_t + 2 * m_c,
            free_on_exit: m_t + 2 * m_c,
            used_after_exit: 2 * m_c,
            peak: m_t + 4 * m_c,
        },
    ]
}

/// Peak memory of the GFUR pattern: `max(M_t + 5M_c, 6M_c)`.
pub fn gfur_peak(m_t: u64, m_c: u64) -> u64 {
    gfur_table(m_t, m_c).iter().map(|r| r.peak).max().unwrap()
}

/// Peak memory of the GFTR pattern: `max(M_t + 4M_c, 6M_c)`.
pub fn gftr_peak(m_t: u64, m_c: u64) -> u64 {
    gftr_table(m_t, m_c).iter().map(|r| r.peak).max().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_match_the_paper_formulas() {
        for (m_t, m_c) in [(0u64, 100u64), (50, 100), (500, 100), (100, 0)] {
            assert_eq!(gfur_peak(m_t, m_c), (m_t + 5 * m_c).max(6 * m_c));
            assert_eq!(gftr_peak(m_t, m_c), (m_t + 4 * m_c).max(6 * m_c));
        }
    }

    #[test]
    fn gftr_never_needs_more_memory_than_gfur() {
        for m_t in [0u64, 1, 64, 1 << 20] {
            for m_c in [1u64, 1 << 10, 1 << 30] {
                assert!(gftr_peak(m_t, m_c) <= gfur_peak(m_t, m_c));
            }
        }
    }

    #[test]
    fn tables_are_internally_consistent() {
        // Running balance: used_after_exit must equal the running
        // (alloc - free) accumulation, and peak must be at least the balance
        // at entry.
        let m_c = 100i64;
        for (table, final_held) in [
            (gfur_table(7, 100), 0),
            // GFTR's table ends still holding the matching-ID arrays (2M_c),
            // released once the last gather completes.
            (gftr_table(7, 100), 2 * m_c),
        ] {
            let mut held = 0i64;
            for row in &table {
                let entering = held + row.alloc_on_entry as i64;
                assert!(row.peak as i64 >= entering);
                held = entering - row.free_on_exit as i64;
                assert_eq!(
                    held, row.used_after_exit as i64,
                    "balance mismatch in '{}'",
                    row.activity
                );
            }
            assert_eq!(held, final_held);
        }
    }
}
