//! Query-shaped pipelines: join then grouped aggregation — the shape of the
//! TPC-H aggregation queries whose joins the paper extracts (e.g. Q18 groups
//! the join result it studies as J2).

use columnar::{Column, Relation};
use groupby::{AggFn, GroupByAlgorithm, GroupByConfig, GroupByOutput};
use joins::{Algorithm, JoinConfig, JoinStats};
use sim::Device;

/// Which column of the join output becomes the group key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupKey {
    /// Group by the join key itself.
    JoinKey,
    /// Group by the `i`-th payload column of R in the join output.
    RPayload(usize),
    /// Group by the `i`-th payload column of S in the join output.
    SPayload(usize),
}

/// Result of a join → group-by pipeline.
pub struct PipelineOutput {
    /// The grouped aggregation result.
    pub groups: GroupByOutput,
    /// Statistics of the join stage.
    pub join_stats: JoinStats,
    /// Output cardinality of the join stage.
    pub join_rows: usize,
}

impl PipelineOutput {
    /// Total simulated time across both stages.
    pub fn total_time(&self) -> sim::SimTime {
        self.join_stats.phases.total() + self.groups.stats.phases.total()
    }
}

/// Join `r ⋈ s`, then group the result by `group_key` and aggregate the
/// remaining payload columns with `aggs` (one per join-output payload
/// column, in `[r payloads..., s payloads...]` order, *excluding* the group
/// key column when it is a payload).
#[allow(clippy::too_many_arguments)] // mirrors the two operators' knobs 1:1
pub fn join_then_group_by(
    dev: &Device,
    r: &Relation,
    s: &Relation,
    join_algorithm: Algorithm,
    join_config: &JoinConfig,
    group_key: GroupKey,
    group_algorithm: GroupByAlgorithm,
    aggs: &[AggFn],
    group_config: &GroupByConfig,
) -> PipelineOutput {
    let joined = joins::run_join(dev, join_algorithm, r, s, join_config);
    let join_rows = joined.len();
    let join_stats = joined.stats.clone();

    // Re-shape the join output into a relation keyed by the chosen column.
    let mut payloads: Vec<Column> = Vec::new();
    let mut key: Option<Column> = None;
    let keep = |col: Column, key: &mut Option<Column>, payloads: &mut Vec<Column>, is_key: bool| {
        if is_key {
            *key = Some(col);
        } else {
            payloads.push(col);
        }
    };
    keep(
        joined.keys,
        &mut key,
        &mut payloads,
        group_key == GroupKey::JoinKey,
    );
    for (i, col) in joined.r_payloads.into_iter().enumerate() {
        keep(
            col,
            &mut key,
            &mut payloads,
            group_key == GroupKey::RPayload(i),
        );
    }
    for (i, col) in joined.s_payloads.into_iter().enumerate() {
        keep(
            col,
            &mut key,
            &mut payloads,
            group_key == GroupKey::SPayload(i),
        );
    }
    let input = Relation::new(
        "joined",
        key.expect("group key column exists in the join output"),
        payloads,
    );
    let groups = groupby::run_group_by(dev, group_algorithm, &input, aggs, group_config);
    PipelineOutput {
        groups,
        join_stats,
        join_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q18_shaped_pipeline() {
        // Orders ⋈ lineitem shape, then SUM(quantity) grouped by order key.
        let dev = Device::a100();
        let orders = Relation::new(
            "orders",
            Column::from_i32(&dev, vec![0, 1, 2, 3], "o_orderkey"),
            vec![Column::from_i32(
                &dev,
                vec![100, 101, 102, 103],
                "o_custkey",
            )],
        );
        let lineitem = Relation::new(
            "lineitem",
            Column::from_i32(&dev, vec![0, 0, 1, 2, 2, 2], "l_orderkey"),
            vec![Column::from_i32(
                &dev,
                vec![5, 7, 11, 1, 2, 3],
                "l_quantity",
            )],
        );
        let out = join_then_group_by(
            &dev,
            &orders,
            &lineitem,
            Algorithm::PhjOm,
            &JoinConfig::default(),
            GroupKey::JoinKey,
            GroupByAlgorithm::SortGftr,
            &[AggFn::Max, AggFn::Sum], // o_custkey is functionally dependent; take MAX
            &GroupByConfig::default(),
        );
        assert_eq!(out.join_rows, 6);
        assert_eq!(
            out.groups.rows_sorted(),
            vec![vec![0, 100, 12], vec![1, 101, 11], vec![2, 102, 6]],
        );
        assert!(out.total_time().secs() > 0.0);
    }

    #[test]
    fn grouping_by_a_payload_column() {
        let dev = Device::a100();
        let r = Relation::new(
            "R",
            Column::from_i32(&dev, vec![0, 1], "k"),
            vec![Column::from_i32(&dev, vec![7, 7], "category")],
        );
        let s = Relation::new(
            "S",
            Column::from_i32(&dev, vec![0, 0, 1], "k"),
            vec![Column::from_i32(&dev, vec![1, 2, 4], "v")],
        );
        let out = join_then_group_by(
            &dev,
            &r,
            &s,
            Algorithm::SmjOm,
            &JoinConfig::default(),
            GroupKey::RPayload(0),
            GroupByAlgorithm::HashGlobal,
            &[AggFn::Min, AggFn::Sum], // join key, then v
            &GroupByConfig::default(),
        );
        // One group (category 7): min join key 0, sum v = 7.
        assert_eq!(out.groups.rows_sorted(), vec![vec![7, 0, 7]]);
    }
}
