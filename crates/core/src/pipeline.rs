//! Query-shaped pipelines: join then grouped aggregation — the shape of the
//! TPC-H aggregation queries whose joins the paper extracts (e.g. Q18 groups
//! the join result it studies as J2).
//!
//! This is a thin wrapper over the engine's physical-operator layer
//! ([`engine::op`]): the relations enter as [`engine::op::ValuesOp`] leaves,
//! flow through a [`engine::op::JoinOp`] and an
//! [`engine::op::AggregateOp`], and come back with the shared per-operator
//! stats tree — the same execution path, memory budgeting and reporting as
//! full `engine` query plans.

use columnar::{Column, Relation};
use engine::op::{run_operator, AggregateOp, ExecContext, JoinOp, ValuesOp};
use engine::{AggSpec, NodeStats, Table};
use groupby::{AggFn, GroupByAlgorithm, GroupByConfig, GroupByOutput, GroupByStats};
use joins::{Algorithm, JoinConfig, JoinStats};
use sim::Device;

/// Which column of the join output becomes the group key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupKey {
    /// Group by the join key itself.
    JoinKey,
    /// Group by the `i`-th payload column of R in the join output.
    RPayload(usize),
    /// Group by the `i`-th payload column of S in the join output.
    SPayload(usize),
}

/// Everything a join → group-by pipeline needs beyond its input relations.
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    /// Join implementation.
    pub join_algorithm: Algorithm,
    /// Join tuning knobs (semantics, radix bits, ...).
    pub join_config: JoinConfig,
    /// Which join-output column becomes the group key.
    pub group_key: GroupKey,
    /// Grouped-aggregation implementation.
    pub group_algorithm: GroupByAlgorithm,
    /// One aggregate per join-output payload column, in
    /// `[join key (when not the group key), r payloads..., s payloads...]`
    /// order, *excluding* the group key column.
    pub aggs: Vec<AggFn>,
    /// Aggregation tuning knobs.
    pub group_config: GroupByConfig,
}

impl PipelineSpec {
    /// A spec with default join/aggregation configs.
    pub fn new(
        join_algorithm: Algorithm,
        group_key: GroupKey,
        group_algorithm: GroupByAlgorithm,
        aggs: &[AggFn],
    ) -> Self {
        PipelineSpec {
            join_algorithm,
            join_config: JoinConfig::default(),
            group_key,
            group_algorithm,
            aggs: aggs.to_vec(),
            group_config: GroupByConfig::default(),
        }
    }
}

/// Result of a join → group-by pipeline.
pub struct PipelineOutput {
    /// The grouped aggregation result.
    pub groups: GroupByOutput,
    /// Statistics of the join stage.
    pub join_stats: JoinStats,
    /// Output cardinality of the join stage.
    pub join_rows: usize,
    /// The full per-operator stats tree (aggregate → join → inputs), as the
    /// engine reports it.
    pub stats: NodeStats,
}

impl PipelineOutput {
    /// Total simulated time across both stages.
    pub fn total_time(&self) -> sim::SimTime {
        self.stats.total_time()
    }
}

/// Join `r ⋈ s`, then group the result by `spec.group_key` and aggregate
/// the remaining payload columns with `spec.aggs`, all through the engine's
/// operator layer. Panics if `spec.aggs` does not have exactly one entry
/// per non-key join-output payload column.
pub fn join_then_group_by(
    dev: &Device,
    r: &Relation,
    s: &Relation,
    spec: &PipelineSpec,
) -> PipelineOutput {
    let gk_name = match spec.group_key {
        GroupKey::JoinKey => "__k".to_string(),
        GroupKey::RPayload(i) => format!("__r{i}"),
        GroupKey::SPayload(i) => format!("__s{i}"),
    };
    // Aggregation targets in the join output, in the order the old
    // two-stage pipeline fed them: join key first, then R payloads, then S
    // payloads, with the group-key column carved out.
    let mut targets: Vec<String> = Vec::new();
    if spec.group_key != GroupKey::JoinKey {
        targets.push("__k".to_string());
    }
    for i in 0..r.num_payloads() {
        if spec.group_key != GroupKey::RPayload(i) {
            targets.push(format!("__r{i}"));
        }
    }
    for i in 0..s.num_payloads() {
        if spec.group_key != GroupKey::SPayload(i) {
            targets.push(format!("__s{i}"));
        }
    }
    assert_eq!(
        spec.aggs.len(),
        targets.len(),
        "need exactly one aggregate per non-key join-output payload column"
    );
    let agg_specs: Vec<AggSpec> = spec
        .aggs
        .iter()
        .zip(&targets)
        .enumerate()
        .map(|(j, (&agg, col))| AggSpec::new(agg, col.clone(), format!("a{j}")))
        .collect();

    let join = JoinOp::new(
        Box::new(ValuesOp::new(table_of(r, "__r"))),
        Box::new(ValuesOp::new(table_of(s, "__s"))),
        "__k",
        "__k",
        spec.join_config.clone(),
        Some(spec.join_algorithm),
    );
    let root = AggregateOp::new(
        Box::new(join),
        &gk_name,
        agg_specs,
        spec.group_config.clone(),
        Some(spec.group_algorithm),
    );
    let ctx = ExecContext::new(dev, None);
    let (table, stats) =
        run_operator(&ctx, &root).expect("pipeline operators bind by construction");

    // Unpack: first column is the group key, the rest are the aggregates.
    let mut cols = table.into_columns();
    let keys = cols.remove(0).1;
    let aggregates: Vec<Column> = cols.into_iter().map(|(_, c)| c).collect();
    let join_node = &stats.children[0];
    let join_stats = JoinStats {
        algorithm: spec.join_algorithm,
        op: join_node.op.clone(),
    };
    let groups = GroupByOutput {
        keys,
        aggregates,
        stats: GroupByStats {
            algorithm: spec.group_algorithm,
            op: stats.op.clone(),
        },
    };
    PipelineOutput {
        groups,
        join_stats,
        join_rows: join_node.op.rows,
        stats,
    }
}

/// Name a relation's columns for the operator layer: key `__k`, payloads
/// `{prefix}{i}`.
fn table_of(rel: &Relation, prefix: &str) -> Table {
    let mut cols = vec![("__k".to_string(), rel.key().alias())];
    for (i, c) in rel.payloads().iter().enumerate() {
        cols.push((format!("{prefix}{i}"), c.alias()));
    }
    Table::from_columns(rel.name(), cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q18_shaped_pipeline() {
        // Orders ⋈ lineitem shape, then SUM(quantity) grouped by order key.
        let dev = Device::a100();
        let orders = Relation::new(
            "orders",
            Column::from_i32(&dev, vec![0, 1, 2, 3], "o_orderkey"),
            vec![Column::from_i32(
                &dev,
                vec![100, 101, 102, 103],
                "o_custkey",
            )],
        );
        let lineitem = Relation::new(
            "lineitem",
            Column::from_i32(&dev, vec![0, 0, 1, 2, 2, 2], "l_orderkey"),
            vec![Column::from_i32(
                &dev,
                vec![5, 7, 11, 1, 2, 3],
                "l_quantity",
            )],
        );
        let out = join_then_group_by(
            &dev,
            &orders,
            &lineitem,
            // o_custkey is functionally dependent; take MAX.
            &PipelineSpec::new(
                Algorithm::PhjOm,
                GroupKey::JoinKey,
                GroupByAlgorithm::SortGftr,
                &[AggFn::Max, AggFn::Sum],
            ),
        );
        assert_eq!(out.join_rows, 6);
        assert_eq!(
            out.groups.rows_sorted(),
            vec![vec![0, 100, 12], vec![1, 101, 11], vec![2, 102, 6]],
        );
        assert!(out.total_time().secs() > 0.0);
        // The stats tree reflects both stages with the shared record.
        assert!(out.stats.label.starts_with("Aggregate"));
        assert!(out.stats.children[0].label.starts_with("Join"));
        assert!(out.join_stats.op.counters.dram_bytes() > 0);
    }

    #[test]
    fn grouping_by_a_payload_column() {
        let dev = Device::a100();
        let r = Relation::new(
            "R",
            Column::from_i32(&dev, vec![0, 1], "k"),
            vec![Column::from_i32(&dev, vec![7, 7], "category")],
        );
        let s = Relation::new(
            "S",
            Column::from_i32(&dev, vec![0, 0, 1], "k"),
            vec![Column::from_i32(&dev, vec![1, 2, 4], "v")],
        );
        let out = join_then_group_by(
            &dev,
            &r,
            &s,
            // Aggregates apply to the join key, then v.
            &PipelineSpec::new(
                Algorithm::SmjOm,
                GroupKey::RPayload(0),
                GroupByAlgorithm::HashGlobal,
                &[AggFn::Min, AggFn::Sum],
            ),
        );
        // One group (category 7): min join key 0, sum v = 7.
        assert_eq!(out.groups.rows_sorted(), vec![vec![7, 0, 7]]);
    }
}
