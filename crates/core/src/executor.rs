//! A thin session object bundling a device with the operator entry points.

use columnar::Relation;
use groupby::{AggFn, GroupByAlgorithm, GroupByConfig, GroupByOutput};
use heuristics::{choose_join, Recommendation, WorkloadProfile};
use joins::{Algorithm, JoinConfig, JoinOutput};
use sim::{Device, DeviceConfig};

/// An execution session on one simulated GPU.
///
/// Owns nothing beyond the [`Device`] handle; relations are built against
/// the device directly (see [`Executor::device`]) and passed by reference.
pub struct Executor {
    dev: Device,
}

impl Executor {
    /// Session on an A100-class device (the paper's main machine).
    pub fn a100() -> Self {
        Executor {
            dev: Device::a100(),
        }
    }

    /// Session on an RTX 3090-class device.
    pub fn rtx3090() -> Self {
        Executor {
            dev: Device::rtx3090(),
        }
    }

    /// Session on a custom device configuration.
    pub fn with_config(config: DeviceConfig) -> Self {
        Executor {
            dev: Device::new(config),
        }
    }

    /// The underlying device (needed to build [`columnar::Column`]s).
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Run a join with an explicitly chosen implementation.
    pub fn join(
        &self,
        algorithm: Algorithm,
        r: &Relation,
        s: &Relation,
        config: &JoinConfig,
    ) -> JoinOutput {
        joins::run_join(&self.dev, algorithm, r, s, config)
    }

    /// Run a join with the implementation the Figure 18 decision tree picks
    /// for the given profile. Returns the output and the recommendation
    /// (with its rationale) that was followed.
    pub fn join_auto(
        &self,
        profile: &WorkloadProfile,
        r: &Relation,
        s: &Relation,
        config: &JoinConfig,
    ) -> (JoinOutput, Recommendation) {
        let rec = choose_join(profile);
        let out = self.join(rec.algorithm, r, s, config);
        (out, rec)
    }

    /// Run a grouped aggregation.
    pub fn group_by(
        &self,
        algorithm: GroupByAlgorithm,
        input: &Relation,
        aggs: &[AggFn],
        config: &GroupByConfig,
    ) -> GroupByOutput {
        groupby::run_group_by(&self.dev, algorithm, input, aggs, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::Column;

    #[test]
    fn executor_runs_joins_and_aggregations() {
        let exec = Executor::a100();
        let dev = exec.device();
        let r = Relation::new(
            "R",
            Column::from_i32(dev, vec![0, 1, 2], "k"),
            vec![Column::from_i32(dev, vec![5, 6, 7], "p")],
        );
        let s = Relation::new(
            "S",
            Column::from_i32(dev, vec![1, 2, 2], "k"),
            vec![Column::from_i32(dev, vec![9, 8, 7], "q")],
        );
        let out = exec.join(Algorithm::PhjOm, &r, &s, &JoinConfig::default());
        assert_eq!(out.len(), 3);

        let g = exec.group_by(
            GroupByAlgorithm::HashGlobal,
            &s,
            &[AggFn::Sum],
            &GroupByConfig::default(),
        );
        assert_eq!(g.rows_sorted(), vec![vec![1, 9], vec![2, 15]]);
    }

    #[test]
    fn join_auto_follows_the_tree() {
        let exec = Executor::a100();
        let dev = exec.device();
        let r = Relation::new(
            "R",
            Column::from_i32(dev, vec![0, 1], "k"),
            vec![Column::from_i32(dev, vec![1, 2], "p")],
        );
        let s = Relation::new(
            "S",
            Column::from_i32(dev, vec![0, 1], "k"),
            vec![Column::from_i32(dev, vec![3, 4], "q")],
        );
        let profile = WorkloadProfile {
            wide: false,
            ..WorkloadProfile::default_wide()
        };
        let (out, rec) = exec.join_auto(&profile, &r, &s, &JoinConfig::default());
        assert_eq!(out.stats.algorithm, rec.algorithm);
        assert_eq!(out.len(), 2);
    }
}
