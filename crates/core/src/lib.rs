//! # gpu-join — GPU joins and grouped aggregations, end to end
//!
//! The facade crate of this workspace: a reproduction of *Efficiently
//! Processing Large Relational Joins on GPUs* (VLDB'24) and the grouped
//! aggregations of its SIGMOD'25 successor, running on a calibrated software
//! GPU simulator (see the [`sim`] crate for the substitution rationale).
//!
//! ## Quick start
//!
//! ```
//! use gpu_join::prelude::*;
//!
//! let exec = Executor::a100();
//! let dev = exec.device();
//!
//! // Two relations: R(key, payload), S(key, payload).
//! let r = Relation::new(
//!     "R",
//!     Column::from_i32(dev, vec![2, 0, 1], "r.key"),
//!     vec![Column::from_i32(dev, vec![20, 0, 10], "r.p")],
//! );
//! let s = Relation::new(
//!     "S",
//!     Column::from_i32(dev, vec![1, 1, 2], "s.key"),
//!     vec![Column::from_i32(dev, vec![7, 8, 9], "s.q")],
//! );
//!
//! // The paper's flagship: radix-partitioned hash join with GFTR
//! // (optimized) materialization.
//! let out = exec.join(Algorithm::PhjOm, &r, &s, &JoinConfig::default());
//! assert_eq!(out.len(), 3);
//! println!("transform  {}", out.stats.phases.transform);
//! println!("match find {}", out.stats.phases.match_find);
//! println!("materialize {}", out.stats.phases.materialize);
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`sim`] | GPU execution simulator: cost model, counters, memory ledger |
//! | [`columnar`] | columns, relations, dictionary encoding |
//! | [`primitives`] | RADIX-PARTITION, SORT-PAIRS, GATHER, merge path, hash tables |
//! | [`joins`] | SMJ-UM/OM, PHJ-UM/OM, NPHJ, CPU baseline, join pipelines |
//! | [`groupby`] | hash / sort / partitioned grouped aggregations |
//! | [`workloads`] | microbenchmark + TPC-H/DS extract generators |
//! | [`heuristics`] | the Figure 18 decision trees |
//! | [`engine`] | a minimal columnar query engine (scan/filter/project/join/aggregate) |

pub mod executor;
pub mod memory_model;
pub mod pipeline;

pub use executor::Executor;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::executor::Executor;
    pub use crate::memory_model;
    pub use crate::pipeline::{join_then_group_by, GroupKey, PipelineOutput, PipelineSpec};
    pub use columnar::{Column, DType, DictionaryEncoder, Relation};
    pub use groupby::{AggFn, GroupByAlgorithm, GroupByConfig, GroupByOutput};
    pub use heuristics::{choose_join, choose_smj, profile_of, WorkloadProfile};
    pub use joins::chunked::{chunked_join, plan_chunks};
    pub use joins::plan::{join_sequence, FactTable};
    pub use joins::{Algorithm, JoinConfig, JoinKind, JoinOutput, JoinStats};
    pub use sim::{Counters, Device, DeviceConfig, OpStats, PhaseTimes, SimTime};
}

// Re-export the member crates for direct access.
pub use columnar;
pub use engine;
pub use groupby;
pub use heuristics;
pub use joins;
pub use primitives;
pub use sim;
pub use sql;
pub use workloads;
