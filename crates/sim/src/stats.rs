//! The shared per-operator execution report.
//!
//! The paper's central observation is that joins and grouped aggregations
//! decompose into the *same* three phases (transformation / match finding /
//! materialization, Section 2.2); this type is that observation as data:
//! every physical operator in the workspace — joins, grouped aggregations,
//! engine plan nodes, pipelines — reports the same record of phase times,
//! output cardinality, peak memory (Table 5) and hardware-counter deltas
//! (Table 4), so any two operators can be compared under one harness.

use crate::{Counters, PhaseTimes, SimTime};
use serde::{Deserialize, Serialize};

/// Execution report of one physical operator.
///
/// Produced by `joins::run_join`, `groupby::run_group_by`, every
/// `engine` plan node and `core::pipeline`; the operator-specific stats
/// types (`JoinStats`, `GroupByStats`) wrap this and `Deref` to it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OpStats {
    /// The paper's three-phase breakdown (zero for operators without one,
    /// e.g. scans and filters).
    pub phases: PhaseTimes,
    /// Device time outside the three phases: statistics sampling, plan
    /// glue, and the entire cost of operators that do not decompose
    /// (filters, sorts, projections).
    pub other: SimTime,
    /// Output cardinality: result rows for joins and plan nodes, groups
    /// for aggregations.
    pub rows: usize,
    /// Peak device memory over the operator, bytes (inputs included) — the
    /// Table 5 measurement.
    pub peak_mem_bytes: u64,
    /// Hardware-counter delta over the operator: DRAM bytes,
    /// sectors/request, L2 hit rate, atomics (the Table 4 metrics).
    pub counters: Counters,
    /// The query this operator executed under when run through a query
    /// handle of a multi-query scheduling session; `None` for single-query
    /// execution. Skipped in JSON when absent so pre-scheduler results
    /// files keep their exact bytes.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub query: Option<u32>,
}

impl OpStats {
    /// Assemble from the measurements every operator takes directly; the
    /// counter delta and `other` time are filled in by the measuring
    /// harness (`run_join` / `run_group_by` / the engine's operator
    /// driver).
    pub fn new(phases: PhaseTimes, rows: usize, peak_mem_bytes: u64) -> Self {
        OpStats {
            phases,
            other: SimTime::ZERO,
            rows,
            peak_mem_bytes,
            counters: Counters::default(),
            query: None,
        }
    }

    /// Total simulated time of the operator: the three phases plus
    /// everything outside them.
    pub fn total_time(&self) -> SimTime {
        self.phases.total() + self.other
    }

    /// End-to-end throughput in input tuples per second — the paper's
    /// `(|R| + |S|) / total time` metric (Section 5.1). Returns `0.0` for
    /// a zero total time: `inf` is not representable in JSON and would
    /// serialize as `null`, corrupting results files.
    pub fn throughput_tuples(&self, input_tuples: usize) -> f64 {
        let t = self.total_time().secs();
        if t <= 0.0 {
            0.0
        } else {
            input_tuples as f64 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_include_other_time() {
        let mut s = OpStats::new(
            PhaseTimes {
                transform: SimTime::from_millis(1.0),
                match_find: SimTime::from_millis(2.0),
                materialize: SimTime::from_millis(3.0),
            },
            10,
            1 << 20,
        );
        assert!((s.total_time().millis() - 6.0).abs() < 1e-9);
        s.other = SimTime::from_millis(4.0);
        assert!((s.total_time().millis() - 10.0).abs() < 1e-9);
        // Throughput uses the full operator time.
        assert!((s.throughput_tuples(100) - 100.0 / 10.0e-3).abs() < 1e-6);
    }

    #[test]
    fn throughput_of_zero_time_is_zero_not_inf() {
        let s = OpStats::default();
        assert_eq!(s.total_time(), SimTime::ZERO);
        let tp = s.throughput_tuples(1_000_000);
        assert_eq!(tp, 0.0, "zero-time throughput must stay JSON-safe");
        assert!(tp.is_finite());
    }

    #[test]
    fn default_is_zeroed() {
        let s = OpStats::default();
        assert_eq!(s.rows, 0);
        assert_eq!(s.peak_mem_bytes, 0);
        assert_eq!(s.total_time(), SimTime::ZERO);
        assert_eq!(s.counters, Counters::default());
    }
}
