//! Simulated-clock tracing: an "Nsight Systems for the simulator".
//!
//! Every claim in the paper is argued from profiler evidence — per-kernel
//! counters (Table 4), phase breakdowns (Figures 1, 9, 10), memory
//! timelines (Table 5). This module records the same evidence from the
//! simulator: timestamped events on the **simulated clock**, captured while
//! the device lock is held so recording is deterministic and bit-identical
//! across [`crate::DeviceConfig::host_threads`] settings.
//!
//! Three event classes:
//!
//! * [`KernelEvent`] — one per kernel launch, carrying that launch's
//!   counter delta (warp instructions, DRAM bytes, sectors/request, L2 hit
//!   rate, atomics) plus its simulated start time and duration.
//! * [`SpanEvent`] — nested intervals opened by the execution harnesses:
//!   one per operator node (`engine::op::run_operator`), per join / grouped
//!   aggregation (`joins::run_join`, `groupby::run_group_by`), per
//!   out-of-core chunk, and per paper phase (transformation / match
//!   finding / materialization / other).
//! * [`MemEvent`] / [`InstantEvent`] — memory-ledger samples at every
//!   allocation and free (peak memory becomes a timeline, not one number)
//!   and point markers such as `reset_stats`.
//!
//! Tracing is opt-in per device ([`crate::Device::enable_tracing`]) and
//! costs nothing when disabled: every record point checks an `Option` that
//! is `None` by default. Because events are derived from state that is
//! already bit-identical across host-thread counts, the exported bytes are
//! too.
//!
//! Exporters:
//!
//! * [`chrome_trace_json`] — Chrome `trace_event` JSON (load in Perfetto or
//!   `chrome://tracing`): one process per device, spans and kernels on
//!   separate tracks, memory as a counter track.
//! * [`jsonl`] — one JSON object per line, for `jq`-style analysis.
//! * [`render_kernel_summary`] — an `nsys stats`-style per-kernel-name
//!   aggregation table (launches, total time, % of kernel time, traffic).

use crate::SimTime;

/// Category of a [`SpanEvent`] — which harness opened it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanCat {
    /// An `engine::op::run_operator` plan-node bracket.
    Operator,
    /// A `joins::run_join` execution (one per chunk when out-of-core).
    Join,
    /// A `groupby::run_group_by` execution.
    GroupBy,
    /// One out-of-core chunk of a chunked join (Section 4.4).
    Chunk,
    /// One paper phase: `transform`, `match_find`, `materialize`, `other`.
    Phase,
}

impl SpanCat {
    /// Stable lowercase label used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanCat::Operator => "operator",
            SpanCat::Join => "join",
            SpanCat::GroupBy => "group_by",
            SpanCat::Chunk => "chunk",
            SpanCat::Phase => "phase",
        }
    }
}

/// One kernel launch: simulated interval plus that launch's counter delta.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelEvent {
    /// The name passed to [`crate::Device::kernel`].
    pub name: &'static str,
    /// Simulated start time, seconds.
    pub start: f64,
    /// Simulated duration, seconds.
    pub dur: f64,
    /// The query this launch belonged to, when it ran through a query
    /// handle of a multi-query scheduling session (`None` otherwise). In a
    /// query's private trace `start` is on the query's own clock; in the
    /// base device's trace the same launch appears at its device-clock
    /// position, tagged with this id — the multi-tenant timeline.
    pub query: Option<u32>,
    /// Warp instructions issued by this launch.
    pub warp_instructions: u64,
    /// DRAM bytes read by this launch (sequential + gather misses).
    pub dram_read_bytes: u64,
    /// DRAM bytes written by this launch (sequential + RMW write-back).
    pub dram_write_bytes: u64,
    /// Warp-level load requests issued by this launch.
    pub load_requests: u64,
    /// Sectors touched by those requests, before the L2 filter.
    pub sectors_requested: u64,
    /// Gather sectors served by the modeled L2.
    pub l2_hits: u64,
    /// Gather sectors that missed L2.
    pub l2_misses: u64,
    /// Global atomic updates performed.
    pub atomics: u64,
}

impl KernelEvent {
    /// Average sectors per warp load request (Table 4's coalescing metric).
    pub fn sectors_per_request(&self) -> f64 {
        if self.load_requests == 0 {
            0.0
        } else {
            self.sectors_requested as f64 / self.load_requests as f64
        }
    }

    /// L2 hit rate over this launch's gather traffic.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// Total DRAM traffic of this launch, bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// A nested interval opened by one of the execution harnesses.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Which harness opened the span.
    pub cat: SpanCat,
    /// Human-readable label (operator label, algorithm name, phase name).
    pub name: String,
    /// Simulated start time, seconds.
    pub start: f64,
    /// Simulated end time, seconds.
    pub end: f64,
}

impl SpanEvent {
    /// Span duration in simulated seconds.
    pub fn dur(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// A memory-ledger sample: device memory in use at a simulated timestamp.
///
/// Samples taken at the same timestamp (the clock only advances at kernel
/// launches, so a phase's allocations share one instant) are coalesced into
/// a single event keeping both the last value and the within-instant
/// high-water mark.
#[derive(Debug, Clone, PartialEq)]
pub struct MemEvent {
    /// Simulated timestamp, seconds.
    pub ts: f64,
    /// Bytes in use after the last allocation/free at this timestamp.
    pub current_bytes: u64,
    /// Highest bytes-in-use observed at this timestamp.
    pub high_water_bytes: u64,
}

/// A point marker (e.g. `reset_stats`, chunk boundaries).
#[derive(Debug, Clone, PartialEq)]
pub struct InstantEvent {
    /// Marker label.
    pub name: &'static str,
    /// Simulated timestamp, seconds.
    pub ts: f64,
}

/// A stage of a query's serving-path lifecycle.
///
/// Stages come in two shapes: *spans* (`queued`, `exec_slice`,
/// `interference`) cover an interval of the query's wall time, and
/// *instants* (everything else) mark a point. Together, a completed query's
/// spans tile `[arrival, completion]` exactly — see
/// [`LifecycleEvent`] for the partition guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleStage {
    /// The query arrived at the serving path (instant).
    Arrival,
    /// Waiting for admission: `[arrival, admitted]` (span).
    Queued,
    /// Admission control granted the memory reservation (instant).
    Admitted,
    /// Admission control shed the query from the queue (terminal instant).
    Shed,
    /// Admission control rejected the query outright (terminal instant).
    Rejected,
    /// The plan cache served a compiled plan (instant).
    PlanCacheHit,
    /// The plan cache compiled and inserted a plan (instant).
    PlanCacheMiss,
    /// One contiguous run of kernel turns designated to this query (span).
    ExecSlice,
    /// Runnable but not designated by the turn gate: wall time spent
    /// waiting on co-tenants' kernels or idle advances (span).
    Interference,
    /// The query retired (instant).
    Complete,
}

impl LifecycleStage {
    /// Stable lowercase label used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            LifecycleStage::Arrival => "arrival",
            LifecycleStage::Queued => "queued",
            LifecycleStage::Admitted => "admitted",
            LifecycleStage::Shed => "shed",
            LifecycleStage::Rejected => "rejected",
            LifecycleStage::PlanCacheHit => "plan_cache_hit",
            LifecycleStage::PlanCacheMiss => "plan_cache_miss",
            LifecycleStage::ExecSlice => "exec_slice",
            LifecycleStage::Interference => "interference",
            LifecycleStage::Complete => "complete",
        }
    }

    /// Whether this stage covers an interval (vs. marking a point).
    pub fn is_span(self) -> bool {
        matches!(
            self,
            LifecycleStage::Queued | LifecycleStage::ExecSlice | LifecycleStage::Interference
        )
    }
}

/// One stage of one query's end-to-end lifecycle on the serving path.
///
/// For every completed query the span stages partition its latency
/// *exactly*: converting each boundary with
/// [`crate::metrics::secs_to_ticks`] and summing per-span tick differences,
/// `queued + Σ exec_slice + Σ interference == complete − arrival` to the
/// nanosecond, because consecutive spans share their boundary timestamps
/// and the tick sum telescopes.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleEvent {
    /// The query this stage belongs to. `None` for events that predate a
    /// query id (admission-rejected specs) or standalone plan-cache use.
    pub query: Option<u32>,
    /// Which lifecycle stage.
    pub stage: LifecycleStage,
    /// Simulated start time, seconds. Equal to `end` for instant stages.
    pub start: f64,
    /// Simulated end time, seconds.
    pub end: f64,
}

impl LifecycleEvent {
    /// Stage duration in simulated seconds (zero for instants).
    pub fn dur(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A kernel launch.
    Kernel(KernelEvent),
    /// A harness span.
    Span(SpanEvent),
    /// A memory-ledger sample.
    Mem(MemEvent),
    /// A point marker.
    Instant(InstantEvent),
    /// A query-lifecycle stage on the serving path.
    Lifecycle(LifecycleEvent),
}

/// A device's recorded event log, in recording order.
///
/// Obtain via [`crate::Device::take_trace`] or
/// [`crate::Device::trace_snapshot`]; export with [`chrome_trace_json`],
/// [`jsonl`] or [`render_kernel_summary`].
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The device name this trace was recorded on.
    pub device: String,
    /// All events, in recording order. Spans are recorded retroactively
    /// (when they close), so a parent span appears *after* its children.
    pub events: Vec<TraceEvent>,
    /// Flight-recorder capacity ([`crate::Device::enable_tracing_ring`]):
    /// `None` records unbounded.
    capacity: Option<usize>,
    /// Total events evicted by the flight recorder.
    dropped: u64,
}

impl Trace {
    pub(crate) fn new(device: String) -> Self {
        Trace {
            device,
            events: Vec::new(),
            capacity: None,
            dropped: 0,
        }
    }

    /// Cap the recorder at `capacity` events, keeping the newest.
    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = Some(capacity.max(1));
    }

    /// Total events evicted by the flight recorder so far.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Evict the oldest events if the flight recorder is over capacity,
    /// returning how many were dropped. Eviction removes a block (a
    /// quarter of the capacity) at a time so steady-state recording is not
    /// a per-event `Vec` front-drain.
    fn enforce_capacity(&mut self) -> u64 {
        let Some(cap) = self.capacity else { return 0 };
        if self.events.len() <= cap {
            return 0;
        }
        let block = (cap / 4).max(1).max(self.events.len() - cap);
        self.events.drain(..block);
        self.dropped += block as u64;
        block as u64
    }

    /// Iterate over the kernel events.
    pub fn kernels(&self) -> impl Iterator<Item = &KernelEvent> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Kernel(k) => Some(k),
            _ => None,
        })
    }

    /// Iterate over the span events.
    pub fn spans(&self) -> impl Iterator<Item = &SpanEvent> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Span(s) => Some(s),
            _ => None,
        })
    }

    /// Iterate over the memory samples.
    pub fn mem_samples(&self) -> impl Iterator<Item = &MemEvent> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Mem(m) => Some(m),
            _ => None,
        })
    }

    /// Iterate over the query-lifecycle events.
    pub fn lifecycles(&self) -> impl Iterator<Item = &LifecycleEvent> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Lifecycle(l) => Some(l),
            _ => None,
        })
    }

    pub(crate) fn push_kernel(&mut self, k: KernelEvent) -> u64 {
        self.events.push(TraceEvent::Kernel(k));
        self.enforce_capacity()
    }

    pub(crate) fn push_span(
        &mut self,
        cat: SpanCat,
        name: String,
        start: SimTime,
        end: SimTime,
    ) -> u64 {
        self.events.push(TraceEvent::Span(SpanEvent {
            cat,
            name,
            start: start.secs(),
            end: end.secs(),
        }));
        self.enforce_capacity()
    }

    pub(crate) fn push_mem(&mut self, ts: f64, current_bytes: u64) -> u64 {
        // The clock is frozen between kernel launches, so a burst of
        // allocations lands on one instant; coalesce it into one sample.
        if let Some(TraceEvent::Mem(last)) = self.events.last_mut() {
            if last.ts == ts {
                last.current_bytes = current_bytes;
                last.high_water_bytes = last.high_water_bytes.max(current_bytes);
                return 0;
            }
        }
        self.events.push(TraceEvent::Mem(MemEvent {
            ts,
            current_bytes,
            high_water_bytes: current_bytes,
        }));
        self.enforce_capacity()
    }

    pub(crate) fn push_instant(&mut self, name: &'static str, ts: f64) -> u64 {
        self.events
            .push(TraceEvent::Instant(InstantEvent { name, ts }));
        self.enforce_capacity()
    }

    pub(crate) fn push_lifecycle(
        &mut self,
        query: Option<u32>,
        stage: LifecycleStage,
        start: f64,
        end: f64,
    ) -> u64 {
        self.events.push(TraceEvent::Lifecycle(LifecycleEvent {
            query,
            stage,
            start,
            end,
        }));
        self.enforce_capacity()
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Microseconds with nanosecond precision — the Chrome `trace_event`
/// timestamp unit, formatted deterministically.
fn us(secs: f64) -> String {
    format!("{:.3}", secs * 1e6)
}

/// Render traces as Chrome `trace_event` JSON (the format Perfetto and
/// `chrome://tracing` load).
///
/// Layout: one *process* per device (pid = index + 1) named after the
/// device; *thread* 1 carries the harness spans, *thread* 2 the kernel
/// launches (both as `"X"` complete events, nested by containment);
/// memory samples become a `"C"` counter track; markers become `"i"`
/// instant events. Timestamps are simulated microseconds with nanosecond
/// precision.
pub fn chrome_trace_json(traces: &[Trace]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };
    for (i, tr) in traces.iter().enumerate() {
        let pid = i + 1;
        let mut name = String::new();
        escape_into(&mut name, &tr.device);
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
        );
        for (tid, tname) in [(1, "operators & phases"), (2, "kernels")] {
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{tname}\"}}}}"
                ),
            );
        }
        // One lifecycle track per query (tid 100 + id; tid 99 for events
        // with no query id). Emitted only when lifecycle events exist, so
        // pre-serving traces keep their exact historical bytes.
        let mut life_tids: Vec<(u64, String)> = Vec::new();
        for ev in &tr.events {
            if let TraceEvent::Lifecycle(l) = ev {
                let (tid, tname) = match l.query {
                    Some(q) => (100 + q as u64, format!("q{q} lifecycle")),
                    None => (99, "lifecycle".to_string()),
                };
                if !life_tids.iter().any(|(t, _)| *t == tid) {
                    life_tids.push((tid, tname));
                }
            }
        }
        life_tids.sort_by_key(|(t, _)| *t);
        for (tid, tname) in &life_tids {
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{tname}\"}}}}"
                ),
            );
        }
        // Emit "X" events sorted by start time, longest-first on ties, so
        // viewers that build stacks in array order nest parents before
        // children (spans are recorded child-first).
        let mut timed: Vec<(f64, f64, String)> = Vec::new();
        for ev in &tr.events {
            match ev {
                TraceEvent::Kernel(k) => {
                    let mut kname = String::new();
                    escape_into(&mut kname, k.name);
                    // Query attribution is emitted only when present, so
                    // single-query traces keep their exact historical bytes.
                    let qarg = match k.query {
                        Some(q) => format!("\"query\":{q},"),
                        None => String::new(),
                    };
                    timed.push((
                        k.start,
                        k.dur,
                        format!(
                            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":2,\"cat\":\"kernel\",\
                             \"name\":\"{kname}\",\"ts\":{ts},\"dur\":{dur},\"args\":{{{qarg}\
                             \"warp_instructions\":{wi},\"dram_read_bytes\":{dr},\
                             \"dram_write_bytes\":{dw},\"load_requests\":{lr},\
                             \"sectors_per_request\":{spr:.3},\"l2_hit_rate\":{l2:.4},\
                             \"atomics\":{at}}}}}",
                            ts = us(k.start),
                            dur = us(k.dur),
                            wi = k.warp_instructions,
                            dr = k.dram_read_bytes,
                            dw = k.dram_write_bytes,
                            lr = k.load_requests,
                            spr = k.sectors_per_request(),
                            l2 = k.l2_hit_rate(),
                            at = k.atomics,
                        ),
                    ));
                }
                TraceEvent::Span(s) => {
                    let mut sname = String::new();
                    escape_into(&mut sname, &s.name);
                    timed.push((
                        s.start,
                        s.dur(),
                        format!(
                            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":1,\"cat\":\"{cat}\",\
                             \"name\":\"{sname}\",\"ts\":{ts},\"dur\":{dur}}}",
                            cat = s.cat.as_str(),
                            ts = us(s.start),
                            dur = us(s.dur()),
                        ),
                    ));
                }
                TraceEvent::Mem(m) => {
                    timed.push((
                        m.ts,
                        0.0,
                        format!(
                            "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"name\":\"device memory\",\
                             \"ts\":{ts},\"args\":{{\"bytes\":{bytes}}}}}",
                            ts = us(m.ts),
                            bytes = m.high_water_bytes,
                        ),
                    ));
                }
                TraceEvent::Instant(ins) => {
                    let mut iname = String::new();
                    escape_into(&mut iname, ins.name);
                    timed.push((
                        ins.ts,
                        0.0,
                        format!(
                            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":1,\"name\":\"{iname}\",\
                             \"ts\":{ts},\"s\":\"p\"}}",
                            ts = us(ins.ts),
                        ),
                    ));
                }
                TraceEvent::Lifecycle(l) => {
                    let tid = match l.query {
                        Some(q) => 100 + q as u64,
                        None => 99,
                    };
                    if l.stage.is_span() {
                        timed.push((
                            l.start,
                            l.dur(),
                            format!(
                                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
                                 \"cat\":\"lifecycle\",\"name\":\"{name}\",\
                                 \"ts\":{ts},\"dur\":{dur}}}",
                                name = l.stage.as_str(),
                                ts = us(l.start),
                                dur = us(l.dur()),
                            ),
                        ));
                    } else {
                        timed.push((
                            l.start,
                            0.0,
                            format!(
                                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\
                                 \"cat\":\"lifecycle\",\"name\":\"{name}\",\
                                 \"ts\":{ts},\"s\":\"t\"}}",
                                name = l.stage.as_str(),
                                ts = us(l.start),
                            ),
                        ));
                    }
                }
            }
        }
        timed.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(b.1.partial_cmp(&a.1).unwrap())
        });
        for (_, _, line) in timed {
            push(&mut out, line);
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Render traces as JSON Lines: one self-describing object per event, in
/// recording order, with a `device` field on every line. Suited to `jq`.
pub fn jsonl(traces: &[Trace]) -> String {
    let mut out = String::new();
    for tr in traces {
        let mut dev = String::new();
        escape_into(&mut dev, &tr.device);
        for ev in &tr.events {
            match ev {
                TraceEvent::Kernel(k) => {
                    let mut name = String::new();
                    escape_into(&mut name, k.name);
                    // As in the Chrome exporter, `query` appears only when
                    // set, keeping pre-scheduler trace bytes unchanged.
                    let qfield = match k.query {
                        Some(q) => format!("\"query\":{q},"),
                        None => String::new(),
                    };
                    out.push_str(&format!(
                        "{{\"type\":\"kernel\",\"device\":\"{dev}\",\"name\":\"{name}\",\
                         {qfield}\"start\":{},\"dur\":{},\"warp_instructions\":{},\
                         \"dram_read_bytes\":{},\"dram_write_bytes\":{},\
                         \"load_requests\":{},\"sectors_requested\":{},\
                         \"l2_hits\":{},\"l2_misses\":{},\"atomics\":{}}}\n",
                        k.start,
                        k.dur,
                        k.warp_instructions,
                        k.dram_read_bytes,
                        k.dram_write_bytes,
                        k.load_requests,
                        k.sectors_requested,
                        k.l2_hits,
                        k.l2_misses,
                        k.atomics,
                    ));
                }
                TraceEvent::Span(s) => {
                    let mut name = String::new();
                    escape_into(&mut name, &s.name);
                    out.push_str(&format!(
                        "{{\"type\":\"span\",\"device\":\"{dev}\",\"cat\":\"{}\",\
                         \"name\":\"{name}\",\"start\":{},\"end\":{}}}\n",
                        s.cat.as_str(),
                        s.start,
                        s.end,
                    ));
                }
                TraceEvent::Mem(m) => {
                    out.push_str(&format!(
                        "{{\"type\":\"mem\",\"device\":\"{dev}\",\"ts\":{},\
                         \"current_bytes\":{},\"high_water_bytes\":{}}}\n",
                        m.ts, m.current_bytes, m.high_water_bytes,
                    ));
                }
                TraceEvent::Instant(ins) => {
                    let mut name = String::new();
                    escape_into(&mut name, ins.name);
                    out.push_str(&format!(
                        "{{\"type\":\"instant\",\"device\":\"{dev}\",\
                         \"name\":\"{name}\",\"ts\":{}}}\n",
                        ins.ts,
                    ));
                }
                TraceEvent::Lifecycle(l) => {
                    let qfield = match l.query {
                        Some(q) => format!("\"query\":{q},"),
                        None => String::new(),
                    };
                    out.push_str(&format!(
                        "{{\"type\":\"lifecycle\",\"device\":\"{dev}\",{qfield}\
                         \"stage\":\"{stage}\",\"start\":{},\"end\":{}}}\n",
                        l.start,
                        l.end,
                        stage = l.stage.as_str(),
                    ));
                }
            }
        }
    }
    out
}

/// Per-kernel-name aggregate over one or more traces — the rows of the
/// `nsys stats`-style summary.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStat {
    /// Kernel name.
    pub name: &'static str,
    /// Number of launches.
    pub launches: u64,
    /// Summed simulated duration, seconds.
    pub total_secs: f64,
    /// Summed warp instructions.
    pub warp_instructions: u64,
    /// Summed DRAM traffic, bytes.
    pub dram_bytes: u64,
    /// Summed warp load requests.
    pub load_requests: u64,
    /// Summed sectors requested.
    pub sectors_requested: u64,
    /// Summed L2 hits.
    pub l2_hits: u64,
    /// Summed L2 misses.
    pub l2_misses: u64,
    /// Summed atomic updates.
    pub atomics: u64,
}

impl KernelStat {
    /// Average sectors per warp load request across all launches.
    pub fn sectors_per_request(&self) -> f64 {
        if self.load_requests == 0 {
            0.0
        } else {
            self.sectors_requested as f64 / self.load_requests as f64
        }
    }

    /// L2 hit rate across all launches.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }
}

/// Aggregate kernel events by name, sorted by total simulated time
/// descending (name ascending on ties).
pub fn kernel_stats(traces: &[Trace]) -> Vec<KernelStat> {
    let mut by_name: Vec<KernelStat> = Vec::new();
    for tr in traces {
        for k in tr.kernels() {
            let stat = match by_name.iter_mut().find(|s| s.name == k.name) {
                Some(s) => s,
                None => {
                    by_name.push(KernelStat {
                        name: k.name,
                        launches: 0,
                        total_secs: 0.0,
                        warp_instructions: 0,
                        dram_bytes: 0,
                        load_requests: 0,
                        sectors_requested: 0,
                        l2_hits: 0,
                        l2_misses: 0,
                        atomics: 0,
                    });
                    by_name.last_mut().unwrap()
                }
            };
            stat.launches += 1;
            stat.total_secs += k.dur;
            stat.warp_instructions += k.warp_instructions;
            stat.dram_bytes += k.dram_bytes();
            stat.load_requests += k.load_requests;
            stat.sectors_requested += k.sectors_requested;
            stat.l2_hits += k.l2_hits;
            stat.l2_misses += k.l2_misses;
            stat.atomics += k.atomics;
        }
    }
    by_name.sort_by(|a, b| {
        b.total_secs
            .partial_cmp(&a.total_secs)
            .unwrap()
            .then_with(|| a.name.cmp(b.name))
    });
    by_name
}

/// Render the per-kernel-name aggregation as an `nsys stats`-style text
/// table: launches, total simulated time, share of total kernel time,
/// coalescing quality, L2 hit rate, DRAM traffic.
pub fn render_kernel_summary(traces: &[Trace]) -> String {
    let stats = kernel_stats(traces);
    let grand_total: f64 = stats.iter().map(|s| s.total_secs).sum();
    let name_w = stats
        .iter()
        .map(|s| s.name.len())
        .chain(["kernel".len()])
        .max()
        .unwrap_or(6);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_w$}  {:>8}  {:>12}  {:>6}  {:>8}  {:>6}  {:>14}\n",
        "kernel", "launches", "time", "%", "sect/req", "l2hit", "dram"
    ));
    for s in &stats {
        let pct = if grand_total > 0.0 {
            100.0 * s.total_secs / grand_total
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<name_w$}  {:>8}  {:>12}  {:>5.1}%  {:>8.2}  {:>5.1}%  {:>14}\n",
            s.name,
            s.launches,
            format!("{}", SimTime::from_secs(s.total_secs)),
            pct,
            s.sectors_per_request(),
            100.0 * s.l2_hit_rate(),
            crate::analysis::human_bytes(s.dram_bytes),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Device, SpanCat};

    fn traced_device() -> Device {
        let dev = Device::a100();
        dev.enable_tracing();
        dev
    }

    #[test]
    fn kernel_events_carry_per_launch_deltas() {
        let dev = traced_device();
        dev.kernel("a")
            .items(1 << 10, 2.0)
            .seq_read_bytes(4096)
            .launch();
        dev.kernel("b").items(1 << 10, 2.0).atomics(64, 8).launch();
        let tr = dev.take_trace().unwrap();
        let kernels: Vec<_> = tr.kernels().collect();
        assert_eq!(kernels.len(), 2);
        assert_eq!(kernels[0].name, "a");
        assert_eq!(kernels[0].start, 0.0);
        assert!(kernels[0].dur > 0.0);
        assert_eq!(kernels[0].dram_read_bytes, 4096);
        assert_eq!(kernels[0].atomics, 0);
        assert_eq!(kernels[1].name, "b");
        assert_eq!(kernels[1].start, kernels[0].dur);
        assert_eq!(kernels[1].atomics, 64);
        // The per-launch deltas sum back to the cumulative counters.
        let c = dev.counters();
        assert_eq!(
            kernels.iter().map(|k| k.warp_instructions).sum::<u64>(),
            c.warp_instructions
        );
        let t_sum: f64 = kernels.iter().map(|k| k.dur).sum();
        assert!((t_sum - c.cycles / dev.config().clock_hz).abs() <= 1e-12);
    }

    #[test]
    fn disabled_tracing_records_nothing_and_take_is_none() {
        let dev = Device::a100();
        dev.kernel("k").items(32, 1.0).launch();
        assert!(!dev.tracing_enabled());
        assert!(dev.take_trace().is_none());
    }

    #[test]
    fn take_trace_disables_and_snapshot_does_not() {
        let dev = traced_device();
        dev.kernel("k").items(32, 1.0).launch();
        let snap = dev.trace_snapshot().unwrap();
        assert_eq!(snap.kernels().count(), 1);
        assert!(dev.tracing_enabled());
        let tr = dev.take_trace().unwrap();
        assert_eq!(tr, snap);
        assert!(!dev.tracing_enabled());
    }

    #[test]
    fn ring_capacity_bounds_events_and_counts_drops() {
        let dev = Device::a100();
        dev.enable_tracing_ring(2);
        for i in 0..5 {
            dev.kernel(if i % 2 == 0 { "a" } else { "b" })
                .items(32, 1.0)
                .launch();
        }
        let tr = dev.take_trace().unwrap();
        assert!(tr.events.len() <= 2, "capacity must bound retained events");
        assert_eq!(
            tr.events.len() as u64 + tr.dropped_events(),
            5,
            "every launch is either retained or counted as dropped"
        );
        // The retained suffix is the *newest* events: flight-recorder
        // semantics, the oldest go first.
        let last = tr.kernels().last().unwrap();
        assert!(last.start > 0.0, "the first (oldest) launch was dropped");
    }

    #[test]
    fn ring_capacity_one_never_underflows() {
        let dev = Device::a100();
        dev.enable_tracing_ring(1);
        dev.kernel("a").items(32, 1.0).launch();
        dev.kernel("b").items(32, 1.0).launch();
        let tr = dev.take_trace().unwrap();
        assert_eq!(tr.events.len(), 1);
        assert_eq!(tr.dropped_events(), 1);
    }

    #[test]
    fn lifecycle_events_round_trip_both_exports() {
        let dev = traced_device();
        dev.trace_lifecycle(
            Some(3),
            LifecycleStage::Arrival,
            crate::SimTime::from_secs(1e-6),
            crate::SimTime::from_secs(1e-6),
        );
        dev.trace_lifecycle(
            Some(3),
            LifecycleStage::Queued,
            crate::SimTime::from_secs(1e-6),
            crate::SimTime::from_secs(3e-6),
        );
        dev.trace_lifecycle(
            None,
            LifecycleStage::Rejected,
            crate::SimTime::from_secs(2e-6),
            crate::SimTime::from_secs(2e-6),
        );
        let tr = dev.take_trace().unwrap();
        assert_eq!(tr.lifecycles().count(), 3);

        // Chrome export: per-query lifecycle track, spans as "X" with a
        // duration, instants as "i".
        let chrome = chrome_trace_json(std::slice::from_ref(&tr));
        assert!(chrome.contains("\"q3 lifecycle\""), "per-query track name");
        assert!(chrome.contains("\"cat\":\"lifecycle\""));
        let event_of = |name: &str| {
            chrome
                .lines()
                .find(|l| l.contains(&format!("\"name\":\"{name}\"")))
                .unwrap_or_else(|| panic!("chrome export has a '{name}' event"))
                .to_string()
        };
        let queued = event_of("queued");
        assert!(queued.contains("\"ph\":\"X\"") && queued.contains("\"dur\":"));
        assert!(event_of("arrival").contains("\"ph\":\"i\""));
        assert!(event_of("rejected").contains("\"ph\":\"i\""));

        // JSONL export: one lifecycle object per event, query omitted when
        // none was assigned.
        let lines = jsonl(&[tr]);
        let life: Vec<&str> = lines
            .lines()
            .filter(|l| l.contains("\"type\":\"lifecycle\""))
            .collect();
        assert_eq!(life.len(), 3);
        assert!(life[0].contains("\"query\":3"));
        assert!(life[1].contains("\"stage\":\"queued\""));
        assert!(!life[2].contains("\"query\""), "query: None is omitted");
    }

    #[test]
    fn lifecycle_stage_spans_vs_instants() {
        assert!(LifecycleStage::Queued.is_span());
        assert!(LifecycleStage::ExecSlice.is_span());
        assert!(LifecycleStage::Interference.is_span());
        for s in [
            LifecycleStage::Arrival,
            LifecycleStage::Admitted,
            LifecycleStage::Shed,
            LifecycleStage::Rejected,
            LifecycleStage::PlanCacheHit,
            LifecycleStage::PlanCacheMiss,
            LifecycleStage::Complete,
        ] {
            assert!(!s.is_span(), "{} is an instant", s.as_str());
        }
    }

    #[test]
    fn mem_samples_coalesce_within_one_instant() {
        let dev = traced_device();
        {
            let _a = dev.alloc::<i64>(1 << 10, "a");
            let _b = dev.alloc::<i64>(1 << 10, "b");
        } // both freed at the same instant too
        dev.kernel("k").items(32, 1.0).launch();
        let _c = dev.alloc::<i32>(64, "c");
        let tr = dev.take_trace().unwrap();
        let mem: Vec<_> = tr.mem_samples().collect();
        // One coalesced sample at t=0 (alloc+alloc+free+free), one after
        // the kernel advanced the clock.
        assert_eq!(mem.len(), 2);
        assert_eq!(mem[0].ts, 0.0);
        assert_eq!(mem[0].current_bytes, 0);
        assert_eq!(mem[0].high_water_bytes, 2 * 8 * 1024);
        assert!(mem[1].ts > 0.0);
        assert_eq!(mem[1].current_bytes, 256);
    }

    #[test]
    fn spans_record_retroactively() {
        let dev = traced_device();
        let t0 = dev.elapsed();
        dev.kernel("k").items(32, 1.0).launch();
        let t1 = dev.elapsed();
        dev.trace_span(SpanCat::Phase, "match_find", t0, t1);
        let tr = dev.take_trace().unwrap();
        let spans: Vec<_> = tr.spans().collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].cat, SpanCat::Phase);
        assert_eq!(spans[0].name, "match_find");
        assert_eq!(spans[0].start, 0.0);
        assert_eq!(spans[0].end, t1.secs());
    }

    #[test]
    fn reset_stats_leaves_a_marker() {
        let dev = traced_device();
        dev.kernel("k").items(32, 1.0).launch();
        let before = dev.elapsed().secs();
        dev.reset_stats();
        let tr = dev.take_trace().unwrap();
        let marker = tr
            .events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Instant(i) => Some(i),
                _ => None,
            })
            .expect("reset marker");
        assert_eq!(marker.name, "reset_stats");
        assert_eq!(marker.ts, before);
    }

    #[test]
    fn chrome_export_is_valid_shape() {
        let dev = traced_device();
        let buf = dev.alloc::<i32>(1 << 10, "x");
        dev.kernel("gather")
            .warp_loads(4, (0..buf.len()).map(|i| buf.addr_of(i)))
            .launch();
        let t1 = dev.elapsed();
        dev.trace_span(SpanCat::Operator, "probe \"quoted\"", SimTime::ZERO, t1);
        let tr = dev.take_trace().unwrap();
        let json = chrome_trace_json(&[tr]);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"gather\""));
        assert!(json.contains("probe \\\"quoted\\\""));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"tid\":2"));
        assert!(json.trim_end().ends_with("]}"));
        // Every X event carries ts and dur.
        for line in json.lines().filter(|l| l.contains("\"ph\":\"X\"")) {
            assert!(line.contains("\"ts\":"), "missing ts: {line}");
            assert!(line.contains("\"dur\":"), "missing dur: {line}");
        }
    }

    #[test]
    fn jsonl_has_one_object_per_event() {
        let dev = traced_device();
        dev.kernel("k").items(32, 1.0).launch();
        dev.trace_span(SpanCat::Join, "phj_um", SimTime::ZERO, dev.elapsed());
        let tr = dev.take_trace().unwrap();
        let n_events = tr.events.len();
        let text = jsonl(&[tr]);
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), n_events);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"device\":"));
        }
    }

    #[test]
    fn kernel_summary_aggregates_by_name() {
        let dev = traced_device();
        for _ in 0..3 {
            dev.kernel("small").items(32, 1.0).launch();
        }
        dev.kernel("big")
            .items(1 << 22, 4.0)
            .seq_read_bytes(1 << 28)
            .launch();
        let tr = dev.take_trace().unwrap();
        let stats = kernel_stats(std::slice::from_ref(&tr));
        assert_eq!(stats.len(), 2);
        // Sorted by total time descending: the big streaming kernel first.
        assert_eq!(stats[0].name, "big");
        assert_eq!(stats[0].launches, 1);
        assert_eq!(stats[1].name, "small");
        assert_eq!(stats[1].launches, 3);
        let table = render_kernel_summary(&[tr]);
        assert!(table.contains("kernel"));
        assert!(table.contains("big"));
        assert!(table.contains("small"));
        assert!(table.contains("256.00 MiB"));
    }

    #[test]
    fn kernel_summary_stays_aligned_past_a_gigabyte() {
        let dev = traced_device();
        // > 1e9 bytes of traffic in one kernel, plus a tiny one: the DRAM
        // column must hold both without pushing its row wider.
        dev.kernel("huge")
            .items(1 << 22, 4.0)
            .seq_read_bytes(3 << 30)
            .launch();
        dev.kernel("tiny")
            .items(32, 1.0)
            .seq_read_bytes(64)
            .launch();
        let tr = dev.take_trace().unwrap();
        let table = render_kernel_summary(&[tr]);
        assert!(table.contains("3.00 GiB"), "GiB units expected: {table}");
        let widths: Vec<usize> = table.lines().map(|l| l.chars().count()).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "rows must stay column-aligned: {table}"
        );
        // Sectors/request prints to two decimals, like the plan tree.
        assert!(table.contains("0.00"));
    }
}
