//! A direct-mapped sector cache standing in for the GPU's L2.
//!
//! The model only sees *gather-style* traffic: streaming reads/writes bypass
//! it (hardware streams with an evict-first policy, so they neither benefit
//! from nor meaningfully pollute L2 for our purposes). This is what makes
//! small-relation unclustered gathers cheap — the paper observes exactly this
//! on TPC-H J3 — while large-relation gathers miss constantly.

/// Direct-mapped, sector-granular (32 B) cache model.
pub struct L2Cache {
    /// Tag per set; `u64::MAX` marks an empty set.
    tags: Vec<u64>,
    mask: u64,
}

impl L2Cache {
    /// Create a cache of `capacity_bytes`, rounded down to a power of two
    /// number of 32-byte sectors.
    pub fn new(capacity_bytes: u64) -> Self {
        let sectors = (capacity_bytes / crate::SECTOR_BYTES).max(1);
        let sets = sectors.next_power_of_two() >> if sectors.is_power_of_two() { 0 } else { 1 };
        L2Cache {
            tags: vec![u64::MAX; sets as usize],
            mask: sets - 1,
        }
    }

    /// Number of sets (== sectors of capacity).
    pub fn sets(&self) -> usize {
        self.tags.len()
    }

    /// Access one sector; returns `true` on hit. Misses install the sector.
    #[inline]
    pub fn access(&mut self, sector: u64) -> bool {
        let idx = (sector & self.mask) as usize;
        // Safety note: idx is masked to the table size, so indexing cannot
        // panic; plain indexing keeps the bounds check visible to LLVM.
        let tag = &mut self.tags[idx];
        if *tag == sector {
            true
        } else {
            *tag = sector;
            false
        }
    }

    /// Invalidate everything.
    pub fn clear(&mut self) {
        self.tags.fill(u64::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_power_of_two_sectors() {
        let c = L2Cache::new(40 << 20);
        assert!(c.sets().is_power_of_two());
        assert!(c.sets() <= (40 << 20) / 32);
        let small = L2Cache::new(33);
        assert_eq!(small.sets(), 1);
    }

    #[test]
    fn hit_after_miss() {
        let mut c = L2Cache::new(1 << 20);
        assert!(!c.access(42));
        assert!(c.access(42));
        c.clear();
        assert!(!c.access(42));
    }

    #[test]
    fn conflicting_sectors_evict() {
        let mut c = L2Cache::new(1 << 10); // 32 sets
        let sets = c.sets() as u64;
        assert!(!c.access(7));
        assert!(!c.access(7 + sets)); // maps to the same set
        assert!(!c.access(7)); // was evicted
    }

    #[test]
    fn working_set_within_capacity_all_hits_second_round() {
        let mut c = L2Cache::new(1 << 14); // 512 sets
        let n = c.sets() as u64;
        for s in 0..n {
            assert!(!c.access(s));
        }
        for s in 0..n {
            assert!(c.access(s), "sector {s} should still be resident");
        }
    }
}
