//! A direct-mapped sector cache standing in for the GPU's L2.
//!
//! The model only sees *gather-style* traffic: streaming reads/writes bypass
//! it (hardware streams with an evict-first policy, so they neither benefit
//! from nor meaningfully pollute L2 for our purposes). This is what makes
//! small-relation unclustered gathers cheap — the paper observes exactly this
//! on TPC-H J3 — while large-relation gathers miss constantly.

/// Direct-mapped, sector-granular (32 B) cache model.
pub struct L2Cache {
    /// Tag per set; `u64::MAX` marks an empty set.
    tags: Vec<u64>,
    mask: u64,
}

impl L2Cache {
    /// Create a cache of `capacity_bytes`, rounded down to a power of two
    /// number of 32-byte sectors.
    pub fn new(capacity_bytes: u64) -> Self {
        let sectors = (capacity_bytes / crate::SECTOR_BYTES).max(1);
        let sets = sectors.next_power_of_two() >> if sectors.is_power_of_two() { 0 } else { 1 };
        L2Cache {
            tags: vec![u64::MAX; sets as usize],
            mask: sets - 1,
        }
    }

    /// Number of sets (== sectors of capacity).
    pub fn sets(&self) -> usize {
        self.tags.len()
    }

    /// Access one sector; returns `true` on hit. Misses install the sector.
    #[inline]
    pub fn access(&mut self, sector: u64) -> bool {
        let idx = (sector & self.mask) as usize;
        // Safety note: idx is masked to the table size, so indexing cannot
        // panic; plain indexing keeps the bounds check visible to LLVM.
        let tag = &mut self.tags[idx];
        if *tag == sector {
            true
        } else {
            *tag = sector;
            false
        }
    }

    /// Invalidate everything.
    pub fn clear(&mut self) {
        self.tags.fill(u64::MAX);
    }

    /// The set index `sector` maps to.
    #[inline]
    pub fn set_of(&self, sector: u64) -> usize {
        (sector & self.mask) as usize
    }

    /// The set-index mask, for callers that need to route sectors to sets
    /// while the tag array is mutably borrowed by [`L2Cache::shards`].
    #[inline]
    pub(crate) fn set_mask(&self) -> u64 {
        self.mask
    }

    /// Split the cache into at most `n` shards, each owning a contiguous,
    /// disjoint range of sets. Returns the per-shard set count (so callers
    /// can route a set index to its shard as `set / chunk`) and the shards.
    ///
    /// Because the cache is direct-mapped, an access only ever reads or
    /// writes its own set: probing the shards concurrently produces the
    /// same hit/miss outcomes as the sequential [`L2Cache::access`] stream,
    /// provided each shard sees its accesses in the original relative order.
    pub(crate) fn shards(&mut self, n: usize) -> (usize, Vec<L2Shard<'_>>) {
        let chunk = self.tags.len().div_ceil(n.max(1)).max(1);
        let mut shards = Vec::with_capacity(n);
        let mut base = 0;
        let mut rest: &mut [u64] = &mut self.tags;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            shards.push(L2Shard { tags: head, base });
            base += take;
            rest = tail;
        }
        (chunk, shards)
    }
}

/// A contiguous range of sets carved out of an [`L2Cache`] for one probe
/// thread; see [`L2Cache::shards`].
pub(crate) struct L2Shard<'a> {
    tags: &'a mut [u64],
    base: usize,
}

impl L2Shard<'_> {
    /// Access `sector`, whose set index `set` must lie in this shard's
    /// range; returns `true` on hit, installing on miss — identical
    /// semantics to [`L2Cache::access`].
    #[inline]
    pub(crate) fn access(&mut self, sector: u64, set: usize) -> bool {
        let tag = &mut self.tags[set - self.base];
        if *tag == sector {
            true
        } else {
            *tag = sector;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_power_of_two_sectors() {
        let c = L2Cache::new(40 << 20);
        assert!(c.sets().is_power_of_two());
        assert!(c.sets() <= (40 << 20) / 32);
        let small = L2Cache::new(33);
        assert_eq!(small.sets(), 1);
    }

    #[test]
    fn hit_after_miss() {
        let mut c = L2Cache::new(1 << 20);
        assert!(!c.access(42));
        assert!(c.access(42));
        c.clear();
        assert!(!c.access(42));
    }

    #[test]
    fn conflicting_sectors_evict() {
        let mut c = L2Cache::new(1 << 10); // 32 sets
        let sets = c.sets() as u64;
        assert!(!c.access(7));
        assert!(!c.access(7 + sets)); // maps to the same set
        assert!(!c.access(7)); // was evicted
    }

    #[test]
    fn sharded_probing_matches_sequential() {
        // Replay the same access stream through a sequential cache and a
        // sharded one; every outcome must agree.
        let stream: Vec<u64> = (0..4096u64).map(|i| (i * 2654435761) % 1500).collect();
        let mut seq = L2Cache::new(1 << 12); // 128 sets
        let expected: Vec<bool> = stream.iter().map(|&s| seq.access(s)).collect();

        let mut sharded = L2Cache::new(1 << 12);
        let mut got = vec![false; stream.len()];
        let (chunk, mut shards) = sharded.shards(4);
        // Per shard, accesses keep their original relative order.
        for (i, &s) in stream.iter().enumerate() {
            let set = seq.set_of(s); // same geometry as `sharded`
            got[i] = shards[set / chunk].access(s, set);
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn shards_cover_all_sets_once() {
        let mut c = L2Cache::new(1 << 14); // 512 sets
        for n in [1, 3, 4, 7, 512, 600] {
            let (chunk, shards) = c.shards(n);
            let covered: usize = shards.iter().map(|s| s.tags.len()).sum();
            assert_eq!(covered, 512, "n={n}");
            assert!(shards.len() <= n.max(1));
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.base, i * chunk);
            }
        }
    }

    #[test]
    fn working_set_within_capacity_all_hits_second_round() {
        let mut c = L2Cache::new(1 << 14); // 512 sets
        let n = c.sets() as u64;
        for s in 0..n {
            assert!(!c.access(s));
        }
        for s in 0..n {
            assert!(c.access(s), "sector {s} should still be resident");
        }
    }
}
