//! Device-memory ledger and RAII buffers.
//!
//! Every intermediate a join or aggregation allocates goes through
//! [`DeviceBuffer`], so peak usage (Table 5 of the paper, and the analytic
//! model of Tables 1-2) falls out of the simulation for free. Buffers also
//! carry a fake, monotonically increasing base address so the L2 model can
//! distinguish sectors of different buffers.

use crate::{Device, Element};
use serde::{Deserialize, Serialize};

/// CUDA's `cudaMalloc` alignment.
const ALLOC_ALIGN: u64 = 256;

/// Snapshot of device-memory usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemReport {
    /// Bytes currently allocated.
    pub current_bytes: u64,
    /// High-water mark since creation or the last [`Device::reset_peak_mem`].
    pub peak_bytes: u64,
    /// Number of live allocations.
    pub live_allocations: u64,
}

/// Why a [`MemLedger::try_alloc`] could not be satisfied; the caller turns
/// this into the appropriate failure (device OOM panic or typed
/// [`crate::BudgetError`]).
pub(crate) struct AllocFailure {
    /// Requested bytes after alignment rounding.
    pub(crate) requested_bytes: u64,
    /// Bytes the ledger already had in use.
    pub(crate) in_use_bytes: u64,
}

#[derive(Default)]
pub(crate) struct MemLedger {
    next_addr: u64,
    current: u64,
    peak: u64,
    live: u64,
}

impl MemLedger {
    /// A ledger whose address space starts at `base` — per-query sub-ledgers
    /// all start at [`crate::QUERY_ADDR_BASE`], disjoint from the base
    /// ledger's low addresses but deliberately identical to each other.
    pub(crate) fn with_base(base: u64) -> Self {
        MemLedger {
            next_addr: base,
            ..MemLedger::default()
        }
    }

    /// Reserve `bytes` if they fit in `capacity`, returning the base
    /// address. A rejection leaves the ledger untouched (an unwound join
    /// must balance back to zero).
    pub(crate) fn try_alloc(&mut self, bytes: u64, capacity: u64) -> Result<u64, AllocFailure> {
        let rounded = bytes.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        if self.current + rounded > capacity {
            return Err(AllocFailure {
                requested_bytes: rounded,
                in_use_bytes: self.current,
            });
        }
        // Mirror of free(): zero-byte allocations charge nothing and are
        // not counted live (their drop is a no-op), but still receive a
        // distinct address range.
        if rounded > 0 {
            self.current += rounded;
            self.live += 1;
            self.peak = self.peak.max(self.current);
        }
        let addr = self.next_addr;
        self.next_addr += rounded.max(ALLOC_ALIGN);
        Ok(addr)
    }

    /// Reserve `bytes` and return the base address; panics on OOM.
    pub(crate) fn alloc(&mut self, bytes: u64, capacity: u64, label: &str) -> u64 {
        match self.try_alloc(bytes, capacity) {
            Ok(addr) => addr,
            Err(f) => panic!(
                "device out of memory allocating {bytes} bytes for '{label}': \
                 {} in use of {capacity} capacity",
                f.in_use_bytes + f.requested_bytes
            ),
        }
    }

    pub(crate) fn free(&mut self, bytes: u64) {
        // Zero-charged drops (aliasing views, empty buffers) never entered
        // the ledger, so freeing them must not disturb the live count.
        if bytes == 0 {
            return;
        }
        let rounded = bytes.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        self.current = self.current.saturating_sub(rounded);
        self.live = self.live.saturating_sub(1);
    }

    pub(crate) fn reset_peak(&mut self) {
        self.peak = self.current;
    }

    pub(crate) fn report(&self) -> MemReport {
        MemReport {
            current_bytes: self.current,
            peak_bytes: self.peak,
            live_allocations: self.live,
        }
    }
}

/// A typed allocation in simulated device memory.
///
/// Dereferences to a slice for host-side algorithm execution; the memory
/// ledger is charged on construction and credited on drop. The buffer's
/// *simulated address* ([`DeviceBuffer::addr_of`]) feeds the coalescing and
/// L2 models.
pub struct DeviceBuffer<T: Element> {
    data: Vec<T>,
    base_addr: u64,
    /// Bytes charged to the ledger at construction; freed exactly once on
    /// drop even if the data vector is moved out via [`DeviceBuffer::into_vec`].
    charged_bytes: u64,
    label: &'static str,
    dev: Device,
}

impl<T: Element> DeviceBuffer<T> {
    pub(crate) fn from_vec(dev: Device, data: Vec<T>, label: &'static str) -> Self {
        let bytes = data.len() as u64 * T::SIZE;
        let base_addr = match dev.query {
            None => {
                let mut guard = dev.inner.state.lock();
                let st = &mut *guard;
                let cap = dev.inner.config.global_mem_bytes;
                let addr = st.mem.alloc(bytes, cap, label);
                let current = st.mem.report().current_bytes;
                let mut dropped = 0;
                if let Some(tr) = st.trace.as_deref_mut() {
                    dropped = tr.push_mem(st.clock, current);
                }
                crate::note_trace_drops(&mut st.metrics, dropped);
                // Only the base ledger feeds the metrics occupancy series:
                // base allocations are program-ordered, while query-handle
                // allocations race co-tenant sample points (their peaks are
                // reported per query instead).
                if let Some(m) = st.metrics.as_deref_mut() {
                    m.on_mem(current);
                }
                addr
            }
            Some(qid) => {
                // Query allocations charge the query's private sub-ledger,
                // capped at its reserved budget. Exceeding the budget raises
                // a *typed* panic (`sim::BudgetError`) that a scheduler can
                // catch and convert, leaving co-tenants untouched — the base
                // ledger and every other query's sub-ledger never move.
                let mut guard = dev.inner.state.lock();
                let q = &mut guard.queries[qid as usize];
                let budget = q.budget_bytes;
                match q.mem.try_alloc(bytes, budget) {
                    Ok(addr) => {
                        let clock = q.clock;
                        let current = q.mem.report().current_bytes;
                        let mut dropped = 0;
                        if let Some(tr) = q.trace.as_deref_mut() {
                            dropped = tr.push_mem(clock, current);
                        }
                        crate::note_trace_drops(&mut guard.metrics, dropped);
                        addr
                    }
                    Err(f) => {
                        let err = crate::BudgetError {
                            query: qid,
                            budget_bytes: budget,
                            requested_bytes: f.requested_bytes,
                            in_use_bytes: f.in_use_bytes,
                            label: label.to_string(),
                        };
                        drop(guard);
                        // resume_unwind rather than panic_any: budget
                        // overruns are typed control flow the scheduler
                        // catches per tenant, not programmer errors — skip
                        // the default panic hook's stderr noise.
                        std::panic::resume_unwind(Box::new(err));
                    }
                }
            }
        };
        DeviceBuffer {
            data,
            base_addr,
            charged_bytes: bytes,
            label,
            dev,
        }
    }

    pub(crate) fn zeroed(dev: Device, len: usize, label: &'static str) -> Self {
        Self::from_vec(dev, vec![T::default(); len], label)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes as charged to the ledger (before alignment rounding).
    pub fn size_bytes(&self) -> u64 {
        self.data.len() as u64 * T::SIZE
    }

    /// Simulated device address of element `i`.
    #[inline]
    pub fn addr_of(&self, i: usize) -> u64 {
        self.base_addr + i as u64 * T::SIZE
    }

    /// The label given at allocation time (for debugging OOMs).
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// The device this buffer lives on.
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// View as a host slice (the simulator executes on the host).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable host view.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the buffer, returning the host vector. The ledger is credited
    /// as if the buffer were freed.
    pub fn into_vec(mut self) -> Vec<T> {
        std::mem::take(&mut self.data)
    }

    /// A zero-cost aliasing view: the same simulated address range, no
    /// additional ledger charge, no kernel traffic. This models passing a
    /// column pointer between operators (the host data is duplicated only
    /// because the simulator has no shared ownership; the device model —
    /// addresses, L2 behaviour, memory accounting — is identical). Callers
    /// must not mutate either alias afterwards.
    pub fn alias(&self) -> DeviceBuffer<T> {
        DeviceBuffer {
            data: self.data.clone(),
            base_addr: self.base_addr,
            charged_bytes: 0,
            label: self.label,
            dev: self.dev.clone(),
        }
    }
}

impl<T: Element> std::ops::Deref for DeviceBuffer<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T: Element> std::ops::DerefMut for DeviceBuffer<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T: Element> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        let mut guard = self.dev.inner.state.lock();
        let st = &mut *guard;
        match self.dev.query {
            None => {
                st.mem.free(self.charged_bytes);
                // Zero-charged drops (aliases, empty buffers) never moved
                // the ledger, so they produce no timeline sample either.
                if self.charged_bytes > 0 {
                    let current = st.mem.report().current_bytes;
                    let mut dropped = 0;
                    if let Some(tr) = st.trace.as_deref_mut() {
                        dropped = tr.push_mem(st.clock, current);
                    }
                    crate::note_trace_drops(&mut st.metrics, dropped);
                    if let Some(m) = st.metrics.as_deref_mut() {
                        m.on_mem(current);
                    }
                }
            }
            // `get_mut`: a query buffer may legally outlive its scheduling
            // session (the next sched_start clears the per-query slots), in
            // which case the credit has nowhere to go and is dropped.
            Some(qid) => {
                if let Some(q) = st.queries.get_mut(qid as usize) {
                    q.mem.free(self.charged_bytes);
                    if self.charged_bytes > 0 {
                        let clock = q.clock;
                        let current = q.mem.report().current_bytes;
                        let mut dropped = 0;
                        if let Some(tr) = q.trace.as_deref_mut() {
                            dropped = tr.push_mem(clock, current);
                        }
                        crate::note_trace_drops(&mut st.metrics, dropped);
                    }
                }
            }
        }
    }
}

impl<T: Element> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("label", &self.label)
            .field("len", &self.data.len())
            .field("base_addr", &self.base_addr)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::Device;

    #[test]
    fn ledger_tracks_current_and_peak() {
        let dev = Device::a100();
        let a = dev.alloc::<i32>(1024, "a");
        let r1 = dev.mem_report();
        assert_eq!(r1.current_bytes, 4096);
        assert_eq!(r1.live_allocations, 1);
        {
            let _b = dev.alloc::<i64>(1024, "b");
            let r2 = dev.mem_report();
            assert_eq!(r2.current_bytes, 4096 + 8192);
            assert_eq!(r2.peak_bytes, 4096 + 8192);
        }
        let r3 = dev.mem_report();
        assert_eq!(r3.current_bytes, 4096);
        assert_eq!(r3.peak_bytes, 4096 + 8192, "peak survives frees");
        drop(a);
        assert_eq!(dev.mem_report().current_bytes, 0);
        assert_eq!(dev.mem_report().live_allocations, 0);
    }

    #[test]
    fn reset_peak_rebases_to_current() {
        let dev = Device::a100();
        {
            let _a = dev.alloc::<i64>(1 << 20, "a");
        }
        assert!(dev.mem_report().peak_bytes > 0);
        dev.reset_peak_mem();
        assert_eq!(dev.mem_report().peak_bytes, 0);
    }

    #[test]
    fn addresses_are_disjoint_and_typed() {
        let dev = Device::a100();
        let a = dev.alloc::<i32>(16, "a");
        let b = dev.alloc::<i64>(16, "b");
        assert_eq!(a.addr_of(1) - a.addr_of(0), 4);
        assert_eq!(b.addr_of(1) - b.addr_of(0), 8);
        // Buffers never overlap.
        assert!(a.addr_of(15) < b.addr_of(0) || b.addr_of(15) < a.addr_of(0));
    }

    #[test]
    fn alias_drop_leaves_ledger_untouched() {
        let dev = Device::a100();
        let a = dev.alloc::<i32>(1024, "a");
        let before = dev.mem_report();
        assert_eq!(before.live_allocations, 1);
        {
            let view = a.alias();
            // The alias shares the address range and charges nothing.
            assert_eq!(view.addr_of(0), a.addr_of(0));
            assert_eq!(dev.mem_report(), before);
        }
        // Regression: dropping the alias used to decrement live_allocations.
        assert_eq!(dev.mem_report(), before);
        drop(a);
        assert_eq!(dev.mem_report().live_allocations, 0);
        assert_eq!(dev.mem_report().current_bytes, 0);
    }

    #[test]
    fn zero_length_buffers_balance() {
        let dev = Device::a100();
        {
            let empty = dev.alloc::<i32>(0, "empty");
            assert!(empty.is_empty());
            // Nothing charged, nothing counted live.
            assert_eq!(dev.mem_report().live_allocations, 0);
            assert_eq!(dev.mem_report().current_bytes, 0);
        }
        assert_eq!(dev.mem_report().live_allocations, 0);
    }

    #[test]
    fn alignment_rounds_small_allocations_up() {
        let dev = Device::a100();
        let _a = dev.alloc::<i32>(1, "tiny");
        assert_eq!(dev.mem_report().current_bytes, 256);
    }

    #[test]
    #[should_panic(expected = "device out of memory")]
    fn oom_panics() {
        let mut cfg = crate::DeviceConfig::a100();
        cfg.global_mem_bytes = 1024;
        let dev = Device::new(cfg);
        let _a = dev.alloc::<i64>(1024, "too big");
    }

    #[test]
    fn upload_and_into_vec_roundtrip() {
        let dev = Device::a100();
        let buf = dev.upload(vec![3i32, 1, 2], "v");
        assert_eq!(buf.as_slice(), &[3, 1, 2]);
        let v = buf.into_vec();
        assert_eq!(v, vec![3, 1, 2]);
        assert_eq!(dev.mem_report().current_bytes, 0);
    }
}
