//! The element trait implemented by every type that can live in device
//! memory: fixed size, plain-old-data, and radix-convertible.

/// A value type storable in a [`crate::DeviceBuffer`].
///
/// The paper's workloads use 4-byte and 8-byte integers (Section 5.2.5);
/// strings are dictionary-encoded into integers before joining (Section 5.3).
/// Single-byte values exist only as predicate masks (one byte per row,
/// written by expression kernels and consumed by stream compaction).
pub trait Element: Copy + Clone + Default + Send + Sync + std::fmt::Debug + 'static {
    /// Size of one element in bytes, as charged to the memory model.
    const SIZE: u64;

    /// A radix/ordering-preserving mapping into `u64`, used by the radix
    /// partitioner and sorter. For signed types the sign bit is flipped so
    /// that unsigned radix order equals signed numeric order.
    fn to_radix(self) -> u64;

    /// Inverse of [`Element::to_radix`].
    fn from_radix(bits: u64) -> Self;
}

impl Element for u8 {
    const SIZE: u64 = 1;
    fn to_radix(self) -> u64 {
        self as u64
    }
    fn from_radix(bits: u64) -> Self {
        bits as u8
    }
}

impl Element for u32 {
    const SIZE: u64 = 4;
    fn to_radix(self) -> u64 {
        self as u64
    }
    fn from_radix(bits: u64) -> Self {
        bits as u32
    }
}

impl Element for i32 {
    const SIZE: u64 = 4;
    fn to_radix(self) -> u64 {
        (self as u32 ^ 0x8000_0000) as u64
    }
    fn from_radix(bits: u64) -> Self {
        (bits as u32 ^ 0x8000_0000) as i32
    }
}

impl Element for u64 {
    const SIZE: u64 = 8;
    fn to_radix(self) -> u64 {
        self
    }
    fn from_radix(bits: u64) -> Self {
        bits
    }
}

impl Element for i64 {
    const SIZE: u64 = 8;
    fn to_radix(self) -> u64 {
        (self as u64) ^ 0x8000_0000_0000_0000
    }
    fn from_radix(bits: u64) -> Self {
        (bits ^ 0x8000_0000_0000_0000) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_roundtrip() {
        for v in [i32::MIN, -7, 0, 7, i32::MAX] {
            assert_eq!(i32::from_radix(v.to_radix()), v);
        }
        for v in [i64::MIN, -7, 0, 7, i64::MAX] {
            assert_eq!(i64::from_radix(v.to_radix()), v);
        }
        for v in [0u32, 1, u32::MAX] {
            assert_eq!(u32::from_radix(v.to_radix()), v);
        }
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_radix(v.to_radix()), v);
        }
    }

    #[test]
    fn radix_order_matches_numeric_order_for_signed() {
        let mut vals = vec![-5i32, 3, -1, 0, i32::MIN, i32::MAX, 2];
        let mut by_radix = vals.clone();
        vals.sort();
        by_radix.sort_by_key(|v| v.to_radix());
        assert_eq!(vals, by_radix);

        let mut vals = vec![-5i64, 3, -1, 0, i64::MIN, i64::MAX, 2];
        let mut by_radix = vals.clone();
        vals.sort();
        by_radix.sort_by_key(|v| v.to_radix());
        assert_eq!(vals, by_radix);
    }

    #[test]
    fn sizes() {
        assert_eq!(<u8 as Element>::SIZE, 1);
        assert_eq!(<i32 as Element>::SIZE, 4);
        assert_eq!(<u32 as Element>::SIZE, 4);
        assert_eq!(<i64 as Element>::SIZE, 8);
        assert_eq!(<u64 as Element>::SIZE, 8);
    }

    #[test]
    fn u8_radix_roundtrip() {
        for v in [0u8, 1, 127, 255] {
            assert_eq!(u8::from_radix(v.to_radix()), v);
        }
    }
}
