//! Device configurations mirroring Table 3 of the paper, plus the cost-model
//! calibration constants derived from its microbenchmarks.

use serde::{Deserialize, Serialize};

/// Static description of a simulated GPU plus cost-model calibration.
///
/// The hardware columns come from Table 3 of the paper; the calibration
/// fields are fitted so that the simulator reproduces the microarchitectural
/// measurements of Table 4 and the speedups of Figure 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Human-readable device name, e.g. `"A100"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// Warp schedulers per SM (each can issue one warp instruction/cycle).
    pub warp_schedulers_per_sm: u32,
    /// Core clock, Hz.
    pub clock_hz: f64,
    /// Theoretical DRAM bandwidth in bytes/second.
    pub mem_bandwidth: f64,
    /// Fraction of theoretical bandwidth achievable by well-formed streaming
    /// kernels (empirically ~0.85-0.9 on Ampere).
    pub bandwidth_efficiency: f64,
    /// L2 cache size in bytes.
    pub l2_bytes: u64,
    /// L1 cache size per SM in bytes (informational; the L1 is not modeled).
    pub l1_bytes: u64,
    /// Maximum shared memory configurable per SM, bytes. Partitioned hash
    /// joins size their partitions against this.
    pub shared_mem_bytes: u64,
    /// Global memory capacity in bytes. Allocations beyond this fail.
    pub global_mem_bytes: u64,
    /// Maximum radix bits a single RADIX-PARTITION pass can produce
    /// (8 on Ampere, i.e. 256 partitions — see Section 2.3).
    pub max_radix_bits_per_pass: u32,
    /// Fixed per-kernel launch overhead, seconds.
    pub kernel_launch_overhead: f64,
    /// Latency-bound penalty applied to poorly coalesced DRAM sectors:
    /// effective cost per sector is `1 + penalty * (spr/ideal - 1)` where
    /// `spr` is the measured sectors-per-request. Calibrated so the
    /// unclustered/clustered gather cycle ratio matches Table 4 (~8.5x).
    pub uncoalesced_penalty: f64,
    /// L2 cache bandwidth in bytes/second; gather sectors that hit in L2
    /// are charged against this instead of DRAM bandwidth.
    pub l2_bandwidth: f64,
    /// Cycles for which an atomic RMW to a *contended* address occupies the
    /// L2 atomic unit; the hottest address serializes at this rate.
    pub atomic_serialize_cycles: f64,
    /// Baseline throughput cost of an uncontended global atomic, in warp
    /// instructions charged per atomic.
    pub atomic_instr_cost: f64,
    /// Host threads used to *simulate* warp traffic (this is a property of
    /// the machine running the simulator, not of the modeled GPU). `1`
    /// selects the sequential reference path; any other value produces
    /// bit-identical counters and times via the set-sharded L2 (see
    /// `kernel.rs`). Defaults to the host's available parallelism.
    pub host_threads: usize,
}

/// Default for [`DeviceConfig::host_threads`]: every host core.
fn default_host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl DeviceConfig {
    /// NVIDIA A100-SXM4-40GB (compute capability 8.0). Table 3, right column.
    pub fn a100() -> Self {
        DeviceConfig {
            name: "A100".to_string(),
            sms: 108,
            warp_schedulers_per_sm: 4,
            clock_hz: 1.095e9,
            mem_bandwidth: 1555.0e9,
            bandwidth_efficiency: 0.87,
            l2_bytes: 40 << 20,
            l1_bytes: 192 << 10,
            shared_mem_bytes: 164 << 10,
            global_mem_bytes: 40 << 30,
            max_radix_bits_per_pass: 8,
            kernel_launch_overhead: 3.0e-6,
            l2_bandwidth: 5.0e12,
            uncoalesced_penalty: 0.35,
            atomic_serialize_cycles: 2.0,
            atomic_instr_cost: 2.0,
            host_threads: default_host_threads(),
        }
    }

    /// NVIDIA GeForce RTX 3090 (compute capability 8.6). Table 3, left
    /// column. Less L2 (6 MB) and lower bandwidth make unclustered gathers
    /// comparatively more expensive, which is why Figure 7's GFTR speedups
    /// are larger on this part.
    pub fn rtx3090() -> Self {
        DeviceConfig {
            name: "RTX3090".to_string(),
            sms: 82,
            warp_schedulers_per_sm: 4,
            clock_hz: 1.395e9,
            mem_bandwidth: 936.0e9,
            bandwidth_efficiency: 0.85,
            l2_bytes: 6 << 20,
            l1_bytes: 128 << 10,
            shared_mem_bytes: 100 << 10,
            global_mem_bytes: 24 << 30,
            max_radix_bits_per_pass: 8,
            kernel_launch_overhead: 3.0e-6,
            l2_bandwidth: 2.2e12,
            uncoalesced_penalty: 0.35,
            atomic_serialize_cycles: 2.0,
            atomic_instr_cost: 2.0,
            host_threads: default_host_threads(),
        }
    }

    /// NVIDIA H100-SXM5-80GB (compute capability 9.0) — one hardware
    /// generation past the paper's machines; used by the device-sweep
    /// ablation to ask how the GFTR trade-off moves as caches and bandwidth
    /// grow together.
    pub fn h100() -> Self {
        DeviceConfig {
            name: "H100".to_string(),
            sms: 132,
            warp_schedulers_per_sm: 4,
            clock_hz: 1.98e9,
            mem_bandwidth: 3350.0e9,
            bandwidth_efficiency: 0.87,
            l2_bytes: 50 << 20,
            l1_bytes: 256 << 10,
            shared_mem_bytes: 228 << 10,
            global_mem_bytes: 80u64 << 30,
            max_radix_bits_per_pass: 8,
            kernel_launch_overhead: 3.0e-6,
            l2_bandwidth: 9.0e12,
            uncoalesced_penalty: 0.35,
            atomic_serialize_cycles: 2.0,
            atomic_instr_cost: 2.0,
            host_threads: default_host_threads(),
        }
    }

    /// Shrink the device's *capacity* parameters by `factor`, keeping its
    /// *rate* parameters — the paper-regime scaling used by the benchmark
    /// harness. Running 2^22-tuple workloads against an A100 whose L2 has
    /// been scaled by 32 puts data and cache in the same ratio as the
    /// paper's 2^27 tuples against the real 40 MB part, so cache-residency
    /// crossovers (and thus every GFUR-vs-GFTR shape) land in the same
    /// relative place. Absolute times shrink by ~`factor`; throughput
    /// comparisons and speedup factors are preserved.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "scaling factor must be >= 1");
        let div = |v: u64| ((v as f64 / factor).round() as u64).max(1);
        self.name = format!("{}/{factor:.0}", self.name);
        self.l2_bytes = div(self.l2_bytes);
        self.l1_bytes = div(self.l1_bytes);
        self.shared_mem_bytes = div(self.shared_mem_bytes);
        self.global_mem_bytes = div(self.global_mem_bytes);
        self.kernel_launch_overhead /= factor;
        self
    }

    /// Set the number of host threads the simulator uses for warp-traffic
    /// accounting. `1` is the sequential reference path; results are
    /// bit-identical for every value.
    pub fn with_host_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "host_threads must be at least 1");
        self.host_threads = threads;
        self
    }

    /// Peak warp-instruction issue rate across the whole chip, in
    /// instructions per second.
    pub fn issue_rate(&self) -> f64 {
        self.sms as f64 * self.warp_schedulers_per_sm as f64 * self.clock_hz
    }

    /// Achievable streaming bandwidth in bytes/second.
    pub fn effective_bandwidth(&self) -> f64 {
        self.mem_bandwidth * self.bandwidth_efficiency
    }

    /// L2 bandwidth in bytes/second.
    pub fn l2_bandwidth(&self) -> f64 {
        self.l2_bandwidth
    }

    /// Number of tuples of `tuple_bytes` each that fit in the shared-memory
    /// hash table of one thread block, leaving room for the table's ~50%
    /// fill-factor headroom. Used to size radix partitions.
    pub fn shared_mem_tuples(&self, tuple_bytes: u64) -> u64 {
        (self.shared_mem_bytes / 2) / tuple_bytes.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table3() {
        let a = DeviceConfig::a100();
        assert_eq!(a.sms, 108);
        assert_eq!(a.l2_bytes, 40 << 20);
        assert_eq!(a.global_mem_bytes, 40 << 30);
        let r = DeviceConfig::rtx3090();
        assert_eq!(r.sms, 82);
        assert_eq!(r.l2_bytes, 6 << 20);
        assert!(r.mem_bandwidth < a.mem_bandwidth);
        assert!(r.clock_hz > a.clock_hz); // 1395 MHz vs 1095 MHz
    }

    #[test]
    fn h100_extends_the_ampere_trend() {
        let h = DeviceConfig::h100();
        let a = DeviceConfig::a100();
        assert!(h.mem_bandwidth > 2.0 * a.mem_bandwidth);
        assert!(h.l2_bytes > a.l2_bytes);
        assert!(h.sms > a.sms);
    }

    #[test]
    fn scaled_shrinks_capacity_not_rates() {
        let a = DeviceConfig::a100();
        let s = DeviceConfig::a100().scaled(32.0);
        assert_eq!(s.l2_bytes, a.l2_bytes / 32);
        assert_eq!(s.shared_mem_bytes, a.shared_mem_bytes / 32);
        assert_eq!(s.mem_bandwidth, a.mem_bandwidth, "rates untouched");
        assert_eq!(s.clock_hz, a.clock_hz);
        assert!(s.name.contains("A100"));
    }

    #[test]
    fn host_threads_defaults_and_overrides() {
        assert!(DeviceConfig::a100().host_threads >= 1);
        let cfg = DeviceConfig::rtx3090().with_host_threads(4);
        assert_eq!(cfg.host_threads, 4);
        // Scaling a device leaves the host-side knob alone.
        assert_eq!(cfg.scaled(8.0).host_threads, 4);
    }

    #[test]
    fn derived_rates_positive() {
        let a = DeviceConfig::a100();
        assert!(a.issue_rate() > 1e11);
        assert!(a.effective_bandwidth() > 1.0e12);
        assert!(a.shared_mem_tuples(8) > 1000);
    }
}
