//! Service-level metrics on the simulated clock.
//!
//! `trace` observes one run in depth; this module observes the *system in
//! aggregate over time*: a [`MetricsRegistry`] of counters, gauges and
//! log-bucketed HDR-style latency histograms, plus a periodic [`Sampler`]
//! that snapshots utilization time-series (DRAM bandwidth, L2 hit rate,
//! memory-ledger occupancy, kernel-launch rate, busy fraction, queue depth)
//! on the *simulated* clock. The serving bench (`m02_serving`) derives its
//! whole latency-throughput curve from this subsystem.
//!
//! ## Determinism rules
//!
//! Everything here must be **bit-identical across `host_threads` and
//! re-runs**, which dictates three design rules:
//!
//! 1. **Integer instruments.** Histograms store `u64` tick counts in `u64`
//!    buckets and an integer sum; counters are `u64`. Worker threads may
//!    record in any host order — bucket increments and integer adds
//!    commute, so the exported bytes cannot depend on thread timing.
//!    (Gauges are last-writer-wins `f64`s: set them only from one thread or
//!    from turn-gated/driver-ordered code.)
//! 2. **The sampler advances only at kernel launches.** Launches through
//!    query handles are turn-gated, so their order and timestamps are a
//!    pure function of simulated state. Events that are *not* turn-gated —
//!    another tenant's allocation, a retire racing a co-tenant's kernel —
//!    are never sampled live: base-ledger occupancy is fed from the
//!    (program-ordered) base allocation path, and per-query lifecycle
//!    series (queue depth, in-flight tenants) are **post-computed at
//!    snapshot time** from deterministic simulated timestamps.
//! 3. **Export order is sorted, not insertion order.** Which thread first
//!    touches a metric family is a host race; exporters sort by
//!    (name, labels), so the text is identical regardless.
//!
//! The per-query **dual accounting** mirrors the scheduler's virtualized
//! handles: a kernel launched through a query handle bumps the device-wide
//! totals *and* `tenant_*`-labelled counters for its query id, exactly as
//! it already bumps both counter sets and both traces.
//!
//! ## Cadence
//!
//! The sampler emits at most one point per kernel launch: when a launch's
//! completion crosses one or more `interval` ticks, the window since the
//! previous emission is summarized into rates and stamped at the *last*
//! crossed tick. Long idle gaps (open-loop arrivals) therefore collapse
//! into one low-rate sample — the window denominator is real elapsed
//! simulated time, not the nominal interval.
//!
//! Histogram quantiles are bounded at **≤ 1% relative error**: values below
//! 2^8 are exact, larger values land in 128 sub-buckets per power of two
//! (half-width/value ≤ 2^-8 ≈ 0.4%), and bucket representatives clamp to
//! the recorded min/max. Merging two histograms is bucket-wise addition —
//! exactly the histogram of the concatenated stream.

use crate::QueryId;

/// Scale for histograms that record seconds as integer nanoseconds.
pub const SECONDS_SCALE: f64 = 1e-9;

/// Convert simulated seconds to the integer nanosecond ticks recorded into
/// `SECONDS_SCALE` histograms (deterministic round-to-nearest).
pub fn secs_to_ticks(secs: f64) -> u64 {
    (secs.max(0.0) * 1e9).round() as u64
}

/// Label set of one metric: `(key, value)` pairs, compared as a whole.
pub type Labels = Vec<(&'static str, String)>;

/// Sub-bucket resolution: 2^7 = 128 buckets per power of two.
const SUB_BITS: u32 = 7;
/// Values below `2 * 2^SUB_BITS` get width-1 (exact) buckets.
const LINEAR_MAX: u64 = 1 << (SUB_BITS + 1);

/// A log-bucketed HDR-style histogram over `u64` ticks.
///
/// Records are exact below `LINEAR_MAX`; above it each power of two is
/// split into 128 sub-buckets, bounding the relative quantile error at
/// half a bucket width — ≤ 2^-8 of the value, comfortably inside the 1%
/// contract the tests assert. `scale` converts ticks back to the caller's
/// unit on output (e.g. [`SECONDS_SCALE`] for nanosecond ticks).
#[derive(Debug, Clone, PartialEq)]
pub struct HdrHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    scale: f64,
}

impl HdrHistogram {
    /// An empty histogram whose outputs are `ticks * scale`.
    pub fn new(scale: f64) -> Self {
        HdrHistogram {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            scale,
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v < LINEAR_MAX {
            v as usize
        } else {
            let e = 63 - v.leading_zeros(); // >= SUB_BITS + 1
            let block = (e - SUB_BITS - 1) as usize;
            let sub = ((v >> (e - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
            LINEAR_MAX as usize + (block << SUB_BITS) + sub
        }
    }

    /// Midpoint representative of a bucket, in ticks.
    fn representative(idx: usize) -> u64 {
        if idx < LINEAR_MAX as usize {
            idx as u64
        } else {
            let block = (idx - LINEAR_MAX as usize) >> SUB_BITS;
            let sub = ((idx - LINEAR_MAX as usize) & ((1 << SUB_BITS) - 1)) as u64;
            let e = block as u32 + SUB_BITS + 1;
            let lo = (1u64 << e) + (sub << (e - SUB_BITS));
            lo + (1u64 << (e - SUB_BITS - 1))
        }
    }

    /// Inclusive upper edge of a bucket, in ticks (OpenMetrics `le`).
    fn upper_edge(idx: usize) -> u64 {
        if idx < LINEAR_MAX as usize {
            idx as u64
        } else {
            let block = (idx - LINEAR_MAX as usize) >> SUB_BITS;
            let sub = ((idx - LINEAR_MAX as usize) & ((1 << SUB_BITS) - 1)) as u64;
            let e = block as u32 + SUB_BITS + 1;
            let lo = (1u64 << e) + (sub << (e - SUB_BITS));
            lo + (1u64 << (e - SUB_BITS)) - 1
        }
    }

    /// Record one value (in ticks).
    pub fn record(&mut self, v: u64) {
        let idx = Self::bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values, scaled to the caller's unit.
    pub fn sum_scaled(&self) -> f64 {
        self.sum as f64 * self.scale
    }

    /// Smallest recorded value, scaled (0 when empty).
    pub fn min_scaled(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min as f64 * self.scale
        }
    }

    /// Largest recorded value, scaled (0 when empty).
    pub fn max_scaled(&self) -> f64 {
        self.max as f64 * self.scale
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), scaled. Matches the rank definition
    /// `sorted[ceil(q*n)-1]` within the bucket-resolution error bound;
    /// returns 0 for an empty histogram (no NaN, always renderable).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let rep = Self::representative(idx).clamp(self.min, self.max);
                return rep as f64 * self.scale;
            }
        }
        self.max as f64 * self.scale
    }

    /// Merge another histogram in: the result is bucket-for-bucket the
    /// histogram of the concatenated record streams.
    pub fn merge(&mut self, other: &HdrHistogram) {
        assert!(
            self.scale == other.scale,
            "merging histograms of different scales"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(scaled inclusive upper edge, count)`, in
    /// ascending edge order — the OpenMetrics bucket list before
    /// cumulation.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::upper_edge(i) as f64 * self.scale, c))
            .collect()
    }
}

/// One instrument in the registry.
#[derive(Debug, Clone, PartialEq)]
pub enum Instrument {
    /// Monotone `u64` counter.
    Counter(u64),
    /// Last-writer-wins `f64` gauge.
    Gauge(f64),
    /// Latency/size distribution.
    Histogram(HdrHistogram),
}

/// One named, labelled metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Family name (`snake_case`; counters end in `_total`).
    pub name: &'static str,
    /// Label set distinguishing this series within the family.
    pub labels: Labels,
    /// The instrument and its current value.
    pub value: Instrument,
}

/// A registry of counters, gauges and histograms.
///
/// Lookup is linear over a small vector — registries hold tens of series,
/// and the traversal order never leaks into exports (those sort).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
}

impl MetricsRegistry {
    fn find_or_insert(&mut self, name: &'static str, labels: Labels, make: Instrument) -> usize {
        if let Some(i) = self
            .metrics
            .iter()
            .position(|m| m.name == name && m.labels == labels)
        {
            return i;
        }
        self.metrics.push(Metric {
            name,
            labels,
            value: make,
        });
        self.metrics.len() - 1
    }

    /// Add `delta` to a counter (creating it at zero on first touch).
    pub fn counter_add(&mut self, name: &'static str, labels: Labels, delta: u64) {
        let i = self.find_or_insert(name, labels, Instrument::Counter(0));
        match &mut self.metrics[i].value {
            Instrument::Counter(v) => *v += delta,
            _ => panic!("metric '{name}' is not a counter"),
        }
    }

    /// Set a gauge to `v`.
    pub fn gauge_set(&mut self, name: &'static str, labels: Labels, v: f64) {
        let i = self.find_or_insert(name, labels, Instrument::Gauge(0.0));
        match &mut self.metrics[i].value {
            Instrument::Gauge(g) => *g = v,
            _ => panic!("metric '{name}' is not a gauge"),
        }
    }

    /// Record `ticks` into a histogram whose outputs are `ticks * scale`.
    pub fn hist_record(&mut self, name: &'static str, labels: Labels, scale: f64, ticks: u64) {
        let i = self.find_or_insert(
            name,
            labels,
            Instrument::Histogram(HdrHistogram::new(scale)),
        );
        match &mut self.metrics[i].value {
            Instrument::Histogram(h) => h.record(ticks),
            _ => panic!("metric '{name}' is not a histogram"),
        }
    }

    /// Current counter value (0 when absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels) {
            Some(Instrument::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// A histogram by name and labels, if recorded.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HdrHistogram> {
        match self.get(name, labels) {
            Some(Instrument::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Current gauge value (0 when absent) — lets driver-ordered code
    /// read-modify-write an accumulating gauge such as
    /// `slo_debt_seconds_total`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        match self.get(name, labels) {
            Some(Instrument::Gauge(g)) => *g,
            _ => 0.0,
        }
    }

    fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Instrument> {
        self.metrics
            .iter()
            .find(|m| {
                m.name == name
                    && m.labels.len() == labels.len()
                    && m.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .map(|m| &m.value)
    }

    /// All metrics, sorted by `(name, labels)` — the export order.
    pub fn sorted(&self) -> Vec<&Metric> {
        let mut out: Vec<&Metric> = self.metrics.iter().collect();
        out.sort_by(|a, b| (a.name, &a.labels).cmp(&(b.name, &b.labels)));
        out
    }

    /// Merge another registry in: counters add, histograms merge, gauges
    /// take the other side's value.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for m in &other.metrics {
            match &m.value {
                Instrument::Counter(v) => self.counter_add(m.name, m.labels.clone(), *v),
                Instrument::Gauge(g) => self.gauge_set(m.name, m.labels.clone(), *g),
                Instrument::Histogram(h) => {
                    let i = self.find_or_insert(
                        m.name,
                        m.labels.clone(),
                        Instrument::Histogram(HdrHistogram::new(h.scale)),
                    );
                    match &mut self.metrics[i].value {
                        Instrument::Histogram(dst) => dst.merge(h),
                        _ => panic!("metric '{}' is not a histogram", m.name),
                    }
                }
            }
        }
    }
}

/// Cumulative launch-derived totals, independent of `Counters` resets, so
/// the exported `*_total` series are monotone by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelTotals {
    /// Kernel launches since metrics were enabled.
    pub launches: u64,
    /// Busy simulated time, integer nanoseconds.
    pub busy_ns: u64,
    /// DRAM bytes read.
    pub dram_read_bytes: u64,
    /// DRAM bytes written.
    pub dram_write_bytes: u64,
    /// Warp instructions issued.
    pub warp_instructions: u64,
    /// Warp-level load requests.
    pub load_requests: u64,
    /// Sectors requested by those loads.
    pub sectors_requested: u64,
    /// L2 sector hits.
    pub l2_hits: u64,
    /// L2 sector misses.
    pub l2_misses: u64,
    /// Global atomic updates.
    pub atomics: u64,
}

/// Per-launch counter delta handed to `DeviceMetrics::on_kernel` by the
/// kernel builder — the same quantities `KernelBuilder::bump` folds into
/// [`crate::Counters`], so metrics totals cross-check against counter
/// deltas and trace sums exactly.
#[derive(Debug, Clone, Copy)]
pub struct KernelDelta {
    /// Warp instructions issued by this launch.
    pub warp_instructions: u64,
    /// DRAM bytes read.
    pub dram_read_bytes: u64,
    /// DRAM bytes written.
    pub dram_write_bytes: u64,
    /// Warp-level load requests.
    pub load_requests: u64,
    /// Sectors requested.
    pub sectors_requested: u64,
    /// L2 sector hits.
    pub l2_hits: u64,
    /// L2 sector misses.
    pub l2_misses: u64,
    /// Global atomic updates.
    pub atomics: u64,
}

/// One sampled time-series: points are `(simulated seconds, value)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series name (gauge-like; `*_total` series are cumulative counters).
    pub name: &'static str,
    /// Label set (e.g. `tenant="3"`).
    pub labels: Labels,
    /// Points in ascending time order.
    pub points: Vec<(f64, f64)>,
}

/// Deterministic lifecycle record of one query, written at retire.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryLifecycle {
    /// Device-side query id.
    pub query: QueryId,
    /// Simulated arrival time (registration time for closed-loop queries).
    pub arrival_secs: f64,
    /// When the memory-budget reservation was granted.
    pub admitted_secs: f64,
    /// Device clock at retire.
    pub completion_secs: f64,
    /// Kernel time the query received.
    pub busy_secs: f64,
    /// The reservation it ran under, bytes.
    pub budget_bytes: u64,
    /// Serving class, when the session annotated one.
    pub class: Option<String>,
    /// Per-class latency target (seconds), when one was set.
    pub slo_secs: Option<f64>,
}

/// Per-query busy series are emitted only for the first few query ids —
/// per-tenant cardinality must not explode in a several-hundred-query
/// serving sweep (aggregate busy fraction and the post-computed queue
/// depth carry the story there).
const PER_QUERY_SERIES_CAP: u32 = 8;

#[derive(Debug, Clone, Default)]
struct Window {
    busy_ns: u64,
    launches: u64,
    dram_read_bytes: u64,
    dram_write_bytes: u64,
    l2_hits: u64,
    l2_misses: u64,
    query_busy_ns: Vec<(QueryId, u64)>,
    mem_high_water: u64,
}

/// The periodic sampler: accumulates a window of launch-derived work and
/// emits one multi-series sample each time the simulated clock crosses an
/// `interval` tick (at most one per launch; see the module docs for the
/// cadence and determinism rules).
#[derive(Debug, Clone)]
pub struct Sampler {
    interval: f64,
    next_tick: f64,
    window_start: f64,
    window: Window,
    mem_current: u64,
    series: Vec<Series>,
}

impl Sampler {
    fn new(interval: f64, start_clock: f64) -> Self {
        Sampler {
            interval,
            next_tick: start_clock + interval,
            window_start: start_clock,
            window: Window::default(),
            mem_current: 0,
            series: Vec::new(),
        }
    }

    fn push_point(&mut self, name: &'static str, labels: Labels, t: f64, v: f64) {
        if let Some(s) = self
            .series
            .iter_mut()
            .find(|s| s.name == name && s.labels == labels)
        {
            s.points.push((t, v));
            return;
        }
        self.series.push(Series {
            name,
            labels,
            points: vec![(t, v)],
        });
    }

    fn maybe_emit(&mut self, clock: f64, totals: &KernelTotals) {
        if clock < self.next_tick {
            return;
        }
        // Stamp at the last crossed tick; one emission covers the window.
        let crossed = ((clock - self.next_tick) / self.interval).floor();
        let tick = self.next_tick + crossed * self.interval;
        self.next_tick = tick + self.interval;
        let elapsed = (clock - self.window_start).max(self.interval * 1e-9);
        let w = std::mem::take(&mut self.window);
        self.window_start = clock;

        let rate = |v: f64| v / elapsed;
        self.push_point(
            "dram_read_bw_gbps",
            Vec::new(),
            tick,
            rate(w.dram_read_bytes as f64) / 1e9,
        );
        self.push_point(
            "dram_write_bw_gbps",
            Vec::new(),
            tick,
            rate(w.dram_write_bytes as f64) / 1e9,
        );
        let sectors = w.l2_hits + w.l2_misses;
        let hit_rate = if sectors == 0 {
            0.0
        } else {
            w.l2_hits as f64 / sectors as f64
        };
        self.push_point("l2_hit_rate", Vec::new(), tick, hit_rate);
        self.push_point(
            "kernel_launch_rate",
            Vec::new(),
            tick,
            rate(w.launches as f64),
        );
        self.push_point(
            "busy_fraction",
            Vec::new(),
            tick,
            rate(w.busy_ns as f64 * 1e-9),
        );
        self.push_point(
            "mem_current_bytes",
            Vec::new(),
            tick,
            self.mem_current as f64,
        );
        self.push_point(
            "mem_high_water_bytes",
            Vec::new(),
            tick,
            w.mem_high_water.max(self.mem_current) as f64,
        );
        for (q, busy) in w.query_busy_ns {
            self.push_point(
                "tenant_busy_fraction",
                vec![("tenant", q.to_string())],
                tick,
                rate(busy as f64 * 1e-9),
            );
        }
        // Cumulative (monotone) series, for the exporter's counter check.
        self.push_point(
            "kernel_launches_total",
            Vec::new(),
            tick,
            totals.launches as f64,
        );
        self.push_point(
            "dram_bytes_total",
            Vec::new(),
            tick,
            (totals.dram_read_bytes + totals.dram_write_bytes) as f64,
        );
    }
}

/// The device-side metrics recorder: lives inside the device state (like
/// the trace) and is fed under the device lock, so a disabled recorder
/// costs one `Option` check and an enabled one perturbs nothing simulated.
#[derive(Debug, Clone)]
pub struct DeviceMetrics {
    /// The open registry engine layers record into via
    /// [`crate::Device::with_metrics`].
    pub registry: MetricsRegistry,
    sampler: Sampler,
    totals: KernelTotals,
    lifecycles: Vec<QueryLifecycle>,
    device: String,
}

impl DeviceMetrics {
    pub(crate) fn new(device: String, interval_secs: f64, start_clock: f64) -> Self {
        assert!(
            interval_secs > 0.0 && interval_secs.is_finite(),
            "metrics sample interval must be positive"
        );
        DeviceMetrics {
            registry: MetricsRegistry::default(),
            sampler: Sampler::new(interval_secs, start_clock),
            totals: KernelTotals::default(),
            lifecycles: Vec::new(),
            device,
        }
    }

    /// Fold one kernel launch in (called under the device lock, after the
    /// counters bump; `clock` is the device clock at launch completion).
    pub(crate) fn on_kernel(
        &mut self,
        clock: f64,
        query: Option<QueryId>,
        dur_secs: f64,
        d: &KernelDelta,
    ) {
        let ns = secs_to_ticks(dur_secs);
        self.totals.launches += 1;
        self.totals.busy_ns += ns;
        self.totals.dram_read_bytes += d.dram_read_bytes;
        self.totals.dram_write_bytes += d.dram_write_bytes;
        self.totals.warp_instructions += d.warp_instructions;
        self.totals.load_requests += d.load_requests;
        self.totals.sectors_requested += d.sectors_requested;
        self.totals.l2_hits += d.l2_hits;
        self.totals.l2_misses += d.l2_misses;
        self.totals.atomics += d.atomics;

        let w = &mut self.sampler.window;
        w.launches += 1;
        w.busy_ns += ns;
        w.dram_read_bytes += d.dram_read_bytes;
        w.dram_write_bytes += d.dram_write_bytes;
        w.l2_hits += d.l2_hits;
        w.l2_misses += d.l2_misses;
        if let Some(q) = query {
            // Dual accounting: the device-wide totals above, plus the
            // query's own labelled counters.
            let tenant = || vec![("tenant", q.to_string())];
            self.registry
                .counter_add("tenant_kernel_launches_total", tenant(), 1);
            self.registry
                .counter_add("tenant_busy_ns_total", tenant(), ns);
            if q < PER_QUERY_SERIES_CAP {
                let w = &mut self.sampler.window;
                match w.query_busy_ns.iter_mut().find(|(id, _)| *id == q) {
                    Some((_, b)) => *b += ns,
                    None => w.query_busy_ns.push((q, ns)),
                }
            }
        }
        self.sampler.maybe_emit(clock, &self.totals);
    }

    /// Track a base-ledger occupancy change (program-ordered: base
    /// allocations happen outside any turn gate, so only the base ledger —
    /// not co-tenant sub-ledgers — may feed the live series).
    pub(crate) fn on_mem(&mut self, current_bytes: u64) {
        self.sampler.mem_current = current_bytes;
        self.sampler.window.mem_high_water = self.sampler.window.mem_high_water.max(current_bytes);
    }

    /// Re-base the sample grid after `reset_stats` rewound the clock.
    pub(crate) fn on_reset(&mut self) {
        self.sampler.next_tick = self.sampler.interval;
        self.sampler.window_start = 0.0;
        self.sampler.window = Window::default();
    }

    /// Record a retired query's lifecycle (deterministic simulated
    /// timestamps; insertion order is a host race, so snapshots sort).
    pub(crate) fn push_lifecycle(&mut self, lc: QueryLifecycle) {
        self.lifecycles.push(lc);
    }

    /// Immutable snapshot for export.
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let mut lifecycles = self.lifecycles.clone();
        lifecycles.sort_by_key(|lc| lc.query);
        let mut series = self.sampler.series.clone();
        series.extend(lifecycle_series(&lifecycles, self.sampler.interval));
        series.extend(slo_burn_series(&lifecycles, self.sampler.interval));
        series.sort_by(|a, b| (a.name, &a.labels).cmp(&(b.name, &b.labels)));
        MetricsSnapshot {
            device: self.device.clone(),
            interval_secs: self.sampler.interval,
            registry: self.registry.clone(),
            totals: self.totals,
            series,
            lifecycles,
        }
    }
}

/// Post-compute queue-depth series from lifecycle records on the sample
/// grid: `queue_depth` counts queries with `arrival ≤ t < completion`
/// (in system: queued or running), `running_depth` those already admitted.
/// Retires are not turn-gated, so sampling these live would race — the
/// timestamps themselves are deterministic, the *observation* is made so
/// by computing it here.
fn lifecycle_series(lifecycles: &[QueryLifecycle], interval: f64) -> Vec<Series> {
    if lifecycles.is_empty() {
        return Vec::new();
    }
    // Both depths are step functions of time, changing only at lifecycle
    // events; on the sample grid the change becomes visible at the first
    // tick ≥ the event. Evaluating just those ticks (plus the grid point
    // at the earliest arrival) keeps the series size proportional to the
    // number of queries, not to span/interval — a long idle gap must not
    // produce a long series.
    let t0 = lifecycles
        .iter()
        .map(|l| l.arrival_secs)
        .fold(f64::INFINITY, f64::min);
    let mut ticks = vec![(t0 / interval).floor() * interval];
    for l in lifecycles {
        for e in [l.arrival_secs, l.admitted_secs, l.completion_secs] {
            ticks.push((e / interval).ceil() * interval);
        }
    }
    ticks.sort_by(|a, b| a.partial_cmp(b).expect("lifecycle timestamps are finite"));
    ticks.dedup();
    let mut queue = Vec::new();
    let mut running = Vec::new();
    for t in ticks {
        let in_system = lifecycles
            .iter()
            .filter(|l| l.arrival_secs <= t && t < l.completion_secs)
            .count();
        let admitted = lifecycles
            .iter()
            .filter(|l| l.admitted_secs <= t && t < l.completion_secs && l.arrival_secs <= t)
            .count();
        queue.push((t, in_system as f64));
        running.push((t, admitted as f64));
    }
    vec![
        Series {
            name: "queue_depth",
            labels: Vec::new(),
            points: queue,
        },
        Series {
            name: "running_depth",
            labels: Vec::new(),
            points: running,
        },
    ]
}

/// Post-compute per-class SLO burn-rate series from lifecycle records:
/// each completion past its class target adds `latency − slo` of debt to
/// the window ending at the first grid tick ≥ the completion; the point
/// value is window debt divided by the interval (seconds of debt per
/// second — the classic burn rate). Like the depth series this is computed
/// at snapshot time from deterministic timestamps, never sampled live, and
/// its size is bounded by the number of completions.
fn slo_burn_series(lifecycles: &[QueryLifecycle], interval: f64) -> Vec<Series> {
    // (class, tick) -> accumulated debt ticks in the window ending at tick.
    let mut classes: Vec<(&str, Vec<(f64, u64)>)> = Vec::new();
    for l in lifecycles {
        let (Some(class), Some(slo)) = (l.class.as_deref(), l.slo_secs) else {
            continue;
        };
        let latency = secs_to_ticks(l.completion_secs) - secs_to_ticks(l.arrival_secs);
        let debt = latency.saturating_sub(secs_to_ticks(slo));
        let tick = (l.completion_secs / interval).ceil() * interval;
        let buckets = match classes.iter_mut().find(|(c, _)| *c == class) {
            Some((_, b)) => b,
            None => {
                classes.push((class, Vec::new()));
                &mut classes.last_mut().unwrap().1
            }
        };
        match buckets.iter_mut().find(|(t, _)| *t == tick) {
            Some((_, d)) => *d += debt,
            None => buckets.push((tick, debt)),
        }
    }
    classes.sort_by_key(|(c, _)| c.to_string());
    classes
        .into_iter()
        .map(|(class, mut buckets)| {
            buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite completion ticks"));
            Series {
                name: "slo_burn_rate",
                labels: vec![("class", class.to_string())],
                points: buckets
                    .into_iter()
                    .map(|(t, d)| (t, d as f64 * SECONDS_SCALE / interval))
                    .collect(),
            }
        })
        .collect()
}

/// Everything one device's metrics recorder observed, frozen for export.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Device name (config name).
    pub device: String,
    /// The sampler's tick interval, simulated seconds.
    pub interval_secs: f64,
    /// Counters, gauges and histograms.
    pub registry: MetricsRegistry,
    /// Cumulative launch-derived totals.
    pub totals: KernelTotals,
    /// Sampled and post-computed time-series, sorted by (name, labels).
    pub series: Vec<Series>,
    /// Per-query lifecycle records, sorted by query id.
    pub lifecycles: Vec<QueryLifecycle>,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn fmt_f64(v: f64) -> String {
    // Deterministic shortest decimal; guard the non-finite cases so both
    // exporters always render (satellite contract: no NaN in any output).
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn label_text(labels: &Labels, extra: &[(&str, &str)]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (k, v) in extra
        .iter()
        .copied()
        .chain(labels.iter().map(|(k, v)| (*k, v.as_str())))
    {
        let mut escaped = String::new();
        escape_into(&mut escaped, v);
        parts.push(format!("{k}=\"{escaped}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render snapshots in the OpenMetrics text exposition format.
///
/// Families sort by name; multiple devices disambiguate with a
/// `device="<name>#<index>"` label. Histograms emit cumulative non-empty
/// buckets plus `+Inf`, `_sum` and `_count`; time-series don't fit a
/// point-in-time exposition and live in the JSON export only. Ends with
/// `# EOF` per the spec.
pub fn openmetrics(snaps: &[MetricsSnapshot]) -> String {
    // family name -> (type, lines)
    let mut families: Vec<(String, &'static str, Vec<String>)> = Vec::new();
    let mut push = |name: String, kind: &'static str, line: String| match families
        .iter_mut()
        .find(|(n, _, _)| *n == name)
    {
        Some((_, _, lines)) => lines.push(line),
        None => families.push((name, kind, vec![line])),
    };
    for (i, snap) in snaps.iter().enumerate() {
        let dev = format!("{}#{i}", snap.device);
        let extra = [("device", dev.as_str())];
        let t = &snap.totals;
        for (name, v) in [
            ("sim_kernel_launches_total", t.launches),
            ("sim_busy_ns_total", t.busy_ns),
            ("sim_dram_read_bytes_total", t.dram_read_bytes),
            ("sim_dram_write_bytes_total", t.dram_write_bytes),
            ("sim_warp_instructions_total", t.warp_instructions),
            ("sim_load_requests_total", t.load_requests),
            ("sim_sectors_requested_total", t.sectors_requested),
            ("sim_l2_hits_total", t.l2_hits),
            ("sim_l2_misses_total", t.l2_misses),
            ("sim_atomics_total", t.atomics),
        ] {
            push(
                name.to_string(),
                "counter",
                format!("{name}{} {v}", label_text(&Vec::new(), &extra)),
            );
        }
        for m in snap.registry.sorted() {
            match &m.value {
                Instrument::Counter(v) => push(
                    m.name.to_string(),
                    "counter",
                    format!("{}{} {v}", m.name, label_text(&m.labels, &extra)),
                ),
                Instrument::Gauge(g) => push(
                    m.name.to_string(),
                    "gauge",
                    format!(
                        "{}{} {}",
                        m.name,
                        label_text(&m.labels, &extra),
                        fmt_f64(*g)
                    ),
                ),
                Instrument::Histogram(h) => {
                    let mut cum = 0u64;
                    for (le, c) in h.buckets() {
                        cum += c;
                        let mut labels = m.labels.clone();
                        labels.push(("le", fmt_f64(le)));
                        push(
                            m.name.to_string(),
                            "histogram",
                            format!("{}_bucket{} {cum}", m.name, label_text(&labels, &extra)),
                        );
                    }
                    let mut inf = m.labels.clone();
                    inf.push(("le", "+Inf".to_string()));
                    push(
                        m.name.to_string(),
                        "histogram",
                        format!(
                            "{}_bucket{} {}",
                            m.name,
                            label_text(&inf, &extra),
                            h.count()
                        ),
                    );
                    push(
                        m.name.to_string(),
                        "histogram",
                        format!(
                            "{}_sum{} {}",
                            m.name,
                            label_text(&m.labels, &extra),
                            fmt_f64(h.sum_scaled())
                        ),
                    );
                    push(
                        m.name.to_string(),
                        "histogram",
                        format!(
                            "{}_count{} {}",
                            m.name,
                            label_text(&m.labels, &extra),
                            h.count()
                        ),
                    );
                }
            }
        }
    }
    families.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    for (name, kind, lines) in families {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        for line in lines {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out.push_str("# EOF\n");
    out
}

/// Render snapshots as one JSON document (hand-rolled like the trace
/// exporters — `sim` carries no JSON dependency — and deterministic:
/// series and registry entries are pre-sorted).
pub fn metrics_json(snaps: &[MetricsSnapshot]) -> String {
    let mut out = String::from("{\"devices\":[");
    for (i, snap) in snaps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut dev = String::new();
        escape_into(&mut dev, &snap.device);
        out.push_str(&format!(
            "{{\"device\":\"{dev}\",\"sample_interval_s\":{},",
            fmt_f64(snap.interval_secs)
        ));
        let t = &snap.totals;
        out.push_str(&format!(
            "\"totals\":{{\"kernel_launches\":{},\"busy_ns\":{},\"dram_read_bytes\":{},\
             \"dram_write_bytes\":{},\"warp_instructions\":{},\"load_requests\":{},\
             \"sectors_requested\":{},\"l2_hits\":{},\"l2_misses\":{},\"atomics\":{}}},",
            t.launches,
            t.busy_ns,
            t.dram_read_bytes,
            t.dram_write_bytes,
            t.warp_instructions,
            t.load_requests,
            t.sectors_requested,
            t.l2_hits,
            t.l2_misses,
            t.atomics
        ));
        let labels_json = |labels: &Labels| {
            let mut s = String::from("{");
            for (j, (k, v)) in labels.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let mut escaped = String::new();
                escape_into(&mut escaped, v);
                s.push_str(&format!("\"{k}\":\"{escaped}\""));
            }
            s.push('}');
            s
        };
        let (mut counters, mut gauges, mut hists) = (Vec::new(), Vec::new(), Vec::new());
        for m in snap.registry.sorted() {
            let labels = labels_json(&m.labels);
            match &m.value {
                Instrument::Counter(v) => counters.push(format!(
                    "{{\"name\":\"{}\",\"labels\":{labels},\"value\":{v}}}",
                    m.name
                )),
                Instrument::Gauge(g) => gauges.push(format!(
                    "{{\"name\":\"{}\",\"labels\":{labels},\"value\":{}}}",
                    m.name,
                    fmt_f64(*g)
                )),
                Instrument::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .buckets()
                        .iter()
                        .map(|(le, c)| format!("{{\"le\":{},\"count\":{c}}}", fmt_f64(*le)))
                        .collect();
                    hists.push(format!(
                        "{{\"name\":\"{}\",\"labels\":{labels},\"count\":{},\"sum\":{},\
                         \"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\
                         \"buckets\":[{}]}}",
                        m.name,
                        h.count(),
                        fmt_f64(h.sum_scaled()),
                        fmt_f64(h.min_scaled()),
                        fmt_f64(h.max_scaled()),
                        fmt_f64(h.quantile(0.50)),
                        fmt_f64(h.quantile(0.90)),
                        fmt_f64(h.quantile(0.99)),
                        buckets.join(",")
                    ));
                }
            }
        }
        out.push_str(&format!("\"counters\":[{}],", counters.join(",")));
        out.push_str(&format!("\"gauges\":[{}],", gauges.join(",")));
        out.push_str(&format!("\"histograms\":[{}],", hists.join(",")));
        let series: Vec<String> = snap
            .series
            .iter()
            .map(|s| {
                let points: Vec<String> = s
                    .points
                    .iter()
                    .map(|(t, v)| format!("[{},{}]", fmt_f64(*t), fmt_f64(*v)))
                    .collect();
                format!(
                    "{{\"name\":\"{}\",\"labels\":{},\"points\":[{}]}}",
                    s.name,
                    labels_json(&s.labels),
                    points.join(",")
                )
            })
            .collect();
        out.push_str(&format!("\"series\":[{}],", series.join(",")));
        let queries: Vec<String> = snap
            .lifecycles
            .iter()
            .map(|l| {
                // Class and SLO fields appear only when set, keeping
                // non-serving exports byte-identical to their history.
                let mut extra = String::new();
                if let Some(class) = &l.class {
                    let mut escaped = String::new();
                    escape_into(&mut escaped, class);
                    extra.push_str(&format!(",\"class\":\"{escaped}\""));
                }
                if let Some(slo) = l.slo_secs {
                    extra.push_str(&format!(",\"slo_s\":{}", fmt_f64(slo)));
                }
                format!(
                    "{{\"query\":{},\"arrival_s\":{},\"admitted_s\":{},\"completion_s\":{},\
                     \"busy_s\":{},\"budget_bytes\":{}{extra}}}",
                    l.query,
                    fmt_f64(l.arrival_secs),
                    fmt_f64(l.admitted_secs),
                    fmt_f64(l.completion_secs),
                    fmt_f64(l.busy_secs),
                    l.budget_bytes
                )
            })
            .collect();
        out.push_str(&format!("\"queries\":[{}]}}", queries.join(",")));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact quantile per the histogram's rank definition.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    fn assert_quantiles_within_1pct(values: &[u64]) {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let mut h = HdrHistogram::new(1.0);
        for &v in values {
            h.record(v);
        }
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q) as f64;
            let approx = h.quantile(q);
            assert!(approx.is_finite(), "q{q}: non-finite quantile");
            let err = (approx - exact).abs();
            assert!(
                err <= 0.01 * exact.max(1.0),
                "q{q}: approx {approx} vs exact {exact} (err {err})"
            );
        }
    }

    #[test]
    fn constant_sequence_is_exact() {
        assert_quantiles_within_1pct(&vec![123_456_789; 1000]);
        let mut h = HdrHistogram::new(1.0);
        for _ in 0..1000 {
            h.record(123_456_789);
        }
        // Min/max clamping makes every quantile of a constant stream exact.
        assert_eq!(h.quantile(0.5), 123_456_789.0);
        assert_eq!(h.quantile(0.999), 123_456_789.0);
    }

    #[test]
    fn bimodal_sequence_within_bound() {
        let mut v = vec![100u64; 500];
        v.extend(vec![90_000_000u64; 500]);
        assert_quantiles_within_1pct(&v);
    }

    #[test]
    fn heavy_tailed_sequence_within_bound() {
        // Deterministic Pareto-ish tail: value = 1000 * i^3 + small noise.
        let v: Vec<u64> = (1..4000u64)
            .map(|i| 1000 + i * i * i + (i * 7919) % 997)
            .collect();
        assert_quantiles_within_1pct(&v);
    }

    #[test]
    fn adversarial_bucket_edges_within_bound() {
        // Values straddling power-of-two bucket boundaries.
        let mut v = Vec::new();
        for e in 8..40u32 {
            for d in [0i64, -1, 1, 63, 64, 65] {
                v.push(((1i64 << e) + d) as u64);
            }
        }
        assert_quantiles_within_1pct(&v);
    }

    #[test]
    fn single_sample_is_exact() {
        let mut h = HdrHistogram::new(SECONDS_SCALE);
        h.record(777_777_777);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert!((h.quantile(q) - 0.777777777).abs() < 1e-12);
        }
        assert_eq!(h.count(), 1);
        assert!((h.sum_scaled() - 0.777777777).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_renders_without_nan() {
        let h = HdrHistogram::new(1.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min_scaled(), 0.0);
        assert_eq!(h.max_scaled(), 0.0);
        let mut reg = MetricsRegistry::default();
        reg.metrics.push(Metric {
            name: "empty_hist",
            labels: Vec::new(),
            value: Instrument::Histogram(h),
        });
        let snap = MetricsSnapshot {
            device: "test".into(),
            interval_secs: 1.0,
            registry: reg,
            totals: KernelTotals::default(),
            series: Vec::new(),
            lifecycles: Vec::new(),
        };
        let om = openmetrics(std::slice::from_ref(&snap));
        let js = metrics_json(std::slice::from_ref(&snap));
        assert!(!om.contains("NaN") && !js.contains("NaN"));
        assert!(om.ends_with("# EOF\n"));
        assert!(js.contains("\"empty_hist\""));
    }

    #[test]
    fn merge_equals_concatenated_stream() {
        let (a, b): (Vec<u64>, Vec<u64>) = (
            (0..500u64).map(|i| i * i + 3).collect(),
            (0..700u64).map(|i| i * 31 + 1_000_000).collect(),
        );
        let mut h1 = HdrHistogram::new(1.0);
        let mut h2 = HdrHistogram::new(1.0);
        let mut concat = HdrHistogram::new(1.0);
        for &v in &a {
            h1.record(v);
            concat.record(v);
        }
        for &v in &b {
            h2.record(v);
            concat.record(v);
        }
        h1.merge(&h2);
        assert_eq!(h1, concat, "merge must equal recording the concatenation");
    }

    #[test]
    fn registry_merge_combines_instruments() {
        let mut r1 = MetricsRegistry::default();
        let mut r2 = MetricsRegistry::default();
        r1.counter_add("c_total", vec![("k", "a".into())], 3);
        r2.counter_add("c_total", vec![("k", "a".into())], 4);
        r2.counter_add("c_total", vec![("k", "b".into())], 1);
        r1.hist_record("h", Vec::new(), 1.0, 10);
        r2.hist_record("h", Vec::new(), 1.0, 20);
        r1.merge(&r2);
        assert_eq!(r1.counter("c_total", &[("k", "a")]), 7);
        assert_eq!(r1.counter("c_total", &[("k", "b")]), 1);
        assert_eq!(r1.histogram("h", &[]).unwrap().count(), 2);
    }

    #[test]
    fn export_order_is_insertion_order_independent() {
        let snap = |order: &[usize]| {
            let mut reg = MetricsRegistry::default();
            let entries: [(&'static str, &str); 3] =
                [("z_total", "1"), ("a_total", "2"), ("m_total", "0")];
            for &i in order {
                let (name, tenant) = entries[i];
                reg.counter_add(name, vec![("tenant", tenant.to_string())], 5);
            }
            MetricsSnapshot {
                device: "test".into(),
                interval_secs: 1.0,
                registry: reg,
                totals: KernelTotals::default(),
                series: Vec::new(),
                lifecycles: Vec::new(),
            }
        };
        let a = snap(&[0, 1, 2]);
        let b = snap(&[2, 0, 1]);
        assert_eq!(
            openmetrics(std::slice::from_ref(&a)),
            openmetrics(std::slice::from_ref(&b))
        );
        assert_eq!(
            metrics_json(std::slice::from_ref(&a)),
            metrics_json(std::slice::from_ref(&b))
        );
    }

    #[test]
    fn openmetrics_buckets_are_cumulative_and_sorted() {
        let mut reg = MetricsRegistry::default();
        for v in [1u64, 1, 5, 1000, 100_000] {
            reg.hist_record("lat_seconds", Vec::new(), SECONDS_SCALE, v);
        }
        let snap = MetricsSnapshot {
            device: "d".into(),
            interval_secs: 1.0,
            registry: reg,
            totals: KernelTotals::default(),
            series: Vec::new(),
            lifecycles: Vec::new(),
        };
        let om = openmetrics(&[snap]);
        let counts: Vec<u64> = om
            .lines()
            .filter(|l| l.starts_with("lat_seconds_bucket") && !l.contains("+Inf"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert!(om.contains("lat_seconds_count{device=\"d#0\"} 5"));
    }

    #[test]
    fn sampler_emits_on_tick_crossings_with_monotone_totals() {
        let mut m = DeviceMetrics::new("dev".into(), 1.0, 0.0);
        let d = KernelDelta {
            warp_instructions: 10,
            dram_read_bytes: 1 << 20,
            dram_write_bytes: 1 << 19,
            load_requests: 4,
            sectors_requested: 16,
            l2_hits: 12,
            l2_misses: 4,
            atomics: 0,
        };
        let mut clock = 0.0;
        for _ in 0..10 {
            clock += 0.7;
            m.on_kernel(clock, None, 0.7, &d);
        }
        let snap = m.snapshot();
        let launches = snap
            .series
            .iter()
            .find(|s| s.name == "kernel_launches_total")
            .expect("cumulative series present");
        assert!(launches.points.len() >= 5, "{:?}", launches.points);
        assert!(launches
            .points
            .windows(2)
            .all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0));
        let busy = snap
            .series
            .iter()
            .find(|s| s.name == "busy_fraction")
            .unwrap();
        for (_, v) in &busy.points {
            assert!((*v - 1.0).abs() < 1e-6, "fully busy device: {v}");
        }
        assert_eq!(snap.totals.launches, 10);
    }

    #[test]
    fn lifecycle_series_count_in_system_queries() {
        let lcs = vec![
            QueryLifecycle {
                query: 0,
                arrival_secs: 0.0,
                admitted_secs: 0.0,
                completion_secs: 4.0,
                busy_secs: 4.0,
                budget_bytes: 1,
                class: None,
                slo_secs: None,
            },
            QueryLifecycle {
                query: 1,
                arrival_secs: 1.0,
                admitted_secs: 4.0,
                completion_secs: 6.0,
                busy_secs: 2.0,
                budget_bytes: 1,
                class: None,
                slo_secs: None,
            },
        ];
        let series = lifecycle_series(&lcs, 1.0);
        let queue = &series[0];
        assert_eq!(queue.name, "queue_depth");
        // Points exist only where the depth changes; between them the
        // series is a step function, so read the last point at or before t.
        let at = |t: f64| {
            queue
                .points
                .iter()
                .rev()
                .find(|(pt, _)| *pt <= t + 1e-9)
                .unwrap()
                .1
        };
        assert_eq!(at(0.0), 1.0);
        assert_eq!(at(2.0), 2.0, "both in system at t=2");
        assert_eq!(at(5.0), 1.0);
        assert_eq!(at(6.0), 0.0);
    }
}
