//! Bottleneck attribution: the paper's analysis, applied automatically.
//!
//! Every claim in the evaluation is argued by holding counters against the
//! hardware's roofline — "the gather is latency-bound because it touches 18
//! sectors per request", "partitioning saturates bandwidth", "atomics on the
//! hot group serialize". The simulator records the same counters
//! ([`Counters`], [`crate::trace::KernelEvent`]); this module performs the
//! *interpretation*, so `EXPLAIN ANALYZE` output and trace summaries can say
//! what the paper's authors would say about each operator and kernel:
//!
//! * [`roofline`] — splits a counter delta into the cost model's components
//!   (compute, DRAM, L2, launch overhead, and the residual latency/atomic
//!   term) and classifies the bottleneck against the device's peaks.
//! * [`diagnose`] — maps the access-pattern metrics (sectors/request vs the
//!   ideal 4, L2 hit rate, write-back share, atomic contention) to the
//!   paper's named pathologies: random gather (Table 4), partition scatter,
//!   contended global hash table.
//! * [`analyze_kernels`] — the per-kernel-name version over recorded traces,
//!   layered on [`crate::trace::kernel_stats`].
//!
//! Everything here is a pure function of recorded state, so reports are
//! bit-identical across [`DeviceConfig::host_threads`] settings and
//! scheduling policies, like the counters they are derived from.

use crate::trace::{kernel_stats, KernelStat, Trace};
use crate::{Counters, DeviceConfig, SECTOR_BYTES};
use serde::Serialize;

/// Sectors per warp request of a perfectly coalesced 4-byte access: 32
/// lanes x 4 bytes span four 32-byte sectors (the "ideal 4" the paper
/// compares every gather against in Table 4).
pub const IDEAL_SECTORS_PER_REQUEST: f64 = 4.0;

/// Which wall of the roofline the work ran into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Bottleneck {
    /// DRAM/L2 traffic bounds the time (the streaming regime).
    MemoryBound,
    /// Warp-instruction issue bounds the time.
    ComputeBound,
    /// Neither peak is approached: time goes to per-sector latency from
    /// poor coalescing or to fixed kernel-launch overhead.
    LatencyBound,
    /// Serialized atomic updates on a hot address dominate.
    AtomicBound,
    /// No cycles recorded (aliasing-only operators).
    Idle,
}

impl Bottleneck {
    /// Stable lowercase label used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Bottleneck::MemoryBound => "memory-bound",
            Bottleneck::ComputeBound => "compute-bound",
            Bottleneck::LatencyBound => "latency-bound",
            Bottleneck::AtomicBound => "atomic-bound",
            Bottleneck::Idle => "idle",
        }
    }
}

/// A counter delta decomposed against the calibrated cost model.
///
/// The components mirror `kernel.rs`: a launch costs
/// `max(compute, memory) + atomic_serialization + launch_overhead`, with
/// poorly coalesced gather sectors paying a latency penalty on top of their
/// raw bytes. The counters record *raw* traffic, so `residual_secs` —
/// actual time minus launch overhead minus the larger of the compute and
/// raw-memory terms — is exactly the latency-penalty plus atomic-
/// serialization time the cost model added.
#[derive(Debug, Clone, Serialize)]
pub struct Roofline {
    /// Recorded time (cycles / clock), seconds.
    pub actual_secs: f64,
    /// Warp instructions at the chip's peak issue rate, seconds.
    pub compute_secs: f64,
    /// Raw DRAM traffic at effective bandwidth, seconds.
    pub dram_secs: f64,
    /// L2-served gather sectors at L2 bandwidth, seconds.
    pub l2_secs: f64,
    /// Fixed launch overhead: launches x overhead, seconds.
    pub launch_secs: f64,
    /// Un-modeled remainder: coalescing latency penalty plus serialized
    /// atomics, seconds (never negative).
    pub residual_secs: f64,
    /// `compute_secs / actual_secs` — fraction of peak issue rate achieved.
    pub issue_utilization: f64,
    /// `(dram_secs + l2_secs) / actual_secs` — fraction of peak memory
    /// throughput achieved.
    pub memory_utilization: f64,
    /// Achieved DRAM bandwidth, bytes/second.
    pub achieved_dram_bps: f64,
    /// The device's effective (streaming) DRAM bandwidth, bytes/second.
    pub peak_dram_bps: f64,
    /// The classification the numbers above support.
    pub bottleneck: Bottleneck,
}

/// Decompose a counter delta against `cfg`'s roofline and classify it.
pub fn roofline(c: &Counters, cfg: &DeviceConfig) -> Roofline {
    let actual = c.cycles / cfg.clock_hz;
    let compute = c.warp_instructions as f64 / cfg.issue_rate();
    let dram = c.dram_bytes() as f64 / cfg.effective_bandwidth();
    let l2 = (c.l2_hits * SECTOR_BYTES) as f64 / cfg.l2_bandwidth();
    let launch = c.kernel_launches as f64 * cfg.kernel_launch_overhead;
    let memory = dram + l2;
    let residual = (actual - launch - compute.max(memory)).max(0.0);
    let bottleneck = if actual <= 0.0 {
        Bottleneck::Idle
    } else if launch / actual > 0.5 {
        // Many tiny launches: fixed overhead, not any throughput wall.
        Bottleneck::LatencyBound
    } else if residual / actual > 0.3 {
        // The cost model added substantial time beyond raw traffic. Two
        // sources exist: hot-address atomic serialization and the
        // uncoalesced-gather penalty. Attribute to atomics when they are
        // present in volume; otherwise it is per-sector latency.
        if c.atomics > 0 && c.atomics as f64 >= c.load_requests as f64 {
            Bottleneck::AtomicBound
        } else {
            Bottleneck::LatencyBound
        }
    } else if memory >= compute {
        Bottleneck::MemoryBound
    } else {
        Bottleneck::ComputeBound
    };
    Roofline {
        actual_secs: actual,
        compute_secs: compute,
        dram_secs: dram,
        l2_secs: l2,
        launch_secs: launch,
        residual_secs: residual,
        issue_utilization: if actual > 0.0 { compute / actual } else { 0.0 },
        memory_utilization: if actual > 0.0 { memory / actual } else { 0.0 },
        achieved_dram_bps: if actual > 0.0 {
            c.dram_bytes() as f64 / actual
        } else {
            0.0
        },
        peak_dram_bps: cfg.effective_bandwidth(),
        bottleneck,
    }
}

impl Roofline {
    /// One-line summary, e.g.
    /// `memory-bound (DRAM 78% of peak, issue 12%)`.
    pub fn summary(&self) -> String {
        format!(
            "{} (DRAM {:.0}% of peak, issue {:.0}%)",
            self.bottleneck.as_str(),
            100.0 * self.achieved_dram_bps / self.peak_dram_bps,
            100.0 * self.issue_utilization,
        )
    }
}

/// A named access pattern the counters witness — the paper's pathologies
/// plus the two healthy regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AccessPattern {
    /// Sequential, fully coalesced traffic (or clustered gathers at the
    /// ideal sector count) — the regime GFTR buys.
    Streaming,
    /// Unclustered gather from DRAM: many sectors per request, low L2 hit
    /// rate (Table 4's random-gather pathology; what GFUR pays).
    RandomGather,
    /// Unclustered gather *served by L2*: the relation is cache-resident,
    /// so the random access is cheap (the TPC-H J3 / few-groups regime).
    CacheResidentGather,
    /// Scattered read-modify-write stores — the partitioning kernel's
    /// write pattern (visible as RMW write-back traffic).
    PartitionScatter,
    /// Atomic updates serializing on hot addresses — the contended global
    /// hash table / bucket-chain skew collapse (Figure 14).
    ContendedHashTable,
}

impl AccessPattern {
    /// Stable kebab-case label used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            AccessPattern::Streaming => "streaming",
            AccessPattern::RandomGather => "random-gather",
            AccessPattern::CacheResidentGather => "cache-resident-gather",
            AccessPattern::PartitionScatter => "partition-scatter",
            AccessPattern::ContendedHashTable => "contended-hash-table",
        }
    }
}

/// One diagnosed pattern with the evidence that supports it.
#[derive(Debug, Clone, Serialize)]
pub struct Diagnosis {
    /// The pattern.
    pub pattern: AccessPattern,
    /// The metrics that triggered it, human-readable.
    pub evidence: String,
}

/// Diagnose the access patterns a counter delta witnesses, in a stable
/// order. May return several (a partitioned join both scatters and
/// streams); returns none for pure aliasing work with no traffic.
pub fn diagnose(c: &Counters, cfg: &DeviceConfig) -> Vec<Diagnosis> {
    let mut out = Vec::new();
    let spr = c.sectors_per_request();
    let l2 = c.l2_hit_rate();
    if c.load_requests > 0 && spr > 2.0 * IDEAL_SECTORS_PER_REQUEST {
        if l2 >= 0.5 {
            out.push(Diagnosis {
                pattern: AccessPattern::CacheResidentGather,
                evidence: format!(
                    "{spr:.2} sectors/request (ideal {IDEAL_SECTORS_PER_REQUEST:.0}) but L2 \
                     serves {:.0}% — unclustered access into a cache-resident relation",
                    100.0 * l2
                ),
            });
        } else {
            out.push(Diagnosis {
                pattern: AccessPattern::RandomGather,
                evidence: format!(
                    "{spr:.2} sectors/request vs ideal {IDEAL_SECTORS_PER_REQUEST:.0}, L2 \
                     {:.0}% — unclustered gather paying DRAM latency per sector (Table 4)",
                    100.0 * l2
                ),
            });
        }
    }
    // RMW write-back: dram_write_bytes beyond the sequential stores means
    // scattered stores fetched-and-wrote whole sectors — the partitioning
    // scatter. We cannot split sequential from scattered writes in the
    // aggregate, so require the gather-side evidence (load_requests with
    // poor coalescing) alongside write traffic.
    if c.dram_write_bytes > 0
        && c.load_requests > 0
        && spr > 1.5 * IDEAL_SECTORS_PER_REQUEST
        && c.dram_write_bytes as f64 >= 0.25 * c.dram_bytes() as f64
    {
        out.push(Diagnosis {
            pattern: AccessPattern::PartitionScatter,
            evidence: format!(
                "{:.0}% of DRAM traffic is writes at {spr:.2} sectors/request — scattered \
                 read-modify-write stores (partitioning)",
                100.0 * c.dram_write_bytes as f64 / c.dram_bytes() as f64
            ),
        });
    }
    if c.atomics > 0 {
        let r = roofline(c, cfg);
        if r.actual_secs > 0.0 && r.residual_secs / r.actual_secs > 0.15 {
            out.push(Diagnosis {
                pattern: AccessPattern::ContendedHashTable,
                evidence: format!(
                    "{} atomic updates with {:.0}% of time in serialization — contended \
                     global hash table (hot keys, Figure 14)",
                    c.atomics,
                    100.0 * r.residual_secs / r.actual_secs
                ),
            });
        }
    }
    if out.is_empty() && c.dram_bytes() > 0 {
        out.push(Diagnosis {
            pattern: AccessPattern::Streaming,
            evidence: if c.load_requests == 0 {
                "sequential streaming traffic, fully coalesced".to_string()
            } else {
                format!("{spr:.2} sectors/request — clustered access near the coalesced ideal")
            },
        });
    }
    out
}

/// Per-kernel-name analysis: the aggregate stat plus its roofline and
/// diagnosed patterns — [`crate::trace::kernel_stats`] with the
/// interpretation attached.
#[derive(Debug, Clone, Serialize)]
pub struct KernelAnalysis {
    /// Kernel name.
    pub name: &'static str,
    /// Launch count.
    pub launches: u64,
    /// Summed simulated time, seconds.
    pub total_secs: f64,
    /// Summed DRAM traffic, bytes.
    pub dram_bytes: u64,
    /// Average sectors per warp load request.
    pub sectors_per_request: f64,
    /// L2 hit rate over gather traffic.
    pub l2_hit_rate: f64,
    /// Roofline decomposition of the aggregate.
    pub roofline: Roofline,
    /// Diagnosed access patterns.
    pub patterns: Vec<Diagnosis>,
}

/// The counters a [`KernelStat`] aggregates, as a [`Counters`] record so
/// the same analysis entry points apply.
fn stat_counters(s: &KernelStat, cfg: &DeviceConfig) -> Counters {
    Counters {
        kernel_launches: s.launches,
        cycles: s.total_secs * cfg.clock_hz,
        warp_instructions: s.warp_instructions,
        // The per-name aggregate does not split reads from writes; book
        // everything as reads — `dram_bytes()` (all the analysis uses,
        // except the scatter diagnosis) is unaffected.
        dram_read_bytes: s.dram_bytes,
        dram_write_bytes: 0,
        load_requests: s.load_requests,
        sectors_requested: s.sectors_requested,
        l2_hits: s.l2_hits,
        l2_misses: s.l2_misses,
        atomics: s.atomics,
    }
}

/// Analyze every kernel name appearing in `traces`, in
/// [`kernel_stats`]'s order (total time descending).
pub fn analyze_kernels(traces: &[Trace], cfg: &DeviceConfig) -> Vec<KernelAnalysis> {
    kernel_stats(traces)
        .into_iter()
        .map(|s| {
            let c = stat_counters(&s, cfg);
            KernelAnalysis {
                name: s.name,
                launches: s.launches,
                total_secs: s.total_secs,
                dram_bytes: s.dram_bytes,
                sectors_per_request: s.sectors_per_request(),
                l2_hit_rate: s.l2_hit_rate(),
                roofline: roofline(&c, cfg),
                patterns: diagnose(&c, cfg),
            }
        })
        .collect()
}

/// Human-scale byte count: powers of 1024 with two decimals (`256.00 MiB`),
/// plain `B` below 1 KiB. The one formatter every report in the workspace
/// shares, so plan trees and kernel summaries agree on units.
pub fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Device;

    #[test]
    fn streaming_kernel_classifies_memory_bound() {
        let dev = Device::a100();
        let before = dev.counters();
        dev.kernel("stream")
            .items(1 << 26, 4.0)
            .seq_read_bytes(1 << 28)
            .seq_write_bytes(1 << 28)
            .launch();
        let d = dev.counters().delta_since(&before);
        let r = roofline(&d, dev.config());
        assert_eq!(r.bottleneck, Bottleneck::MemoryBound);
        assert!(
            r.achieved_dram_bps / r.peak_dram_bps > 0.9,
            "streaming should approach peak bandwidth: {r:?}"
        );
        let pats = diagnose(&d, dev.config());
        assert_eq!(pats.len(), 1);
        assert_eq!(pats[0].pattern, AccessPattern::Streaming);
    }

    #[test]
    fn instruction_heavy_kernel_classifies_compute_bound() {
        let dev = Device::a100();
        let before = dev.counters();
        dev.kernel("alu")
            .items(1 << 26, 400.0)
            .seq_read_bytes(1 << 20)
            .launch();
        let d = dev.counters().delta_since(&before);
        let r = roofline(&d, dev.config());
        assert_eq!(r.bottleneck, Bottleneck::ComputeBound);
        assert!(r.issue_utilization > 0.9);
    }

    #[test]
    fn unclustered_gather_classifies_latency_bound_random_gather() {
        let dev = Device::a100();
        // 64 MB footprint at stride 16: misses L2, touches ~16x the ideal
        // sectors, pays the coalescing penalty.
        let n = 1usize << 20;
        let buf = dev.alloc::<i32>(n * 16, "x");
        let before = dev.counters();
        dev.kernel("gather")
            .items(n as u64, 18.5)
            .warp_loads(4, (0..n).map(|i| buf.addr_of((i * 16 + 5) % (n * 16))))
            .launch();
        let d = dev.counters().delta_since(&before);
        let r = roofline(&d, dev.config());
        assert_eq!(r.bottleneck, Bottleneck::LatencyBound);
        assert!(r.residual_secs > 0.0, "penalty time must be visible");
        let pats = diagnose(&d, dev.config());
        assert_eq!(pats[0].pattern, AccessPattern::RandomGather);
        assert!(pats[0].evidence.contains("sectors/request"));
    }

    #[test]
    fn cache_resident_gather_is_its_own_diagnosis() {
        let dev = Device::a100();
        let n = 1usize << 14; // 64 KiB, far below L2
        let buf = dev.alloc::<i32>(n, "small");
        dev.kernel("warmup")
            .warp_loads(4, (0..n).map(|i| buf.addr_of((i * 769) % n)))
            .launch();
        let before = dev.counters();
        dev.kernel("hot")
            .warp_loads(4, (0..n).map(|i| buf.addr_of((i * 769 + 13) % n)))
            .launch();
        let d = dev.counters().delta_since(&before);
        let pats = diagnose(&d, dev.config());
        assert_eq!(pats[0].pattern, AccessPattern::CacheResidentGather);
    }

    #[test]
    fn hot_atomics_classify_atomic_bound_contended_table() {
        let dev = Device::a100();
        let before = dev.counters();
        let n = 1u64 << 22;
        dev.kernel("agg").items(n, 4.0).atomics(n, n / 2).launch();
        let d = dev.counters().delta_since(&before);
        let r = roofline(&d, dev.config());
        assert_eq!(r.bottleneck, Bottleneck::AtomicBound);
        let pats = diagnose(&d, dev.config());
        assert!(pats
            .iter()
            .any(|p| p.pattern == AccessPattern::ContendedHashTable));
    }

    #[test]
    fn scattered_stores_diagnose_partition_scatter() {
        let dev = Device::a100();
        let n = 1usize << 18;
        let buf = dev.alloc::<i32>(n * 64, "parts");
        let before = dev.counters();
        dev.kernel("scatter")
            .items(n as u64, 8.0)
            .warp_stores(4, (0..n).map(|i| buf.addr_of((i * 64 + 31) % (n * 64))))
            .launch();
        let d = dev.counters().delta_since(&before);
        let pats = diagnose(&d, dev.config());
        assert!(
            pats.iter()
                .any(|p| p.pattern == AccessPattern::PartitionScatter),
            "scatter store must be diagnosed: {pats:?}"
        );
    }

    #[test]
    fn empty_counters_are_idle_with_no_patterns() {
        let cfg = crate::DeviceConfig::a100();
        let c = Counters::default();
        let r = roofline(&c, &cfg);
        assert_eq!(r.bottleneck, Bottleneck::Idle);
        assert_eq!(r.actual_secs, 0.0);
        assert!(diagnose(&c, &cfg).is_empty());
        assert!(r.summary().contains("idle"));
    }

    #[test]
    fn components_never_exceed_actual_by_construction() {
        // For any single launch, max(compute, dram+l2) + launch <= actual:
        // the model only ever adds (penalty, atomics) on top.
        let dev = Device::a100();
        let n = 1usize << 16;
        let buf = dev.alloc::<i32>(n * 16, "x");
        let before = dev.counters();
        dev.kernel("mixed")
            .items(n as u64, 12.0)
            .seq_read_bytes(1 << 22)
            .warp_loads(4, (0..n).map(|i| buf.addr_of(i * 16)))
            .atomics(1 << 12, 1 << 6)
            .launch();
        let d = dev.counters().delta_since(&before);
        let r = roofline(&d, dev.config());
        assert!(
            r.compute_secs.max(r.dram_secs + r.l2_secs) + r.launch_secs <= r.actual_secs + 1e-15
        );
        assert!(r.residual_secs >= 0.0);
    }

    #[test]
    fn analyze_kernels_orders_like_kernel_stats() {
        let dev = Device::a100();
        dev.enable_tracing();
        dev.kernel("big")
            .items(1 << 24, 4.0)
            .seq_read_bytes(1 << 28)
            .launch();
        dev.kernel("small").items(32, 1.0).launch();
        let tr = dev.take_trace().unwrap();
        let ka = analyze_kernels(std::slice::from_ref(&tr), dev.config());
        assert_eq!(ka.len(), 2);
        assert_eq!(ka[0].name, "big");
        assert_eq!(ka[0].roofline.bottleneck, Bottleneck::MemoryBound);
        assert_eq!(ka[1].name, "small");
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(1 << 20), "1.00 MiB");
        assert_eq!(human_bytes(256 << 20), "256.00 MiB");
        assert_eq!(human_bytes(3 * (1 << 30)), "3.00 GiB");
        assert_eq!(human_bytes(1_500_000_000), "1.40 GiB");
    }
}
