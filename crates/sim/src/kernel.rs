//! Kernel launch accounting: the cost model.
//!
//! A kernel's simulated time is `max(compute, memory) + atomic_serialization
//! + launch_overhead`:
//!
//! * compute = warp instructions / chip-wide issue rate;
//! * memory = DRAM traffic / effective bandwidth, where gather-style traffic
//!   is counted in *sectors actually touched per warp* and poorly coalesced
//!   sectors pay a latency-bound penalty (see [`crate::DeviceConfig`]);
//! * atomic serialization = the hottest contended address's update count
//!   times the per-update serialization cost — the bucket-chain partitioner's
//!   skew pathology (Figure 14 of the paper).
//!
//! The calibration is validated against Table 4 of the paper in
//! `tests/calibration.rs` of the `primitives` crate.

use crate::{Device, SimTime, SECTOR_BYTES, WARP_SIZE};

/// Builder describing one kernel launch. Obtain via [`Device::kernel`],
/// charge work to it, then call [`KernelBuilder::launch`].
#[must_use = "a kernel builder does nothing until launch() is called"]
pub struct KernelBuilder<'d> {
    dev: &'d Device,
    #[allow(dead_code)] // kept for debugging/tracing hooks
    name: &'static str,
    warp_instructions: u64,
    seq_read_bytes: u64,
    seq_write_bytes: u64,
    load_requests: u64,
    sectors_requested: u64,
    l2_hit_sectors: u64,
    dram_gather_sectors: u64,
    /// Gather DRAM bytes after the per-request coalescing penalty.
    penalized_gather_bytes: f64,
    atomics_total: u64,
    atomics_hottest: u64,
}

impl<'d> KernelBuilder<'d> {
    pub(crate) fn new(dev: &'d Device, name: &'static str) -> Self {
        KernelBuilder {
            dev,
            name,
            warp_instructions: 0,
            seq_read_bytes: 0,
            seq_write_bytes: 0,
            load_requests: 0,
            sectors_requested: 0,
            l2_hit_sectors: 0,
            dram_gather_sectors: 0,
            penalized_gather_bytes: 0.0,
            atomics_total: 0,
            atomics_hottest: 0,
        }
    }

    /// Charge instruction work for `n` data items, `warp_instr` warp
    /// instructions per warp of 32 items. The paper's gather kernel issues
    /// ~18.5 warp instructions per warp (Table 4: 77.6M for 2^27 items).
    pub fn items(mut self, n: u64, warp_instr: f64) -> Self {
        let warps = n.div_ceil(WARP_SIZE as u64);
        self.warp_instructions += (warps as f64 * warp_instr).round() as u64;
        self
    }

    /// Charge perfectly coalesced streaming reads.
    pub fn seq_read_bytes(mut self, bytes: u64) -> Self {
        self.seq_read_bytes += bytes;
        self
    }

    /// Charge perfectly coalesced streaming writes.
    pub fn seq_write_bytes(mut self, bytes: u64) -> Self {
        self.seq_write_bytes += bytes;
        self
    }

    /// Charge warp-level loads of `elem_size`-byte values at the given
    /// simulated addresses, 32 lanes per request. Addresses are deduplicated
    /// to 32-byte sectors per request (coalescing), filtered through the L2
    /// model, and the surviving DRAM sectors pay the uncoalesced penalty
    /// proportional to how far the request is from its ideal sector count.
    pub fn warp_loads<I>(mut self, elem_size: u64, addrs: I) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        let ideal = (elem_size * WARP_SIZE as u64).div_ceil(SECTOR_BYTES).max(1) as f64;
        let penalty = self.dev.inner.config.uncoalesced_penalty;
        let mut st = self.dev.inner.state.lock();
        let mut lane_sectors = [u64::MAX; WARP_SIZE];
        let mut lanes = 0usize;
        let mut iter = addrs.into_iter();
        loop {
            let addr = iter.next();
            if let Some(a) = addr {
                // A lane may touch two sectors if the element straddles a
                // boundary; element sizes here are 4/8 bytes and buffers are
                // 256-byte aligned, so one sector suffices.
                lane_sectors[lanes] = a / SECTOR_BYTES;
                lanes += 1;
            }
            if lanes == WARP_SIZE || (addr.is_none() && lanes > 0) {
                // One warp request: dedupe sectors, probe L2.
                let warp = &mut lane_sectors[..lanes];
                warp.sort_unstable();
                let mut distinct = 0u64;
                let mut dram = 0u64;
                let mut prev = u64::MAX;
                for &s in warp.iter() {
                    if s != prev {
                        distinct += 1;
                        if !st.l2.access(s) {
                            dram += 1;
                        }
                        prev = s;
                    }
                }
                self.load_requests += 1;
                self.sectors_requested += distinct;
                self.l2_hit_sectors += distinct - dram;
                self.dram_gather_sectors += dram;
                // Latency-bound penalty per *excess* sector, in units of a
                // fully coalesced 4-byte request (4 sectors). Crucially this
                // depends on how scattered the request is, not on the
                // element width — the paper observes that unclustered 4-byte
                // and 8-byte gathers cost about the same, since both touch
                // ~32 sectors per warp (Section 5.2.5).
                let spr = distinct as f64;
                let factor = 1.0 + penalty * ((spr - ideal).max(0.0) / 4.0);
                self.penalized_gather_bytes += dram as f64 * SECTOR_BYTES as f64 * factor;
                lanes = 0;
            }
            if addr.is_none() {
                break;
            }
        }
        self
    }

    /// Charge warp-level *stores* at the given addresses. Stores follow the
    /// same coalescing and penalty rules as loads; a DRAM-missing sector
    /// additionally costs a read-modify-write (the write is narrower than a
    /// sector), i.e. double traffic.
    pub fn warp_stores<I>(mut self, elem_size: u64, addrs: I) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        let before = self.dram_gather_sectors;
        self = self.warp_loads(elem_size, addrs);
        let new_dram = self.dram_gather_sectors - before;
        // RMW: each missing sector is both fetched and written back.
        self.penalized_gather_bytes += (new_dram * SECTOR_BYTES) as f64;
        self
    }

    /// Charge `total` global atomic updates of which the hottest single
    /// address receives `hottest`. The hottest address serializes.
    pub fn atomics(mut self, total: u64, hottest: u64) -> Self {
        self.atomics_total += total;
        self.atomics_hottest = self.atomics_hottest.max(hottest);
        let instr = self.dev.inner.config.atomic_instr_cost;
        self.warp_instructions += (total as f64 * instr / WARP_SIZE as f64).ceil() as u64;
        self
    }

    /// Launch: convert the accounted work into simulated time, advance the
    /// device clock and counters, and return the kernel's duration.
    pub fn launch(self) -> SimTime {
        let cfg = &self.dev.inner.config;
        let t_comp = self.warp_instructions as f64 / cfg.issue_rate();
        let seq = (self.seq_read_bytes + self.seq_write_bytes) as f64;
        let t_mem = (seq + self.penalized_gather_bytes) / cfg.effective_bandwidth()
            + (self.l2_hit_sectors * SECTOR_BYTES) as f64 / cfg.l2_bandwidth();
        let t_atomic = self.atomics_hottest as f64 * cfg.atomic_serialize_cycles / cfg.clock_hz;
        let t = t_comp.max(t_mem) + t_atomic + cfg.kernel_launch_overhead;

        let mut st = self.dev.inner.state.lock();
        let c = &mut st.counters;
        c.kernel_launches += 1;
        c.cycles += t * cfg.clock_hz;
        c.warp_instructions += self.warp_instructions;
        c.dram_read_bytes += self.seq_read_bytes + self.dram_gather_sectors * SECTOR_BYTES;
        c.dram_write_bytes += self.seq_write_bytes;
        c.load_requests += self.load_requests;
        c.sectors_requested += self.sectors_requested;
        c.l2_hits += self.l2_hit_sectors;
        c.l2_misses += self.dram_gather_sectors;
        c.atomics += self.atomics_total;
        st.clock += t;
        SimTime::from_secs(t)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Device, SECTOR_BYTES};

    #[test]
    fn streaming_kernel_is_bandwidth_bound() {
        let dev = Device::a100();
        let bytes = 1u64 << 30;
        let t = dev
            .kernel("stream")
            .items(bytes / 4, 4.0)
            .seq_read_bytes(bytes)
            .seq_write_bytes(bytes)
            .launch();
        let expected = 2.0 * bytes as f64 / dev.config().effective_bandwidth();
        assert!(
            (t.secs() - expected).abs() / expected < 0.05,
            "t={} expected~{expected}",
            t.secs()
        );
    }

    #[test]
    fn coalesced_loads_touch_ideal_sectors() {
        let dev = Device::a100();
        let buf = dev.alloc::<i32>(1 << 16, "x");
        dev.kernel("coalesced")
            .warp_loads(4, (0..buf.len()).map(|i| buf.addr_of(i)))
            .launch();
        let c = dev.counters();
        // 32 consecutive 4-byte lanes span exactly 4 sectors.
        assert_eq!(c.load_requests, (1 << 16) / 32);
        assert!((c.sectors_per_request() - 4.0).abs() < 0.25);
    }

    #[test]
    fn strided_loads_touch_many_sectors_and_cost_more() {
        let dev = Device::a100();
        // Large enough that memory traffic dwarfs the fixed launch overhead
        // and the strided footprint (64 MB) exceeds the 40 MB L2.
        let n = 1usize << 20;
        let buf = dev.alloc::<i32>(n * 16, "x");
        let t_seq = dev
            .kernel("seq")
            .warp_loads(4, (0..n).map(|i| buf.addr_of(i)))
            .launch();
        dev.reset_stats();
        let t_strided = dev
            .kernel("strided")
            .warp_loads(4, (0..n).map(|i| buf.addr_of(i * 16)))
            .launch();
        let c = dev.counters();
        assert!(c.sectors_per_request() > 16.0);
        assert!(t_strided.secs() > 4.0 * t_seq.secs());
    }

    #[test]
    fn l2_absorbs_repeated_random_access_to_small_region() {
        let dev = Device::a100();
        let n = 1usize << 14; // 64 KiB region, far below 40 MB L2
        let buf = dev.alloc::<i32>(n, "small");
        // Pseudo-random permutation touches every element twice.
        let addrs = |round: usize| {
            let buf = &buf;
            (0..n).map(move |i| buf.addr_of((i * 769 + round * 13) % n))
        };
        dev.kernel("warmup").warp_loads(4, addrs(0)).launch();
        let before = dev.counters();
        dev.kernel("hot").warp_loads(4, addrs(1)).launch();
        let d = dev.counters().delta_since(&before);
        assert!(
            d.l2_hit_rate() > 0.95,
            "expected hot region to hit in L2, got {}",
            d.l2_hit_rate()
        );
    }

    #[test]
    fn atomic_hotspot_serializes() {
        let dev = Device::a100();
        let n = 1u64 << 22;
        // All updates to one address.
        let t_hot = dev.kernel("hot").atomics(n, n).launch();
        // Updates spread over many addresses.
        let t_spread = dev.kernel("spread").atomics(n, n / 4096).launch();
        assert!(t_hot.secs() > 10.0 * t_spread.secs());
        assert_eq!(dev.counters().atomics, 2 * n);
    }

    #[test]
    fn stores_pay_rmw_traffic() {
        let dev = Device::a100();
        let n = 1usize << 14;
        let buf = dev.alloc::<i32>(n * 64, "x");
        let t_load = dev
            .kernel("l")
            .warp_loads(4, (0..n).map(|i| buf.addr_of(i * 64)))
            .launch();
        dev.reset_stats();
        dev.flush_l2();
        let t_store = dev
            .kernel("s")
            .warp_stores(4, (0..n).map(|i| buf.addr_of(i * 64)))
            .launch();
        assert!(t_store.secs() > t_load.secs());
    }

    #[test]
    fn partial_final_warp_counts_one_request() {
        let dev = Device::a100();
        let buf = dev.alloc::<i32>(40, "x");
        dev.kernel("tail")
            .warp_loads(4, (0..40).map(|i| buf.addr_of(i)))
            .launch();
        assert_eq!(dev.counters().load_requests, 2);
        let _ = SECTOR_BYTES;
    }
}
