//! Kernel launch accounting: the cost model.
//!
//! A kernel's simulated time is `max(compute, memory) + atomic_serialization
//! + launch_overhead`:
//!
//! * compute = warp instructions / chip-wide issue rate;
//! * memory = DRAM traffic / effective bandwidth, where gather-style traffic
//!   is counted in *sectors actually touched per warp* and poorly coalesced
//!   sectors pay a latency-bound penalty (see [`crate::DeviceConfig`]);
//! * atomic serialization = the hottest contended address's update count
//!   times the per-update serialization cost — the bucket-chain partitioner's
//!   skew pathology (Figure 14 of the paper).
//!
//! The calibration is validated against Table 4 of the paper in
//! `tests/calibration.rs` of the `primitives` crate.

use crate::{Device, L2Cache, SimTime, SECTOR_BYTES, WARP_SIZE};

/// Warps per block in the parallel warp-traffic path: addresses are
/// materialized block-wise (1 Mi addresses, 8 MiB of sector ids) so memory
/// stays bounded on arbitrarily long streams.
const PAR_BLOCK_WARPS: usize = 1 << 15;

/// Below this many warps per thread a block is charged sequentially — the
/// scoped-thread spawn cost would dominate. The outcome is identical either
/// way; this is purely a latency cutoff.
const PAR_MIN_WARPS_PER_THREAD: usize = 32;

/// Builder describing one kernel launch. Obtain via [`Device::kernel`],
/// charge work to it, then call [`KernelBuilder::launch`].
#[must_use = "a kernel builder does nothing until launch() is called"]
pub struct KernelBuilder<'d> {
    dev: &'d Device,
    name: &'static str,
    warp_instructions: u64,
    seq_read_bytes: u64,
    seq_write_bytes: u64,
    load_requests: u64,
    sectors_requested: u64,
    l2_hit_sectors: u64,
    dram_gather_sectors: u64,
    /// DRAM-missing sectors written by [`KernelBuilder::warp_stores`]; each
    /// costs a read-modify-write, so its write-back half is charged to
    /// `Counters::dram_write_bytes` at launch.
    store_writeback_sectors: u64,
    /// Gather DRAM bytes after the per-request coalescing penalty.
    penalized_gather_bytes: f64,
    atomics_total: u64,
    atomics_hottest: u64,
}

impl<'d> KernelBuilder<'d> {
    pub(crate) fn new(dev: &'d Device, name: &'static str) -> Self {
        KernelBuilder {
            dev,
            name,
            warp_instructions: 0,
            seq_read_bytes: 0,
            seq_write_bytes: 0,
            load_requests: 0,
            sectors_requested: 0,
            l2_hit_sectors: 0,
            dram_gather_sectors: 0,
            store_writeback_sectors: 0,
            penalized_gather_bytes: 0.0,
            atomics_total: 0,
            atomics_hottest: 0,
        }
    }

    /// Charge instruction work for `n` data items, `warp_instr` warp
    /// instructions per warp of 32 items. The paper's gather kernel issues
    /// ~18.5 warp instructions per warp (Table 4: 77.6M for 2^27 items).
    pub fn items(mut self, n: u64, warp_instr: f64) -> Self {
        let warps = n.div_ceil(WARP_SIZE as u64);
        self.warp_instructions += (warps as f64 * warp_instr).round() as u64;
        self
    }

    /// Charge perfectly coalesced streaming reads.
    pub fn seq_read_bytes(mut self, bytes: u64) -> Self {
        self.seq_read_bytes += bytes;
        self
    }

    /// Charge perfectly coalesced streaming writes.
    pub fn seq_write_bytes(mut self, bytes: u64) -> Self {
        self.seq_write_bytes += bytes;
        self
    }

    /// Charge warp-level loads of `elem_size`-byte values at the given
    /// simulated addresses, 32 lanes per request. Addresses are deduplicated
    /// to 32-byte sectors per request (coalescing), filtered through the L2
    /// model, and the surviving DRAM sectors pay the uncoalesced penalty
    /// proportional to how far the request is from its ideal sector count.
    ///
    /// With `host_threads > 1` (see [`crate::DeviceConfig::host_threads`])
    /// the accounting fans out across host cores: sector dedup and penalty
    /// math run per thread on warp-aligned chunks without the device lock,
    /// and the L2 is probed through disjoint set shards, which makes the
    /// resulting counters, times and hit/miss outcomes bit-identical to the
    /// sequential reference path.
    pub fn warp_loads<I>(self, elem_size: u64, addrs: I) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        let threads = self.dev.inner.config.host_threads.max(1);
        if threads == 1 {
            self.warp_loads_seq(elem_size, addrs)
        } else {
            self.warp_loads_par(elem_size, addrs, threads)
        }
    }

    /// The sequential reference implementation: streams addresses one at a
    /// time under the device lock, exactly as shipped originally.
    fn warp_loads_seq<I>(mut self, elem_size: u64, addrs: I) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        let ideal = (elem_size * WARP_SIZE as u64).div_ceil(SECTOR_BYTES).max(1) as f64;
        let penalty = self.dev.inner.config.uncoalesced_penalty;
        let query = self.dev.query;
        let mut st = self.dev.inner.state.lock();
        let l2 = st.l2_for(query);
        let mut lane_sectors = [u64::MAX; WARP_SIZE];
        let mut lanes = 0usize;
        let mut iter = addrs.into_iter();
        loop {
            let addr = iter.next();
            if let Some(a) = addr {
                // A lane may touch two sectors if the element straddles a
                // boundary; element sizes here are 4/8 bytes and buffers are
                // 256-byte aligned, so one sector suffices.
                lane_sectors[lanes] = a / SECTOR_BYTES;
                lanes += 1;
            }
            if lanes == WARP_SIZE || (addr.is_none() && lanes > 0) {
                // One warp request: dedupe sectors, probe L2.
                let warp = &mut lane_sectors[..lanes];
                warp.sort_unstable();
                let mut distinct = 0u64;
                let mut dram = 0u64;
                let mut prev = u64::MAX;
                for &s in warp.iter() {
                    if s != prev {
                        distinct += 1;
                        if !l2.access(s) {
                            dram += 1;
                        }
                        prev = s;
                    }
                }
                self.charge_warp(distinct, dram, ideal, penalty);
                lanes = 0;
            }
            if addr.is_none() {
                break;
            }
        }
        self
    }

    /// Fold one warp request's outcome into the builder. Shared by both
    /// paths; the parallel path calls it in warp order, so the f64 penalty
    /// accumulation happens in the exact sequence the reference path uses.
    #[inline]
    fn charge_warp(&mut self, distinct: u64, dram: u64, ideal: f64, penalty: f64) {
        self.load_requests += 1;
        self.sectors_requested += distinct;
        self.l2_hit_sectors += distinct - dram;
        self.dram_gather_sectors += dram;
        // Latency-bound penalty per *excess* sector, in units of a
        // fully coalesced 4-byte request (4 sectors). Crucially this
        // depends on how scattered the request is, not on the
        // element width — the paper observes that unclustered 4-byte
        // and 8-byte gathers cost about the same, since both touch
        // ~32 sectors per warp (Section 5.2.5).
        let spr = distinct as f64;
        let factor = 1.0 + penalty * ((spr - ideal).max(0.0) / 4.0);
        self.penalized_gather_bytes += dram as f64 * SECTOR_BYTES as f64 * factor;
    }

    /// The parallel path: materialize warp-aligned blocks of sector ids
    /// outside the device lock, then charge each block with `threads`
    /// workers. See `charge_block` for the determinism argument.
    fn warp_loads_par<I>(mut self, elem_size: u64, addrs: I, threads: usize) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        let ideal = (elem_size * WARP_SIZE as u64).div_ceil(SECTOR_BYTES).max(1) as f64;
        let penalty = self.dev.inner.config.uncoalesced_penalty;
        let query = self.dev.query;
        let block_lanes = PAR_BLOCK_WARPS * WARP_SIZE;
        let mut iter = addrs.into_iter();
        let mut sectors: Vec<u64> = Vec::with_capacity(block_lanes.min(1 << 16));
        loop {
            // Collect the next block without holding the lock — the address
            // iterator (often a closure over buffer contents) runs here.
            sectors.clear();
            while sectors.len() < block_lanes {
                match iter.next() {
                    Some(a) => sectors.push(a / SECTOR_BYTES),
                    None => break,
                }
            }
            if sectors.is_empty() {
                break;
            }
            let exhausted = sectors.len() < block_lanes;
            let mut st = self.dev.inner.state.lock();
            self.charge_block(st.l2_for(query), &sectors, threads, ideal, penalty);
            drop(st);
            if exhausted {
                break;
            }
        }
        self
    }

    /// Charge one warp-aligned block of sector ids using up to `threads`
    /// workers.
    ///
    /// Phase A (parallel, lock-free): workers own contiguous warp ranges;
    /// each warp is sorted and deduplicated locally, its distinct count
    /// recorded, and every distinct sector routed to the bucket of the L2
    /// shard owning its set — in (warp, ascending-sector) order.
    ///
    /// Phase B (parallel, under the caller's lock): each L2 shard owns a
    /// disjoint contiguous range of direct-mapped sets. A set's accesses
    /// all live in one shard, and the shard replays them in the original
    /// warp order (worker buckets visited in worker order = warp order;
    /// in-warp order is ascending, as in the sequential dedup loop), so
    /// every probe sees exactly the tag state it would have seen
    /// sequentially — hit/miss outcomes are bit-identical.
    ///
    /// Phase C (sequential): per-warp partials are folded into the builder
    /// in warp order, reproducing the reference f64 summation order.
    fn charge_block(
        &mut self,
        l2: &mut L2Cache,
        sectors: &[u64],
        threads: usize,
        ideal: f64,
        penalty: f64,
    ) {
        let warps = sectors.len().div_ceil(WARP_SIZE);
        if warps < PAR_MIN_WARPS_PER_THREAD * threads {
            self.charge_block_seq(l2, sectors, ideal, penalty);
            return;
        }
        let mask = l2.set_mask();
        let (chunk, mut shards) = l2.shards(threads);
        let n_shards = shards.len();
        let warps_per_worker = warps.div_ceil(threads);
        let mut distinct = vec![0u32; warps];

        // Phase A: per-warp dedup, bucketed by owning shard.
        let buckets: Vec<Vec<Vec<(u32, u64)>>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = sectors
                .chunks(warps_per_worker * WARP_SIZE)
                .zip(distinct.chunks_mut(warps_per_worker))
                .enumerate()
                .map(|(worker, (worker_sectors, worker_distinct))| {
                    scope.spawn(move |_| {
                        let base_warp = (worker * warps_per_worker) as u32;
                        let mut local: Vec<Vec<(u32, u64)>> =
                            (0..n_shards).map(|_| Vec::new()).collect();
                        let mut lane_sectors = [0u64; WARP_SIZE];
                        for (i, warp) in worker_sectors.chunks(WARP_SIZE).enumerate() {
                            let w = &mut lane_sectors[..warp.len()];
                            w.copy_from_slice(warp);
                            w.sort_unstable();
                            let mut d = 0u32;
                            let mut prev = u64::MAX;
                            for &s in w.iter() {
                                if s != prev {
                                    d += 1;
                                    let set = (s & mask) as usize;
                                    local[set / chunk].push((base_warp + i as u32, s));
                                    prev = s;
                                }
                            }
                            worker_distinct[i] = d;
                        }
                        local
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();

        // Phase B: disjoint-set L2 probing, one worker per shard.
        let dram_per_shard: Vec<Vec<u32>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter_mut()
                .enumerate()
                .map(|(sid, shard)| {
                    let buckets = &buckets;
                    scope.spawn(move |_| {
                        let mut dram = vec![0u32; warps];
                        for worker_buckets in buckets {
                            for &(w, s) in &worker_buckets[sid] {
                                let set = (s & mask) as usize;
                                if !shard.access(s, set) {
                                    dram[w as usize] += 1;
                                }
                            }
                        }
                        dram
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();

        // Phase C: fold per-warp partials in warp order.
        for (w, &d) in distinct.iter().enumerate() {
            let dram: u64 = dram_per_shard.iter().map(|v| u64::from(v[w])).sum();
            self.charge_warp(u64::from(d), dram, ideal, penalty);
        }
    }

    /// Reference charging of an already-materialized block, used when the
    /// block is too small to be worth fanning out.
    fn charge_block_seq(&mut self, l2: &mut L2Cache, sectors: &[u64], ideal: f64, penalty: f64) {
        let mut lane_sectors = [0u64; WARP_SIZE];
        for warp in sectors.chunks(WARP_SIZE) {
            let w = &mut lane_sectors[..warp.len()];
            w.copy_from_slice(warp);
            w.sort_unstable();
            let mut distinct = 0u64;
            let mut dram = 0u64;
            let mut prev = u64::MAX;
            for &s in w.iter() {
                if s != prev {
                    distinct += 1;
                    if !l2.access(s) {
                        dram += 1;
                    }
                    prev = s;
                }
            }
            self.charge_warp(distinct, dram, ideal, penalty);
        }
    }

    /// Charge warp-level *stores* at the given addresses. Stores follow the
    /// same coalescing and penalty rules as loads; a DRAM-missing sector
    /// additionally costs a read-modify-write (the write is narrower than a
    /// sector), i.e. double traffic.
    pub fn warp_stores<I>(mut self, elem_size: u64, addrs: I) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        let before = self.dram_gather_sectors;
        self = self.warp_loads(elem_size, addrs);
        let new_dram = self.dram_gather_sectors - before;
        // RMW: each missing sector is both fetched and written back. The
        // write-back half is tracked separately so launch() can charge it
        // to the DRAM-write counter as well as to time.
        self.store_writeback_sectors += new_dram;
        self.penalized_gather_bytes += (new_dram * SECTOR_BYTES) as f64;
        self
    }

    /// Charge `total` global atomic updates of which the hottest single
    /// address receives `hottest`. The hottest address serializes.
    pub fn atomics(mut self, total: u64, hottest: u64) -> Self {
        self.atomics_total += total;
        self.atomics_hottest = self.atomics_hottest.max(hottest);
        let instr = self.dev.inner.config.atomic_instr_cost;
        self.warp_instructions += (total as f64 * instr / WARP_SIZE as f64).ceil() as u64;
        self
    }

    /// Launch: convert the accounted work into simulated time, advance the
    /// device clock and counters, and return the kernel's duration.
    ///
    /// On a query handle the launch first passes the scheduling turn gate
    /// (blocking until the session's policy designates this query), then
    /// charges the work twice: to the query's private counters, clock and
    /// trace, and to the device-wide aggregates (whose trace tags the event
    /// with the query id, yielding the multi-tenant timeline).
    pub fn launch(self) -> SimTime {
        let cfg = &self.dev.inner.config;
        let t_comp = self.warp_instructions as f64 / cfg.issue_rate();
        let seq = (self.seq_read_bytes + self.seq_write_bytes) as f64;
        let t_mem = (seq + self.penalized_gather_bytes) / cfg.effective_bandwidth()
            + (self.l2_hit_sectors * SECTOR_BYTES) as f64 / cfg.l2_bandwidth();
        let t_atomic = self.atomics_hottest as f64 * cfg.atomic_serialize_cycles / cfg.clock_hz;
        let t = t_comp.max(t_mem) + t_atomic + cfg.kernel_launch_overhead;

        // Planning-scope launches (the planner's statistics samplers, see
        // `Device::with_planning`) charge nothing — no clock, counters,
        // trace, metrics or scheduling turn. They model work a cached plan
        // skips, so a recorded (cold) run and its cached replay must
        // observe identical bytes on every clock. Safe because sampling
        // kernels stream charges only (no `warp_loads`): they never mutate
        // the shared L2 image or the memory ledger.
        if crate::planning_active() {
            return SimTime::from_secs(t);
        }

        let query = self.dev.query;
        let gated = match query {
            Some(qid) => self.dev.acquire_turn(qid),
            None => false,
        };

        let mut st = self.dev.inner.state.lock();
        let dev_start = st.clock;
        st.clock += t;
        self.bump(&mut st.counters, t, cfg.clock_hz);
        let mut dropped = 0;
        if let Some(tr) = st.trace.as_deref_mut() {
            dropped += tr.push_kernel(self.event(dev_start, t, query));
        }
        if let Some(qid) = query {
            let q = &mut st.queries[qid as usize];
            let q_start = q.clock;
            q.clock += t;
            self.bump(&mut q.counters, t, cfg.clock_hz);
            if let Some(tr) = q.trace.as_deref_mut() {
                dropped += tr.push_kernel(self.event(q_start, t, query));
            }
        }
        crate::note_trace_drops(&mut st.metrics, dropped);
        let clock_after = st.clock;
        if let Some(m) = st.metrics.as_deref_mut() {
            // Same arithmetic as bump(): metrics totals cross-check against
            // Counters deltas and trace sums exactly.
            m.on_kernel(
                clock_after,
                query,
                t,
                &crate::metrics::KernelDelta {
                    warp_instructions: self.warp_instructions,
                    dram_read_bytes: self.seq_read_bytes + self.dram_gather_sectors * SECTOR_BYTES,
                    dram_write_bytes: self.seq_write_bytes
                        + self.store_writeback_sectors * SECTOR_BYTES,
                    load_requests: self.load_requests,
                    sectors_requested: self.sectors_requested,
                    l2_hits: self.l2_hit_sectors,
                    l2_misses: self.dram_gather_sectors,
                    atomics: self.atomics_total,
                },
            );
        }
        drop(st);
        if gated {
            self.dev.complete_turn(query.unwrap(), t);
        }
        SimTime::from_secs(t)
    }

    /// Fold this launch's work into a counter set.
    fn bump(&self, c: &mut crate::Counters, t: f64, clock_hz: f64) {
        c.kernel_launches += 1;
        c.cycles += t * clock_hz;
        c.warp_instructions += self.warp_instructions;
        c.dram_read_bytes += self.seq_read_bytes + self.dram_gather_sectors * SECTOR_BYTES;
        c.dram_write_bytes += self.seq_write_bytes + self.store_writeback_sectors * SECTOR_BYTES;
        c.load_requests += self.load_requests;
        c.sectors_requested += self.sectors_requested;
        c.l2_hits += self.l2_hit_sectors;
        c.l2_misses += self.dram_gather_sectors;
        c.atomics += self.atomics_total;
    }

    /// The trace record of this launch starting at `start` on some clock.
    fn event(
        &self,
        start: f64,
        dur: f64,
        query: Option<crate::QueryId>,
    ) -> crate::trace::KernelEvent {
        crate::trace::KernelEvent {
            name: self.name,
            start,
            dur,
            query,
            warp_instructions: self.warp_instructions,
            dram_read_bytes: self.seq_read_bytes + self.dram_gather_sectors * SECTOR_BYTES,
            dram_write_bytes: self.seq_write_bytes + self.store_writeback_sectors * SECTOR_BYTES,
            load_requests: self.load_requests,
            sectors_requested: self.sectors_requested,
            l2_hits: self.l2_hit_sectors,
            l2_misses: self.dram_gather_sectors,
            atomics: self.atomics_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Device, SECTOR_BYTES};

    #[test]
    fn streaming_kernel_is_bandwidth_bound() {
        let dev = Device::a100();
        let bytes = 1u64 << 30;
        let t = dev
            .kernel("stream")
            .items(bytes / 4, 4.0)
            .seq_read_bytes(bytes)
            .seq_write_bytes(bytes)
            .launch();
        let expected = 2.0 * bytes as f64 / dev.config().effective_bandwidth();
        assert!(
            (t.secs() - expected).abs() / expected < 0.05,
            "t={} expected~{expected}",
            t.secs()
        );
    }

    #[test]
    fn coalesced_loads_touch_ideal_sectors() {
        let dev = Device::a100();
        let buf = dev.alloc::<i32>(1 << 16, "x");
        dev.kernel("coalesced")
            .warp_loads(4, (0..buf.len()).map(|i| buf.addr_of(i)))
            .launch();
        let c = dev.counters();
        // 32 consecutive 4-byte lanes span exactly 4 sectors.
        assert_eq!(c.load_requests, (1 << 16) / 32);
        assert!((c.sectors_per_request() - 4.0).abs() < 0.25);
    }

    #[test]
    fn strided_loads_touch_many_sectors_and_cost_more() {
        let dev = Device::a100();
        // Large enough that memory traffic dwarfs the fixed launch overhead
        // and the strided footprint (64 MB) exceeds the 40 MB L2.
        let n = 1usize << 20;
        let buf = dev.alloc::<i32>(n * 16, "x");
        let t_seq = dev
            .kernel("seq")
            .warp_loads(4, (0..n).map(|i| buf.addr_of(i)))
            .launch();
        dev.reset_stats();
        let t_strided = dev
            .kernel("strided")
            .warp_loads(4, (0..n).map(|i| buf.addr_of(i * 16)))
            .launch();
        let c = dev.counters();
        assert!(c.sectors_per_request() > 16.0);
        assert!(t_strided.secs() > 4.0 * t_seq.secs());
    }

    #[test]
    fn l2_absorbs_repeated_random_access_to_small_region() {
        let dev = Device::a100();
        let n = 1usize << 14; // 64 KiB region, far below 40 MB L2
        let buf = dev.alloc::<i32>(n, "small");
        // Pseudo-random permutation touches every element twice.
        let addrs = |round: usize| {
            let buf = &buf;
            (0..n).map(move |i| buf.addr_of((i * 769 + round * 13) % n))
        };
        dev.kernel("warmup").warp_loads(4, addrs(0)).launch();
        let before = dev.counters();
        dev.kernel("hot").warp_loads(4, addrs(1)).launch();
        let d = dev.counters().delta_since(&before);
        assert!(
            d.l2_hit_rate() > 0.95,
            "expected hot region to hit in L2, got {}",
            d.l2_hit_rate()
        );
    }

    #[test]
    fn atomic_hotspot_serializes() {
        let dev = Device::a100();
        let n = 1u64 << 22;
        // All updates to one address.
        let t_hot = dev.kernel("hot").atomics(n, n).launch();
        // Updates spread over many addresses.
        let t_spread = dev.kernel("spread").atomics(n, n / 4096).launch();
        assert!(t_hot.secs() > 10.0 * t_spread.secs());
        assert_eq!(dev.counters().atomics, 2 * n);
    }

    #[test]
    fn stores_pay_rmw_traffic() {
        let dev = Device::a100();
        let n = 1usize << 14;
        let buf = dev.alloc::<i32>(n * 64, "x");
        let t_load = dev
            .kernel("l")
            .warp_loads(4, (0..n).map(|i| buf.addr_of(i * 64)))
            .launch();
        let read_only = dev.counters();
        assert_eq!(
            read_only.dram_write_bytes, 0,
            "loads must not charge DRAM writes"
        );
        dev.reset_stats();
        dev.flush_l2();
        let t_store = dev
            .kernel("s")
            .warp_stores(4, (0..n).map(|i| buf.addr_of(i * 64)))
            .launch();
        assert!(t_store.secs() > t_load.secs());
        // The RMW write-back must show up in the write counter, one sector
        // per DRAM-missing store sector.
        let c = dev.counters();
        assert!(c.dram_write_bytes > 0, "RMW write-back missing from writes");
        assert_eq!(c.dram_write_bytes, c.l2_misses * SECTOR_BYTES);
    }

    #[test]
    fn parallel_path_is_bit_identical_to_sequential() {
        // A mixed stream: strided (uncoalesced), sequential, and a
        // conflict-heavy modulus pattern, over enough warps to engage the
        // parallel path. Counters, simulated time and clock must match the
        // host_threads=1 reference exactly.
        let run = |threads: usize| {
            let dev = Device::new(crate::DeviceConfig::a100().with_host_threads(threads));
            let n = 1usize << 16;
            let buf = dev.alloc::<i32>(n * 16, "x");
            let t1 = dev
                .kernel("mixed")
                .warp_loads(4, (0..n).map(|i| buf.addr_of(i * 16)))
                .warp_loads(4, (0..n).map(|i| buf.addr_of(i)))
                .warp_stores(8, (0..n).map(|i| buf.addr_of((i * 769) % (n * 16))))
                .launch();
            let t2 = dev
                .kernel("tail")
                .warp_loads(4, (0..40).map(|i| buf.addr_of(i)))
                .launch();
            (dev.counters(), t1, t2, dev.elapsed())
        };
        let reference = run(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(run(threads), reference, "host_threads={threads}");
        }
    }

    #[test]
    fn partial_final_warp_counts_one_request() {
        let dev = Device::a100();
        let buf = dev.alloc::<i32>(40, "x");
        dev.kernel("tail")
            .warp_loads(4, (0..40).map(|i| buf.addr_of(i)))
            .launch();
        assert_eq!(dev.counters().load_requests, 2);
        let _ = SECTOR_BYTES;
    }
}
