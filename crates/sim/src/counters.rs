//! Cumulative hardware counters, mirroring the Nsight Compute metrics the
//! paper reports in Table 4.

use serde::{Deserialize, Serialize};

/// Cumulative per-device counters.
///
/// The fields correspond to the profiler metrics of Table 4: total cycles,
/// warp instructions, DRAM traffic, load requests and the sectors they
/// touched, plus L2 hit/miss totals from the simulator's cache model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Counters {
    /// Number of kernel launches.
    pub kernel_launches: u64,
    /// Total simulated cycles across all launches (device clock domain).
    pub cycles: f64,
    /// Total warp instructions issued.
    pub warp_instructions: u64,
    /// Bytes read from DRAM (sequential + gather misses).
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM: sequential stores plus the write-back half of
    /// read-modify-write scatter stores (each DRAM-missing store sector is
    /// fetched and written back).
    pub dram_write_bytes: u64,
    /// Warp-level load requests issued by gather-style accesses.
    pub load_requests: u64,
    /// Sectors touched by those load requests (before the L2 filter).
    pub sectors_requested: u64,
    /// Gather sectors that hit in the modeled L2.
    pub l2_hits: u64,
    /// Gather sectors that missed L2 and paid DRAM traffic.
    pub l2_misses: u64,
    /// Global atomic operations performed.
    pub atomics: u64,
}

impl Counters {
    /// Average sectors touched per warp load request — the coalescing
    /// quality metric of Table 4 (≈18 unclustered vs ≈6 clustered).
    pub fn sectors_per_request(&self) -> f64 {
        if self.load_requests == 0 {
            0.0
        } else {
            self.sectors_requested as f64 / self.load_requests as f64
        }
    }

    /// L2 hit rate over gather traffic.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Average cycles per warp instruction — Table 4 reports ~1037 for the
    /// unclustered gather vs ~116 for the clustered one.
    pub fn cycles_per_warp_instruction(&self) -> f64 {
        if self.warp_instructions == 0 {
            0.0
        } else {
            self.cycles / self.warp_instructions as f64
        }
    }

    /// Counter-wise difference `self - earlier`; use to isolate one
    /// kernel or phase out of a longer run.
    pub fn delta_since(&self, earlier: &Counters) -> CountersDelta {
        CountersDelta(Counters {
            kernel_launches: self.kernel_launches - earlier.kernel_launches,
            cycles: self.cycles - earlier.cycles,
            warp_instructions: self.warp_instructions - earlier.warp_instructions,
            dram_read_bytes: self.dram_read_bytes - earlier.dram_read_bytes,
            dram_write_bytes: self.dram_write_bytes - earlier.dram_write_bytes,
            load_requests: self.load_requests - earlier.load_requests,
            sectors_requested: self.sectors_requested - earlier.sectors_requested,
            l2_hits: self.l2_hits - earlier.l2_hits,
            l2_misses: self.l2_misses - earlier.l2_misses,
            atomics: self.atomics - earlier.atomics,
        })
    }
}

impl std::ops::AddAssign<&Counters> for Counters {
    fn add_assign(&mut self, rhs: &Counters) {
        self.kernel_launches += rhs.kernel_launches;
        self.cycles += rhs.cycles;
        self.warp_instructions += rhs.warp_instructions;
        self.dram_read_bytes += rhs.dram_read_bytes;
        self.dram_write_bytes += rhs.dram_write_bytes;
        self.load_requests += rhs.load_requests;
        self.sectors_requested += rhs.sectors_requested;
        self.l2_hits += rhs.l2_hits;
        self.l2_misses += rhs.l2_misses;
        self.atomics += rhs.atomics;
    }
}

impl std::ops::Add<&Counters> for Counters {
    type Output = Counters;
    fn add(mut self, rhs: &Counters) -> Counters {
        self += rhs;
        self
    }
}

/// A counter delta between two snapshots; dereferences to [`Counters`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountersDelta(pub Counters);

impl std::ops::Deref for CountersDelta {
    type Target = Counters;
    fn deref(&self) -> &Counters {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero() {
        let c = Counters::default();
        assert_eq!(c.sectors_per_request(), 0.0);
        assert_eq!(c.l2_hit_rate(), 0.0);
        assert_eq!(c.cycles_per_warp_instruction(), 0.0);
    }

    #[test]
    fn add_accumulates_fieldwise() {
        let a = Counters {
            kernel_launches: 1,
            cycles: 10.0,
            dram_read_bytes: 64,
            ..Default::default()
        };
        let b = Counters {
            kernel_launches: 2,
            cycles: 5.0,
            atomics: 7,
            ..Default::default()
        };
        let sum = a.clone() + &b;
        assert_eq!(sum.kernel_launches, 3);
        assert_eq!(sum.cycles, 15.0);
        assert_eq!(sum.dram_read_bytes, 64);
        assert_eq!(sum.atomics, 7);
        let mut acc = a;
        acc += &b;
        assert_eq!(acc, sum);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let early = Counters {
            kernel_launches: 1,
            cycles: 100.0,
            warp_instructions: 10,
            dram_read_bytes: 64,
            ..Default::default()
        };
        let late = Counters {
            kernel_launches: 3,
            cycles: 400.0,
            warp_instructions: 50,
            dram_read_bytes: 256,
            load_requests: 4,
            sectors_requested: 40,
            ..Default::default()
        };
        let d = late.delta_since(&early);
        assert_eq!(d.kernel_launches, 2);
        assert_eq!(d.cycles, 300.0);
        assert_eq!(d.warp_instructions, 40);
        assert_eq!(d.dram_read_bytes, 192);
        assert_eq!(d.sectors_per_request(), 10.0);
    }
}
