//! Multi-query scheduling on one simulated device.
//!
//! The paper's framework assumes an operator owns the whole GPU; a
//! production engine serves many tenants on one device. This module adds
//! the device-side half of that story:
//!
//! * **Admission control** — each query reserves a fixed memory budget out
//!   of the device's free capacity before it runs. Reservations are granted
//!   in policy order (query-id FIFO for the fair-share policies, predicted
//!   cost for the shortest-job policies); a query whose budget does not fit
//!   queues behind the head of that line until earlier queries retire and
//!   release theirs. Because the sum of granted budgets never exceeds the
//!   free capacity, no tenant can OOM a co-tenant. Sessions may also bound
//!   the waiting room ([`QueueLimits`]): an arrival that cannot be admitted
//!   immediately and finds the queue full is *shed* — marked finished
//!   without ever holding a reservation — rather than waiting forever.
//! * **Kernel-granular interleaving** — a query's kernel launches pass
//!   through a turn gate: the launch blocks until the scheduling policy
//!   designates that query, performs its accounting, then hands the turn
//!   on. The designation is a pure function of *simulated* state (query
//!   ids, per-query busy time, weights, predicted costs), so the
//!   interleaving — and with it every counter, clock and trace byte — is
//!   deterministic regardless of host thread timing.
//! * **Turn-gated completion stamp** — every completed turn stamps the
//!   owning query with the post-kernel simulated clock; retire reads the
//!   stamp instead of the live device clock. A query's completion time is
//!   therefore the clock right after its last kernel — a pure function of
//!   the (deterministic) turn sequence — rather than whatever the clock
//!   happened to read when its host thread got around to retiring. That is
//!   what makes latency metrics and full exports byte-identical across
//!   *all* policies and host-thread counts, not just `Serial`.
//! * **Virtualized device state** — each query gets its own counters,
//!   clock, L2 image, trace and budget-capped memory sub-ledger (see
//!   `lib.rs`), so a query's observable execution is touched only by its
//!   own kernels, in program order. That is the whole concurrent-equals-
//!   serial argument: per-query state evolves identically under any policy.
//!
//! The engine's `scheduler` module drives this API; it is exposed on
//! [`crate::Device`] as the `sched_*` methods.

use serde::{Deserialize, Serialize};

/// Identifier of one admitted query on a device, assigned densely from 0
/// in registration order.
pub type QueryId = u32;

/// How the turn gate picks the next query to run a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// Run admitted queries to completion in query-id order — the serial
    /// baseline the equivalence suite compares against. (It still uses the
    /// same budgets, ids and accounting as the concurrent policies.)
    Serial,
    /// Cycle through runnable queries in id order, one kernel per turn.
    RoundRobin,
    /// Designate the runnable query with the smallest `busy_time / weight`
    /// (lowest id on ties): long-run device time is shared in proportion
    /// to the configured weights.
    WeightedFair,
    /// Shortest job first: designate the runnable query with the smallest
    /// *predicted* execution time (lowest id on ties), and grant budget
    /// reservations in the same order. Preemptive at kernel granularity: a
    /// newly arrived shorter job takes the turn at the next kernel
    /// boundary.
    Sjf,
    /// Shortest job first with aging: rank by
    /// `predicted / (1 + wait_time)`, so a long job's effective rank decays
    /// toward zero the longer it waits and it cannot starve behind an
    /// endless stream of short arrivals.
    SjfAging,
}

impl SchedPolicy {
    /// Stable lowercase label for reports.
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::Serial => "serial",
            SchedPolicy::RoundRobin => "round_robin",
            SchedPolicy::WeightedFair => "weighted_fair",
            SchedPolicy::Sjf => "sjf",
            SchedPolicy::SjfAging => "sjf_aging",
        }
    }

    /// Whether admission and designation rank by predicted cost rather
    /// than id order.
    fn cost_ordered(self) -> bool {
        matches!(self, SchedPolicy::Sjf | SchedPolicy::SjfAging)
    }
}

/// Bounds on the waiting room (arrived but not yet admitted queries) of a
/// scheduling session. The default is unbounded — the pre-existing
/// behaviour. With `total_depth: Some(0)` nothing ever waits: a query is
/// admitted the instant it arrives or shed on the spot, which degrades the
/// bounded queue to pure admission control.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueueLimits {
    /// Maximum queries that may wait for admission at once, across all
    /// classes. `None` = unbounded.
    pub total_depth: Option<usize>,
    /// Per-class waiting caps, indexed by the class index a query was
    /// registered with. Classes beyond the vector (or `None` entries) are
    /// uncapped.
    pub per_class_depth: Vec<Option<usize>>,
}

/// What [`crate::Device::sched_admit`] resolved to: the query either holds
/// its reservation and may launch kernels, or it was shed by the bounded
/// queue and must not touch the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// The reservation was granted; run the query.
    Admitted,
    /// The waiting room was full when the query arrived; it was dropped
    /// without ever holding a reservation and its completion time is its
    /// arrival time.
    Shed,
}

/// Typed payload carried by the panic a budget-capped allocation raises
/// when a query's sub-ledger would exceed its reservation.
///
/// The device cannot return a `Result` from deep inside an executing
/// operator (the OOM surface is `DeviceBuffer` construction), so — like the
/// device-capacity OOM — the failure unwinds; unlike it, the payload is
/// typed so a scheduler can `catch_unwind`, downcast, and convert it into
/// its own error type while co-tenants keep running.
#[derive(Debug, Clone)]
pub struct BudgetError {
    /// The query whose allocation failed.
    pub query: QueryId,
    /// The query's reserved budget, bytes.
    pub budget_bytes: u64,
    /// Bytes the failing allocation requested (after alignment rounding).
    pub requested_bytes: u64,
    /// Bytes the query already had in use.
    pub in_use_bytes: u64,
    /// Label of the failing allocation.
    pub label: String,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "query {} exceeded its {} byte memory budget allocating {} bytes \
             for '{}' ({} already in use)",
            self.query, self.budget_bytes, self.requested_bytes, self.label, self.in_use_bytes
        )
    }
}

/// Error returned by [`crate::Device::sched_register`] when a query's
/// requested budget can never be satisfied on this device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionError {
    /// Bytes the query asked to reserve.
    pub requested_bytes: u64,
    /// Free device bytes when the scheduling session started (capacity
    /// minus catalog residents) — the most any reservation can get.
    pub available_bytes: u64,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requested budget of {} bytes exceeds the device's {} free bytes",
            self.requested_bytes, self.available_bytes
        )
    }
}

/// Scheduling outcome of one retired query, for fairness reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySchedStats {
    /// Simulated seconds of kernel time this query received.
    pub busy_secs: f64,
    /// The query's turn-gated completion stamp (seconds): the simulated
    /// clock right after its last kernel turn (its admission time if it
    /// ran no kernels; its arrival time if it was shed).
    pub completion_secs: f64,
    /// Device clock when the query's budget reservation was granted.
    pub admitted_secs: f64,
    /// Device clock when the query arrived — registration time for
    /// closed-loop queries, the scheduled open-loop arrival otherwise.
    pub arrival_secs: f64,
    /// Device clock at the query's first completed kernel turn — when it
    /// first actually ran. `None` if it never launched a kernel.
    pub started_secs: Option<f64>,
    /// The reservation the query ran under, bytes.
    pub budget_bytes: u64,
    /// The query was shed by the bounded queue: it never held a
    /// reservation and ran nothing.
    pub shed: bool,
    /// Serving class label, when the session annotated one.
    pub class: Option<String>,
    /// Per-class latency target (seconds), when the session set one.
    pub slo_secs: Option<f64>,
}

/// Per-query scheduling bookkeeping.
pub(crate) struct QuerySched {
    weight: f64,
    budget_bytes: u64,
    /// Predicted execution time (seconds) from the engine's cost model;
    /// the ranking key of the shortest-job policies. Zero when the caller
    /// has no estimate.
    predicted_secs: f64,
    /// Admission class index, for per-class queue depth limits.
    class: Option<u32>,
    admitted: bool,
    finished: bool,
    shed: bool,
    busy_secs: f64,
    admitted_secs: f64,
    completion_secs: f64,
    /// Turn-gated completion stamp: the clock right after this query's
    /// most recent kernel turn (seeded with the admission time). Retire
    /// copies it into `completion_secs` instead of reading the live device
    /// clock, which keeps completion times independent of host timing.
    stamp_secs: f64,
    /// Simulated time at which the query enters the system. Until then it
    /// is invisible to admission and designation.
    arrival_secs: f64,
    arrived: bool,
    /// Device clock at the first completed kernel turn.
    first_turn_secs: Option<f64>,
    /// Contiguous runs of this query's kernel turns `[(start, end)]` on the
    /// device clock, recorded only when [`SchedState::record_slices`] is
    /// set (lifecycle tracing active). Consecutive turns with no foreign
    /// clock advance in between coalesce into one slice.
    slices: Vec<(f64, f64)>,
    /// Serving class label attached by the session for lifecycle exports.
    class_name: Option<String>,
    /// Per-class latency target attached by the session.
    slo_secs: Option<f64>,
}

/// The state behind the turn gate. Guarded by a dedicated `std` mutex (and
/// condvar) in `DeviceInner`, *never* held together with the device-state
/// lock.
#[derive(Default)]
pub(crate) struct SchedState {
    policy: Option<SchedPolicy>,
    limits: QueueLimits,
    queries: Vec<QuerySched>,
    designated: Option<QueryId>,
    /// Round-robin resume point: the first id considered for the next turn.
    rr_cursor: u32,
    /// Sum of granted (admitted, unretired) reservations.
    reserved_bytes: u64,
    /// Free device bytes at session start (capacity minus base residents).
    available_bytes: u64,
    /// Mirror of the device clock, maintained without ever touching the
    /// state lock: seeded at `start`, advanced by each completed turn and
    /// each committed idle advance. During a session those are the only
    /// ways the device clock moves, and the mirror applies the identical
    /// float additions in identical order, so the two are *exactly* equal —
    /// every timestamp in this module reads simulated time from here.
    clock: f64,
    /// An idle advance is in flight: one thread is applying a clock jump to
    /// the device state with the sched lock released. Until it commits via
    /// [`SchedState::finish_idle_advance`], no other thread may start one.
    advancing: bool,
    /// Record per-query exec slices in [`SchedState::complete_turn`]. Set
    /// by the device when lifecycle tracing is active at session start;
    /// zero-cost (one branch per turn) otherwise.
    pub(crate) record_slices: bool,
}

impl SchedState {
    pub(crate) fn start(
        &mut self,
        policy: SchedPolicy,
        available_bytes: u64,
        device_clock: f64,
        limits: QueueLimits,
    ) {
        assert!(
            self.policy.is_none(),
            "a scheduling session is already active on this device"
        );
        self.policy = Some(policy);
        self.limits = limits;
        self.queries.clear();
        self.designated = None;
        self.rr_cursor = 0;
        self.reserved_bytes = 0;
        self.available_bytes = available_bytes;
        self.clock = device_clock;
        self.advancing = false;
        self.record_slices = false;
    }

    pub(crate) fn finish(&mut self) {
        assert!(
            self.queries.iter().all(|q| q.finished),
            "sched_finish with unretired queries"
        );
        self.policy = None;
        self.designated = None;
    }

    pub(crate) fn active(&self) -> bool {
        self.policy.is_some()
    }

    /// Register a query with the session; returns its id. Admission (the
    /// actual reservation) happens separately, in policy order.
    pub(crate) fn register(
        &mut self,
        weight: f64,
        budget_bytes: u64,
    ) -> Result<QueryId, AdmissionError> {
        let clock = self.clock;
        self.register_spec(weight, budget_bytes, clock, 0.0, None)
    }

    /// Register a query that arrives at `arrival_secs` on the simulated
    /// clock (possibly in the future: open-loop load generation).
    pub(crate) fn register_at(
        &mut self,
        weight: f64,
        budget_bytes: u64,
        arrival_secs: f64,
    ) -> Result<QueryId, AdmissionError> {
        self.register_spec(weight, budget_bytes, arrival_secs, 0.0, None)
    }

    /// Register a query with its full serving spec: arrival time (possibly
    /// in the future), predicted execution time (the shortest-job ranking
    /// key) and admission class (for per-class queue limits). Until the
    /// clock reaches its arrival the query is invisible to admission and
    /// designation; when every in-system query has drained and only future
    /// arrivals remain, the clock jumps forward (see
    /// [`SchedState::begin_idle_advance`]).
    pub(crate) fn register_spec(
        &mut self,
        weight: f64,
        budget_bytes: u64,
        arrival_secs: f64,
        predicted_secs: f64,
        class: Option<u32>,
    ) -> Result<QueryId, AdmissionError> {
        assert!(self.active(), "sched_register outside a session");
        assert!(weight > 0.0, "query weight must be positive");
        assert!(
            arrival_secs.is_finite(),
            "query arrival time must be finite"
        );
        assert!(
            predicted_secs.is_finite() && predicted_secs >= 0.0,
            "predicted time must be finite and non-negative"
        );
        if budget_bytes > self.available_bytes {
            return Err(AdmissionError {
                requested_bytes: budget_bytes,
                available_bytes: self.available_bytes,
            });
        }
        let id = self.queries.len() as QueryId;
        self.queries.push(QuerySched {
            weight,
            budget_bytes,
            predicted_secs,
            class,
            admitted: false,
            finished: false,
            shed: false,
            busy_secs: 0.0,
            admitted_secs: 0.0,
            completion_secs: 0.0,
            stamp_secs: arrival_secs,
            arrival_secs,
            arrived: arrival_secs <= self.clock,
            first_turn_secs: None,
            slices: Vec::new(),
            class_name: None,
            slo_secs: None,
        });
        Ok(id)
    }

    /// Attach a serving-class label and latency target to a registered
    /// query, for lifecycle exports and SLO accounting.
    pub(crate) fn annotate(
        &mut self,
        id: QueryId,
        class_name: Option<String>,
        slo_secs: Option<f64>,
    ) {
        let q = &mut self.queries[id as usize];
        q.class_name = class_name;
        q.slo_secs = slo_secs;
    }

    /// The exec slices recorded for a query (empty unless
    /// [`SchedState::record_slices`] was set for the session).
    pub(crate) fn slices(&self, id: QueryId) -> Vec<(f64, f64)> {
        self.queries[id as usize].slices.clone()
    }

    /// Flip queries whose arrival time the clock has reached to arrived;
    /// returns the newly arrived ids in id order (the shed check runs over
    /// exactly these).
    fn mark_arrivals(&mut self) -> Vec<QueryId> {
        let mut newly = Vec::new();
        for (i, q) in self.queries.iter_mut().enumerate() {
            if !q.arrived && q.arrival_secs <= self.clock {
                q.arrived = true;
                newly.push(i as QueryId);
            }
        }
        newly
    }

    /// A query occupying the waiting room: in the system but not yet
    /// holding a reservation.
    fn waiting(q: &QuerySched) -> bool {
        q.arrived && !q.admitted && !q.finished
    }

    /// The policy's ranking key for a waiting or runnable query. Lower
    /// runs (or is admitted) first; ties break toward the lower id at the
    /// call sites.
    fn rank(&self, q: &QuerySched) -> f64 {
        match self.policy {
            Some(SchedPolicy::SjfAging) => {
                // A job's rank decays with its time in system, so waiting
                // long jobs eventually outrank fresh short ones.
                q.predicted_secs / (1.0 + (self.clock - q.arrival_secs).max(0.0))
            }
            _ => q.predicted_secs,
        }
    }

    /// Grant reservations in policy order until one does not fit: id
    /// (FIFO) order for the fair-share policies, predicted-cost order for
    /// the shortest-job policies. The head of the chosen line blocks
    /// everyone behind it, which keeps admission order — and therefore
    /// everything downstream — deterministic. Queries that have not yet
    /// *arrived* are skipped rather than blocking.
    pub(crate) fn admit_pass(&mut self) {
        let cost_ordered = self.policy.is_some_and(|p| p.cost_ordered());
        let mut order: Vec<QueryId> = (0..self.queries.len() as QueryId)
            .filter(|&id| Self::waiting(&self.queries[id as usize]))
            .collect();
        if cost_ordered {
            order.sort_by(|&a, &b| {
                let (qa, qb) = (&self.queries[a as usize], &self.queries[b as usize]);
                self.rank(qa)
                    .partial_cmp(&self.rank(qb))
                    .unwrap()
                    .then(a.cmp(&b))
            });
        }
        for id in order {
            let q = &mut self.queries[id as usize];
            if self.reserved_bytes + q.budget_bytes > self.available_bytes {
                break;
            }
            self.reserved_bytes += q.budget_bytes;
            q.admitted = true;
            q.admitted_secs = self.clock;
            // A query that never launches a kernel completes the moment it
            // is admitted; every completed turn advances this stamp.
            q.stamp_secs = self.clock;
        }
        if self.designated.is_none() {
            self.redesignate();
        }
    }

    /// Shed newly arrived queries that were not admitted on arrival and
    /// find the waiting room full. `candidates` are processed in id order;
    /// a shed query finishes immediately (completion = arrival) without
    /// ever holding a reservation. With unbounded limits this is a no-op.
    pub(crate) fn shed_overflow(&mut self, candidates: &[QueryId]) {
        for &id in candidates {
            if !Self::waiting(&self.queries[id as usize]) {
                continue;
            }
            let class = self.queries[id as usize].class;
            let others = |st: &SchedState, same_class: bool| {
                st.queries
                    .iter()
                    .enumerate()
                    .filter(|(i, q)| {
                        *i as QueryId != id && Self::waiting(q) && (!same_class || q.class == class)
                    })
                    .count()
            };
            let mut shed = self
                .limits
                .total_depth
                .is_some_and(|cap| others(self, false) >= cap);
            if !shed {
                if let Some(c) = class {
                    if let Some(&Some(cap)) = self.limits.per_class_depth.get(c as usize) {
                        shed = others(self, true) >= cap;
                    }
                }
            }
            if shed {
                let q = &mut self.queries[id as usize];
                q.finished = true;
                q.shed = true;
                q.completion_secs = q.arrival_secs;
                q.stamp_secs = q.arrival_secs;
            }
        }
    }

    /// Run the arrival pipeline after a registration: admission pass, then
    /// the shed check for the new query if it arrived unadmitted.
    pub(crate) fn on_register(&mut self, id: QueryId) {
        self.admit_pass();
        self.shed_overflow(&[id]);
    }

    /// If the device is idle (no runnable query) but future arrivals exist,
    /// claim the right to jump the clock to the earliest one. Returns the
    /// jump delta; the caller must release the sched lock, advance the
    /// *device* clock by the delta, then commit with
    /// [`SchedState::finish_idle_advance`]. The `advancing` flag keeps the
    /// jump exclusive; designation stays `None` until the commit, so no
    /// kernel can read the device clock mid-jump (any admitted unfinished
    /// query would be designated and therefore block the advance).
    pub(crate) fn begin_idle_advance(&mut self) -> Option<f64> {
        if !self.active() || self.advancing || self.designated.is_some() {
            return None;
        }
        let next = self
            .queries
            .iter()
            .filter(|q| !q.arrived && !q.finished && q.arrival_secs > self.clock)
            .map(|q| q.arrival_secs)
            .fold(f64::INFINITY, f64::min);
        if !next.is_finite() {
            return None;
        }
        self.advancing = true;
        Some(next - self.clock)
    }

    /// Commit an idle advance after the device clock has been moved.
    pub(crate) fn finish_idle_advance(&mut self, delta: f64) {
        debug_assert!(self.advancing, "finish_idle_advance without begin");
        self.advancing = false;
        self.clock += delta;
        let newly = self.mark_arrivals();
        self.admit_pass();
        self.shed_overflow(&newly);
        self.redesignate();
    }

    pub(crate) fn is_admitted(&self, id: QueryId) -> bool {
        self.queries[id as usize].admitted
    }

    pub(crate) fn is_shed(&self, id: QueryId) -> bool {
        self.queries[id as usize].shed
    }

    pub(crate) fn is_designated(&self, id: QueryId) -> bool {
        self.designated == Some(id)
    }

    /// Account a completed kernel turn and pass the turn on. The clock
    /// mirror advances with the kernel (the device clock already did, under
    /// the state lock), the owning query's completion stamp moves to the
    /// post-kernel clock, and new arrivals may enter the system.
    pub(crate) fn complete_turn(&mut self, id: QueryId, kernel_secs: f64) {
        debug_assert_eq!(self.designated, Some(id), "turn completed out of order");
        let turn_start = self.clock;
        self.queries[id as usize].busy_secs += kernel_secs;
        self.clock += kernel_secs;
        let clock = self.clock;
        {
            let q = &mut self.queries[id as usize];
            q.stamp_secs = clock;
            if q.first_turn_secs.is_none() {
                q.first_turn_secs = Some(turn_start);
            }
            if self.record_slices {
                match q.slices.last_mut() {
                    // Back-to-back turns share a boundary: extend the slice.
                    Some(last) if last.1 == turn_start => last.1 = clock,
                    _ => q.slices.push((turn_start, clock)),
                }
            }
        }
        let newly = self.mark_arrivals();
        self.admit_pass();
        self.shed_overflow(&newly);
        if self.policy == Some(SchedPolicy::RoundRobin) {
            self.rr_cursor = id + 1;
        }
        self.redesignate();
    }

    /// Mark a query finished, release its reservation, and re-run the
    /// admission pass for queued queries. Completion time comes from the
    /// query's turn-gated stamp — the clock right after its last kernel —
    /// never from the live device clock, so it is identical under every
    /// policy and host-thread count.
    pub(crate) fn retire(&mut self, id: QueryId) {
        let q = &mut self.queries[id as usize];
        assert!(!q.finished, "query retired twice");
        q.finished = true;
        q.completion_secs = q.stamp_secs;
        if q.admitted {
            self.reserved_bytes -= q.budget_bytes;
        }
        self.admit_pass();
        self.redesignate();
    }

    pub(crate) fn stats(&self, id: QueryId) -> QuerySchedStats {
        let q = &self.queries[id as usize];
        QuerySchedStats {
            busy_secs: q.busy_secs,
            completion_secs: q.completion_secs,
            admitted_secs: q.admitted_secs,
            arrival_secs: q.arrival_secs,
            started_secs: q.first_turn_secs,
            budget_bytes: q.budget_bytes,
            shed: q.shed,
            class: q.class_name.clone(),
            slo_secs: q.slo_secs,
        }
    }

    /// Recompute the designated query from simulated state only.
    fn redesignate(&mut self) {
        let runnable = |q: &QuerySched| q.arrived && q.admitted && !q.finished;
        let n = self.queries.len() as u32;
        self.designated = match self.policy {
            None => None,
            Some(SchedPolicy::Serial) => {
                self.queries.iter().position(runnable).map(|i| i as QueryId)
            }
            Some(SchedPolicy::RoundRobin) => (0..n)
                .map(|off| (self.rr_cursor + off) % n.max(1))
                .find(|&id| runnable(&self.queries[id as usize])),
            Some(SchedPolicy::WeightedFair) => self
                .queries
                .iter()
                .enumerate()
                .filter(|(_, q)| runnable(q))
                .min_by(|(_, a), (_, b)| {
                    (a.busy_secs / a.weight)
                        .partial_cmp(&(b.busy_secs / b.weight))
                        .unwrap()
                })
                .map(|(i, _)| i as QueryId),
            Some(SchedPolicy::Sjf) | Some(SchedPolicy::SjfAging) => self
                .queries
                .iter()
                .enumerate()
                .filter(|(_, q)| runnable(q))
                .min_by(|(ia, a), (ib, b)| {
                    self.rank(a)
                        .partial_cmp(&self.rank(b))
                        .unwrap()
                        .then(ia.cmp(ib))
                })
                .map(|(i, _)| i as QueryId),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(policy: SchedPolicy, budgets: &[u64], available: u64) -> SchedState {
        let mut st = SchedState::default();
        st.start(policy, available, 0.0, QueueLimits::default());
        for &b in budgets {
            st.register(1.0, b).unwrap();
        }
        st.admit_pass();
        st
    }

    #[test]
    fn round_robin_cycles_in_id_order() {
        let mut st = session(SchedPolicy::RoundRobin, &[10, 10, 10], 100);
        let mut order = Vec::new();
        for _ in 0..6 {
            let id = st.designated.unwrap();
            order.push(id);
            st.complete_turn(id, 1.0);
        }
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
        st.retire(1);
        let id = st.designated.unwrap();
        assert_eq!(id, 0, "cursor wraps past the retired query");
        st.complete_turn(id, 1.0);
        assert_eq!(st.designated, Some(2));
    }

    #[test]
    fn serial_runs_to_completion_in_id_order() {
        let mut st = session(SchedPolicy::Serial, &[10, 10], 100);
        for _ in 0..5 {
            assert_eq!(st.designated, Some(0));
            st.complete_turn(0, 1.0);
        }
        st.retire(0);
        assert_eq!(st.designated, Some(1));
        assert_eq!(
            st.stats(0).completion_secs,
            5.0,
            "completion is the post-kernel stamp"
        );
    }

    #[test]
    fn weighted_fair_shares_busy_time_by_weight() {
        let mut st = SchedState::default();
        st.start(SchedPolicy::WeightedFair, 100, 0.0, QueueLimits::default());
        st.register(3.0, 10).unwrap();
        st.register(1.0, 10).unwrap();
        st.admit_pass();
        let mut turns = [0u32; 2];
        for _ in 0..8 {
            let id = st.designated.unwrap();
            turns[id as usize] += 1;
            st.complete_turn(id, 1.0);
        }
        assert_eq!(turns, [6, 2], "3:1 weights split equal-cost turns 3:1");
    }

    #[test]
    fn fifo_admission_blocks_behind_the_head_of_line() {
        // Query 1 does not fit while 0 runs; query 2 would fit but must
        // queue behind 1.
        let mut st = session(SchedPolicy::RoundRobin, &[60, 60, 10], 100);
        assert!(st.is_admitted(0));
        assert!(!st.is_admitted(1));
        assert!(!st.is_admitted(2), "FIFO: 2 queues behind 1");
        assert_eq!(st.designated, Some(0));
        st.retire(0);
        assert!(st.is_admitted(1));
        assert!(st.is_admitted(2), "both fit after 0 released its budget");
    }

    #[test]
    fn future_arrivals_are_invisible_until_the_clock_reaches_them() {
        let mut st = SchedState::default();
        st.start(SchedPolicy::Serial, 100, 0.0, QueueLimits::default());
        st.register_at(1.0, 10, 5.0).unwrap();
        st.admit_pass();
        assert!(!st.is_admitted(0), "query 0 has not arrived yet");
        assert_eq!(st.designated, None);

        // The device is idle with one future arrival: jump to it.
        let delta = st.begin_idle_advance().expect("idle advance available");
        assert_eq!(delta, 5.0);
        assert_eq!(
            st.begin_idle_advance(),
            None,
            "advance is exclusive while in flight"
        );
        st.finish_idle_advance(delta);
        assert!(st.is_admitted(0));
        assert_eq!(st.designated, Some(0));
        assert_eq!(st.stats(0).arrival_secs, 5.0);
        assert_eq!(st.stats(0).admitted_secs, 5.0);
    }

    #[test]
    fn kernel_turns_advance_the_clock_mirror_and_admit_arrivals() {
        let mut st = SchedState::default();
        st.start(SchedPolicy::Serial, 100, 0.0, QueueLimits::default());
        st.register_at(1.0, 10, 0.0).unwrap();
        st.register_at(1.0, 10, 2.5).unwrap();
        st.admit_pass();
        assert_eq!(st.designated, Some(0));
        assert!(!st.is_admitted(1));

        st.complete_turn(0, 1.0);
        assert!(!st.is_admitted(1), "clock at 1.0 < arrival 2.5");
        st.complete_turn(0, 2.0);
        assert!(st.is_admitted(1), "clock at 3.0 >= arrival 2.5");
        assert_eq!(st.stats(1).admitted_secs, 3.0);
        assert_eq!(st.designated, Some(0), "serial still runs query 0");

        st.retire(0);
        assert_eq!(st.designated, Some(1));
        assert_eq!(
            st.stats(0).completion_secs,
            3.0,
            "stamp tracks the last completed turn"
        );
        assert_eq!(
            st.begin_idle_advance(),
            None,
            "no advance while a query is runnable"
        );
    }

    #[test]
    fn sjf_designates_by_predicted_time() {
        let mut st = SchedState::default();
        st.start(SchedPolicy::Sjf, 100, 0.0, QueueLimits::default());
        st.register_spec(1.0, 10, 0.0, 5.0, None).unwrap();
        st.register_spec(1.0, 10, 0.0, 1.0, None).unwrap();
        st.register_spec(1.0, 10, 0.0, 3.0, None).unwrap();
        st.admit_pass();
        assert_eq!(st.designated, Some(1), "smallest predicted time first");
        st.complete_turn(1, 1.0);
        st.retire(1);
        assert_eq!(st.designated, Some(2));
        st.retire(2);
        assert_eq!(st.designated, Some(0));
        st.retire(0);
    }

    #[test]
    fn sjf_preempts_at_kernel_boundaries() {
        let mut st = SchedState::default();
        st.start(SchedPolicy::Sjf, 100, 0.0, QueueLimits::default());
        st.register_spec(1.0, 10, 0.0, 10.0, None).unwrap();
        st.register_spec(1.0, 10, 0.5, 1.0, None).unwrap();
        st.admit_pass();
        assert_eq!(st.designated, Some(0), "only job in the system");
        st.complete_turn(0, 1.0);
        assert_eq!(
            st.designated,
            Some(1),
            "shorter arrival takes the next turn"
        );
    }

    #[test]
    fn sjf_admits_reservations_in_cost_order() {
        let mut st = SchedState::default();
        st.start(SchedPolicy::Sjf, 100, 0.0, QueueLimits::default());
        st.register_spec(1.0, 80, 0.0, 9.0, None).unwrap();
        st.register_spec(1.0, 80, 0.0, 2.0, None).unwrap();
        st.admit_pass();
        assert!(
            !st.is_admitted(0) && st.is_admitted(1),
            "the shorter job gets the reservation even with a higher id"
        );
        st.retire(1);
        assert!(st.is_admitted(0));
        st.retire(0);
    }

    #[test]
    fn aging_decays_rank_with_waiting_time() {
        let mut st = SchedState::default();
        st.start(SchedPolicy::SjfAging, 100, 0.0, QueueLimits::default());
        // A long job arrives first; short jobs keep arriving behind it.
        // Pure SJF would hand every turn to the freshest short job; aging
        // divides a job's rank by its time in system, so the long job's
        // effective rank decays below a fresh short job's.
        st.register_spec(1.0, 10, 0.0, 8.0, None).unwrap(); // long
        st.register_spec(1.0, 10, 1.0, 1.0, None).unwrap(); // short @ 1s
        st.register_spec(1.0, 10, 8.0, 1.0, None).unwrap(); // short @ 8s
        st.admit_pass();
        assert_eq!(st.designated, Some(0), "only arrival so far");
        st.complete_turn(0, 1.0);
        // Clock 1: the fresh short job (rank 1/1) outranks the barely aged
        // long one (rank 8/2) and preempts it.
        assert_eq!(st.designated, Some(1));
        st.complete_turn(1, 1.0);
        st.retire(1);
        assert_eq!(st.designated, Some(0));
        for _ in 0..6 {
            st.complete_turn(0, 1.0);
        }
        // Clock 8: a brand-new short job arrives (rank 1/1 = 1), but the
        // long job has aged to rank 8/9 < 1 and keeps the device — no
        // starvation.
        assert_eq!(st.designated, Some(0), "aged long job outranks fresh short");
        st.complete_turn(0, 1.0);
        st.retire(0);
        st.retire(2);
    }

    #[test]
    fn full_queue_sheds_on_arrival() {
        let mut st = SchedState::default();
        st.start(
            SchedPolicy::Serial,
            100,
            0.0,
            QueueLimits {
                total_depth: Some(1),
                per_class_depth: Vec::new(),
            },
        );
        // 0 takes the whole device; 1 waits (depth 1); 2 finds the waiting
        // room full and is shed.
        st.register(1.0, 100).unwrap();
        st.on_register(0);
        st.register(1.0, 10).unwrap();
        st.on_register(1);
        st.register(1.0, 10).unwrap();
        st.on_register(2);
        assert!(st.is_admitted(0) && !st.is_shed(0));
        assert!(!st.is_admitted(1) && !st.is_shed(1), "within depth: waits");
        assert!(st.is_shed(2), "overflow arrival is shed");
        let s = st.stats(2);
        assert!(s.shed);
        assert_eq!(s.completion_secs, s.arrival_secs);
        st.retire(0);
        assert!(st.is_admitted(1), "the queued query still runs");
        st.retire(1);
        st.finish();
    }

    #[test]
    fn per_class_depth_sheds_only_that_class() {
        let mut st = SchedState::default();
        st.start(
            SchedPolicy::Serial,
            100,
            0.0,
            QueueLimits {
                total_depth: None,
                per_class_depth: vec![Some(0), None],
            },
        );
        st.register(1.0, 100).unwrap();
        st.on_register(0);
        // Class 0 may never wait; class 1 may queue freely.
        st.register_spec(1.0, 10, 0.0, 0.0, Some(0)).unwrap();
        st.on_register(1);
        st.register_spec(1.0, 10, 0.0, 0.0, Some(1)).unwrap();
        st.on_register(2);
        assert!(st.is_shed(1), "class 0 has a zero-depth queue");
        assert!(!st.is_shed(2), "class 1 is uncapped and waits");
        st.retire(0);
        assert!(st.is_admitted(2));
        st.retire(2);
        st.finish();
    }

    #[test]
    fn zero_capacity_queue_admits_immediately_or_sheds() {
        let mut st = SchedState::default();
        st.start(
            SchedPolicy::Serial,
            100,
            0.0,
            QueueLimits {
                total_depth: Some(0),
                per_class_depth: Vec::new(),
            },
        );
        // Fits right away: admitted, never waited, never shed.
        st.register(1.0, 60).unwrap();
        st.on_register(0);
        assert!(st.is_admitted(0) && !st.is_shed(0));
        // Would have to wait: shed on the spot.
        st.register(1.0, 60).unwrap();
        st.on_register(1);
        assert!(st.is_shed(1));
        st.retire(0);
        st.finish();
    }

    #[test]
    fn oversized_budget_is_rejected_at_registration() {
        let mut st = SchedState::default();
        st.start(SchedPolicy::Serial, 100, 0.0, QueueLimits::default());
        let err = st.register(1.0, 101).unwrap_err();
        assert_eq!(err.requested_bytes, 101);
        assert_eq!(err.available_bytes, 100);
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn budget_error_display_names_the_query() {
        let e = BudgetError {
            query: 3,
            budget_bytes: 1024,
            requested_bytes: 4096,
            in_use_bytes: 512,
            label: "probe.out".to_string(),
        };
        let msg = e.to_string();
        assert!(msg.contains("query 3"));
        assert!(msg.contains("probe.out"));
        assert!(msg.contains("budget"));
    }
}
