//! Multi-query scheduling on one simulated device.
//!
//! The paper's framework assumes an operator owns the whole GPU; a
//! production engine serves many tenants on one device. This module adds
//! the device-side half of that story:
//!
//! * **Admission control** — each query reserves a fixed memory budget out
//!   of the device's free capacity before it runs. Reservations are granted
//!   in query-id (FIFO) order; a query whose budget does not fit queues
//!   behind the head of the line until earlier queries retire and release
//!   theirs. Because the sum of granted budgets never exceeds the free
//!   capacity, no tenant can OOM a co-tenant.
//! * **Kernel-granular interleaving** — a query's kernel launches pass
//!   through a turn gate: the launch blocks until the scheduling policy
//!   designates that query, performs its accounting, then hands the turn
//!   on. The designation is a pure function of *simulated* state (query
//!   ids, per-query busy time, weights), so the interleaving — and with it
//!   every counter, clock and trace byte — is deterministic regardless of
//!   host thread timing.
//! * **Virtualized device state** — each query gets its own counters,
//!   clock, L2 image, trace and budget-capped memory sub-ledger (see
//!   `lib.rs`), so a query's observable execution is touched only by its
//!   own kernels, in program order. That is the whole concurrent-equals-
//!   serial argument: per-query state evolves identically under any policy.
//!
//! The engine's `scheduler` module drives this API; it is exposed on
//! [`crate::Device`] as the `sched_*` methods.

use serde::{Deserialize, Serialize};

/// Identifier of one admitted query on a device, assigned densely from 0
/// in registration order.
pub type QueryId = u32;

/// How the turn gate picks the next query to run a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// Run admitted queries to completion in query-id order — the serial
    /// baseline the equivalence suite compares against. (It still uses the
    /// same budgets, ids and accounting as the concurrent policies.)
    Serial,
    /// Cycle through runnable queries in id order, one kernel per turn.
    RoundRobin,
    /// Designate the runnable query with the smallest `busy_time / weight`
    /// (lowest id on ties): long-run device time is shared in proportion
    /// to the configured weights.
    WeightedFair,
}

impl SchedPolicy {
    /// Stable lowercase label for reports.
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::Serial => "serial",
            SchedPolicy::RoundRobin => "round_robin",
            SchedPolicy::WeightedFair => "weighted_fair",
        }
    }
}

/// Typed payload carried by the panic a budget-capped allocation raises
/// when a query's sub-ledger would exceed its reservation.
///
/// The device cannot return a `Result` from deep inside an executing
/// operator (the OOM surface is `DeviceBuffer` construction), so — like the
/// device-capacity OOM — the failure unwinds; unlike it, the payload is
/// typed so a scheduler can `catch_unwind`, downcast, and convert it into
/// its own error type while co-tenants keep running.
#[derive(Debug, Clone)]
pub struct BudgetError {
    /// The query whose allocation failed.
    pub query: QueryId,
    /// The query's reserved budget, bytes.
    pub budget_bytes: u64,
    /// Bytes the failing allocation requested (after alignment rounding).
    pub requested_bytes: u64,
    /// Bytes the query already had in use.
    pub in_use_bytes: u64,
    /// Label of the failing allocation.
    pub label: String,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "query {} exceeded its {} byte memory budget allocating {} bytes \
             for '{}' ({} already in use)",
            self.query, self.budget_bytes, self.requested_bytes, self.label, self.in_use_bytes
        )
    }
}

/// Error returned by [`crate::Device::sched_register`] when a query's
/// requested budget can never be satisfied on this device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionError {
    /// Bytes the query asked to reserve.
    pub requested_bytes: u64,
    /// Free device bytes when the scheduling session started (capacity
    /// minus catalog residents) — the most any reservation can get.
    pub available_bytes: u64,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requested budget of {} bytes exceeds the device's {} free bytes",
            self.requested_bytes, self.available_bytes
        )
    }
}

/// Scheduling outcome of one retired query, for fairness reporting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuerySchedStats {
    /// Simulated seconds of kernel time this query received.
    pub busy_secs: f64,
    /// Device clock (seconds) when the query retired — its completion time
    /// on the shared timeline.
    pub completion_secs: f64,
    /// Device clock when the query's budget reservation was granted.
    pub admitted_secs: f64,
    /// Device clock when the query arrived — registration time for
    /// closed-loop queries, the scheduled open-loop arrival otherwise.
    pub arrival_secs: f64,
    /// The reservation the query ran under, bytes.
    pub budget_bytes: u64,
}

/// Per-query scheduling bookkeeping.
pub(crate) struct QuerySched {
    weight: f64,
    budget_bytes: u64,
    admitted: bool,
    finished: bool,
    busy_secs: f64,
    admitted_secs: f64,
    completion_secs: f64,
    /// Simulated time at which the query enters the system. Until then it
    /// is invisible to admission and designation.
    arrival_secs: f64,
    arrived: bool,
}

/// The state behind the turn gate. Guarded by a dedicated `std` mutex (and
/// condvar) in `DeviceInner`, *never* held together with the device-state
/// lock.
#[derive(Default)]
pub(crate) struct SchedState {
    policy: Option<SchedPolicy>,
    queries: Vec<QuerySched>,
    designated: Option<QueryId>,
    /// Round-robin resume point: the first id considered for the next turn.
    rr_cursor: u32,
    /// Sum of granted (admitted, unretired) reservations.
    reserved_bytes: u64,
    /// Free device bytes at session start (capacity minus base residents).
    available_bytes: u64,
    /// Mirror of the device clock, maintained without ever touching the
    /// state lock: seeded at `start`, advanced by each completed turn and
    /// each committed idle advance, resynced at every retire. Open-loop
    /// arrival gating reads simulated time from here.
    clock: f64,
    /// An idle advance is in flight: one thread is applying a clock jump to
    /// the device state with the sched lock released. Until it commits via
    /// [`SchedState::finish_idle_advance`], no other thread may start one.
    advancing: bool,
}

impl SchedState {
    pub(crate) fn start(&mut self, policy: SchedPolicy, available_bytes: u64, device_clock: f64) {
        assert!(
            self.policy.is_none(),
            "a scheduling session is already active on this device"
        );
        self.policy = Some(policy);
        self.queries.clear();
        self.designated = None;
        self.rr_cursor = 0;
        self.reserved_bytes = 0;
        self.available_bytes = available_bytes;
        self.clock = device_clock;
        self.advancing = false;
    }

    pub(crate) fn finish(&mut self) {
        assert!(
            self.queries.iter().all(|q| q.finished),
            "sched_finish with unretired queries"
        );
        self.policy = None;
        self.designated = None;
    }

    pub(crate) fn active(&self) -> bool {
        self.policy.is_some()
    }

    /// Register a query with the session; returns its id. Admission (the
    /// actual reservation) happens separately, in id order.
    pub(crate) fn register(
        &mut self,
        weight: f64,
        budget_bytes: u64,
    ) -> Result<QueryId, AdmissionError> {
        let clock = self.clock;
        self.register_at(weight, budget_bytes, clock)
    }

    /// Register a query that arrives at `arrival_secs` on the simulated
    /// clock (possibly in the future: open-loop load generation). Until the
    /// clock reaches its arrival the query is invisible to admission and
    /// designation; when every in-system query has drained and only future
    /// arrivals remain, the clock jumps forward (see
    /// [`SchedState::begin_idle_advance`]).
    pub(crate) fn register_at(
        &mut self,
        weight: f64,
        budget_bytes: u64,
        arrival_secs: f64,
    ) -> Result<QueryId, AdmissionError> {
        assert!(self.active(), "sched_register outside a session");
        assert!(weight > 0.0, "query weight must be positive");
        assert!(
            arrival_secs.is_finite(),
            "query arrival time must be finite"
        );
        if budget_bytes > self.available_bytes {
            return Err(AdmissionError {
                requested_bytes: budget_bytes,
                available_bytes: self.available_bytes,
            });
        }
        let id = self.queries.len() as QueryId;
        self.queries.push(QuerySched {
            weight,
            budget_bytes,
            admitted: false,
            finished: false,
            busy_secs: 0.0,
            admitted_secs: 0.0,
            completion_secs: 0.0,
            arrival_secs,
            arrived: arrival_secs <= self.clock,
        });
        Ok(id)
    }

    /// Flip queries whose arrival time the clock has reached to arrived.
    fn mark_arrivals(&mut self) {
        for q in self.queries.iter_mut() {
            if !q.arrived && q.arrival_secs <= self.clock {
                q.arrived = true;
            }
        }
    }

    /// Grant reservations in id (FIFO) order until one does not fit; the
    /// head of the line blocks everyone behind it, which keeps admission
    /// order — and therefore everything downstream — deterministic. Queries
    /// that have not yet *arrived* are skipped rather than blocking: ids
    /// are assigned in arrival order, so skipping the not-yet-arrived tail
    /// preserves arrival-order FIFO.
    pub(crate) fn admit_fifo(&mut self, device_clock: f64) {
        for q in self.queries.iter_mut() {
            if q.finished || q.admitted || !q.arrived {
                continue;
            }
            if self.reserved_bytes + q.budget_bytes > self.available_bytes {
                break;
            }
            self.reserved_bytes += q.budget_bytes;
            q.admitted = true;
            q.admitted_secs = device_clock;
        }
        if self.designated.is_none() {
            self.redesignate();
        }
    }

    /// If the device is idle (no runnable query) but future arrivals exist,
    /// claim the right to jump the clock to the earliest one. Returns the
    /// jump delta; the caller must release the sched lock, advance the
    /// *device* clock by the delta, then commit with
    /// [`SchedState::finish_idle_advance`]. The `advancing` flag keeps the
    /// jump exclusive; designation stays `None` until the commit, so no
    /// kernel can read the device clock mid-jump (any admitted unfinished
    /// query would be designated and therefore block the advance).
    pub(crate) fn begin_idle_advance(&mut self) -> Option<f64> {
        if !self.active() || self.advancing || self.designated.is_some() {
            return None;
        }
        let next = self
            .queries
            .iter()
            .filter(|q| !q.arrived && !q.finished && q.arrival_secs > self.clock)
            .map(|q| q.arrival_secs)
            .fold(f64::INFINITY, f64::min);
        if !next.is_finite() {
            return None;
        }
        self.advancing = true;
        Some(next - self.clock)
    }

    /// Commit an idle advance after the device clock has been moved.
    pub(crate) fn finish_idle_advance(&mut self, delta: f64) {
        debug_assert!(self.advancing, "finish_idle_advance without begin");
        self.advancing = false;
        self.clock += delta;
        self.mark_arrivals();
        let clock = self.clock;
        self.admit_fifo(clock);
        self.redesignate();
    }

    pub(crate) fn is_admitted(&self, id: QueryId) -> bool {
        self.queries[id as usize].admitted
    }

    pub(crate) fn is_designated(&self, id: QueryId) -> bool {
        self.designated == Some(id)
    }

    /// Account a completed kernel turn and pass the turn on. The clock
    /// mirror advances with the kernel (the device clock already did, under
    /// the state lock), which may let new arrivals into the system.
    pub(crate) fn complete_turn(&mut self, id: QueryId, kernel_secs: f64) {
        debug_assert_eq!(self.designated, Some(id), "turn completed out of order");
        self.queries[id as usize].busy_secs += kernel_secs;
        self.clock += kernel_secs;
        self.mark_arrivals();
        let clock = self.clock;
        self.admit_fifo(clock);
        if self.policy == Some(SchedPolicy::RoundRobin) {
            self.rr_cursor = id + 1;
        }
        self.redesignate();
    }

    /// Mark a query finished, release its reservation, and re-run FIFO
    /// admission for queued queries. `device_clock` resyncs the mirror (it
    /// can drift only by float-add ordering; the device clock is the truth).
    pub(crate) fn retire(&mut self, id: QueryId, device_clock: f64) {
        self.clock = device_clock;
        let q = &mut self.queries[id as usize];
        assert!(!q.finished, "query retired twice");
        q.finished = true;
        q.completion_secs = device_clock;
        if q.admitted {
            self.reserved_bytes -= q.budget_bytes;
        }
        self.mark_arrivals();
        self.admit_fifo(device_clock);
        self.redesignate();
    }

    pub(crate) fn stats(&self, id: QueryId) -> QuerySchedStats {
        let q = &self.queries[id as usize];
        QuerySchedStats {
            busy_secs: q.busy_secs,
            completion_secs: q.completion_secs,
            admitted_secs: q.admitted_secs,
            arrival_secs: q.arrival_secs,
            budget_bytes: q.budget_bytes,
        }
    }

    /// Recompute the designated query from simulated state only.
    fn redesignate(&mut self) {
        let runnable = |q: &QuerySched| q.arrived && q.admitted && !q.finished;
        let n = self.queries.len() as u32;
        self.designated = match self.policy {
            None => None,
            Some(SchedPolicy::Serial) => {
                self.queries.iter().position(runnable).map(|i| i as QueryId)
            }
            Some(SchedPolicy::RoundRobin) => (0..n)
                .map(|off| (self.rr_cursor + off) % n.max(1))
                .find(|&id| runnable(&self.queries[id as usize])),
            Some(SchedPolicy::WeightedFair) => self
                .queries
                .iter()
                .enumerate()
                .filter(|(_, q)| runnable(q))
                .min_by(|(_, a), (_, b)| {
                    (a.busy_secs / a.weight)
                        .partial_cmp(&(b.busy_secs / b.weight))
                        .unwrap()
                })
                .map(|(i, _)| i as QueryId),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(policy: SchedPolicy, budgets: &[u64], available: u64) -> SchedState {
        let mut st = SchedState::default();
        st.start(policy, available, 0.0);
        for &b in budgets {
            st.register(1.0, b).unwrap();
        }
        st.admit_fifo(0.0);
        st
    }

    #[test]
    fn round_robin_cycles_in_id_order() {
        let mut st = session(SchedPolicy::RoundRobin, &[10, 10, 10], 100);
        let mut order = Vec::new();
        for _ in 0..6 {
            let id = st.designated.unwrap();
            order.push(id);
            st.complete_turn(id, 1.0);
        }
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
        st.retire(1, 6.0);
        let id = st.designated.unwrap();
        assert_eq!(id, 0, "cursor wraps past the retired query");
        st.complete_turn(id, 1.0);
        assert_eq!(st.designated, Some(2));
    }

    #[test]
    fn serial_runs_to_completion_in_id_order() {
        let mut st = session(SchedPolicy::Serial, &[10, 10], 100);
        for _ in 0..5 {
            assert_eq!(st.designated, Some(0));
            st.complete_turn(0, 1.0);
        }
        st.retire(0, 5.0);
        assert_eq!(st.designated, Some(1));
    }

    #[test]
    fn weighted_fair_shares_busy_time_by_weight() {
        let mut st = SchedState::default();
        st.start(SchedPolicy::WeightedFair, 100, 0.0);
        st.register(3.0, 10).unwrap();
        st.register(1.0, 10).unwrap();
        st.admit_fifo(0.0);
        let mut turns = [0u32; 2];
        for _ in 0..8 {
            let id = st.designated.unwrap();
            turns[id as usize] += 1;
            st.complete_turn(id, 1.0);
        }
        assert_eq!(turns, [6, 2], "3:1 weights split equal-cost turns 3:1");
    }

    #[test]
    fn fifo_admission_blocks_behind_the_head_of_line() {
        // Query 1 does not fit while 0 runs; query 2 would fit but must
        // queue behind 1.
        let mut st = session(SchedPolicy::RoundRobin, &[60, 60, 10], 100);
        assert!(st.is_admitted(0));
        assert!(!st.is_admitted(1));
        assert!(!st.is_admitted(2), "FIFO: 2 queues behind 1");
        assert_eq!(st.designated, Some(0));
        st.retire(0, 1.0);
        assert!(st.is_admitted(1));
        assert!(st.is_admitted(2), "both fit after 0 released its budget");
    }

    #[test]
    fn future_arrivals_are_invisible_until_the_clock_reaches_them() {
        let mut st = SchedState::default();
        st.start(SchedPolicy::Serial, 100, 0.0);
        st.register_at(1.0, 10, 5.0).unwrap();
        st.admit_fifo(0.0);
        assert!(!st.is_admitted(0), "query 0 has not arrived yet");
        assert_eq!(st.designated, None);

        // The device is idle with one future arrival: jump to it.
        let delta = st.begin_idle_advance().expect("idle advance available");
        assert_eq!(delta, 5.0);
        assert_eq!(
            st.begin_idle_advance(),
            None,
            "advance is exclusive while in flight"
        );
        st.finish_idle_advance(delta);
        assert!(st.is_admitted(0));
        assert_eq!(st.designated, Some(0));
        assert_eq!(st.stats(0).arrival_secs, 5.0);
        assert_eq!(st.stats(0).admitted_secs, 5.0);
    }

    #[test]
    fn kernel_turns_advance_the_clock_mirror_and_admit_arrivals() {
        let mut st = SchedState::default();
        st.start(SchedPolicy::Serial, 100, 0.0);
        st.register_at(1.0, 10, 0.0).unwrap();
        st.register_at(1.0, 10, 2.5).unwrap();
        st.admit_fifo(0.0);
        assert_eq!(st.designated, Some(0));
        assert!(!st.is_admitted(1));

        st.complete_turn(0, 1.0);
        assert!(!st.is_admitted(1), "clock at 1.0 < arrival 2.5");
        st.complete_turn(0, 2.0);
        assert!(st.is_admitted(1), "clock at 3.0 >= arrival 2.5");
        assert_eq!(st.stats(1).admitted_secs, 3.0);
        assert_eq!(st.designated, Some(0), "serial still runs query 0");

        st.retire(0, 3.0);
        assert_eq!(st.designated, Some(1));
        assert_eq!(
            st.begin_idle_advance(),
            None,
            "no advance while a query is runnable"
        );
    }

    #[test]
    fn oversized_budget_is_rejected_at_registration() {
        let mut st = SchedState::default();
        st.start(SchedPolicy::Serial, 100, 0.0);
        let err = st.register(1.0, 101).unwrap_err();
        assert_eq!(err.requested_bytes, 101);
        assert_eq!(err.available_bytes, 100);
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn budget_error_display_names_the_query() {
        let e = BudgetError {
            query: 3,
            budget_bytes: 1024,
            requested_bytes: 4096,
            in_use_bytes: 512,
            label: "probe.out".to_string(),
        };
        let msg = e.to_string();
        assert!(msg.contains("query 3"));
        assert!(msg.contains("probe.out"));
        assert!(msg.contains("budget"));
    }
}
