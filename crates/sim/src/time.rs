//! Simulated time and the per-phase breakdown used throughout the paper's
//! figures (transformation / match finding / materialization).

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A span of *simulated* device time.
///
/// All GPU-side costs in this workspace are expressed as `SimTime`; the CPU
/// baseline reports real wall-clock converted into the same type so the two
/// can be charted together.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Zero duration.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds.
    pub fn from_secs(s: f64) -> Self {
        SimTime(s)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        SimTime(ms * 1e-3)
    }

    /// The span in seconds.
    pub fn secs(self) -> f64 {
        self.0
    }

    /// The span in milliseconds.
    pub fn millis(self) -> f64 {
        self.0 * 1e3
    }

    /// `bytes / self`, in bytes per second. Returns infinity for a zero span.
    pub fn throughput(self, bytes: u64) -> f64 {
        if self.0 <= 0.0 {
            f64::INFINITY
        } else {
            bytes as f64 / self.0
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3} ms", self.0 * 1e3)
        } else {
            write!(f, "{:.1} us", self.0 * 1e6)
        }
    }
}

/// Per-phase time breakdown of a join or grouped aggregation, matching the
/// three phases defined in Section 2.2 of the paper and reported in Figures
/// 1, 9, 10, 13, 14, 15, 17.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Transformation phase: sorting or partitioning inputs.
    pub transform: SimTime,
    /// Match-finding phase: merge join / hash build+probe (or, for grouped
    /// aggregation, group-slot assignment).
    pub match_find: SimTime,
    /// Materialization phase: gathering payload columns into the output.
    pub materialize: SimTime,
}

impl PhaseTimes {
    /// Sum of all phases.
    pub fn total(&self) -> SimTime {
        self.transform + self.match_find + self.materialize
    }

    /// Fraction of total time spent materializing (Figure 1 reports this
    /// reaching ~75% for unoptimized wide joins).
    pub fn materialize_fraction(&self) -> f64 {
        let t = self.total().secs();
        if t <= 0.0 {
            0.0
        } else {
            self.materialize.secs() / t
        }
    }
}

impl Add for PhaseTimes {
    type Output = PhaseTimes;
    fn add(self, rhs: PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            transform: self.transform + rhs.transform,
            match_find: self.match_find + rhs.match_find,
            materialize: self.materialize + rhs.materialize,
        }
    }
}

impl AddAssign for PhaseTimes {
    fn add_assign(&mut self, rhs: PhaseTimes) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_display() {
        let a = SimTime::from_millis(2.0);
        let b = SimTime::from_millis(3.0);
        assert!((a + b).millis() - 5.0 < 1e-9);
        assert_eq!((b - a).millis(), 1.0);
        // saturating subtraction
        assert_eq!((a - b).secs(), 0.0);
        assert_eq!(format!("{}", SimTime::from_secs(2.5)), "2.500 s");
        assert_eq!(format!("{}", SimTime::from_millis(2.5)), "2.500 ms");
        assert_eq!(format!("{}", SimTime::from_secs(2.5e-6)), "2.5 us");
    }

    #[test]
    fn throughput_of_zero_span_is_infinite() {
        assert!(SimTime::ZERO.throughput(100).is_infinite());
        assert_eq!(
            SimTime::from_secs(2.0).throughput(4 << 30),
            (2u64 << 30) as f64
        );
    }

    #[test]
    fn phase_totals() {
        let p = PhaseTimes {
            transform: SimTime::from_millis(1.0),
            match_find: SimTime::from_millis(1.0),
            materialize: SimTime::from_millis(6.0),
        };
        assert!((p.total().millis() - 8.0).abs() < 1e-9);
        assert!((p.materialize_fraction() - 0.75).abs() < 1e-9);
        let sum = p + p;
        assert!((sum.total().millis() - 16.0).abs() < 1e-9);
    }
}
