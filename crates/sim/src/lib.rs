//! # sim — a software GPU execution simulator
//!
//! This crate stands in for the CUDA substrate used by the paper
//! *Efficiently Processing Large Relational Joins on GPUs* (and its SIGMOD'25
//! successor covering grouped aggregations). No physical GPU is required:
//! algorithms execute on the host over real data, while every kernel charges
//! its memory traffic and instruction work to a calibrated cost model that
//! mirrors how NVIDIA hardware (and the Nsight Compute profiler) accounts for
//! it.
//!
//! The simulator models exactly the effects the paper's results hinge on:
//!
//! * **Coalescing** — warp-level loads are grouped 32 lanes at a time and
//!   deduplicated to distinct 32-byte *sectors*, the unit DRAM traffic is
//!   measured in. A clustered gather touches ~`elem_size` sectors per warp
//!   request; an unclustered gather touches up to 32.
//! * **L2 reach** — a direct-mapped sector cache sized to the device's L2
//!   (40 MB on A100, 6 MB on RTX 3090). Gathers into small relations hit in
//!   L2 and stop being expensive, which is why the paper's TPC-H J3 favors
//!   unoptimized materialization.
//! * **Latency-bound penalty** — poorly coalesced traffic cannot saturate
//!   DRAM bandwidth; the model applies a penalty proportional to the excess
//!   sectors per request, calibrated to Table 4 of the paper (8.5x cycle gap
//!   between unclustered and clustered gathers at 3x the bytes).
//! * **Atomic contention** — bucket-chain partitioning serializes atomics on
//!   hot partitions; the hottest partition's update stream bounds the kernel,
//!   reproducing the Zipf collapse of Figure 14.
//! * **Memory ledger** — every intermediate allocation flows through
//!   [`DeviceBuffer`], giving the peak-usage numbers of Table 5.
//!
//! ## Parallel host execution
//!
//! Warp-traffic accounting — the hot loop of every experiment — runs on
//! [`DeviceConfig::host_threads`] host cores (default: all of them). The
//! parallel path shards the direct-mapped L2 by disjoint set ranges and
//! replays each set's accesses in their original warp order, so counters,
//! hit/miss outcomes and simulated times are **bit-identical** to the
//! `host_threads = 1` sequential reference. See `DESIGN.md` for the full
//! determinism argument.
//!
//! ## Multi-query scheduling
//!
//! A device can host several concurrent queries (see [`sched`]). The base
//! handle starts a session with [`Device::sched_start`] and registers each
//! query with [`Device::sched_register`], which reserves the query a memory
//! budget and returns a *query handle* — a `Device` whose counters, clock,
//! L2 image, memory ledger and trace are private to that query. Kernel
//! launches through a query handle pass a deterministic turn gate, so the
//! interleaving (and every per-query byte of state) is a pure function of
//! simulated time — concurrent execution is bit-identical to serial.
//!
//! ## Quick example
//!
//! ```
//! use sim::{Device, DeviceConfig};
//!
//! let dev = Device::a100();
//! // A streaming kernel over 1M 4-byte items:
//! dev.kernel("copy")
//!     .items(1 << 20, 4.0)
//!     .seq_read_bytes(4 << 20)
//!     .seq_write_bytes(4 << 20)
//!     .launch();
//! assert!(dev.elapsed().secs() > 0.0);
//! ```

pub mod analysis;
mod config;
mod counters;
mod element;
mod kernel;
mod l2;
mod memory;
pub mod metrics;
pub mod sched;
mod stats;
mod time;
pub mod trace;

pub use analysis::{
    diagnose, roofline, AccessPattern, Bottleneck, Diagnosis, KernelAnalysis, Roofline,
};
pub use config::DeviceConfig;
pub use counters::{Counters, CountersDelta};
pub use element::Element;
pub use kernel::KernelBuilder;
pub use l2::L2Cache;
pub use memory::{DeviceBuffer, MemReport};
pub use metrics::{
    metrics_json, openmetrics, secs_to_ticks, HdrHistogram, MetricsRegistry, MetricsSnapshot,
    QueryLifecycle, SECONDS_SCALE,
};
pub use sched::{
    AdmissionError, AdmitOutcome, BudgetError, QueryId, QuerySchedStats, QueueLimits, SchedPolicy,
};
pub use stats::OpStats;
pub use time::{PhaseTimes, SimTime};
pub use trace::{LifecycleEvent, LifecycleStage, SpanCat, Trace, TraceEvent};

use parking_lot::Mutex;
use std::sync::Arc;

thread_local! {
    /// Set while the current thread executes a planning-phase closure (see
    /// [`Device::with_planning`]).
    static PLANNING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the current thread is inside [`Device::with_planning`]. Read by
/// the kernel launch path to make planning work charge-free.
pub(crate) fn planning_active() -> bool {
    PLANNING.with(|p| p.get())
}

/// Restores the thread's planning flag even if the closure unwinds (a
/// budget OOM can fire inside a planning kernel).
struct PlanningGuard(bool);

impl Drop for PlanningGuard {
    fn drop(&mut self) {
        PLANNING.with(|p| p.set(self.0));
    }
}

/// Fold flight-recorder evictions into the `trace_events_dropped_total`
/// counter. Called under the state lock right after a trace push, with the
/// trace borrow already released; a no-op when nothing dropped or metrics
/// are off.
pub(crate) fn note_trace_drops(metrics: &mut Option<Box<metrics::DeviceMetrics>>, dropped: u64) {
    if dropped > 0 {
        if let Some(m) = metrics.as_deref_mut() {
            m.registry
                .counter_add("trace_events_dropped_total", Vec::new(), dropped);
        }
    }
}

/// Number of 32-bit lanes in a warp. Fixed across all NVIDIA architectures
/// the paper evaluates.
pub const WARP_SIZE: usize = 32;

/// Size in bytes of a DRAM sector — the granularity at which the memory
/// subsystem moves data and at which Nsight Compute reports traffic.
pub const SECTOR_BYTES: u64 = 32;

/// Base simulated address of every query's private sub-ledger. All queries
/// start at the *same* base: their address spaces only need to be disjoint
/// from the base ledger's (catalog-resident buffers), not from each other,
/// because each query probes its own private L2 image. Identical bases are
/// what make a query's sector stream — and therefore its L2 hits, penalties
/// and simulated times — independent of which co-tenants run beside it.
pub(crate) const QUERY_ADDR_BASE: u64 = 1 << 40;

/// Per-query virtual device state: everything a query can observe about its
/// own execution. Touched only by that query's kernels, in program order, so
/// it evolves identically under any scheduling policy.
pub(crate) struct QueryState {
    pub(crate) counters: Counters,
    pub(crate) l2: L2Cache,
    pub(crate) mem: memory::MemLedger,
    /// The query's private clock: sum of its own kernel times.
    pub(crate) clock: f64,
    pub(crate) trace: Option<Box<Trace>>,
    /// The reservation this query's sub-ledger is capped at.
    pub(crate) budget_bytes: u64,
}

impl QueryState {
    fn new(config: &DeviceConfig, budget_bytes: u64) -> Self {
        QueryState {
            counters: Counters::default(),
            l2: L2Cache::new(config.l2_bytes),
            mem: memory::MemLedger::with_base(QUERY_ADDR_BASE),
            clock: 0.0,
            trace: None,
            budget_bytes,
        }
    }
}

pub(crate) struct DeviceState {
    pub(crate) counters: Counters,
    pub(crate) l2: L2Cache,
    pub(crate) mem: memory::MemLedger,
    /// Simulated wall-clock, in seconds, advanced by every kernel launch.
    pub(crate) clock: f64,
    /// Opt-in event recorder (see [`trace`]); `None` costs nothing.
    pub(crate) trace: Option<Box<Trace>>,
    /// Opt-in service-level metrics recorder (see [`metrics`]); like the
    /// trace, `None` costs one branch per launch.
    pub(crate) metrics: Option<Box<metrics::DeviceMetrics>>,
    /// Virtual state of the current scheduling session's queries, indexed by
    /// [`QueryId`]. Cleared by the next [`Device::sched_start`].
    pub(crate) queries: Vec<QueryState>,
}

impl DeviceState {
    /// The L2 image a kernel probes: the query's private image for a query
    /// handle, the device image otherwise.
    pub(crate) fn l2_for(&mut self, query: Option<QueryId>) -> &mut L2Cache {
        match query {
            Some(q) => &mut self.queries[q as usize].l2,
            None => &mut self.l2,
        }
    }
}

pub(crate) struct DeviceInner {
    pub(crate) config: DeviceConfig,
    pub(crate) state: Mutex<DeviceState>,
    /// Scheduling bookkeeping behind the kernel turn gate. Deliberately a
    /// separate `std` mutex (with [`DeviceInner::sched_cv`]): launches block
    /// on the condvar here, and code must never hold `state` and `sched`
    /// at the same time.
    pub(crate) sched: std::sync::Mutex<sched::SchedState>,
    pub(crate) sched_cv: std::sync::Condvar,
}

impl DeviceInner {
    pub(crate) fn sched_lock(&self) -> std::sync::MutexGuard<'_, sched::SchedState> {
        // Panics never unwind while holding this lock (the budget-OOM panic
        // fires under the state lock), but be robust to poisoning anyway.
        self.sched
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A handle to a simulated GPU.
///
/// Cheap to clone (it is an `Arc` internally); all clones observe the same
/// counters, memory ledger and simulated clock. A `Device` is the first
/// argument of every primitive and operator in this workspace.
///
/// A handle returned by [`Device::sched_register`] is a *query handle*: it
/// shares the physical device but routes counters, clock, L2, memory and
/// tracing to that query's private virtual state, and its kernel launches
/// are sequenced by the session's scheduling policy.
#[derive(Clone)]
pub struct Device {
    pub(crate) inner: Arc<DeviceInner>,
    /// `Some(q)` on a query handle; `None` on the base device handle.
    pub(crate) query: Option<QueryId>,
}

impl Device {
    /// Create a device from an explicit configuration.
    pub fn new(config: DeviceConfig) -> Self {
        let l2 = L2Cache::new(config.l2_bytes);
        Device {
            inner: Arc::new(DeviceInner {
                config,
                state: Mutex::new(DeviceState {
                    counters: Counters::default(),
                    l2,
                    mem: memory::MemLedger::default(),
                    clock: 0.0,
                    trace: None,
                    metrics: None,
                    queries: Vec::new(),
                }),
                sched: std::sync::Mutex::new(sched::SchedState::default()),
                sched_cv: std::sync::Condvar::new(),
            }),
            query: None,
        }
    }

    /// An NVIDIA A100 (40 GB, SXM) — the data-center GPU the paper reports
    /// most results on.
    pub fn a100() -> Self {
        Self::new(DeviceConfig::a100())
    }

    /// An NVIDIA GeForce RTX 3090 — the consumer Ampere part used as the
    /// paper's second machine.
    pub fn rtx3090() -> Self {
        Self::new(DeviceConfig::rtx3090())
    }

    /// The configuration this device was created with.
    pub fn config(&self) -> &DeviceConfig {
        &self.inner.config
    }

    /// The query this handle routes to, if it is a query handle.
    pub fn query_id(&self) -> Option<QueryId> {
        self.query
    }

    /// The memory capacity visible to this handle: the query's budget on a
    /// query handle, the device's global memory otherwise. Out-of-core
    /// planning (`joins::chunked`) sizes chunks against this.
    pub fn mem_capacity(&self) -> u64 {
        match self.query {
            Some(q) => self.inner.state.lock().queries[q as usize].budget_bytes,
            None => self.inner.config.global_mem_bytes,
        }
    }

    /// Begin describing a kernel launch. Call accounting methods on the
    /// returned builder and finish with [`KernelBuilder::launch`].
    pub fn kernel(&self, name: &'static str) -> KernelBuilder<'_> {
        KernelBuilder::new(self, name)
    }

    /// Snapshot of the cumulative hardware counters (this query's own
    /// counters on a query handle; device-wide totals otherwise).
    pub fn counters(&self) -> Counters {
        let st = self.inner.state.lock();
        match self.query {
            Some(q) => st.queries[q as usize].counters.clone(),
            None => st.counters.clone(),
        }
    }

    /// Total simulated time elapsed: the query's private clock (sum of its
    /// own kernels) on a query handle, the device clock otherwise.
    pub fn elapsed(&self) -> SimTime {
        let st = self.inner.state.lock();
        SimTime::from_secs(match self.query {
            Some(q) => st.queries[q as usize].clock,
            None => st.clock,
        })
    }

    /// Current and peak device-memory usage (the query's sub-ledger on a
    /// query handle).
    pub fn mem_report(&self) -> MemReport {
        let st = self.inner.state.lock();
        match self.query {
            Some(q) => st.queries[q as usize].mem.report(),
            None => st.mem.report(),
        }
    }

    /// Reset the peak-memory watermark to the current usage. Call between
    /// experiments that share a device.
    pub fn reset_peak_mem(&self) {
        let mut st = self.inner.state.lock();
        match self.query {
            Some(q) => st.queries[q as usize].mem.reset_peak(),
            None => st.mem.reset_peak(),
        }
    }

    /// Reset counters, simulated clock, and the peak-memory watermark. Live
    /// allocations and L2 contents are kept — resetting *statistics* does
    /// not cool down the hardware cache; use [`Device::flush_l2`] for that.
    ///
    /// An active trace records a `reset_stats` marker at the old clock:
    /// events after the reset restart at timestamp zero, so a multi-reset
    /// trace is a sequence of overlapping timelines separated by markers.
    pub fn reset_stats(&self) {
        let mut st = self.inner.state.lock();
        match self.query {
            Some(qid) => {
                let q = &mut st.queries[qid as usize];
                let clock = q.clock;
                let mut dropped = 0;
                if let Some(tr) = q.trace.as_deref_mut() {
                    dropped = tr.push_instant("reset_stats", clock);
                }
                q.counters = Counters::default();
                q.clock = 0.0;
                q.mem.reset_peak();
                note_trace_drops(&mut st.metrics, dropped);
            }
            None => {
                let clock = st.clock;
                let mut dropped = 0;
                if let Some(tr) = st.trace.as_deref_mut() {
                    dropped = tr.push_instant("reset_stats", clock);
                }
                st.counters = Counters::default();
                st.clock = 0.0;
                st.mem.reset_peak();
                note_trace_drops(&mut st.metrics, dropped);
                if let Some(m) = st.metrics.as_deref_mut() {
                    // Cumulative metrics totals stay monotone across the
                    // reset; only the sample grid rebases to the new clock.
                    m.on_reset();
                }
            }
        }
    }

    /// Start recording trace events (see the [`trace`] module). Idempotent:
    /// enabling an already-tracing device keeps the existing event log. On a
    /// query handle this starts the query's private trace, named
    /// `"<device>#q<id>"`.
    pub fn enable_tracing(&self) {
        let mut st = self.inner.state.lock();
        match self.query {
            Some(qid) => {
                let name = format!("{}#q{qid}", self.inner.config.name);
                let q = &mut st.queries[qid as usize];
                if q.trace.is_none() {
                    q.trace = Some(Box::new(Trace::new(name)));
                }
            }
            None => {
                if st.trace.is_none() {
                    st.trace = Some(Box::new(Trace::new(self.inner.config.name.clone())));
                }
            }
        }
    }

    /// [`Device::enable_tracing`] in bounded flight-recorder mode: the
    /// recorder keeps at most `capacity` events, evicting the oldest when
    /// full and counting evictions into the `trace_events_dropped_total`
    /// metric (and [`Trace::dropped_events`]). Long open-loop serving runs
    /// can keep tracing on without unbounded memory. Calling this on an
    /// already-tracing handle keeps the event log and (re)sets the cap.
    pub fn enable_tracing_ring(&self, capacity: usize) {
        let mut st = self.inner.state.lock();
        match self.query {
            Some(qid) => {
                let name = format!("{}#q{qid}", self.inner.config.name);
                let q = &mut st.queries[qid as usize];
                q.trace
                    .get_or_insert_with(|| Box::new(Trace::new(name)))
                    .set_capacity(capacity);
            }
            None => {
                let name = self.inner.config.name.clone();
                st.trace
                    .get_or_insert_with(|| Box::new(Trace::new(name)))
                    .set_capacity(capacity);
            }
        }
    }

    /// Whether this handle is currently recording trace events. Check this
    /// before doing work (string formatting, snapshotting `elapsed`) whose
    /// only purpose is a [`Device::trace_span`] call.
    pub fn tracing_enabled(&self) -> bool {
        let st = self.inner.state.lock();
        match self.query {
            Some(q) => st.queries[q as usize].trace.is_some(),
            None => st.trace.is_some(),
        }
    }

    /// Stop tracing and return the recorded event log, if tracing was on.
    pub fn take_trace(&self) -> Option<Trace> {
        let mut st = self.inner.state.lock();
        match self.query {
            Some(q) => st.queries[q as usize].trace.take().map(|b| *b),
            None => st.trace.take().map(|b| *b),
        }
    }

    /// Clone the event log recorded so far without stopping the recorder.
    pub fn trace_snapshot(&self) -> Option<Trace> {
        let st = self.inner.state.lock();
        match self.query {
            Some(q) => st.queries[q as usize].trace.as_deref().cloned(),
            None => st.trace.as_deref().cloned(),
        }
    }

    /// Record a retroactive span `[start, end]` on the simulated clock.
    /// No-op when tracing is disabled. Harnesses call this after measuring
    /// an interval they already bracket with [`Device::elapsed`]; children
    /// therefore appear in the log before their enclosing parent.
    pub fn trace_span(&self, cat: SpanCat, name: &str, start: SimTime, end: SimTime) {
        let mut st = self.inner.state.lock();
        let tr = match self.query {
            Some(q) => st.queries[q as usize].trace.as_deref_mut(),
            None => st.trace.as_deref_mut(),
        };
        let mut dropped = 0;
        if let Some(tr) = tr {
            dropped = tr.push_span(cat, name.to_string(), start, end);
        }
        note_trace_drops(&mut st.metrics, dropped);
    }

    /// Record a query-lifecycle stage `[start, end]` (equal for instants)
    /// into the *base* device trace — the serving path's multi-tenant
    /// timeline — regardless of which handle this is called on. No-op when
    /// base tracing is disabled. `query` is `None` for stages that predate
    /// a query id (admission-rejected specs, standalone plan-cache use).
    pub fn trace_lifecycle(
        &self,
        query: Option<QueryId>,
        stage: LifecycleStage,
        start: SimTime,
        end: SimTime,
    ) {
        let mut st = self.inner.state.lock();
        let mut dropped = 0;
        if let Some(tr) = st.trace.as_deref_mut() {
            dropped = tr.push_lifecycle(query, stage, start.secs(), end.secs());
        }
        note_trace_drops(&mut st.metrics, dropped);
    }

    /// Start recording service-level metrics (see the [`metrics`] module):
    /// a registry of counters/gauges/histograms plus time-series sampled
    /// every `interval` of *simulated* time. Call on the base handle; query
    /// handles feed the same recorder with per-tenant labels (dual
    /// accounting, like counters and traces). Idempotent: enabling an
    /// already-recording device keeps the existing recorder and interval.
    pub fn enable_metrics(&self, interval: SimTime) {
        assert!(self.query.is_none(), "enable_metrics on a query handle");
        let mut st = self.inner.state.lock();
        if st.metrics.is_none() {
            let clock = st.clock;
            let current = st.mem.report().current_bytes;
            let mut m =
                metrics::DeviceMetrics::new(self.inner.config.name.clone(), interval.secs(), clock);
            m.on_mem(current);
            st.metrics = Some(Box::new(m));
        }
    }

    /// Whether this device is currently recording service-level metrics.
    pub fn metrics_enabled(&self) -> bool {
        self.inner.state.lock().metrics.is_some()
    }

    /// Snapshot the metrics recorded so far without stopping the recorder.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner
            .state
            .lock()
            .metrics
            .as_deref()
            .map(|m| m.snapshot())
    }

    /// Stop recording metrics and return the final snapshot, if enabled.
    pub fn take_metrics(&self) -> Option<MetricsSnapshot> {
        self.inner.state.lock().metrics.take().map(|m| m.snapshot())
    }

    /// Run `f` against the open metrics registry (no-op when metrics are
    /// disabled — callers can record unconditionally). Engine layers use
    /// this for their own instruments: per-operator duration histograms,
    /// per-tenant latency histograms. Only integer instruments (counters,
    /// histograms) may be recorded from concurrent workers; see the
    /// [`metrics`] module docs for the determinism rules.
    pub fn with_metrics(&self, f: impl FnOnce(&mut MetricsRegistry)) {
        let mut st = self.inner.state.lock();
        if let Some(m) = st.metrics.as_deref_mut() {
            f(&mut m.registry);
        }
    }

    /// Run `f` with this thread marked as *planning*: kernels launched
    /// inside `f` (the planner's statistics-sampling kernels) charge
    /// nothing — no clock, counters, trace, metrics or scheduling turn, on
    /// either the device or a query handle. Planning work models what a
    /// plan-cache hit skips, so a recording (cold) run and its cached
    /// replay observe identical bytes on every clock. Only valid for
    /// kernels that stream charges without touching shared state (no
    /// `warp_loads`, no allocations) — the sampling estimators qualify.
    pub fn with_planning<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = PLANNING.with(|p| p.replace(true));
        let _restore = PlanningGuard(prev);
        f()
    }

    /// Invalidate the modeled L2 (the query's private image on a query
    /// handle), e.g. to measure a cold run.
    pub fn flush_l2(&self) {
        let mut st = self.inner.state.lock();
        st.l2_for(self.query).clear();
    }

    /// Allocate a zero-initialized buffer of `len` elements.
    pub fn alloc<T: Element>(&self, len: usize, label: &'static str) -> DeviceBuffer<T> {
        DeviceBuffer::zeroed(self.clone(), len, label)
    }

    /// Move a host vector into device memory, charging the allocation to the
    /// ledger (but not the transfer: the paper measures join time only, with
    /// inputs resident).
    pub fn upload<T: Element>(&self, data: Vec<T>, label: &'static str) -> DeviceBuffer<T> {
        DeviceBuffer::from_vec(self.clone(), data, label)
    }

    // --- Multi-query scheduling session (see the `sched` module) ---

    /// Begin a scheduling session on this device. Call on the base handle.
    ///
    /// Snapshots the currently free device memory (capacity minus resident
    /// allocations, e.g. a catalog) as the pool query budgets are reserved
    /// from, and discards any previous session's per-query state. Panics if
    /// a session is already active.
    pub fn sched_start(&self, policy: SchedPolicy) {
        self.sched_start_with(policy, QueueLimits::default());
    }

    /// [`Device::sched_start`] with explicit waiting-room bounds: an
    /// arrival that cannot be admitted immediately and finds the (total or
    /// per-class) queue full is *shed* — its [`Device::sched_admit`]
    /// resolves to [`AdmitOutcome::Shed`] and it must not run.
    pub fn sched_start_with(&self, policy: SchedPolicy, limits: QueueLimits) {
        assert!(self.query.is_none(), "sched_start on a query handle");
        let (used, clock, tracing) = {
            let mut st = self.inner.state.lock();
            st.queries.clear();
            (st.mem.report().current_bytes, st.clock, st.trace.is_some())
        };
        let available = self.inner.config.global_mem_bytes.saturating_sub(used);
        let mut sched = self.inner.sched_lock();
        sched.start(policy, available, clock, limits);
        // Exec slices exist for the lifecycle timeline; record them only
        // when the base trace will consume them.
        sched.record_slices = tracing;
    }

    /// Register a query with the active session, reserving it a memory
    /// budget of `budget_bytes`, and return its query handle.
    ///
    /// Budgets are granted FIFO in registration order; a query whose budget
    /// does not currently fit queues until earlier queries retire (block on
    /// it with [`Device::sched_admit`]). A budget that can *never* fit —
    /// larger than the session's free pool — is rejected here. Register all
    /// queries from one thread: query ids are assigned in call order and the
    /// id order is what makes admission and scheduling deterministic.
    pub fn sched_register(&self, weight: f64, budget_bytes: u64) -> Result<Device, AdmissionError> {
        assert!(self.query.is_none(), "sched_register on a query handle");
        let qid = self.inner.sched_lock().register(weight, budget_bytes)?;
        self.finish_register(qid, budget_bytes)
    }

    /// Register a query that *arrives in the future*: open-loop load
    /// generation. The query behaves exactly like a [`Device::sched_register`]
    /// query except that admission and scheduling ignore it until the
    /// simulated clock reaches `arrival`; if the device drains idle while
    /// only future arrivals remain, the clock jumps forward to the earliest
    /// one (an open-loop service sees real inter-arrival gaps, not a
    /// back-to-back batch). Register arrivals in non-decreasing time order —
    /// admission is FIFO in id order, and id order must equal arrival order
    /// for that to mean FIFO-by-arrival.
    pub fn sched_register_at(
        &self,
        weight: f64,
        budget_bytes: u64,
        arrival: SimTime,
    ) -> Result<Device, AdmissionError> {
        assert!(self.query.is_none(), "sched_register_at on a query handle");
        let qid = self
            .inner
            .sched_lock()
            .register_at(weight, budget_bytes, arrival.secs())?;
        self.finish_register(qid, budget_bytes)
    }

    /// Register a query with its full serving spec: an optional future
    /// arrival time (`None` = arrives now), the cost model's predicted
    /// execution time (the ranking key of the shortest-job policies) and an
    /// admission class index (matched against
    /// [`QueueLimits::per_class_depth`]). Like the other registrations,
    /// call from one thread in arrival order.
    pub fn sched_register_spec(
        &self,
        weight: f64,
        budget_bytes: u64,
        arrival: Option<SimTime>,
        predicted: SimTime,
        class: Option<u32>,
    ) -> Result<Device, AdmissionError> {
        assert!(
            self.query.is_none(),
            "sched_register_spec on a query handle"
        );
        // Resolve "arrives now" against the device clock *before* taking
        // the sched lock (the two locks are never held together). The
        // engine registers before any worker runs, so the sched clock
        // mirror equals the device clock here.
        let arrival_secs = match arrival {
            Some(a) => a.secs(),
            None => self.inner.state.lock().clock,
        };
        let qid = self.inner.sched_lock().register_spec(
            weight,
            budget_bytes,
            arrival_secs,
            predicted.secs(),
            class,
        )?;
        self.finish_register(qid, budget_bytes)
    }

    fn finish_register(&self, qid: QueryId, budget_bytes: u64) -> Result<Device, AdmissionError> {
        {
            let mut st = self.inner.state.lock();
            debug_assert_eq!(
                st.queries.len(),
                qid as usize,
                "sched_register must not race itself"
            );
            st.queries
                .push(QueryState::new(&self.inner.config, budget_bytes));
        }
        self.inner.sched_lock().on_register(qid);
        self.inner.sched_cv.notify_all();
        Ok(Device {
            inner: Arc::clone(&self.inner),
            query: Some(qid),
        })
    }

    /// Block until this query's budget reservation has been granted — or,
    /// under a bounded queue, until it is shed. Call on the query handle,
    /// before running the query's plan; on [`AdmitOutcome::Shed`] the query
    /// must not launch kernels and must not retire. If the device drains
    /// idle while this query's (open-loop) arrival is still in the future,
    /// the waiting thread itself jumps the clock forward.
    pub fn sched_admit(&self) -> AdmitOutcome {
        let qid = self.query.expect("sched_admit on a non-query handle");
        let mut sched = self.inner.sched_lock();
        loop {
            if sched.is_admitted(qid) {
                return AdmitOutcome::Admitted;
            }
            if sched.is_shed(qid) {
                return AdmitOutcome::Shed;
            }
            if let Some(delta) = sched.begin_idle_advance() {
                drop(sched);
                self.apply_idle_advance(delta);
                sched = self.inner.sched_lock();
                continue;
            }
            sched = self
                .inner
                .sched_cv
                .wait(sched)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Second phase of an idle advance: the calling thread holds the
    /// exclusive `advancing` claim (designation is `None`, so no kernel can
    /// race the clock), moves the device clock with the sched lock released
    /// (the two locks are never held together), then commits.
    fn apply_idle_advance(&self, delta: f64) {
        {
            let mut st = self.inner.state.lock();
            st.clock += delta;
        }
        self.inner.sched_lock().finish_idle_advance(delta);
        self.inner.sched_cv.notify_all();
    }

    /// Retire this query: record its completion time from its turn-gated
    /// stamp (the simulated clock right after its last kernel — *not* the
    /// live device clock, which would encode host-thread timing under
    /// concurrent policies), release its budget reservation (possibly
    /// admitting queued queries), and remove it from scheduling. Call on
    /// the query handle exactly once, whether the query succeeded or
    /// failed — but never for a shed query, which finished at arrival.
    pub fn sched_retire(&self) {
        let qid = self.query.expect("sched_retire on a non-query handle");
        let stats = {
            let mut sched = self.inner.sched_lock();
            sched.retire(qid);
            sched.stats(qid)
        };
        self.inner.sched_cv.notify_all();
        let mut st = self.inner.state.lock();
        if let Some(m) = st.metrics.as_deref_mut() {
            // Deterministic simulated timestamps; host-racy *recording*
            // order is neutralized by sorting lifecycles at snapshot time.
            m.push_lifecycle(QueryLifecycle {
                query: qid,
                arrival_secs: stats.arrival_secs,
                admitted_secs: stats.admitted_secs,
                completion_secs: stats.completion_secs,
                busy_secs: stats.busy_secs,
                budget_bytes: stats.budget_bytes,
                class: stats.class.clone(),
                slo_secs: stats.slo_secs,
            });
        }
    }

    /// Attach a serving-class label and optional latency target to a
    /// registered query, for lifecycle exports and SLO accounting. Call on
    /// the query handle from the registering (driver) thread.
    pub fn sched_label(&self, class: &str, slo: Option<SimTime>) {
        let qid = self.query.expect("sched_label on a non-query handle");
        self.inner
            .sched_lock()
            .annotate(qid, Some(class.to_string()), slo.map(|s| s.secs()));
    }

    /// The exec slices (contiguous runs of kernel turns, device-clock
    /// `[start, end]` pairs) recorded for a query of the current or
    /// just-finished session. Empty unless the base trace was enabled when
    /// the session started.
    pub fn sched_query_slices(&self, query: QueryId) -> Vec<(f64, f64)> {
        self.inner.sched_lock().slices(query)
    }

    /// End the session. Call on the base handle after every query retired.
    /// Per-query stats and traces remain readable until the next
    /// [`Device::sched_start`].
    pub fn sched_finish(&self) {
        assert!(self.query.is_none(), "sched_finish on a query handle");
        self.inner.sched_lock().finish();
    }

    /// Scheduling outcome (busy time, completion time, budget) of a query in
    /// the current or just-finished session.
    pub fn sched_query_stats(&self, query: QueryId) -> QuerySchedStats {
        self.inner.sched_lock().stats(query)
    }

    /// Wait until the scheduling policy designates `qid` to run the next
    /// kernel. Returns `false` (without waiting) when no session is active,
    /// in which case no turn is held and none must be completed.
    pub(crate) fn acquire_turn(&self, qid: QueryId) -> bool {
        let mut sched = self.inner.sched_lock();
        if !sched.active() {
            return false;
        }
        loop {
            if sched.is_designated(qid) {
                return true;
            }
            if let Some(delta) = sched.begin_idle_advance() {
                drop(sched);
                self.apply_idle_advance(delta);
                sched = self.inner.sched_lock();
                continue;
            }
            sched = self
                .inner
                .sched_cv
                .wait(sched)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Account a finished kernel turn and pass the turn to the next query.
    pub(crate) fn complete_turn(&self, qid: QueryId, kernel_secs: f64) {
        self.inner.sched_lock().complete_turn(qid, kernel_secs);
        self.inner.sched_cv.notify_all();
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("name", &self.inner.config.name)
            .field("query", &self.query)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_starts_clean() {
        let dev = Device::a100();
        assert_eq!(dev.counters().kernel_launches, 0);
        assert_eq!(dev.elapsed().secs(), 0.0);
        assert_eq!(dev.mem_report().current_bytes, 0);
        assert_eq!(dev.query_id(), None);
        assert_eq!(dev.mem_capacity(), dev.config().global_mem_bytes);
    }

    #[test]
    fn clones_share_state() {
        let dev = Device::a100();
        let dev2 = dev.clone();
        dev.kernel("k").items(1024, 1.0).launch();
        assert_eq!(dev2.counters().kernel_launches, 1);
    }

    #[test]
    fn reset_stats_clears_clock_and_counters() {
        let dev = Device::rtx3090();
        dev.kernel("k")
            .items(1 << 20, 2.0)
            .seq_read_bytes(1 << 22)
            .launch();
        assert!(dev.elapsed().secs() > 0.0);
        dev.reset_stats();
        assert_eq!(dev.elapsed().secs(), 0.0);
        assert_eq!(dev.counters().kernel_launches, 0);
    }

    #[test]
    fn query_handles_virtualize_device_state() {
        let dev = Device::a100();
        dev.sched_start(SchedPolicy::RoundRobin);
        let q0 = dev.sched_register(1.0, 1 << 30).unwrap();
        let q1 = dev.sched_register(1.0, 1 << 30).unwrap();
        q0.sched_admit();
        q1.sched_admit();
        assert_eq!(q0.query_id(), Some(0));
        assert_eq!(q1.mem_capacity(), 1 << 30);

        q0.kernel("k0").items(1 << 20, 2.0).launch();
        // Query state is private; the base device aggregates.
        assert_eq!(q0.counters().kernel_launches, 1);
        assert_eq!(q1.counters().kernel_launches, 0);
        assert_eq!(dev.counters().kernel_launches, 1);
        assert!(q0.elapsed().secs() > 0.0);
        assert_eq!(q1.elapsed().secs(), 0.0);

        let buf = q1.alloc::<i64>(1024, "q1.buf");
        assert_eq!(q1.mem_report().current_bytes, 8192);
        assert_eq!(q0.mem_report().current_bytes, 0);
        assert_eq!(dev.mem_report().current_bytes, 0, "base ledger untouched");
        drop(buf);

        q0.sched_retire();
        q1.sched_retire();
        dev.sched_finish();
        let s0 = dev.sched_query_stats(0);
        assert!(s0.busy_secs > 0.0);
        assert_eq!(s0.budget_bytes, 1 << 30);
    }

    #[test]
    fn oversized_budget_is_rejected() {
        let dev = Device::a100();
        dev.sched_start(SchedPolicy::Serial);
        let cap = dev.config().global_mem_bytes;
        let err = dev.sched_register(1.0, cap + 1).unwrap_err();
        assert_eq!(err.available_bytes, cap);
        dev.sched_finish();
    }
}
