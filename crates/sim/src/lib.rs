//! # sim — a software GPU execution simulator
//!
//! This crate stands in for the CUDA substrate used by the paper
//! *Efficiently Processing Large Relational Joins on GPUs* (and its SIGMOD'25
//! successor covering grouped aggregations). No physical GPU is required:
//! algorithms execute on the host over real data, while every kernel charges
//! its memory traffic and instruction work to a calibrated cost model that
//! mirrors how NVIDIA hardware (and the Nsight Compute profiler) accounts for
//! it.
//!
//! The simulator models exactly the effects the paper's results hinge on:
//!
//! * **Coalescing** — warp-level loads are grouped 32 lanes at a time and
//!   deduplicated to distinct 32-byte *sectors*, the unit DRAM traffic is
//!   measured in. A clustered gather touches ~`elem_size` sectors per warp
//!   request; an unclustered gather touches up to 32.
//! * **L2 reach** — a direct-mapped sector cache sized to the device's L2
//!   (40 MB on A100, 6 MB on RTX 3090). Gathers into small relations hit in
//!   L2 and stop being expensive, which is why the paper's TPC-H J3 favors
//!   unoptimized materialization.
//! * **Latency-bound penalty** — poorly coalesced traffic cannot saturate
//!   DRAM bandwidth; the model applies a penalty proportional to the excess
//!   sectors per request, calibrated to Table 4 of the paper (8.5x cycle gap
//!   between unclustered and clustered gathers at 3x the bytes).
//! * **Atomic contention** — bucket-chain partitioning serializes atomics on
//!   hot partitions; the hottest partition's update stream bounds the kernel,
//!   reproducing the Zipf collapse of Figure 14.
//! * **Memory ledger** — every intermediate allocation flows through
//!   [`DeviceBuffer`], giving the peak-usage numbers of Table 5.
//!
//! ## Parallel host execution
//!
//! Warp-traffic accounting — the hot loop of every experiment — runs on
//! [`DeviceConfig::host_threads`] host cores (default: all of them). The
//! parallel path shards the direct-mapped L2 by disjoint set ranges and
//! replays each set's accesses in their original warp order, so counters,
//! hit/miss outcomes and simulated times are **bit-identical** to the
//! `host_threads = 1` sequential reference. See `DESIGN.md` for the full
//! determinism argument.
//!
//! ## Quick example
//!
//! ```
//! use sim::{Device, DeviceConfig};
//!
//! let dev = Device::a100();
//! // A streaming kernel over 1M 4-byte items:
//! dev.kernel("copy")
//!     .items(1 << 20, 4.0)
//!     .seq_read_bytes(4 << 20)
//!     .seq_write_bytes(4 << 20)
//!     .launch();
//! assert!(dev.elapsed().secs() > 0.0);
//! ```

mod config;
mod counters;
mod element;
mod kernel;
mod l2;
mod memory;
mod stats;
mod time;
pub mod trace;

pub use config::DeviceConfig;
pub use counters::{Counters, CountersDelta};
pub use element::Element;
pub use kernel::KernelBuilder;
pub use l2::L2Cache;
pub use memory::{DeviceBuffer, MemReport};
pub use stats::OpStats;
pub use time::{PhaseTimes, SimTime};
pub use trace::{SpanCat, Trace, TraceEvent};

use parking_lot::Mutex;
use std::sync::Arc;

/// Number of 32-bit lanes in a warp. Fixed across all NVIDIA architectures
/// the paper evaluates.
pub const WARP_SIZE: usize = 32;

/// Size in bytes of a DRAM sector — the granularity at which the memory
/// subsystem moves data and at which Nsight Compute reports traffic.
pub const SECTOR_BYTES: u64 = 32;

pub(crate) struct DeviceState {
    pub(crate) counters: Counters,
    pub(crate) l2: L2Cache,
    pub(crate) mem: memory::MemLedger,
    /// Simulated wall-clock, in seconds, advanced by every kernel launch.
    pub(crate) clock: f64,
    /// Opt-in event recorder (see [`trace`]); `None` costs nothing.
    pub(crate) trace: Option<Box<Trace>>,
}

pub(crate) struct DeviceInner {
    pub(crate) config: DeviceConfig,
    pub(crate) state: Mutex<DeviceState>,
}

/// A handle to a simulated GPU.
///
/// Cheap to clone (it is an `Arc` internally); all clones observe the same
/// counters, memory ledger and simulated clock. A `Device` is the first
/// argument of every primitive and operator in this workspace.
#[derive(Clone)]
pub struct Device {
    pub(crate) inner: Arc<DeviceInner>,
}

impl Device {
    /// Create a device from an explicit configuration.
    pub fn new(config: DeviceConfig) -> Self {
        let l2 = L2Cache::new(config.l2_bytes);
        Device {
            inner: Arc::new(DeviceInner {
                config,
                state: Mutex::new(DeviceState {
                    counters: Counters::default(),
                    l2,
                    mem: memory::MemLedger::default(),
                    clock: 0.0,
                    trace: None,
                }),
            }),
        }
    }

    /// An NVIDIA A100 (40 GB, SXM) — the data-center GPU the paper reports
    /// most results on.
    pub fn a100() -> Self {
        Self::new(DeviceConfig::a100())
    }

    /// An NVIDIA GeForce RTX 3090 — the consumer Ampere part used as the
    /// paper's second machine.
    pub fn rtx3090() -> Self {
        Self::new(DeviceConfig::rtx3090())
    }

    /// The configuration this device was created with.
    pub fn config(&self) -> &DeviceConfig {
        &self.inner.config
    }

    /// Begin describing a kernel launch. Call accounting methods on the
    /// returned builder and finish with [`KernelBuilder::launch`].
    pub fn kernel(&self, name: &'static str) -> KernelBuilder<'_> {
        KernelBuilder::new(self, name)
    }

    /// Snapshot of the cumulative hardware counters.
    pub fn counters(&self) -> Counters {
        self.inner.state.lock().counters.clone()
    }

    /// Total simulated time elapsed on this device.
    pub fn elapsed(&self) -> SimTime {
        SimTime::from_secs(self.inner.state.lock().clock)
    }

    /// Current and peak device-memory usage.
    pub fn mem_report(&self) -> MemReport {
        self.inner.state.lock().mem.report()
    }

    /// Reset the peak-memory watermark to the current usage. Call between
    /// experiments that share a device.
    pub fn reset_peak_mem(&self) {
        self.inner.state.lock().mem.reset_peak();
    }

    /// Reset counters, simulated clock, and the peak-memory watermark. Live
    /// allocations and L2 contents are kept — resetting *statistics* does
    /// not cool down the hardware cache; use [`Device::flush_l2`] for that.
    ///
    /// An active trace records a `reset_stats` marker at the old clock:
    /// events after the reset restart at timestamp zero, so a multi-reset
    /// trace is a sequence of overlapping timelines separated by markers.
    pub fn reset_stats(&self) {
        let mut st = self.inner.state.lock();
        let clock = st.clock;
        if let Some(tr) = st.trace.as_deref_mut() {
            tr.push_instant("reset_stats", clock);
        }
        st.counters = Counters::default();
        st.clock = 0.0;
        st.mem.reset_peak();
    }

    /// Start recording trace events (see the [`trace`] module). Idempotent:
    /// enabling an already-tracing device keeps the existing event log.
    pub fn enable_tracing(&self) {
        let mut st = self.inner.state.lock();
        if st.trace.is_none() {
            st.trace = Some(Box::new(Trace::new(self.inner.config.name.clone())));
        }
    }

    /// Whether this device is currently recording trace events. Check this
    /// before doing work (string formatting, snapshotting `elapsed`) whose
    /// only purpose is a [`Device::trace_span`] call.
    pub fn tracing_enabled(&self) -> bool {
        self.inner.state.lock().trace.is_some()
    }

    /// Stop tracing and return the recorded event log, if tracing was on.
    pub fn take_trace(&self) -> Option<Trace> {
        self.inner.state.lock().trace.take().map(|b| *b)
    }

    /// Clone the event log recorded so far without stopping the recorder.
    pub fn trace_snapshot(&self) -> Option<Trace> {
        self.inner.state.lock().trace.as_deref().cloned()
    }

    /// Record a retroactive span `[start, end]` on the simulated clock.
    /// No-op when tracing is disabled. Harnesses call this after measuring
    /// an interval they already bracket with [`Device::elapsed`]; children
    /// therefore appear in the log before their enclosing parent.
    pub fn trace_span(&self, cat: SpanCat, name: &str, start: SimTime, end: SimTime) {
        let mut st = self.inner.state.lock();
        if let Some(tr) = st.trace.as_deref_mut() {
            tr.push_span(cat, name.to_string(), start, end);
        }
    }

    /// Invalidate the modeled L2 (e.g. to measure a cold run).
    pub fn flush_l2(&self) {
        self.inner.state.lock().l2.clear();
    }

    /// Allocate a zero-initialized buffer of `len` elements.
    pub fn alloc<T: Element>(&self, len: usize, label: &'static str) -> DeviceBuffer<T> {
        DeviceBuffer::zeroed(self.clone(), len, label)
    }

    /// Move a host vector into device memory, charging the allocation to the
    /// ledger (but not the transfer: the paper measures join time only, with
    /// inputs resident).
    pub fn upload<T: Element>(&self, data: Vec<T>, label: &'static str) -> DeviceBuffer<T> {
        DeviceBuffer::from_vec(self.clone(), data, label)
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("name", &self.inner.config.name)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_starts_clean() {
        let dev = Device::a100();
        assert_eq!(dev.counters().kernel_launches, 0);
        assert_eq!(dev.elapsed().secs(), 0.0);
        assert_eq!(dev.mem_report().current_bytes, 0);
    }

    #[test]
    fn clones_share_state() {
        let dev = Device::a100();
        let dev2 = dev.clone();
        dev.kernel("k").items(1024, 1.0).launch();
        assert_eq!(dev2.counters().kernel_launches, 1);
    }

    #[test]
    fn reset_stats_clears_clock_and_counters() {
        let dev = Device::rtx3090();
        dev.kernel("k")
            .items(1 << 20, 2.0)
            .seq_read_bytes(1 << 22)
            .launch();
        assert!(dev.elapsed().secs() > 0.0);
        dev.reset_stats();
        assert_eq!(dev.elapsed().secs(), 0.0);
        assert_eq!(dev.counters().kernel_launches, 0);
    }
}
