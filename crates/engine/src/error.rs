//! Engine error type: plan-shape problems are reported, not panicked —
//! they come from user-authored plans, unlike the operator-level invariant
//! violations below this layer.

/// Where in a SQL source string a problem was found: 1-based line and
/// column plus the offending fragment, so error messages can point at the
/// exact token. Carried by every `Sql*` variant of [`EngineError`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SqlSpan {
    /// 1-based line of the first offending character.
    pub line: u32,
    /// 1-based column of the first offending character.
    pub column: u32,
    /// The source fragment (token or clause) the error is about.
    pub fragment: String,
}

impl SqlSpan {
    /// Construct a span.
    pub fn new(line: u32, column: u32, fragment: impl Into<String>) -> Self {
        SqlSpan {
            line,
            column,
            fragment: fragment.into(),
        }
    }
}

impl std::fmt::Display for SqlSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "at {}:{} near '{}'",
            self.line, self.column, self.fragment
        )
    }
}

/// Errors surfaced while binding or executing a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The plan references a table the catalog does not hold.
    UnknownTable(String),
    /// An expression or plan node references a column the input lacks.
    UnknownColumn {
        /// Referenced name.
        column: String,
        /// Names actually available at that node.
        available: Vec<String>,
    },
    /// Join keys have different physical types.
    KeyTypeMismatch {
        /// Left key type label.
        left: &'static str,
        /// Right key type label.
        right: &'static str,
    },
    /// A query in a multi-query scheduling session exceeded its reserved
    /// memory budget (converted by `engine::scheduler` from the typed
    /// `sim::BudgetError` the failing allocation raised). Co-tenants are
    /// unaffected: the reservation bound means the overrun never touched
    /// their memory.
    BudgetExceeded {
        /// The offending query's id within its session.
        query: u32,
        /// The query's reserved budget, bytes.
        budget_bytes: u64,
        /// Bytes the failing allocation requested (alignment-rounded).
        requested_bytes: u64,
        /// Bytes the query already had in use.
        in_use_bytes: u64,
        /// Label of the failing allocation.
        label: String,
    },
    /// A query's requested budget exceeds what the device can ever grant
    /// (free capacity at session start), so it was rejected at admission.
    BudgetUnsatisfiable {
        /// Bytes the query asked to reserve.
        requested_bytes: u64,
        /// Free device bytes when the session started.
        available_bytes: u64,
    },
    /// The admission controller rejected the query before registration:
    /// the cost model's predicted peak memory floor already exceeds the
    /// budget the query would run under, so admitting it could only end
    /// in a mid-flight `BudgetExceeded` unwind. Distinct from
    /// [`EngineError::QueueShed`]: rejection happens at the front door on
    /// predicted cost, shedding happens at the queue on occupancy.
    AdmissionRejected {
        /// Predicted peak device memory, bytes (a floor).
        predicted_peak_bytes: u64,
        /// The budget the query would have been granted, bytes.
        budget_bytes: u64,
    },
    /// The bounded admission queue was full when the query arrived, so it
    /// was shed: never admitted, never executed, co-tenant observables
    /// untouched. Distinct from [`EngineError::AdmissionRejected`]: the
    /// query itself was viable; there was simply no queue capacity.
    QueueShed {
        /// The shed query's id within its session.
        query: u32,
    },
    /// SQL text did not lex or parse.
    SqlParse {
        /// What the parser expected or found.
        message: String,
        /// Source location.
        span: SqlSpan,
    },
    /// A SQL query references a table the catalog does not hold.
    SqlUnknownTable {
        /// Referenced name.
        table: String,
        /// Source location.
        span: SqlSpan,
    },
    /// A SQL query references a column no in-scope table provides.
    SqlUnknownColumn {
        /// Referenced name (qualified form if the query qualified it).
        column: String,
        /// Names actually in scope at that clause.
        available: Vec<String>,
        /// Source location.
        span: SqlSpan,
    },
    /// An unqualified column name matches columns of several in-scope
    /// tables.
    SqlAmbiguousColumn {
        /// Referenced name.
        column: String,
        /// The qualified candidates it could mean.
        candidates: Vec<String>,
        /// Source location.
        span: SqlSpan,
    },
    /// An expression has the wrong type for its clause (e.g. an arithmetic
    /// WHERE, or a comparison used as a value).
    SqlTypeMismatch {
        /// The type the clause needs.
        expected: &'static str,
        /// What the expression actually is.
        found: String,
        /// The clause being checked (WHERE, HAVING, ...).
        context: &'static str,
        /// Source location.
        span: SqlSpan,
    },
    /// A query is valid SQL but outside the supported subset (cross joins,
    /// unpackable composite keys without a functional dependency, ...).
    SqlUnsupported {
        /// What is unsupported and why.
        message: String,
        /// Source location.
        span: SqlSpan,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            EngineError::UnknownColumn { column, available } => {
                write!(f, "unknown column '{column}' (available: {available:?})")
            }
            EngineError::KeyTypeMismatch { left, right } => {
                write!(f, "join key types differ: {left} vs {right}")
            }
            EngineError::BudgetExceeded {
                query,
                budget_bytes,
                requested_bytes,
                in_use_bytes,
                label,
            } => write!(
                f,
                "query {query} exceeded its {budget_bytes} byte memory budget \
                 allocating {requested_bytes} bytes for '{label}' \
                 ({in_use_bytes} already in use)"
            ),
            EngineError::BudgetUnsatisfiable {
                requested_bytes,
                available_bytes,
            } => write!(
                f,
                "requested budget of {requested_bytes} bytes exceeds the \
                 device's {available_bytes} free bytes"
            ),
            EngineError::AdmissionRejected {
                predicted_peak_bytes,
                budget_bytes,
            } => write!(
                f,
                "rejected at admission: predicted peak of {predicted_peak_bytes} \
                 bytes exceeds the {budget_bytes} byte budget"
            ),
            EngineError::QueueShed { query } => {
                write!(f, "query {query} shed: admission queue full on arrival")
            }
            EngineError::SqlParse { message, span } => {
                write!(f, "SQL parse error {span}: {message}")
            }
            EngineError::SqlUnknownTable { table, span } => {
                write!(f, "unknown table '{table}' {span}")
            }
            EngineError::SqlUnknownColumn {
                column,
                available,
                span,
            } => write!(
                f,
                "unknown column '{column}' {span} (in scope: {available:?})"
            ),
            EngineError::SqlAmbiguousColumn {
                column,
                candidates,
                span,
            } => write!(
                f,
                "ambiguous column '{column}' {span}: could be any of {candidates:?}"
            ),
            EngineError::SqlTypeMismatch {
                expected,
                found,
                context,
                span,
            } => write!(
                f,
                "{context} needs a {expected} expression, got {found} {span}"
            ),
            EngineError::SqlUnsupported { message, span } => {
                write!(f, "unsupported SQL {span}: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(
            EngineError::UnknownTable("x".into()).to_string(),
            "unknown table 'x'"
        );
        let e = EngineError::UnknownColumn {
            column: "v".into(),
            available: vec!["a".into()],
        };
        assert!(e.to_string().contains("unknown column 'v'"));
        assert!(EngineError::KeyTypeMismatch {
            left: "4B",
            right: "8B"
        }
        .to_string()
        .contains("differ"));
    }

    #[test]
    fn sql_errors_point_at_the_source() {
        let span = SqlSpan::new(2, 7, "o_custkey");
        let e = EngineError::SqlAmbiguousColumn {
            column: "o_custkey".into(),
            candidates: vec!["orders.o_custkey".into(), "o2.o_custkey".into()],
            span,
        };
        let msg = e.to_string();
        assert!(msg.contains("at 2:7"), "{msg}");
        assert!(msg.contains("orders.o_custkey"), "{msg}");
        let e = EngineError::SqlTypeMismatch {
            expected: "boolean",
            found: "arithmetic".into(),
            context: "WHERE",
            span: SqlSpan::new(1, 30, "l_quantity + 1"),
        };
        assert!(e.to_string().contains("WHERE needs a boolean"), "{e}");
    }
}
