//! Engine error type: plan-shape problems are reported, not panicked —
//! they come from user-authored plans, unlike the operator-level invariant
//! violations below this layer.

/// Errors surfaced while binding or executing a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The plan references a table the catalog does not hold.
    UnknownTable(String),
    /// An expression or plan node references a column the input lacks.
    UnknownColumn {
        /// Referenced name.
        column: String,
        /// Names actually available at that node.
        available: Vec<String>,
    },
    /// Join keys have different physical types.
    KeyTypeMismatch {
        /// Left key type label.
        left: &'static str,
        /// Right key type label.
        right: &'static str,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            EngineError::UnknownColumn { column, available } => {
                write!(f, "unknown column '{column}' (available: {available:?})")
            }
            EngineError::KeyTypeMismatch { left, right } => {
                write!(f, "join key types differ: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(
            EngineError::UnknownTable("x".into()).to_string(),
            "unknown table 'x'"
        );
        let e = EngineError::UnknownColumn {
            column: "v".into(),
            available: vec!["a".into()],
        };
        assert!(e.to_string().contains("unknown column 'v'"));
        assert!(EngineError::KeyTypeMismatch {
            left: "4B",
            right: "8B"
        }
        .to_string()
        .contains("differ"));
    }
}
