//! Engine error type: plan-shape problems are reported, not panicked —
//! they come from user-authored plans, unlike the operator-level invariant
//! violations below this layer.

/// Errors surfaced while binding or executing a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The plan references a table the catalog does not hold.
    UnknownTable(String),
    /// An expression or plan node references a column the input lacks.
    UnknownColumn {
        /// Referenced name.
        column: String,
        /// Names actually available at that node.
        available: Vec<String>,
    },
    /// Join keys have different physical types.
    KeyTypeMismatch {
        /// Left key type label.
        left: &'static str,
        /// Right key type label.
        right: &'static str,
    },
    /// A query in a multi-query scheduling session exceeded its reserved
    /// memory budget (converted by `engine::scheduler` from the typed
    /// `sim::BudgetError` the failing allocation raised). Co-tenants are
    /// unaffected: the reservation bound means the overrun never touched
    /// their memory.
    BudgetExceeded {
        /// The offending query's id within its session.
        query: u32,
        /// The query's reserved budget, bytes.
        budget_bytes: u64,
        /// Bytes the failing allocation requested (alignment-rounded).
        requested_bytes: u64,
        /// Bytes the query already had in use.
        in_use_bytes: u64,
        /// Label of the failing allocation.
        label: String,
    },
    /// A query's requested budget exceeds what the device can ever grant
    /// (free capacity at session start), so it was rejected at admission.
    BudgetUnsatisfiable {
        /// Bytes the query asked to reserve.
        requested_bytes: u64,
        /// Free device bytes when the session started.
        available_bytes: u64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            EngineError::UnknownColumn { column, available } => {
                write!(f, "unknown column '{column}' (available: {available:?})")
            }
            EngineError::KeyTypeMismatch { left, right } => {
                write!(f, "join key types differ: {left} vs {right}")
            }
            EngineError::BudgetExceeded {
                query,
                budget_bytes,
                requested_bytes,
                in_use_bytes,
                label,
            } => write!(
                f,
                "query {query} exceeded its {budget_bytes} byte memory budget \
                 allocating {requested_bytes} bytes for '{label}' \
                 ({in_use_bytes} already in use)"
            ),
            EngineError::BudgetUnsatisfiable {
                requested_bytes,
                available_bytes,
            } => write!(
                f,
                "requested budget of {requested_bytes} bytes exceeds the \
                 device's {available_bytes} free bytes"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(
            EngineError::UnknownTable("x".into()).to_string(),
            "unknown table 'x'"
        );
        let e = EngineError::UnknownColumn {
            column: "v".into(),
            available: vec!["a".into()],
        };
        assert!(e.to_string().contains("unknown column 'v'"));
        assert!(EngineError::KeyTypeMismatch {
            left: "4B",
            right: "8B"
        }
        .to_string()
        .contains("differ"));
    }
}
