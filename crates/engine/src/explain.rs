//! EXPLAIN ANALYZE: the executed plan, annotated the way the paper argues.
//!
//! [`execute`](crate::execute) already returns a [`NodeStats`] tree carrying
//! the shared per-operator report; this module attaches the *interpretation*
//! to every node, so a query report reads like the paper's evaluation
//! sections rather than a bare counter dump:
//!
//! * **Roofline attribution** ([`sim::analysis::roofline`]) — is the
//!   operator memory-bound, compute-bound, latency-bound or stuck on
//!   serialized atomics, and how close to the device's peaks did it run?
//! * **Access-pattern diagnosis** ([`sim::analysis::diagnose`]) — the named
//!   pathologies (random gather, partition scatter, contended global hash
//!   table) with the metric evidence (sectors/request vs the ideal 4, L2
//!   hit rate, write-back share).
//! * **Phase breakdown** — the paper's transformation / processing /
//!   materialization split, labeled with the GFUR/GFTR strategy that
//!   produced it.
//! * **Decision provenance** ([`heuristics::Provenance`]) — what the
//!   planner sampled (Chao1 group estimate, skew signal, input sizes, free
//!   memory), which decision-tree branch fired, and which branches were
//!   rejected on the way.
//!
//! Everything is a pure function of the recorded [`NodeStats`] and the
//! [`DeviceConfig`], so rendered reports are byte-identical across
//! `host_threads` settings and scheduler policies — the invariant
//! `tests/explain_invariants.rs` locks.

use crate::NodeStats;
use heuristics::Provenance;
use serde::Serialize;
use sim::analysis::{diagnose, human_bytes, roofline, Diagnosis, Roofline};
use sim::{Counters, DeviceConfig, PhaseTimes, SimTime};

/// One plan node with its full attribution.
#[derive(Debug, Clone, Serialize)]
pub struct ExplainNode {
    /// Node description (operator + parameters + chosen algorithm).
    pub label: String,
    /// Output rows.
    pub rows: usize,
    /// Simulated time in this node, children excluded, seconds.
    pub time_secs: f64,
    /// The paper's three-phase breakdown (all zero for operators without
    /// one).
    pub phases: PhaseTimes,
    /// Roofline decomposition and bottleneck classification of this node's
    /// counter delta.
    pub roofline: Roofline,
    /// Diagnosed access patterns with evidence.
    pub patterns: Vec<Diagnosis>,
    /// The raw hardware-counter delta the attribution is derived from.
    pub counters: Counters,
    /// How the planner picked this operator's algorithm, when it had a
    /// decision to make.
    pub provenance: Option<Provenance>,
    /// Children, inputs first.
    pub children: Vec<ExplainNode>,
}

/// A whole executed query, attributed: [`ExplainNode`] tree plus the device
/// it ran on.
#[derive(Debug, Clone, Serialize)]
pub struct QueryExplain {
    /// Device name the configuration peaks came from.
    pub device: String,
    /// Plan-cache provenance, when the execution went through a
    /// [`crate::plan_cache::PlanCache`] (attach with
    /// [`QueryExplain::with_cache`]); `None` for uncached executions.
    pub cache: Option<crate::plan_cache::PlanCacheInfo>,
    /// The attributed plan tree.
    pub root: ExplainNode,
}

impl ExplainNode {
    fn from_node(cfg: &DeviceConfig, stats: &NodeStats) -> ExplainNode {
        ExplainNode {
            label: stats.label.clone(),
            rows: stats.op.rows,
            time_secs: stats.time().secs(),
            phases: stats.op.phases,
            roofline: roofline(&stats.op.counters, cfg),
            patterns: diagnose(&stats.op.counters, cfg),
            counters: stats.op.counters.clone(),
            provenance: stats.provenance.clone(),
            children: stats
                .children
                .iter()
                .map(|c| ExplainNode::from_node(cfg, c))
                .collect(),
        }
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        let _ = writeln!(
            out,
            "{pad}{} [{} rows, {}]",
            self.label,
            self.rows,
            SimTime::from_secs(self.time_secs),
        );
        // Aliasing-only nodes (scans, projections of existing columns) have
        // nothing to attribute; keep their lines bare.
        let c = &self.counters;
        if c.cycles > 0.0 {
            let _ = writeln!(out, "{pad}  bottleneck: {}", self.roofline.summary());
            if c.dram_bytes() > 0 {
                let _ = write!(out, "{pad}  traffic: {} DRAM", human_bytes(c.dram_bytes()));
                if c.load_requests > 0 {
                    let _ = write!(out, ", {:.2} sect/req", c.sectors_per_request());
                }
                if c.l2_hits + c.l2_misses > 0 {
                    let _ = write!(out, ", L2 {:.0}%", c.l2_hit_rate() * 100.0);
                }
                if c.atomics > 0 {
                    let _ = write!(out, ", {} atomics", c.atomics);
                }
                let _ = writeln!(out);
            }
            for d in &self.patterns {
                let _ = writeln!(
                    out,
                    "{pad}  pattern: {}: {}",
                    d.pattern.as_str(),
                    d.evidence
                );
            }
            if self.phases.total().secs() > 0.0 {
                let strategy = self
                    .provenance
                    .as_ref()
                    .map(|p| format!(" ({} materialization)", p.materialization()))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "{pad}  phases: transform {} | match {} | materialize {}{strategy}",
                    self.phases.transform, self.phases.match_find, self.phases.materialize,
                );
            }
        }
        if let Some(p) = &self.provenance {
            render_provenance(p, out, &pad);
        }
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

fn render_provenance(p: &Provenance, out: &mut String, pad: &str) {
    use std::fmt::Write;
    match p {
        Provenance::Join(j) => {
            let _ = writeln!(
                out,
                "{pad}  decision: {} via \"{}\" — {}",
                j.choice, j.guard, j.rationale
            );
            let _ = write!(
                out,
                "{pad}    stats: build {} rows, probe {} rows, {} free",
                j.build_rows,
                j.probe_rows,
                human_bytes(j.free_mem_bytes)
            );
            if let Some(s) = &j.sampled {
                let _ = write!(
                    out,
                    "; sampled {} rows: match ratio {:.2}, top key {:.1}%",
                    s.sample_size,
                    s.match_ratio,
                    100.0 * s.top_key_share
                );
            }
            if let Some(prof) = &j.profile {
                if prof.skewed {
                    let _ = write!(out, " (skewed)");
                }
            }
            if j.chunks > 1 {
                let _ = write!(out, "; out-of-core in {} chunks", j.chunks);
            }
            let _ = writeln!(out);
            for r in &j.rejected {
                let _ = writeln!(
                    out,
                    "{pad}    rejected: {} (guard \"{}\" did not hold)",
                    r.algorithm, r.guard
                );
            }
        }
        Provenance::Fusion(f) => {
            let _ = writeln!(
                out,
                "{pad}  fused: {} steps ({}), {} predicate{} in one evaluation",
                f.steps.len(),
                f.steps.join("+"),
                f.predicates,
                if f.predicates == 1 { "" } else { "s" }
            );
            let _ = writeln!(
                out,
                "{pad}    selection: {} of {} rows ({:.1}%)",
                f.selected_rows,
                f.input_rows,
                if f.input_rows == 0 {
                    100.0
                } else {
                    100.0 * f.selected_rows as f64 / f.input_rows as f64
                }
            );
            let _ = writeln!(
                out,
                "{pad}    materialization: {} — {} column{} deferred as tickets, {} computed; boundary: {}",
                if f.materialized_here { "GFUR (here)" } else { "GFTR (deferred)" },
                f.deferred_cols,
                if f.deferred_cols == 1 { "" } else { "s" },
                f.computed_cols,
                f.boundary
            );
        }
        Provenance::GroupBy(g) => {
            let _ = writeln!(
                out,
                "{pad}  decision: {} via \"{}\" — {}",
                g.choice, g.guard, g.rationale
            );
            let _ = write!(out, "{pad}    stats: {} input rows", g.rows);
            if let Some(s) = &g.sampled {
                let _ = write!(
                    out,
                    "; sampled {} rows: ~{} groups (Chao1), top key {:.1}%{}",
                    s.sample_size,
                    s.est_groups,
                    100.0 * s.top_key_share,
                    if s.skewed() { " (skewed)" } else { "" }
                );
            }
            let _ = writeln!(out);
            for r in &g.rejected {
                let _ = writeln!(
                    out,
                    "{pad}    rejected: {} (guard \"{}\" did not hold)",
                    r.algorithm, r.guard
                );
            }
        }
    }
}

impl QueryExplain {
    /// Attribute an executed plan tree against `cfg`'s roofline. A pure
    /// function of its inputs: equal `NodeStats` produce byte-equal
    /// explains regardless of host threading or scheduling policy.
    pub fn from_stats(cfg: &DeviceConfig, stats: &NodeStats) -> QueryExplain {
        QueryExplain {
            device: cfg.name.clone(),
            cache: None,
            root: ExplainNode::from_node(cfg, stats),
        }
    }

    /// Attach plan-cache provenance (hit/miss, fingerprint, catalog
    /// version) to the report. Rendering and serialization stay unchanged
    /// when no provenance is attached.
    pub fn with_cache(mut self, info: crate::plan_cache::PlanCacheInfo) -> Self {
        self.cache = Some(info);
        self
    }

    /// Render the annotated plan tree.
    pub fn render(&self) -> String {
        let mut out = format!("EXPLAIN ANALYZE ({})\n", self.device);
        if let Some(cache) = &self.cache {
            let outcome = match cache.outcome {
                crate::plan_cache::CacheOutcome::Hit => "hit",
                crate::plan_cache::CacheOutcome::Miss => "miss",
            };
            out.push_str(&format!(
                "plan cache: {outcome} (shape {:#018x}, catalog v{})\n",
                cache.fingerprint, cache.catalog_version
            ));
        }
        self.root.render_into(&mut out, 0);
        out
    }

    /// The same report as a JSON value (for `--explain` files and CI
    /// artifacts).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::to_value(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute, AggSpec, Catalog, Expr, Plan, Table};
    use columnar::Column;
    use groupby::AggFn;
    use sim::Device;

    fn q18_catalog(dev: &Device) -> Catalog {
        let n = 4096usize;
        let mut cat = Catalog::new();
        cat.insert(Table::new(
            "orders",
            vec![
                (
                    "o_id",
                    Column::from_i32(dev, (0..n as i32).collect(), "o_id"),
                ),
                (
                    "o_cust",
                    Column::from_i32(dev, (0..n as i32).map(|i| i % 97).collect(), "o_cust"),
                ),
            ],
        ));
        cat.insert(Table::new(
            "lineitem",
            vec![
                (
                    "l_oid",
                    Column::from_i32(
                        dev,
                        (0..4 * n as i32).map(|i| i % n as i32).collect(),
                        "l_oid",
                    ),
                ),
                (
                    "l_qty",
                    Column::from_i64(dev, (0..4 * n as i64).map(|i| i % 50).collect(), "l_qty"),
                ),
            ],
        ));
        cat
    }

    fn q18_plan() -> Plan {
        Plan::scan("orders")
            .join(Plan::scan("lineitem"), "o_id", "l_oid")
            .aggregate("o_id", vec![AggSpec::new(AggFn::Sum, "l_qty", "total")])
    }

    #[test]
    fn explain_annotates_every_layer() {
        let dev = Device::a100();
        let cat = q18_catalog(&dev);
        let out = execute(&dev, &cat, &q18_plan()).unwrap();
        let ex = QueryExplain::from_stats(dev.config(), &out.stats);
        let text = ex.render();
        assert!(text.starts_with("EXPLAIN ANALYZE (A100)"), "{text}");
        // Roofline attribution on nodes that did device work.
        assert!(text.contains("bottleneck:"), "{text}");
        // Access-pattern diagnosis with evidence.
        assert!(text.contains("pattern:"), "{text}");
        // Phase breakdown labeled with the materialization strategy.
        assert!(text.contains("phases: transform"), "{text}");
        assert!(
            text.contains("GFUR materialization") || text.contains("GFTR materialization"),
            "{text}"
        );
        // Decision provenance: branch taken, sampled stats, rejections.
        assert!(text.contains("decision:"), "{text}");
        assert!(text.contains("Chao1"), "{text}");
        assert!(text.contains("rejected:"), "{text}");
    }

    #[test]
    fn scan_nodes_stay_bare() {
        let dev = Device::a100();
        let cat = q18_catalog(&dev);
        let out = execute(&dev, &cat, &Plan::scan("orders")).unwrap();
        let ex = QueryExplain::from_stats(dev.config(), &out.stats);
        let text = ex.render();
        // A scan is pure aliasing: exactly the header plus one node line.
        assert_eq!(text.lines().count(), 2, "{text}");
        assert!(!text.contains("bottleneck"), "{text}");
    }

    #[test]
    fn explain_json_mirrors_the_tree() {
        let dev = Device::a100();
        let cat = q18_catalog(&dev);
        let out = execute(&dev, &cat, &q18_plan()).unwrap();
        let ex = QueryExplain::from_stats(dev.config(), &out.stats);
        let v = ex.to_json();
        assert_eq!(v.get("device").and_then(|d| d.as_str()), Some("A100"));
        let root = v.get("root").expect("root node");
        assert!(root.get("roofline").is_some());
        assert!(root.get("provenance").is_some());
        let children = root.get("children").and_then(|c| c.as_array()).unwrap();
        assert_eq!(children.len(), 1, "aggregate has the join as its child");
        // Serialization is deterministic: same stats, same bytes.
        let again = QueryExplain::from_stats(dev.config(), &out.stats);
        assert_eq!(
            serde_json::to_string(&v).unwrap(),
            serde_json::to_string(&again.to_json()).unwrap()
        );
    }

    #[test]
    fn pinned_plans_report_pinned_provenance() {
        let dev = Device::a100();
        let cat = q18_catalog(&dev);
        let plan = Plan::scan("orders")
            .join(Plan::scan("lineitem"), "o_id", "l_oid")
            .with_join_algorithm(joins::Algorithm::SmjOm);
        let out = execute(&dev, &cat, &plan).unwrap();
        let ex = QueryExplain::from_stats(dev.config(), &out.stats);
        let text = ex.render();
        assert!(
            text.contains("decision: SMJ-OM via \"pinned by plan\""),
            "{text}"
        );
        assert!(
            !text.contains("rejected:"),
            "pinned plans reject nothing: {text}"
        );
    }

    #[test]
    fn contended_aggregation_is_called_out() {
        // A group domain too large for shared-memory privatization with
        // half the rows in one hot group: the global hash table serializes
        // on its atomic updates.
        let dev = Device::a100();
        let n: i32 = 1 << 18;
        let groups = 1 << 16;
        let keys: Vec<i32> = (0..n)
            .map(|i| if i % 2 == 0 { 0 } else { i % groups })
            .collect();
        let mut cat = Catalog::new();
        cat.insert(Table::new(
            "t",
            vec![
                ("k", Column::from_i32(&dev, keys, "k")),
                ("v", Column::from_i64(&dev, (0..n as i64).collect(), "v")),
            ],
        ));
        let plan = Plan::scan("t")
            .aggregate("k", vec![AggSpec::new(AggFn::Sum, "v", "s")])
            .with_group_algorithm(groupby::GroupByAlgorithm::HashGlobal);
        let out = execute(&dev, &cat, &plan).unwrap();
        let ex = QueryExplain::from_stats(dev.config(), &out.stats);
        let text = ex.render();
        assert!(
            text.contains("contended-hash-table"),
            "hot-key aggregation must be diagnosed: {text}"
        );
    }

    #[test]
    fn fused_nodes_render_their_provenance() {
        let dev = Device::a100();
        let cat = q18_catalog(&dev);
        // A run below the join (deferred to the join boundary) and a run at
        // the root (materializes the query output): both strategies show up.
        let plan = Plan::scan("lineitem")
            .filter(Expr::col("l_qty").gt(Expr::lit(10)))
            .join(Plan::scan("orders"), "l_oid", "o_id")
            .filter(Expr::col("l_qty").lt(Expr::lit(40)))
            .project(vec![("q2", Expr::col("l_qty").mul(Expr::lit(2)))]);
        let out = execute(&dev, &cat, &plan).unwrap();
        let ex = QueryExplain::from_stats(dev.config(), &out.stats);
        let text = ex.render();
        assert!(text.contains("Fused(Filter+Project)"), "{text}");
        assert!(text.contains("Fused(Filter)"), "{text}");
        assert!(text.contains("fused: 2 steps (Filter+Project)"), "{text}");
        assert!(text.contains("selection:"), "{text}");
        assert!(
            text.contains("materialization: GFUR (here)"),
            "the root run materializes the output: {text}"
        );
        assert!(
            text.contains("materialization: GFTR (deferred)"),
            "the below-join run rides tickets to the join: {text}"
        );
        assert!(text.contains("boundary:"), "{text}");
    }

    #[test]
    fn filter_predicate_work_is_attributed() {
        let dev = Device::a100();
        let cat = q18_catalog(&dev);
        let plan = Plan::scan("lineitem").filter(Expr::col("l_qty").gt(Expr::lit(10)));
        let out = execute(&dev, &cat, &plan).unwrap();
        let ex = QueryExplain::from_stats(dev.config(), &out.stats);
        // The filter ran kernels; its node carries a bottleneck line even
        // though it has no phase breakdown.
        let text = ex.render();
        assert!(text.contains("bottleneck:"), "{text}");
        assert!(!text.contains("phases:"), "{text}");
    }
}
