//! Multi-query execution: admit N logical plans onto one simulated device.
//!
//! The paper's operators assume they own the GPU; a production engine
//! serves many tenants. This module is the engine-side driver over the
//! device-side machinery in [`sim::sched`]:
//!
//! 1. **Admission** — each [`QuerySpec`] reserves a memory budget out of
//!    the device's free capacity (an equal share by default). Budgets are
//!    granted FIFO in registration order; a query whose budget cannot be
//!    granted *yet* queues, and one whose budget can *never* be granted is
//!    rejected with [`EngineError::BudgetUnsatisfiable`]. Because granted
//!    reservations never sum past the free capacity, no tenant can OOM a
//!    co-tenant.
//! 2. **Budgeted execution** — each query runs on its own query handle:
//!    private counters, clock, L2 image, trace, and a sub-ledger capped at
//!    its budget. `joins::chunked::plan_chunks` sizes chunks against the
//!    budget, so an over-budget join re-plans out-of-core; an allocation
//!    that still exceeds the budget unwinds with a typed `sim::BudgetError`
//!    which is caught here and converted to
//!    [`EngineError::BudgetExceeded`] — co-tenants keep running.
//! 3. **Deterministic interleaving** — kernel launches pass the session's
//!    turn gate ([`Policy::RoundRobin`], [`Policy::WeightedFair`],
//!    [`Policy::Sjf`] or [`Policy::SjfAging`]), whose designation is a
//!    pure function of simulated state, and completion times come from
//!    the turn-gated completion stamp (the scheduler mirror's clock at
//!    the query's last kernel), never from a racy retire-time clock read.
//!    Per-query outputs, `OpStats` and traces are therefore
//!    *byte-identical* to running the same specs under
//!    [`Policy::Serial`], and full metrics exports are byte-identical
//!    across host threads under *every* policy — the properties
//!    `tests/scheduler_equivalence.rs` and `tests/admission_invariants.rs`
//!    prove.
//! 4. **Admission control** — [`run_open_loop_with`] takes a
//!    [`ServingConfig`]: a bounded admission queue (total and per-class
//!    depth) that sheds overflow arrivals with a typed
//!    [`EngineError::QueueShed`], and a predicted-memory gate that
//!    rejects queries whose [`cost::estimate`] memory floor exceeds their
//!    budget ([`EngineError::AdmissionRejected`]) before they ever
//!    register.
//!
//! ```
//! use engine::{scheduler, Catalog, Plan, Table};
//! use columnar::Column;
//! use sim::Device;
//!
//! let dev = Device::a100();
//! let mut catalog = Catalog::new();
//! catalog.insert(Table::new(
//!     "t",
//!     vec![("k", Column::from_i32(&dev, vec![1, 2, 3], "k"))],
//! ));
//! let specs = vec![
//!     scheduler::QuerySpec::new(Plan::scan("t")),
//!     scheduler::QuerySpec::new(Plan::scan("t").distinct("k")),
//! ];
//! let reports = scheduler::run_queries(&dev, &catalog, specs, scheduler::Policy::RoundRobin);
//! assert_eq!(reports.len(), 2);
//! assert!(reports.iter().all(|r| r.result.is_ok()));
//! ```

use crate::explain::QueryExplain;
use crate::{cost, execute, Catalog, EngineError, NodeStats, Plan, QueryOutput};
use serde::Serialize;
use sim::{AdmitOutcome, Device, OpStats, QueueLimits, SimTime, Trace};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The scheduling policies a session can run under (re-exported from
/// [`sim::SchedPolicy`]): `Serial`, `RoundRobin`, `WeightedFair`, `Sjf`
/// (shortest predicted job first, by the cost model's predicted time), or
/// `SjfAging` (SJF with waiting-time decay, so long jobs cannot starve).
pub type Policy = sim::SchedPolicy;

/// Admission-control configuration for a serving session: how deep the
/// admission queue may grow (in total and per tenant class) before
/// arrivals are shed, and whether the predicted-memory gate rejects
/// queries whose cost-model memory floor already exceeds their budget.
///
/// The default is the PR-8 behavior: unbounded queue, no gate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServingConfig {
    /// Maximum queries in the system (waiting + running) across all
    /// classes; an arrival that would exceed it is shed with
    /// [`EngineError::QueueShed`]. `None` is unbounded.
    pub total_depth: Option<usize>,
    /// Per-class depth limits, by class name. Classes not listed are
    /// unbounded (up to `total_depth`).
    pub per_class_depth: Vec<(String, usize)>,
    /// When set, a query whose predicted peak memory
    /// ([`cost::estimate`]) exceeds its budget is rejected before
    /// registration with [`EngineError::AdmissionRejected`] instead of
    /// admitting it and unwinding mid-flight on `BudgetExceeded`.
    pub memory_gate: bool,
    /// Per-class latency SLO targets, seconds of `completion - arrival`.
    /// Classes not listed have no target. A class listed twice keeps the
    /// *tightest* (minimum) target. Targets feed the per-class
    /// `slo_met_total` / `slo_missed_total` counters, the
    /// `slo_attainment_ratio` and `slo_debt_seconds_total` gauges, and
    /// the windowed `slo_burn_rate` series in the metrics export.
    pub slo: Vec<(String, f64)>,
}

impl ServingConfig {
    /// The default: unbounded queue, no memory gate.
    pub fn new() -> Self {
        ServingConfig::default()
    }

    /// Bound the total number of queries in the system.
    pub fn with_total_depth(mut self, depth: usize) -> Self {
        self.total_depth = Some(depth);
        self
    }

    /// Bound one class's queries in the system.
    pub fn with_class_depth(mut self, class: impl Into<String>, depth: usize) -> Self {
        self.per_class_depth.push((class.into(), depth));
        self
    }

    /// Reject queries whose predicted peak memory exceeds their budget.
    pub fn with_memory_gate(mut self) -> Self {
        self.memory_gate = true;
        self
    }

    /// Set one class's latency SLO target (seconds, end-to-end
    /// `completion - arrival`). Listing a class twice keeps the tightest
    /// target.
    pub fn with_slo(mut self, class: impl Into<String>, target_seconds: f64) -> Self {
        self.slo.push((class.into(), target_seconds));
        self
    }

    /// The SLO target for `class`, if one is configured (minimum over
    /// duplicate entries).
    pub fn slo_for(&self, class: &str) -> Option<f64> {
        self.slo
            .iter()
            .filter(|(c, _)| c == class)
            .map(|(_, s)| *s)
            .reduce(f64::min)
    }
}

/// One tenant query: a plan plus its scheduling parameters.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The logical plan to execute.
    pub plan: Plan,
    /// Fair-share weight under [`Policy::WeightedFair`]; ignored by the
    /// other policies. Defaults to 1.0.
    pub weight: f64,
    /// Explicit memory budget, bytes. `None` reserves an equal share of
    /// the device memory left free by the catalog.
    pub budget_bytes: Option<u64>,
}

impl QuerySpec {
    /// A spec with default weight (1.0) and an equal-share budget.
    pub fn new(plan: Plan) -> Self {
        QuerySpec {
            plan,
            weight: 1.0,
            budget_bytes: None,
        }
    }

    /// Set the fair-share weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Set an explicit memory budget.
    pub fn with_budget(mut self, budget_bytes: u64) -> Self {
        self.budget_bytes = Some(budget_bytes);
        self
    }
}

/// One open-loop request: a [`QuerySpec`] that *arrives* at a scheduled
/// simulated time instead of being present at session start. The tenant
/// `class` labels the request's latency observations in the device's
/// metrics registry (`query_latency_seconds{class=...}` and friends).
#[derive(Debug, Clone)]
pub struct OpenQuery {
    /// Scheduled arrival on the simulated clock.
    pub at: SimTime,
    /// Tenant class for per-class latency accounting (e.g. `"q3"`).
    pub class: String,
    /// The query itself.
    pub spec: QuerySpec,
}

impl OpenQuery {
    /// An open-loop request arriving at `at`.
    pub fn new(at: SimTime, class: impl Into<String>, spec: QuerySpec) -> Self {
        OpenQuery {
            at,
            class: class.into(),
            spec,
        }
    }
}

/// One operator of a finished query, flattened out of the [`NodeStats`]
/// tree in pre-order: the display label plus the shared per-operator
/// report. The flat form is what per-tenant accounting wants — summing
/// `op` fields over the breakdown reproduces the whole-query totals,
/// because each node's stats exclude its children.
#[derive(Debug, Clone, Serialize)]
pub struct OperatorBreakdown {
    /// Node description (operator + parameters + chosen algorithm).
    pub label: String,
    /// The node's own report, children excluded.
    pub op: OpStats,
}

/// Flatten a stats tree into pre-order [`OperatorBreakdown`] rows.
fn flatten_breakdown(stats: &NodeStats, out: &mut Vec<OperatorBreakdown>) {
    out.push(OperatorBreakdown {
        label: stats.label.clone(),
        op: stats.op.clone(),
    });
    for child in &stats.children {
        flatten_breakdown(child, out);
    }
}

/// Outcome of one tenant query in a [`run_queries`] or [`run_open_loop`]
/// session.
pub struct QueryReport {
    /// Index of the originating spec in the `specs` argument (equal to the
    /// device-side query id when every spec passed registration).
    pub query: u32,
    /// The query's result, or the typed error that stopped it.
    pub result: Result<QueryOutput, EngineError>,
    /// The budget the query ran under (or requested, if rejected), bytes.
    pub budget_bytes: u64,
    /// Simulated device time the query's kernels received.
    pub busy: SimTime,
    /// When the query arrived: session start for [`run_queries`] tenants,
    /// the scheduled arrival for [`run_open_loop`] requests.
    pub arrival: SimTime,
    /// Device-clock time at which the query's memory reservation was
    /// granted; `admitted - arrival` is its admission-queue wait.
    pub admitted: SimTime,
    /// Device-clock time at which the query's first kernel turn began —
    /// the moment it first held the device. Equal to `admitted` for
    /// queries that never ran a kernel.
    pub started: SimTime,
    /// Device-clock time at which the query retired — its completion time
    /// on the shared timeline, the metric the fairness suite bounds.
    pub completion: SimTime,
    /// Peak bytes of the query's private ledger — never above
    /// `budget_bytes` by construction.
    pub peak_mem_bytes: u64,
    /// The query's private trace, when the base device was tracing at
    /// session start (events on the query's own clock, named
    /// `"<device>#q<id>"`).
    pub trace: Option<Trace>,
    /// The query's operators, flattened in pre-order — the per-tenant
    /// stats breakdown. Empty when the query failed. Byte-identical to the
    /// breakdown of a solo run of the same plan (modulo [`OpStats::query`]
    /// tagging), the property `tests/scheduler_equivalence.rs` proves.
    pub breakdown: Vec<OperatorBreakdown>,
    /// The query's attributed EXPLAIN ANALYZE report. `None` when the
    /// query failed.
    pub explain: Option<QueryExplain>,
}

impl QueryReport {
    /// Admission-queue wait, `admitted - arrival`. Zero for shed and
    /// rejected queries (which were never admitted).
    pub fn queue_wait(&self) -> SimTime {
        if self.admitted < self.arrival {
            SimTime::ZERO
        } else {
            self.admitted - self.arrival
        }
    }
}

/// Execute `specs` concurrently on `dev` under `policy`; returns one
/// [`QueryReport`] per spec, in spec order.
///
/// Call on the base (non-query) handle of the device holding `catalog`.
/// Each spec gets a budget reservation (equal shares of the free capacity
/// by default) and runs `execute(qdev, catalog, plan)` on its own thread
/// behind the deterministic kernel turn gate — host threading changes
/// nothing observable. A query that exceeds its budget fails alone, with
/// co-tenants' results, stats and ledgers untouched.
///
/// With [`Policy::Serial`] the same machinery runs queries to completion in
/// spec order — the oracle the concurrent policies are byte-compared
/// against.
pub fn run_queries(
    dev: &Device,
    catalog: &Catalog,
    specs: Vec<QuerySpec>,
    policy: Policy,
) -> Vec<QueryReport> {
    let n = specs.len().max(1) as u64;
    let entries: Vec<SessionEntry> = specs
        .into_iter()
        .map(|spec| SessionEntry {
            spec,
            arrival: None,
            class: None,
        })
        .collect();
    // Equal shares of the free capacity: every tenant is present at
    // session start, so all budgets can be live at once.
    run_session(
        dev,
        catalog,
        entries,
        policy,
        &ServingConfig::default(),
        |free| free / n,
    )
}

/// Execute an open-loop arrival schedule on `dev` under `policy`; returns
/// one [`QueryReport`] per request, in request order.
///
/// Unlike [`run_queries`] (a *closed* system: all tenants present at start,
/// load adapts to service), `arrivals` scheds each request onto the
/// simulated clock at its own `at` time, independent of how the service
/// keeps up — the open-loop model a latency-throughput curve requires.
/// Arrival times must be non-decreasing (FIFO admission is in registration
/// order, and registration order must equal arrival order for that to mean
/// FIFO-by-arrival). When the device drains idle before the next arrival,
/// the simulated clock jumps forward to it.
///
/// Per-request latency decomposes as `completion - arrival =
/// (admitted - arrival) + (completion - admitted)`: admission-queue wait
/// plus service. With metrics enabled on `dev`, each request's wait,
/// service and total latency are recorded into per-class histograms
/// (`query_queue_wait_seconds`, `query_exec_seconds`,
/// `query_latency_seconds`, labelled `class=...`) — `m02_serving` derives
/// its whole curve from those.
///
/// Requests default to a quarter of the free capacity as memory budget
/// (set explicit budgets with [`QuerySpec::with_budget`]): an open-loop
/// queue has no meaningful "equal share", and a quarter keeps a few
/// requests admissible concurrently while still exercising admission
/// queueing under load.
pub fn run_open_loop(
    dev: &Device,
    catalog: &Catalog,
    arrivals: Vec<OpenQuery>,
    policy: Policy,
) -> Vec<QueryReport> {
    run_open_loop_with(dev, catalog, arrivals, policy, &ServingConfig::default())
}

/// [`run_open_loop`] with admission control: a bounded queue (total and
/// per-class depth limits) that sheds arrivals with
/// [`EngineError::QueueShed`] when full, and an optional predicted-memory
/// gate that rejects doomed queries with
/// [`EngineError::AdmissionRejected`] before they register. Shed and
/// rejected queries never execute, never hold a reservation, and leave
/// co-tenant observables untouched; they count into the per-class
/// `query_shed_total` / `query_rejected_total` metrics instead of the
/// latency histograms.
pub fn run_open_loop_with(
    dev: &Device,
    catalog: &Catalog,
    arrivals: Vec<OpenQuery>,
    policy: Policy,
    serving: &ServingConfig,
) -> Vec<QueryReport> {
    assert!(
        arrivals.windows(2).all(|w| w[0].at <= w[1].at),
        "open-loop arrivals must be scheduled in non-decreasing time order"
    );
    let entries: Vec<SessionEntry> = arrivals
        .into_iter()
        .map(|oq| SessionEntry {
            spec: oq.spec,
            arrival: Some(oq.at),
            class: Some(oq.class),
        })
        .collect();
    run_session(dev, catalog, entries, policy, serving, |free| free / 4)
}

struct SessionEntry {
    spec: QuerySpec,
    /// `None`: present at session start (closed loop).
    arrival: Option<SimTime>,
    /// Tenant class for latency metrics; `None` uses `"default"`.
    class: Option<String>,
}

fn run_session(
    dev: &Device,
    catalog: &Catalog,
    entries: Vec<SessionEntry>,
    policy: Policy,
    serving: &ServingConfig,
    default_budget: impl Fn(u64) -> u64,
) -> Vec<QueryReport> {
    assert!(
        dev.query_id().is_none(),
        "scheduling sessions must start on the base device handle"
    );
    if entries.is_empty() {
        return Vec::new();
    }
    let was_tracing = dev.tracing_enabled();
    // Clock at session start, read before the scheduler mirror exists:
    // the arrival timestamp lifecycle tracing assigns to queries rejected
    // before registration (they never get a device-side arrival stamp).
    let session_start = dev.elapsed();

    // Tenant classes index the device-side per-class queue limits. The
    // mapping is deterministic (first appearance in spec order), so limit
    // checks — like everything else in the session — are functions of the
    // specs alone.
    let mut classes: Vec<&str> = Vec::new();
    let class_ids: Vec<u32> = entries
        .iter()
        .map(|entry| {
            let name = entry.class.as_deref().unwrap_or("default");
            match classes.iter().position(|c| *c == name) {
                Some(i) => i as u32,
                None => {
                    classes.push(name);
                    (classes.len() - 1) as u32
                }
            }
        })
        .collect();
    let mut per_class_depth: Vec<Option<usize>> = vec![None; classes.len()];
    for (name, depth) in &serving.per_class_depth {
        if let Some(i) = classes.iter().position(|c| c == name) {
            let slot = &mut per_class_depth[i];
            *slot = Some(slot.map_or(*depth, |d| d.min(*depth)));
        }
    }
    dev.sched_start_with(
        policy,
        QueueLimits {
            total_depth: serving.total_depth,
            per_class_depth,
        },
    );
    let free = dev
        .mem_capacity()
        .saturating_sub(dev.mem_report().current_bytes);
    let fallback_budget = default_budget(free);

    // Register every spec on this thread, in spec order: device query ids
    // are assigned in call order, and the id order is what the policies'
    // determinism rests on.
    enum Registered {
        Query { qdev: Device, plan: Plan },
        Rejected { budget: u64, err: EngineError },
    }
    let registered: Vec<Registered> = entries
        .iter()
        .zip(&class_ids)
        .map(|(entry, &class_id)| {
            let spec = &entry.spec;
            let budget = spec.budget_bytes.unwrap_or(fallback_budget);
            // The cost model's prediction drives SJF ordering and the
            // memory gate. An estimation error (unknown table) predicts
            // zero and gates nothing — execution will surface the real
            // error.
            let predicted =
                cost::estimate(dev.config(), catalog, &spec.plan).unwrap_or(cost::CostEstimate {
                    secs: 0.0,
                    peak_bytes: 0,
                });
            if serving.memory_gate && predicted.peak_bytes > budget {
                return Registered::Rejected {
                    budget,
                    err: EngineError::AdmissionRejected {
                        predicted_peak_bytes: predicted.peak_bytes,
                        budget_bytes: budget,
                    },
                };
            }
            let handle = dev.sched_register_spec(
                spec.weight,
                budget,
                entry.arrival,
                SimTime::from_secs(predicted.secs),
                Some(class_id),
            );
            match handle {
                Ok(qdev) => {
                    if was_tracing {
                        qdev.enable_tracing();
                    }
                    // Label the scheduler-side record with the tenant
                    // class and its SLO target so retire-time lifecycle
                    // rows (and the burn-rate series) carry them.
                    let class_name = entry.class.as_deref().unwrap_or("default");
                    qdev.sched_label(
                        class_name,
                        serving.slo_for(class_name).map(SimTime::from_secs),
                    );
                    Registered::Query {
                        qdev,
                        plan: spec.plan.clone(),
                    }
                }
                Err(e) => Registered::Rejected {
                    budget,
                    err: EngineError::BudgetUnsatisfiable {
                        requested_bytes: e.requested_bytes,
                        available_bytes: e.available_bytes,
                    },
                },
            }
        })
        .collect();

    // One worker thread per admitted query. The threads only race on the
    // turn gate, whose decisions are functions of simulated state — so the
    // per-query outcome is independent of host scheduling.
    type Outcome = Result<Result<QueryOutput, EngineError>, Box<dyn std::any::Any + Send>>;
    let outcomes: Vec<Option<Outcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = registered
            .iter()
            .map(|reg| match reg {
                Registered::Rejected { .. } => None,
                Registered::Query { qdev, plan } => Some(scope.spawn(move || {
                    if let AdmitOutcome::Shed = qdev.sched_admit() {
                        // Shed at the queue: never admitted, never run,
                        // never retired (the device already finalized it
                        // with completion = arrival). Co-tenants see
                        // nothing.
                        let qid = qdev.query_id().expect("query handle");
                        return Ok(Err(EngineError::QueueShed { query: qid }));
                    }
                    let result = catch_unwind(AssertUnwindSafe(|| execute(qdev, catalog, plan)));
                    // Retire unconditionally — success, engine error or
                    // unwind — so the reservation is released, queued
                    // queries admit, and the turn gate never waits on a
                    // dead query.
                    qdev.sched_retire();
                    match result {
                        Ok(res) => Ok(res),
                        Err(payload) => match payload.downcast::<sim::BudgetError>() {
                            Ok(b) => Ok(Err(EngineError::BudgetExceeded {
                                query: b.query,
                                budget_bytes: b.budget_bytes,
                                requested_bytes: b.requested_bytes,
                                in_use_bytes: b.in_use_bytes,
                                label: b.label.clone(),
                            })),
                            Err(other) => Err(other),
                        },
                    }
                })),
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.map(|h| h.join().expect("scheduler worker panicked outside execute")))
            .collect()
    });

    let reports: Vec<QueryReport> = registered
        .into_iter()
        .zip(outcomes)
        .zip(&entries)
        .enumerate()
        .map(|(i, ((reg, outcome), entry))| match reg {
            Registered::Rejected { budget, err } => {
                if was_tracing {
                    // Rejected before registration: no device query id
                    // exists, so the terminal span carries `query: None`.
                    // The arrival timestamp is the scheduled arrival for
                    // open-loop requests, session start otherwise.
                    let at = entry.arrival.unwrap_or(session_start);
                    dev.trace_lifecycle(None, sim::LifecycleStage::Arrival, at, at);
                    dev.trace_lifecycle(None, sim::LifecycleStage::Rejected, at, at);
                }
                QueryReport {
                    query: i as u32,
                    result: Err(err),
                    budget_bytes: budget,
                    busy: SimTime::ZERO,
                    arrival: SimTime::ZERO,
                    admitted: SimTime::ZERO,
                    started: SimTime::ZERO,
                    completion: SimTime::ZERO,
                    peak_mem_bytes: 0,
                    trace: None,
                    breakdown: Vec::new(),
                    explain: None,
                }
            }
            Registered::Query { qdev, .. } => {
                let result = match outcome.expect("admitted query has an outcome") {
                    Ok(res) => res,
                    // A non-budget panic is a simulator invariant violation,
                    // not a tenant failure: co-tenants have already retired,
                    // so propagate it.
                    Err(payload) => resume_unwind(payload),
                };
                let qid = qdev.query_id().expect("query handle");
                let sched = dev.sched_query_stats(qid);
                if was_tracing {
                    emit_lifecycle(dev, qid, &sched, &result);
                }
                let (breakdown, explain) = match &result {
                    Ok(out) => {
                        let mut rows = Vec::new();
                        flatten_breakdown(&out.stats, &mut rows);
                        (
                            rows,
                            Some(QueryExplain::from_stats(dev.config(), &out.stats)),
                        )
                    }
                    Err(_) => (Vec::new(), None),
                };
                QueryReport {
                    query: i as u32,
                    result,
                    budget_bytes: sched.budget_bytes,
                    busy: SimTime::from_secs(sched.busy_secs),
                    arrival: SimTime::from_secs(sched.arrival_secs),
                    admitted: SimTime::from_secs(sched.admitted_secs),
                    started: SimTime::from_secs(sched.started_secs.unwrap_or(sched.admitted_secs)),
                    completion: SimTime::from_secs(sched.completion_secs),
                    peak_mem_bytes: qdev.mem_report().peak_bytes,
                    trace: qdev.take_trace(),
                    breakdown,
                    explain,
                }
            }
        })
        .collect();
    dev.sched_finish();
    record_latency_metrics(dev, &entries, &reports, serving);
    reports
}

/// Emit one finished query's lifecycle spans into the base trace, on the
/// driver thread in spec order (so trace bytes are host-schedule
/// independent).
///
/// The span set *tiles* `[arrival, completion]` exactly:
/// `queued` covers `[arrival, admitted]`, the recorded exec slices cover
/// the turns the query held the device, and `interference` fills every
/// gap between them — so the tick-quantized durations telescope to
/// `completion - arrival` with no remainder, the identity
/// `tests/lifecycle_invariants.rs` asserts to the nanosecond.
fn emit_lifecycle(
    dev: &Device,
    qid: u32,
    sched: &sim::QuerySchedStats,
    result: &Result<QueryOutput, EngineError>,
) {
    use sim::LifecycleStage as Stage;
    let q = Some(qid);
    let arrival = SimTime::from_secs(sched.arrival_secs);
    dev.trace_lifecycle(q, Stage::Arrival, arrival, arrival);
    if matches!(result, Err(EngineError::QueueShed { .. })) {
        // Shed at the queue: terminal instant at arrival, no spans — the
        // query never waited admitted, never ran.
        dev.trace_lifecycle(q, Stage::Shed, arrival, arrival);
        return;
    }
    let admitted = SimTime::from_secs(sched.admitted_secs);
    let completion = SimTime::from_secs(sched.completion_secs);
    dev.trace_lifecycle(q, Stage::Queued, arrival, admitted);
    dev.trace_lifecycle(q, Stage::Admitted, admitted, admitted);
    // Slice boundaries are exact mirrors of the scheduler clock, so gap
    // detection compares the same f64 values the stamps hold — equality
    // is exact, not approximate.
    let mut prev = sched.admitted_secs;
    for (start, end) in dev.sched_query_slices(qid) {
        if start > prev {
            dev.trace_lifecycle(
                q,
                Stage::Interference,
                SimTime::from_secs(prev),
                SimTime::from_secs(start),
            );
        }
        dev.trace_lifecycle(
            q,
            Stage::ExecSlice,
            SimTime::from_secs(start),
            SimTime::from_secs(end),
        );
        prev = end;
    }
    if sched.completion_secs > prev {
        dev.trace_lifecycle(q, Stage::Interference, SimTime::from_secs(prev), completion);
    }
    dev.trace_lifecycle(q, Stage::Complete, completion, completion);
}

/// Record per-class service-level latency observations into the device's
/// metrics registry (no-op when metrics are disabled). Runs on the driver
/// thread, in spec order, *after* the session — recording order and values
/// are both deterministic, so exports stay byte-identical across runs.
fn record_latency_metrics(
    dev: &Device,
    entries: &[SessionEntry],
    reports: &[QueryReport],
    serving: &ServingConfig,
) {
    dev.with_metrics(|reg| {
        // Classes with an SLO, in first-appearance spec order — the order
        // the attainment-ratio gauges are (re)computed in below.
        let mut slo_classes: Vec<&str> = Vec::new();
        for (entry, report) in entries.iter().zip(reports) {
            let class = entry.class.as_deref().unwrap_or("default");
            let labels = || vec![("class", class.to_string())];
            match &report.result {
                Ok(_) => {
                    let wait = (report.admitted - report.arrival).secs();
                    let exec = (report.completion - report.admitted).secs();
                    let latency = (report.completion - report.arrival).secs();
                    reg.hist_record(
                        "query_queue_wait_seconds",
                        labels(),
                        sim::SECONDS_SCALE,
                        sim::secs_to_ticks(wait),
                    );
                    reg.hist_record(
                        "query_exec_seconds",
                        labels(),
                        sim::SECONDS_SCALE,
                        sim::secs_to_ticks(exec),
                    );
                    reg.hist_record(
                        "query_latency_seconds",
                        labels(),
                        sim::SECONDS_SCALE,
                        sim::secs_to_ticks(latency),
                    );
                    reg.counter_add("query_completed_total", labels(), 1);
                    if let Some(slo) = serving.slo_for(class) {
                        if !slo_classes.contains(&class) {
                            slo_classes.push(class);
                        }
                        // Met/missed compare tick-quantized values — the
                        // same quantization the latency histogram stores —
                        // so the counters and the histogram never disagree
                        // about which side of the target a query landed on.
                        let latency_ticks = sim::secs_to_ticks(latency);
                        let slo_ticks = sim::secs_to_ticks(slo);
                        if latency_ticks <= slo_ticks {
                            reg.counter_add("slo_met_total", labels(), 1);
                        } else {
                            reg.counter_add("slo_missed_total", labels(), 1);
                            let debt = (latency_ticks - slo_ticks) as f64 * sim::SECONDS_SCALE;
                            let prior = reg.gauge("slo_debt_seconds_total", &[("class", class)]);
                            reg.gauge_set("slo_debt_seconds_total", labels(), prior + debt);
                        }
                    }
                }
                // Shed and rejected queries never ran: count them in
                // their own families and keep them out of the latency
                // histograms (a zero-latency observation would corrupt
                // the percentiles the serving bench reports).
                Err(EngineError::QueueShed { .. }) => {
                    reg.counter_add("query_shed_total", labels(), 1)
                }
                Err(EngineError::AdmissionRejected { .. }) => {
                    reg.counter_add("query_rejected_total", labels(), 1)
                }
                Err(_) => reg.counter_add("query_failed_total", labels(), 1),
            }
        }
        // Attainment ratios roll up the *cumulative* met/missed counters
        // (read back from the registry, not this session's tallies alone),
        // so repeated sessions on one device keep the gauge consistent
        // with the counters it summarizes.
        for class in slo_classes {
            let met = reg.counter("slo_met_total", &[("class", class)]);
            let missed = reg.counter("slo_missed_total", &[("class", class)]);
            let ratio = met as f64 / (met + missed).max(1) as f64;
            reg.gauge_set(
                "slo_attainment_ratio",
                vec![("class", class.to_string())],
                ratio,
            );
        }
    });
}
