//! Multi-query execution: admit N logical plans onto one simulated device.
//!
//! The paper's operators assume they own the GPU; a production engine
//! serves many tenants. This module is the engine-side driver over the
//! device-side machinery in [`sim::sched`]:
//!
//! 1. **Admission** — each [`QuerySpec`] reserves a memory budget out of
//!    the device's free capacity (an equal share by default). Budgets are
//!    granted FIFO in registration order; a query whose budget cannot be
//!    granted *yet* queues, and one whose budget can *never* be granted is
//!    rejected with [`EngineError::BudgetUnsatisfiable`]. Because granted
//!    reservations never sum past the free capacity, no tenant can OOM a
//!    co-tenant.
//! 2. **Budgeted execution** — each query runs on its own query handle:
//!    private counters, clock, L2 image, trace, and a sub-ledger capped at
//!    its budget. `joins::chunked::plan_chunks` sizes chunks against the
//!    budget, so an over-budget join re-plans out-of-core; an allocation
//!    that still exceeds the budget unwinds with a typed `sim::BudgetError`
//!    which is caught here and converted to
//!    [`EngineError::BudgetExceeded`] — co-tenants keep running.
//! 3. **Deterministic interleaving** — kernel launches pass the session's
//!    turn gate ([`Policy::RoundRobin`] or [`Policy::WeightedFair`]),
//!    whose designation is a pure function of simulated state. Per-query
//!    outputs, `OpStats` and traces are therefore *byte-identical* to
//!    running the same specs under [`Policy::Serial`] — the property
//!    `tests/scheduler_equivalence.rs` proves.
//!
//! ```
//! use engine::{scheduler, Catalog, Plan, Table};
//! use columnar::Column;
//! use sim::Device;
//!
//! let dev = Device::a100();
//! let mut catalog = Catalog::new();
//! catalog.insert(Table::new(
//!     "t",
//!     vec![("k", Column::from_i32(&dev, vec![1, 2, 3], "k"))],
//! ));
//! let specs = vec![
//!     scheduler::QuerySpec::new(Plan::scan("t")),
//!     scheduler::QuerySpec::new(Plan::scan("t").distinct("k")),
//! ];
//! let reports = scheduler::run_queries(&dev, &catalog, specs, scheduler::Policy::RoundRobin);
//! assert_eq!(reports.len(), 2);
//! assert!(reports.iter().all(|r| r.result.is_ok()));
//! ```

use crate::explain::QueryExplain;
use crate::{execute, Catalog, EngineError, NodeStats, Plan, QueryOutput};
use serde::Serialize;
use sim::{Device, OpStats, SimTime, Trace};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The scheduling policies a session can run under (re-exported from
/// [`sim::SchedPolicy`]): `Serial`, `RoundRobin`, or `WeightedFair`.
pub type Policy = sim::SchedPolicy;

/// One tenant query: a plan plus its scheduling parameters.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The logical plan to execute.
    pub plan: Plan,
    /// Fair-share weight under [`Policy::WeightedFair`]; ignored by the
    /// other policies. Defaults to 1.0.
    pub weight: f64,
    /// Explicit memory budget, bytes. `None` reserves an equal share of
    /// the device memory left free by the catalog.
    pub budget_bytes: Option<u64>,
}

impl QuerySpec {
    /// A spec with default weight (1.0) and an equal-share budget.
    pub fn new(plan: Plan) -> Self {
        QuerySpec {
            plan,
            weight: 1.0,
            budget_bytes: None,
        }
    }

    /// Set the fair-share weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Set an explicit memory budget.
    pub fn with_budget(mut self, budget_bytes: u64) -> Self {
        self.budget_bytes = Some(budget_bytes);
        self
    }
}

/// One operator of a finished query, flattened out of the [`NodeStats`]
/// tree in pre-order: the display label plus the shared per-operator
/// report. The flat form is what per-tenant accounting wants — summing
/// `op` fields over the breakdown reproduces the whole-query totals,
/// because each node's stats exclude its children.
#[derive(Debug, Clone, Serialize)]
pub struct OperatorBreakdown {
    /// Node description (operator + parameters + chosen algorithm).
    pub label: String,
    /// The node's own report, children excluded.
    pub op: OpStats,
}

/// Flatten a stats tree into pre-order [`OperatorBreakdown`] rows.
fn flatten_breakdown(stats: &NodeStats, out: &mut Vec<OperatorBreakdown>) {
    out.push(OperatorBreakdown {
        label: stats.label.clone(),
        op: stats.op.clone(),
    });
    for child in &stats.children {
        flatten_breakdown(child, out);
    }
}

/// Outcome of one tenant query in a [`run_queries`] session.
pub struct QueryReport {
    /// Index of the originating spec in the `specs` argument (equal to the
    /// device-side query id when every spec passed registration).
    pub query: u32,
    /// The query's result, or the typed error that stopped it.
    pub result: Result<QueryOutput, EngineError>,
    /// The budget the query ran under (or requested, if rejected), bytes.
    pub budget_bytes: u64,
    /// Simulated device time the query's kernels received.
    pub busy: SimTime,
    /// Device-clock time at which the query retired — its completion time
    /// on the shared timeline, the metric the fairness suite bounds.
    pub completion: SimTime,
    /// Peak bytes of the query's private ledger — never above
    /// `budget_bytes` by construction.
    pub peak_mem_bytes: u64,
    /// The query's private trace, when the base device was tracing at
    /// session start (events on the query's own clock, named
    /// `"<device>#q<id>"`).
    pub trace: Option<Trace>,
    /// The query's operators, flattened in pre-order — the per-tenant
    /// stats breakdown. Empty when the query failed. Byte-identical to the
    /// breakdown of a solo run of the same plan (modulo [`OpStats::query`]
    /// tagging), the property `tests/scheduler_equivalence.rs` proves.
    pub breakdown: Vec<OperatorBreakdown>,
    /// The query's attributed EXPLAIN ANALYZE report. `None` when the
    /// query failed.
    pub explain: Option<QueryExplain>,
}

/// Execute `specs` concurrently on `dev` under `policy`; returns one
/// [`QueryReport`] per spec, in spec order.
///
/// Call on the base (non-query) handle of the device holding `catalog`.
/// Each spec gets a budget reservation (equal shares of the free capacity
/// by default) and runs `execute(qdev, catalog, plan)` on its own thread
/// behind the deterministic kernel turn gate — host threading changes
/// nothing observable. A query that exceeds its budget fails alone, with
/// co-tenants' results, stats and ledgers untouched.
///
/// With [`Policy::Serial`] the same machinery runs queries to completion in
/// spec order — the oracle the concurrent policies are byte-compared
/// against.
pub fn run_queries(
    dev: &Device,
    catalog: &Catalog,
    specs: Vec<QuerySpec>,
    policy: Policy,
) -> Vec<QueryReport> {
    assert!(
        dev.query_id().is_none(),
        "run_queries must be called on the base device handle"
    );
    if specs.is_empty() {
        return Vec::new();
    }
    let was_tracing = dev.tracing_enabled();
    dev.sched_start(policy);
    let free = dev
        .mem_capacity()
        .saturating_sub(dev.mem_report().current_bytes);
    let fair_share = free / specs.len() as u64;

    // Register every spec on this thread, in spec order: device query ids
    // are assigned in call order, and the id order is what the policies'
    // determinism rests on.
    enum Registered {
        Query { qdev: Device, plan: Plan },
        Rejected { budget: u64, err: EngineError },
    }
    let registered: Vec<Registered> = specs
        .into_iter()
        .map(|spec| {
            let budget = spec.budget_bytes.unwrap_or(fair_share);
            match dev.sched_register(spec.weight, budget) {
                Ok(qdev) => {
                    if was_tracing {
                        qdev.enable_tracing();
                    }
                    Registered::Query {
                        qdev,
                        plan: spec.plan,
                    }
                }
                Err(e) => Registered::Rejected {
                    budget,
                    err: EngineError::BudgetUnsatisfiable {
                        requested_bytes: e.requested_bytes,
                        available_bytes: e.available_bytes,
                    },
                },
            }
        })
        .collect();

    // One worker thread per admitted query. The threads only race on the
    // turn gate, whose decisions are functions of simulated state — so the
    // per-query outcome is independent of host scheduling.
    type Outcome = Result<Result<QueryOutput, EngineError>, Box<dyn std::any::Any + Send>>;
    let outcomes: Vec<Option<Outcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = registered
            .iter()
            .map(|reg| match reg {
                Registered::Rejected { .. } => None,
                Registered::Query { qdev, plan } => Some(scope.spawn(move || {
                    qdev.sched_admit();
                    let result = catch_unwind(AssertUnwindSafe(|| execute(qdev, catalog, plan)));
                    // Retire unconditionally — success, engine error or
                    // unwind — so the reservation is released, queued
                    // queries admit, and the turn gate never waits on a
                    // dead query.
                    qdev.sched_retire();
                    match result {
                        Ok(res) => Ok(res),
                        Err(payload) => match payload.downcast::<sim::BudgetError>() {
                            Ok(b) => Ok(Err(EngineError::BudgetExceeded {
                                query: b.query,
                                budget_bytes: b.budget_bytes,
                                requested_bytes: b.requested_bytes,
                                in_use_bytes: b.in_use_bytes,
                                label: b.label.clone(),
                            })),
                            Err(other) => Err(other),
                        },
                    }
                })),
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.map(|h| h.join().expect("scheduler worker panicked outside execute")))
            .collect()
    });

    let reports = registered
        .into_iter()
        .zip(outcomes)
        .enumerate()
        .map(|(i, (reg, outcome))| match reg {
            Registered::Rejected { budget, err } => QueryReport {
                query: i as u32,
                result: Err(err),
                budget_bytes: budget,
                busy: SimTime::ZERO,
                completion: SimTime::ZERO,
                peak_mem_bytes: 0,
                trace: None,
                breakdown: Vec::new(),
                explain: None,
            },
            Registered::Query { qdev, .. } => {
                let result = match outcome.expect("admitted query has an outcome") {
                    Ok(res) => res,
                    // A non-budget panic is a simulator invariant violation,
                    // not a tenant failure: co-tenants have already retired,
                    // so propagate it.
                    Err(payload) => resume_unwind(payload),
                };
                let qid = qdev.query_id().expect("query handle");
                let sched = dev.sched_query_stats(qid);
                let (breakdown, explain) = match &result {
                    Ok(out) => {
                        let mut rows = Vec::new();
                        flatten_breakdown(&out.stats, &mut rows);
                        (
                            rows,
                            Some(QueryExplain::from_stats(dev.config(), &out.stats)),
                        )
                    }
                    Err(_) => (Vec::new(), None),
                };
                QueryReport {
                    query: i as u32,
                    result,
                    budget_bytes: sched.budget_bytes,
                    busy: SimTime::from_secs(sched.busy_secs),
                    completion: SimTime::from_secs(sched.completion_secs),
                    peak_mem_bytes: qdev.mem_report().peak_bytes,
                    trace: qdev.take_trace(),
                    breakdown,
                    explain,
                }
            }
        })
        .collect();
    dev.sched_finish();
    reports
}
