//! The physical-operator layer: one execution contract for every operator.
//!
//! The paper's framework says joins and grouped aggregations are the *same*
//! three-phase computation; this module is that claim as an interface. A
//! [`PhysicalOperator`] binds its inputs, executes on a [`sim::Device`] and
//! returns output columns — and the driver ([`run_operator`]) wraps every
//! node in the same measurement harness: simulated time, peak device memory
//! and the hardware-counter delta all land in one shared [`sim::OpStats`]
//! per node, so a plan report reads like an Nsight profile of the tree.
//!
//! Operators exchange [`Value`]s, not just tables: a fused Filter/Project
//! run ([`crate::fuse::FusedOp`]) emits a late-materialized
//! [`crate::fuse::Deferred`] — base columns plus a selection
//! vector of row-id tickets — and every consumer here knows how to spend
//! the ticket at its own materialization boundary: joins materialize only
//! the key and let payloads ride a 4-byte ticket column through the match,
//! aggregations gather only the grouping key and aggregate inputs, sorts
//! compose their permutation with the selection. This is the paper's GFTR
//! discipline applied plan-wide rather than per join.
//!
//! The layer is also where plan-level memory budgeting lives: before a join
//! executes, [`JoinOp`] runs the Section 4.4 memory model
//! ([`joins::chunked::plan_chunks`]) against the device's free memory and
//! transparently switches to the probe-side chunked join when the predicted
//! peak does not fit. Callers — `engine::execute`, `core::pipeline`, the
//! examples — get out-of-core execution without asking for it.
//!
//! [`compile`] lowers a logical [`Plan`] tree into operators with fusion on
//! (adjacent Filter/Project chains collapse); [`compile_unfused`] keeps the
//! one-node-per-plan-node lowering — the ablation baseline. Other crates
//! can also assemble operator trees directly ([`ValuesOp`] feeds
//! already-materialized tables, which is how `core::pipeline` routes the
//! paper's join→group-by pipeline through this layer).

use crate::exec::{to_relation, Catalog, NodeStats};
use crate::fuse::{self, DCol, Deferred};
use crate::{AggSpec, EngineError, Expr, Plan, Table};
use columnar::{Column, DType, Relation};
use groupby::{AggFn, GroupByAlgorithm, GroupByConfig};
use heuristics::{
    explain_choose_group_by, explain_choose_join, profile_from_stats, sample_group_stats,
    sample_stats, AggProfile, GroupByProvenance, JoinProvenance, Provenance, SideShape,
};
use joins::{chunked, Algorithm, JoinConfig};
use primitives::{gather_column, gather_column_or_null, NULL_ID, STREAM_WARP_INSTR};
use sim::{Device, OpStats, PhaseTimes};
use std::cell::RefCell;
use std::collections::HashMap;

/// One sampled-statistics observation from an adaptive decision site,
/// recorded in plan order so a cached plan can replay the exact same
/// planner inputs without re-running the sampling kernels.
#[derive(Debug, Clone, Copy)]
pub enum SiteSample {
    /// A join site's sampled match/skew statistics.
    Join(heuristics::EstimatedStats),
    /// A group-by site's sampled distinct-count/skew statistics.
    Group(heuristics::EstimatedGroupStats),
}

/// How the execution treats adaptive sampling sites.
enum PlanningMode {
    /// Normal execution: sampling kernels charge the query like any other.
    Off,
    /// First (cold) run through a cacheable plan: sampling kernels run in
    /// the device's planning scope (charged to the device/session, not the
    /// query's private clock) and every observation is recorded in order.
    Record(Vec<SiteSample>),
    /// Cached run: serve recorded observations positionally instead of
    /// sampling. A shape mismatch falls back to live sampling inside the
    /// planning scope, preserving byte-identity with the recorded run.
    Replay {
        samples: Vec<SiteSample>,
        cursor: usize,
    },
}

/// What an operator needs to execute: the device, and (for scans) the
/// catalog. Operator trees built from materialized tables ([`ValuesOp`])
/// run without a catalog.
pub struct ExecContext<'a> {
    /// The simulated device all kernels charge to.
    pub dev: &'a Device,
    /// Table source for scans; `None` outside `engine::execute`.
    pub catalog: Option<&'a Catalog>,
    /// Sampling-site policy for plan caching; private so every
    /// construction goes through [`ExecContext::new`].
    planning: RefCell<PlanningMode>,
}

impl<'a> ExecContext<'a> {
    /// A context with planning off: sampling charges the query as usual.
    pub fn new(dev: &'a Device, catalog: Option<&'a Catalog>) -> Self {
        ExecContext {
            dev,
            catalog,
            planning: RefCell::new(PlanningMode::Off),
        }
    }

    /// A context that records every sampling-site observation (cold run of
    /// a cacheable plan). Sampling runs in the device planning scope.
    pub(crate) fn with_recording(dev: &'a Device, catalog: Option<&'a Catalog>) -> Self {
        ExecContext {
            dev,
            catalog,
            planning: RefCell::new(PlanningMode::Record(Vec::new())),
        }
    }

    /// A context that replays recorded observations positionally (cache
    /// hit), skipping the sampling kernels entirely.
    pub(crate) fn with_replay(
        dev: &'a Device,
        catalog: Option<&'a Catalog>,
        samples: Vec<SiteSample>,
    ) -> Self {
        ExecContext {
            dev,
            catalog,
            planning: RefCell::new(PlanningMode::Replay { samples, cursor: 0 }),
        }
    }

    /// The observations recorded by a `with_recording` context, in site
    /// order. Empty unless recording was on.
    pub(crate) fn take_samples(&self) -> Vec<SiteSample> {
        match &mut *self.planning.borrow_mut() {
            PlanningMode::Record(samples) => std::mem::take(samples),
            _ => Vec::new(),
        }
    }

    /// Resolve a join sampling site under the current planning mode. The
    /// `sample` closure must not touch `self.planning` (it launches
    /// kernels; the borrow is released before it runs).
    fn join_sample(
        &self,
        sample: impl FnOnce() -> heuristics::EstimatedStats,
    ) -> heuristics::EstimatedStats {
        enum Action {
            Live,
            Planned,
            Serve(heuristics::EstimatedStats),
        }
        let action = {
            let mut mode = self.planning.borrow_mut();
            match &mut *mode {
                PlanningMode::Off => Action::Live,
                PlanningMode::Record(_) => Action::Planned,
                PlanningMode::Replay { samples, cursor } => match samples.get(*cursor) {
                    Some(SiteSample::Join(s)) => {
                        let s = *s;
                        *cursor += 1;
                        Action::Serve(s)
                    }
                    // Shape mismatch: the cached trace does not line up
                    // with this plan's sites. Fall back to live sampling
                    // in the planning scope so the query-private clock
                    // still matches the recorded run.
                    _ => Action::Planned,
                },
            }
        };
        match action {
            Action::Live => sample(),
            Action::Serve(s) => s,
            Action::Planned => {
                let s = self.dev.with_planning(sample);
                if let PlanningMode::Record(samples) = &mut *self.planning.borrow_mut() {
                    samples.push(SiteSample::Join(s));
                }
                s
            }
        }
    }

    /// Resolve a group-by sampling site under the current planning mode.
    /// Same contract as [`Self::join_sample`].
    fn group_sample(
        &self,
        sample: impl FnOnce() -> heuristics::EstimatedGroupStats,
    ) -> heuristics::EstimatedGroupStats {
        enum Action {
            Live,
            Planned,
            Serve(heuristics::EstimatedGroupStats),
        }
        let action = {
            let mut mode = self.planning.borrow_mut();
            match &mut *mode {
                PlanningMode::Off => Action::Live,
                PlanningMode::Record(_) => Action::Planned,
                PlanningMode::Replay { samples, cursor } => match samples.get(*cursor) {
                    Some(SiteSample::Group(s)) => {
                        let s = *s;
                        *cursor += 1;
                        Action::Serve(s)
                    }
                    _ => Action::Planned,
                },
            }
        };
        match action {
            Action::Live => sample(),
            Action::Serve(s) => s,
            Action::Planned => {
                let s = self.dev.with_planning(sample);
                if let PlanningMode::Record(samples) = &mut *self.planning.borrow_mut() {
                    samples.push(SiteSample::Group(s));
                }
                s
            }
        }
    }
}

/// A boxed operator — the node type of physical plans.
pub type BoxOp = Box<dyn PhysicalOperator>;

/// What flows between operators: a materialized table, or a
/// late-materialized ticket relation from a fused Filter/Project run.
pub enum Value {
    /// Materialized columns.
    Table(Table),
    /// Base columns plus a selection vector; payloads gather at the
    /// consumer's materialization boundary.
    Deferred(Deferred),
}

impl Value {
    /// Logical row count.
    pub fn num_rows(&self) -> usize {
        match self {
            Value::Table(t) => t.num_rows(),
            Value::Deferred(d) => d.num_rows(),
        }
    }

    /// Logical table name.
    pub fn name(&self) -> &str {
        match self {
            Value::Table(t) => t.name(),
            Value::Deferred(d) => d.name(),
        }
    }

    /// Materialize: free for tables, one gather per logical column for
    /// deferred values (the GFUR moment, paid exactly once).
    pub fn into_table(self, dev: &Device) -> Result<Table, EngineError> {
        match self {
            Value::Table(t) => Ok(t),
            Value::Deferred(d) => d.materialize(dev),
        }
    }
}

/// What one operator's execution produced, before the driver wraps it in
/// the shared measurement record.
pub struct Evaluated {
    /// The output value (materialized or ticket-deferred).
    pub out: Value,
    /// The paper's three-phase breakdown, for operators that have one
    /// (joins, aggregations). `None` means all device time is "other".
    pub phases: Option<PhaseTimes>,
    /// Suffix for the stats label (e.g. the algorithm an adaptive operator
    /// picked), rendered as `"{label} via {detail}"`.
    pub detail: Option<String>,
    /// Decision provenance for operators that ran a planner tree (joins,
    /// aggregations) or a fusion rewrite: what the planner saw and why it
    /// chose what it chose.
    pub provenance: Option<Provenance>,
}

impl Evaluated {
    /// A materialized output with no phase breakdown and no label detail.
    pub fn plain(table: Table) -> Self {
        Evaluated {
            out: Value::Table(table),
            phases: None,
            detail: None,
            provenance: None,
        }
    }
}

/// The uniform operator contract: children to recurse into, a display
/// label, and an `evaluate` that consumes the children's output values.
///
/// Implementations do *not* measure themselves — [`run_operator`] brackets
/// every `evaluate` call with the device's clock, memory watermark and
/// hardware counters so all nodes report identically.
pub trait PhysicalOperator {
    /// One-line description of the node (operator + parameters).
    fn label(&self) -> String;
    /// Stable operator-kind tag (`"join"`, `"aggregate"`, …) keying the
    /// per-kind duration and rows/s distributions in the metrics registry.
    fn kind(&self) -> &'static str {
        "operator"
    }
    /// Input operators, in the order their values arrive at `evaluate`.
    fn children(&self) -> &[BoxOp];
    /// Execute on the device, consuming one input value per child.
    fn evaluate(&self, ctx: &ExecContext<'_>, inputs: Vec<Value>)
        -> Result<Evaluated, EngineError>;
}

/// Execute an operator tree: children first, then the node itself, each
/// bracketed by the same measurement harness. Returns the root's output
/// table and the per-node stats tree. (Roots compiled with fusion
/// materialize themselves; a hand-built tree whose root defers pays its
/// materialization outside any node bracket.)
pub fn run_operator(
    ctx: &ExecContext<'_>,
    op: &dyn PhysicalOperator,
) -> Result<(Table, NodeStats), EngineError> {
    let (value, stats) = run_operator_value(ctx, op)?;
    Ok((value.into_table(ctx.dev)?, stats))
}

fn run_operator_value(
    ctx: &ExecContext<'_>,
    op: &dyn PhysicalOperator,
) -> Result<(Value, NodeStats), EngineError> {
    let mut inputs = Vec::with_capacity(op.children().len());
    let mut children = Vec::with_capacity(op.children().len());
    for child in op.children() {
        let (value, stats) = run_operator_value(ctx, child.as_ref())?;
        inputs.push(value);
        children.push(stats);
    }
    let before = ctx.dev.counters();
    let t0 = ctx.dev.elapsed();
    ctx.dev.reset_peak_mem();
    let ev = op.evaluate(ctx, inputs)?;
    let t1 = ctx.dev.elapsed();
    let elapsed = t1 - t0;
    let phases = ev.phases.unwrap_or_default();
    let mut op_stats = OpStats::new(phases, ev.out.num_rows(), ctx.dev.mem_report().peak_bytes);
    // Device time outside the operator's phase breakdown: sampling,
    // chunk staging, plan glue. (SimTime subtraction saturates at zero.)
    op_stats.other = elapsed - op_stats.phases.total();
    op_stats.counters = ctx.dev.counters().delta_since(&before).0;
    op_stats.query = ctx.dev.query_id();
    let label = match &ev.detail {
        Some(d) => format!("{} via {}", op.label(), d),
        None => op.label(),
    };
    // Service-level metrics: per-operator-kind duration and throughput
    // distributions. Simulated durations are per-query deterministic and
    // histogram recording commutes, so these families are byte-identical
    // across host threads and scheduling policies.
    ctx.dev.with_metrics(|reg| {
        let rows = op_stats.rows as u64;
        let secs = op_stats.total_time().secs();
        let labels = || vec![("op", op.kind().to_string())];
        reg.hist_record(
            "operator_seconds",
            labels(),
            sim::SECONDS_SCALE,
            sim::secs_to_ticks(secs),
        );
        reg.counter_add("operator_rows_total", labels(), rows);
        if secs > 0.0 {
            reg.hist_record(
                "operator_rows_per_sec",
                labels(),
                1.0,
                (rows as f64 / secs).round() as u64,
            );
        }
    });
    if ctx.dev.tracing_enabled() {
        // Operator covering span: its duration is exactly this node's
        // `OpStats::total_time()` (other = elapsed - phases, so
        // phases + other = elapsed). Operators without a phase breakdown
        // additionally get one `other` phase span so every instant of the
        // timeline is phase-attributed.
        if ev.phases.is_none() && elapsed.secs() > 0.0 {
            ctx.dev.trace_span(sim::SpanCat::Phase, "other", t0, t1);
        }
        ctx.dev.trace_span(sim::SpanCat::Operator, &label, t0, t1);
    }
    Ok((
        ev.out,
        NodeStats {
            label,
            op: op_stats,
            provenance: ev.provenance,
            children,
        },
    ))
}

/// Ticket-lifetime boundary descriptions, set at compile time from what
/// consumes a fused run (provenance text in EXPLAIN).
const BOUNDARY_ROOT: &str = "plan root: the query result materializes here";
const BOUNDARY_JOIN: &str =
    "Join: key and computed columns materialize, base columns ride the ticket through the match";
const BOUNDARY_AGG: &str = "Aggregate: only the grouping key and aggregated columns materialize";
const BOUNDARY_SORT: &str = "Sort: the sort permutation composes with the selection";
const BOUNDARY_LIMIT: &str =
    "Limit: only the selection truncates, payloads stay deferred past the limit";
const BOUNDARY_DISTINCT: &str = "Distinct: only the deduplicated column materializes";
const BOUNDARY_NONE: &str = "not a fused run";

/// Lower a logical [`Plan`] tree to a physical operator tree, fusing every
/// maximal chain of adjacent `Filter`/`Project` nodes into a single
/// [`crate::fuse::FusedOp`] that evaluates one combined predicate and
/// defers payload materialization to the consumer's boundary.
pub fn compile(plan: &Plan) -> BoxOp {
    compile_mode(plan, true, true, BOUNDARY_ROOT)
}

/// Lower without fusion: one operator per plan node, every intermediate
/// fully materialized — the ablation baseline `bench::ablation_fusion`
/// compares against, and a debugging aid.
pub fn compile_unfused(plan: &Plan) -> BoxOp {
    compile_mode(plan, false, true, BOUNDARY_ROOT)
}

/// `materialize`/`boundary` describe what consumes the node being compiled
/// — they only take effect when `plan` starts a fusible run.
fn compile_mode(plan: &Plan, fuse_runs: bool, materialize: bool, boundary: &'static str) -> BoxOp {
    if fuse_runs {
        if let Some((steps, inner)) = fuse::take_run(plan) {
            // The fused node materializes its own input (the run's base),
            // so the inner plan compiles as if it were a root.
            let input = compile_mode(inner, fuse_runs, true, BOUNDARY_ROOT);
            return Box::new(fuse::FusedOp::new(input, steps, materialize, boundary));
        }
    }
    match plan {
        Plan::Scan { table } => Box::new(ScanOp {
            table: table.clone(),
        }),
        Plan::Filter { input, predicate } => Box::new(FilterOp {
            children: vec![compile_mode(input, fuse_runs, true, BOUNDARY_NONE)],
            predicate: predicate.clone(),
        }),
        Plan::Project { input, exprs } => Box::new(ProjectOp {
            children: vec![compile_mode(input, fuse_runs, true, BOUNDARY_NONE)],
            exprs: exprs.clone(),
        }),
        Plan::Join {
            left,
            right,
            left_key,
            right_key,
            kind,
            algorithm,
        } => Box::new(JoinOp::new(
            compile_mode(left, fuse_runs, false, BOUNDARY_JOIN),
            compile_mode(right, fuse_runs, false, BOUNDARY_JOIN),
            left_key,
            right_key,
            JoinConfig {
                // Engine tables carry no uniqueness metadata; assume the
                // general (duplicate-tolerant) build.
                unique_build: false,
                kind: *kind,
                ..JoinConfig::default()
            },
            *algorithm,
        )),
        Plan::Sort {
            input,
            by,
            desc,
            limit,
        } => Box::new(SortOp {
            children: vec![compile_mode(input, fuse_runs, false, BOUNDARY_SORT)],
            by: by.clone(),
            desc: *desc,
            limit: *limit,
        }),
        Plan::Limit { input, count } => Box::new(LimitOp {
            children: vec![compile_mode(input, fuse_runs, false, BOUNDARY_LIMIT)],
            count: *count,
            materialize,
        }),
        Plan::Distinct { input, column } => Box::new(DistinctOp {
            children: vec![compile_mode(input, fuse_runs, false, BOUNDARY_DISTINCT)],
            column: column.clone(),
        }),
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            algorithm,
        } => Box::new(AggregateOp::new(
            compile_mode(input, fuse_runs, false, BOUNDARY_AGG),
            group_by,
            aggs.clone(),
            GroupByConfig::default(),
            *algorithm,
        )),
    }
}

/// Read a catalog table; columns pass as zero-cost aliases.
struct ScanOp {
    table: String,
}

impl PhysicalOperator for ScanOp {
    fn kind(&self) -> &'static str {
        "scan"
    }

    fn label(&self) -> String {
        format!("Scan({})", self.table)
    }

    fn children(&self) -> &[BoxOp] {
        &[]
    }

    fn evaluate(
        &self,
        ctx: &ExecContext<'_>,
        _inputs: Vec<Value>,
    ) -> Result<Evaluated, EngineError> {
        let catalog = ctx
            .catalog
            .ok_or_else(|| EngineError::UnknownTable(self.table.clone()))?;
        let src = catalog.get(&self.table)?;
        let cols = src
            .columns()
            .iter()
            .map(|(n, c)| (n.clone(), c.alias()))
            .collect();
        Ok(Evaluated::plain(Table::from_columns(src.name(), cols)))
    }
}

/// A leaf that feeds an already-materialized table into an operator tree —
/// how callers with in-memory relations (e.g. `core::pipeline`) enter the
/// layer without a catalog.
pub struct ValuesOp {
    table: Table,
}

impl ValuesOp {
    /// Wrap a materialized table as a leaf operator.
    pub fn new(table: Table) -> Self {
        ValuesOp { table }
    }
}

impl PhysicalOperator for ValuesOp {
    fn kind(&self) -> &'static str {
        "values"
    }

    fn label(&self) -> String {
        format!("Values({})", self.table.name())
    }

    fn children(&self) -> &[BoxOp] {
        &[]
    }

    fn evaluate(
        &self,
        _ctx: &ExecContext<'_>,
        _inputs: Vec<Value>,
    ) -> Result<Evaluated, EngineError> {
        let cols = self
            .table
            .columns()
            .iter()
            .map(|(n, c)| (n.clone(), c.alias()))
            .collect();
        Ok(Evaluated::plain(Table::from_columns(
            self.table.name(),
            cols,
        )))
    }
}

/// Keep rows where the predicate holds: one fused predicate-mask kernel, a
/// device compaction into a selection vector, then one clustered gather per
/// column. The output keeps the input's table name — a filter changes rows,
/// not identity.
struct FilterOp {
    children: Vec<BoxOp>,
    predicate: Expr,
}

impl PhysicalOperator for FilterOp {
    fn kind(&self) -> &'static str {
        "filter"
    }

    fn label(&self) -> String {
        "Filter".to_string()
    }

    fn children(&self) -> &[BoxOp] {
        &self.children
    }

    fn evaluate(
        &self,
        ctx: &ExecContext<'_>,
        mut inputs: Vec<Value>,
    ) -> Result<Evaluated, EngineError> {
        let child = inputs
            .pop()
            .expect("Filter takes one input")
            .into_table(ctx.dev)?;
        let mask = self.predicate.eval_mask_device(ctx.dev, &child)?;
        let sel = primitives::compact_mask(ctx.dev, &mask);
        // Compaction: one clustered gather per column (the selection
        // indices ascend).
        let cols = child
            .columns()
            .iter()
            .map(|(n, c)| (n.clone(), gather_column(ctx.dev, c, &sel)))
            .collect();
        Ok(Evaluated::plain(Table::from_columns(child.name(), cols)))
    }
}

/// Compute output columns from expressions. Plain column references pass as
/// zero-cost aliases (a projection is metadata, not a kernel); computed
/// expressions evaluate. The output keeps the input's table name.
struct ProjectOp {
    children: Vec<BoxOp>,
    exprs: Vec<(String, Expr)>,
}

impl PhysicalOperator for ProjectOp {
    fn kind(&self) -> &'static str {
        "project"
    }

    fn label(&self) -> String {
        "Project".to_string()
    }

    fn children(&self) -> &[BoxOp] {
        &self.children
    }

    fn evaluate(
        &self,
        ctx: &ExecContext<'_>,
        mut inputs: Vec<Value>,
    ) -> Result<Evaluated, EngineError> {
        let child = inputs
            .pop()
            .expect("Project takes one input")
            .into_table(ctx.dev)?;
        let mut cols = Vec::with_capacity(self.exprs.len());
        for (name, e) in &self.exprs {
            let col = match e {
                Expr::Col(c) => child.column(c)?.alias(),
                e => e.eval(ctx.dev, &child)?,
            };
            cols.push((name.clone(), col));
        }
        Ok(Evaluated::plain(Table::from_columns(child.name(), cols)))
    }
}

/// One join input after binding: the physical relation handed to the join
/// kernels, the logical output columns in order, and (for deferred inputs)
/// the base table the ticket indexes into.
struct PreparedSide {
    rel: Relation,
    cols: Vec<SideCol>,
    shape: SideShape,
    /// `Some` when base columns ride a ticket through the join.
    ticket_base: Option<Table>,
}

/// One logical payload column of a join input.
enum SideCol {
    /// Joined by the kernels; position = its index among `Physical`s.
    Physical(String),
    /// Gathered from the deferred base after the join, via the ticket.
    Ticketed {
        /// Output column name.
        name: String,
        /// Base-table column the ticket row ids index into.
        base: String,
    },
}

/// Bind one join input. Tables split into key + payload relation exactly as
/// before. Deferred inputs materialize the key (and any computed
/// expressions — the join must see those values), append one 4-byte ticket
/// column carrying the selection's row ids, and leave base payload columns
/// behind: they are gathered once, after the match, through the joined
/// ticket. The [`SideShape`] is always the *logical* schema, so the
/// decision tree sees identical inputs whether or not fusion fired.
fn prepare_join_side(dev: &Device, value: Value, key: &str) -> Result<PreparedSide, EngineError> {
    match value {
        Value::Table(t) => {
            let (rel, names) = to_relation(&t, key)?;
            let shape = SideShape::of(&rel);
            Ok(PreparedSide {
                rel,
                cols: names.into_iter().map(SideCol::Physical).collect(),
                shape,
                ticket_base: None,
            })
        }
        Value::Deferred(d) => {
            let name = d.name().to_string();
            let key_idx = d.cols.iter().position(|(n, _)| n == key).ok_or_else(|| {
                EngineError::UnknownColumn {
                    column: key.to_string(),
                    available: d.column_names(),
                }
            })?;
            let rows = d.num_rows();
            let mut cache = HashMap::new();
            let key_col = d.gather_dcol(dev, &d.cols[key_idx].1, &d.sel, false, &mut cache)?;
            let mut size_bytes = key_col.size_bytes();
            let mut has_8byte = key_col.dtype() == DType::I64;
            let mut cols = Vec::new();
            let mut payloads = Vec::new();
            let mut ticketed = 0usize;
            for (i, (n, c)) in d.cols.iter().enumerate() {
                if i == key_idx {
                    continue;
                }
                match c {
                    DCol::Base(b) => {
                        let dtype = d.base.column(b)?.dtype();
                        size_bytes += rows as u64 * dtype.size();
                        has_8byte |= dtype == DType::I64;
                        cols.push(SideCol::Ticketed {
                            name: n.clone(),
                            base: b.clone(),
                        });
                        ticketed += 1;
                    }
                    DCol::Expr(_) => {
                        let col = d.gather_dcol(dev, c, &d.sel, false, &mut cache)?;
                        size_bytes += col.size_bytes();
                        has_8byte |= col.dtype() == DType::I64;
                        cols.push(SideCol::Physical(n.clone()));
                        payloads.push(col);
                    }
                }
            }
            let ticket_base = if ticketed > 0 {
                // The ticket: the selection's row ids as an i32 payload —
                // a reinterpreting alias of the selection vector, not a
                // copy, so it costs nothing to create.
                let ids: Vec<i32> = d.sel.iter().map(|&r| r as i32).collect();
                payloads.push(Column::from_i32(dev, ids, "fuse.ticket"));
                Some(d.base)
            } else {
                None
            };
            let shape = SideShape {
                rows,
                num_payloads: cols.len(),
                has_8byte,
                size_bytes,
            };
            Ok(PreparedSide {
                rel: Relation::new(name, key_col, payloads),
                cols,
                shape,
                ticket_base,
            })
        }
    }
}

/// Reassemble one side's output columns from what the join kernels
/// materialized. Physical columns come straight from the join output (in
/// order); ticketed columns are gathered from the deferred base through the
/// joined ticket column — one gather per base column, total. Outer joins
/// surface as negative ticket entries (the join's null sentinel), which
/// become [`NULL_ID`] so unmatched rows gather the dtype's null sentinel,
/// exactly as eagerly-materialized payloads would.
fn reassemble_side(
    dev: &Device,
    prep: &PreparedSide,
    outputs: Vec<Column>,
) -> Result<Vec<(String, Column)>, EngineError> {
    if outputs.is_empty() {
        // Semi/anti joins drop this side's payloads before materialization;
        // the ticket (if any) was dropped with them — no gathers at all.
        return Ok(Vec::new());
    }
    let mut outputs = outputs;
    let map = match &prep.ticket_base {
        None => None,
        Some(base) => {
            let ticket = outputs.pop().expect("ticket column is the last payload");
            let vals = ticket.as_i32();
            let any_null = vals.iter().any(|&v| v < 0);
            let ids: Vec<u32> = vals
                .iter()
                .map(|&v| if v < 0 { NULL_ID } else { v as u32 })
                .collect();
            if any_null {
                // Sentinel→NULL_ID rewrite is a real streaming pass on
                // hardware; without nulls the ticket is reinterpreted as
                // row ids for free.
                dev.kernel("fuse.ticket_nulls")
                    .items(ids.len() as u64, STREAM_WARP_INSTR)
                    .seq_read_bytes(ids.len() as u64 * 4)
                    .seq_write_bytes(ids.len() as u64 * 4)
                    .launch();
            }
            Some((dev.upload(ids, "fuse.ticket_map"), base, any_null))
        }
    };
    let mut out = Vec::with_capacity(prep.cols.len());
    let mut physical = outputs.into_iter();
    let mut cache: HashMap<String, Column> = HashMap::new();
    for col in &prep.cols {
        match col {
            SideCol::Physical(n) => {
                let c = physical
                    .next()
                    .expect("join materialized every physical payload");
                out.push((n.clone(), c));
            }
            SideCol::Ticketed { name, base } => {
                let (map, src_table, any_null) =
                    map.as_ref().expect("ticketed column implies a ticket");
                let c = if let Some(c) = cache.get(base) {
                    c.alias()
                } else {
                    let src = src_table.column(base)?;
                    let g = if *any_null {
                        gather_column_or_null(dev, src, map)
                    } else {
                        gather_column(dev, src, map)
                    };
                    cache.insert(base.clone(), g.alias());
                    g
                };
                out.push((name.clone(), c));
            }
        }
    }
    Ok(out)
}

/// Equi-join: algorithm by the Figure 18 decision tree unless pinned, and
/// execution chunked by the Section 4.4 memory model whenever the predicted
/// peak exceeds the device's free memory. Deferred inputs join by ticket:
/// only the key (plus computed expressions) goes through the kernels, and
/// base payloads are gathered once afterwards.
pub struct JoinOp {
    children: Vec<BoxOp>,
    left_key: String,
    right_key: String,
    config: JoinConfig,
    algorithm: Option<Algorithm>,
}

impl JoinOp {
    /// Join `left` (build side) with `right` (probe side) on the named key
    /// columns. `algorithm: None` lets the decision tree choose from
    /// sampled statistics.
    pub fn new(
        left: BoxOp,
        right: BoxOp,
        left_key: &str,
        right_key: &str,
        config: JoinConfig,
        algorithm: Option<Algorithm>,
    ) -> Self {
        JoinOp {
            children: vec![left, right],
            left_key: left_key.to_string(),
            right_key: right_key.to_string(),
            config,
            algorithm,
        }
    }
}

impl PhysicalOperator for JoinOp {
    fn kind(&self) -> &'static str {
        "join"
    }

    fn label(&self) -> String {
        format!(
            "Join({}={}, {})",
            self.left_key,
            self.right_key,
            self.config.kind.name()
        )
    }

    fn children(&self) -> &[BoxOp] {
        &self.children
    }

    fn evaluate(
        &self,
        ctx: &ExecContext<'_>,
        mut inputs: Vec<Value>,
    ) -> Result<Evaluated, EngineError> {
        let rv = inputs.pop().expect("Join takes two inputs");
        let lv = inputs.pop().expect("Join takes two inputs");
        let l_prep = prepare_join_side(ctx.dev, lv, &self.left_key)?;
        let r_prep = prepare_join_side(ctx.dev, rv, &self.right_key)?;
        let (l_rel, r_rel) = (&l_prep.rel, &r_prep.rel);
        if l_rel.key().dtype() != r_rel.key().dtype() {
            return Err(EngineError::KeyTypeMismatch {
                left: l_rel.key().dtype().label(),
                right: r_rel.key().dtype().label(),
            });
        }
        let free_mem = ctx
            .dev
            .mem_capacity()
            .saturating_sub(ctx.dev.mem_report().current_bytes);
        // Decision provenance: everything below is captured as it happens —
        // the sampled stats behind the profile, the branch taken and the
        // branches rejected — so `engine::explain` can replay the choice.
        let (alg, profile, sampled, guard, rationale, rejected) = match self.algorithm {
            Some(pinned) => (
                pinned,
                None,
                None,
                "pinned by plan".to_string(),
                "algorithm fixed by the plan; no decision tree ran".to_string(),
                Vec::new(),
            ),
            None => {
                // No optimizer statistics here: sample them (match ratio,
                // skew) and let the Figure 18 tree decide. The sampling cost
                // is charged and shows up in this node's "other" time. The
                // profile is built from the *logical* side shapes, so ticket
                // inputs pick the same algorithm their materialized twins
                // would — fusion changes the cost, never the plan.
                let stats = ctx.join_sample(|| sample_stats(ctx.dev, l_rel, r_rel, 512));
                let profile = profile_from_stats(
                    &stats,
                    &l_prep.shape,
                    &r_prep.shape,
                    ctx.dev.config().l2_bytes,
                );
                let e = explain_choose_join(&profile);
                (
                    e.algorithm,
                    Some(profile),
                    Some(stats),
                    e.guard.to_string(),
                    e.rationale.to_string(),
                    e.rejected,
                )
            }
        };
        // Plan-level memory budget: run the Section 4.4 model against the
        // device's free memory and go out-of-core when the direct join
        // would not fit. `None` (build side alone too big) falls through to
        // the direct path, which reports the OOM.
        let (joined, detail, chunks) = match chunked::plan_chunks(ctx.dev, l_rel, r_rel) {
            Some(plan) if plan.chunks > 1 => {
                let (out, plan) = chunked::chunked_join(ctx.dev, alg, l_rel, r_rel, &self.config);
                (
                    out,
                    format!("{}, chunked x{}", alg.name(), plan.chunks),
                    plan.chunks,
                )
            }
            _ => (
                joins::run_join(ctx.dev, alg, l_rel, r_rel, &self.config),
                alg.name().to_string(),
                1,
            ),
        };
        let provenance = Provenance::Join(JoinProvenance {
            build_rows: l_rel.len(),
            probe_rows: r_rel.len(),
            free_mem_bytes: free_mem,
            profile,
            sampled,
            chunks,
            pinned: self.algorithm.is_some(),
            choice: alg.name().to_string(),
            materialization: alg.materialization().to_string(),
            guard,
            rationale,
            rejected,
        });
        let phases = joined.stats.phases;

        // Reassemble with names: key, build payloads, probe payloads;
        // ticketed payloads gather from their base now, once; colliding
        // names get a `_n` suffix.
        let l_cols = reassemble_side(ctx.dev, &l_prep, joined.r_payloads)?;
        let r_cols = reassemble_side(ctx.dev, &r_prep, joined.s_payloads)?;
        let mut used: HashMap<String, usize> = HashMap::new();
        let mut unique = |base: &str| -> String {
            let n = used.entry(base.to_string()).or_insert(0);
            *n += 1;
            if *n == 1 {
                base.to_string()
            } else {
                format!("{base}_{n}")
            }
        };
        let mut cols = Vec::new();
        cols.push((unique(&self.left_key), joined.keys));
        for (name, col) in l_cols {
            cols.push((unique(&name), col));
        }
        for (name, col) in r_cols {
            cols.push((unique(&name), col));
        }
        Ok(Evaluated {
            out: Value::Table(Table::from_columns("joined", cols)),
            phases: Some(phases),
            detail: Some(detail),
            provenance: Some(provenance),
        })
    }
}

/// Order by one column, optionally keeping only the first rows.
struct SortOp {
    children: Vec<BoxOp>,
    by: String,
    desc: bool,
    limit: Option<usize>,
}

impl PhysicalOperator for SortOp {
    fn kind(&self) -> &'static str {
        "sort"
    }

    fn label(&self) -> String {
        format!(
            "Sort(by {}{}{})",
            self.by,
            if self.desc { " desc" } else { "" },
            self.limit.map_or(String::new(), |l| format!(", limit {l}"))
        )
    }

    fn children(&self) -> &[BoxOp] {
        &self.children
    }

    fn evaluate(
        &self,
        ctx: &ExecContext<'_>,
        mut inputs: Vec<Value>,
    ) -> Result<Evaluated, EngineError> {
        let child = inputs.pop().expect("Sort takes one input");
        let dev = ctx.dev;
        // SORT-PAIRS on (key, row id), then truncate the id list to the
        // limit *before* gathering the other columns — only the surviving
        // rows pay materialization. A deferred input materializes just the
        // sort key up front; the permutation then composes with the
        // selection so every other column is gathered once, at its final
        // position.
        let (key, deferred) = match &child {
            Value::Table(t) => (t.column(&self.by)?.alias(), None),
            Value::Deferred(d) => {
                let mut cache = HashMap::new();
                (d.gather_named(dev, &self.by, &d.sel, &mut cache)?, Some(d))
            }
        };
        let n = key.len();
        let ids = dev.upload((0..n as u32).collect::<Vec<u32>>(), "sort.ids");
        let sorted_ids: Vec<u32> = match &key {
            Column::I32(k) => primitives::sort_pairs(dev, k, &ids).1.to_vec(),
            Column::I64(k) => primitives::sort_pairs(dev, k, &ids).1.to_vec(),
        };
        let take = self.limit.unwrap_or(sorted_ids.len()).min(sorted_ids.len());
        let map: Vec<u32> = if self.desc {
            sorted_ids.iter().rev().take(take).copied().collect()
        } else {
            sorted_ids[..take].to_vec()
        };
        // Reversal and/or limit truncation rewrite the permutation: one
        // streaming pass over the surviving 4-byte ids (CUB would fold this
        // into the sort, but the DRAM traffic is the same). An ascending
        // full-length sort needs no rewrite — the sort output *is* the map.
        if self.desc || self.limit.is_some() {
            dev.kernel("sort.limit")
                .items(take as u64, STREAM_WARP_INSTR)
                .seq_read_bytes(take as u64 * 4)
                .seq_write_bytes(take as u64 * 4)
                .launch();
        }
        let map = dev.upload(map, "sort.map");
        let cols = match deferred {
            None => {
                let Value::Table(t) = &child else {
                    unreachable!("deferred handled below")
                };
                t.columns()
                    .iter()
                    .map(|(c_n, c)| (c_n.clone(), gather_column(dev, c, &map)))
                    .collect()
            }
            Some(d) => {
                // Compose permutation ∘ selection on the device (one 4-byte
                // gather), then gather every logical column through the
                // composed map — straight from the base, once.
                let composed = primitives::gather(dev, &d.sel, &map);
                let mut cache = HashMap::new();
                let mut cols = Vec::with_capacity(d.cols.len());
                for (c_n, c) in &d.cols {
                    cols.push((
                        c_n.clone(),
                        d.gather_dcol(dev, c, &composed, false, &mut cache)?,
                    ));
                }
                cols
            }
        };
        Ok(Evaluated::plain(Table::from_columns("sorted", cols)))
    }
}

/// Keep only the first `count` rows of the input, in input order — the
/// standalone `LIMIT` tail. A materialized input pays one prefix-copy
/// kernel over the surviving rows; a deferred input truncates just its
/// 4-byte selection vector and every payload column rides the ticket past
/// the limit, so only rows that survive are ever materialized.
struct LimitOp {
    children: Vec<BoxOp>,
    count: usize,
    /// Materialize the output (compiled plan roots); `false` leaves a
    /// deferred input deferred for the consumer's boundary.
    materialize: bool,
}

impl PhysicalOperator for LimitOp {
    fn kind(&self) -> &'static str {
        "limit"
    }

    fn label(&self) -> String {
        format!("Limit({})", self.count)
    }

    fn children(&self) -> &[BoxOp] {
        &self.children
    }

    fn evaluate(
        &self,
        ctx: &ExecContext<'_>,
        mut inputs: Vec<Value>,
    ) -> Result<Evaluated, EngineError> {
        let child = inputs.pop().expect("Limit takes one input");
        let dev = ctx.dev;
        let rows = child.num_rows();
        let take = self.count.min(rows);
        let out = match child {
            // LIMIT at or above the input size keeps every row: metadata
            // only, no device work.
            v if take == rows => v,
            Value::Table(t) => {
                // Prefix copy: one streaming kernel over the surviving rows
                // of every column (contiguous read, contiguous write).
                let row_bytes: u64 = t.columns().iter().map(|(_, c)| c.dtype().size()).sum();
                dev.kernel("limit.slice")
                    .items(take as u64, STREAM_WARP_INSTR)
                    .seq_read_bytes(take as u64 * row_bytes)
                    .seq_write_bytes(take as u64 * row_bytes)
                    .launch();
                let cols = t
                    .columns()
                    .iter()
                    .map(|(n, c)| {
                        let sliced = match c {
                            Column::I32(b) => Column::from_i32(
                                dev,
                                b.iter().take(take).copied().collect(),
                                "limit.out",
                            ),
                            Column::I64(b) => Column::from_i64(
                                dev,
                                b.iter().take(take).copied().collect(),
                                "limit.out",
                            ),
                        };
                        (n.clone(), sliced)
                    })
                    .collect();
                Value::Table(Table::from_columns(t.name(), cols))
            }
            Value::Deferred(d) => {
                // Only the selection truncates — a 4-byte prefix copy —
                // and the payload columns stay deferred past the limit.
                let sel: Vec<u32> = d.sel.iter().take(take).copied().collect();
                dev.kernel("limit.sel")
                    .items(take as u64, STREAM_WARP_INSTR)
                    .seq_read_bytes(take as u64 * 4)
                    .seq_write_bytes(take as u64 * 4)
                    .launch();
                Value::Deferred(Deferred {
                    base: d.base,
                    sel: dev.upload(sel, "limit.sel"),
                    cols: d.cols,
                })
            }
        };
        let out = if self.materialize {
            Value::Table(out.into_table(dev)?)
        } else {
            out
        };
        Ok(Evaluated {
            out,
            phases: None,
            detail: None,
            provenance: None,
        })
    }
}

/// Distinct rows of a single column: grouping with no aggregates.
struct DistinctOp {
    children: Vec<BoxOp>,
    column: String,
}

impl PhysicalOperator for DistinctOp {
    fn kind(&self) -> &'static str {
        "distinct"
    }

    fn label(&self) -> String {
        format!("Distinct({})", self.column)
    }

    fn children(&self) -> &[BoxOp] {
        &self.children
    }

    fn evaluate(
        &self,
        ctx: &ExecContext<'_>,
        mut inputs: Vec<Value>,
    ) -> Result<Evaluated, EngineError> {
        let child = inputs.pop().expect("Distinct takes one input");
        // A deferred input materializes exactly one column — the ticket's
        // best case: every other column costs nothing.
        let key = match &child {
            Value::Table(t) => t.column(&self.column)?.alias(),
            Value::Deferred(d) => {
                let mut cache = HashMap::new();
                d.gather_named(ctx.dev, &self.column, &d.sel, &mut cache)?
            }
        };
        let rows = key.len();
        let rel = Relation::new("distinct_input", key, Vec::new());
        let alg = GroupByAlgorithm::SortGftr;
        let grouped = groupby::run_group_by(ctx.dev, alg, &rel, &[], &GroupByConfig::default());
        let phases = grouped.stats.phases;
        Ok(Evaluated {
            out: Value::Table(Table::from_columns(
                "distinct",
                vec![(self.column.clone(), grouped.keys)],
            )),
            phases: Some(phases),
            detail: None,
            provenance: Some(Provenance::GroupBy(GroupByProvenance {
                rows,
                profile: None,
                sampled: None,
                pinned: true,
                choice: alg.name().to_string(),
                materialization: alg.materialization().to_string(),
                guard: "pinned by operator".to_string(),
                rationale: "Distinct always sorts: keys alone, no aggregates to gather".to_string(),
                rejected: Vec::new(),
            })),
        })
    }
}

/// Grouped aggregation: algorithm by the grouped-aggregation decision tree
/// unless pinned (group count and skew sampled from the key column).
pub struct AggregateOp {
    children: Vec<BoxOp>,
    group_by: String,
    aggs: Vec<AggSpec>,
    config: GroupByConfig,
    algorithm: Option<GroupByAlgorithm>,
}

impl AggregateOp {
    /// Group `input`'s rows by the named column. `algorithm: None` lets the
    /// decision tree choose from sampled statistics.
    pub fn new(
        input: BoxOp,
        group_by: &str,
        aggs: Vec<AggSpec>,
        config: GroupByConfig,
        algorithm: Option<GroupByAlgorithm>,
    ) -> Self {
        AggregateOp {
            children: vec![input],
            group_by: group_by.to_string(),
            aggs,
            config,
            algorithm,
        }
    }
}

impl PhysicalOperator for AggregateOp {
    fn kind(&self) -> &'static str {
        "aggregate"
    }

    fn label(&self) -> String {
        format!("Aggregate(by {})", self.group_by)
    }

    fn children(&self) -> &[BoxOp] {
        &self.children
    }

    fn evaluate(
        &self,
        ctx: &ExecContext<'_>,
        mut inputs: Vec<Value>,
    ) -> Result<Evaluated, EngineError> {
        let child = inputs.pop().expect("Aggregate takes one input");
        // Materialize only what the aggregation touches: the grouping key
        // and the aggregate inputs. A deferred input's remaining columns
        // are never gathered (they have no place in the output anyway).
        let mut payloads = Vec::with_capacity(self.aggs.len());
        let mut fns: Vec<AggFn> = Vec::with_capacity(self.aggs.len());
        let key = match &child {
            Value::Table(t) => {
                let key = t.column(&self.group_by)?.alias();
                for a in &self.aggs {
                    payloads.push(t.column(&a.column)?.alias());
                    fns.push(a.agg);
                }
                key
            }
            Value::Deferred(d) => {
                let mut cache = HashMap::new();
                let key = d.gather_named(ctx.dev, &self.group_by, &d.sel, &mut cache)?;
                for a in &self.aggs {
                    payloads.push(d.gather_named(ctx.dev, &a.column, &d.sel, &mut cache)?);
                    fns.push(a.agg);
                }
                key
            }
        };
        let rows = key.len();
        let (alg, profile, sampled, guard, rationale, rejected) = match self.algorithm {
            Some(pinned) => (
                pinned,
                None,
                None,
                "pinned by plan".to_string(),
                "algorithm fixed by the plan; no decision tree ran".to_string(),
                Vec::new(),
            ),
            None => {
                // Sample the grouping key for a distinct-count and skew
                // estimate, then let the aggregation decision tree pick.
                let sampled = ctx.group_sample(|| sample_group_stats(ctx.dev, &key, 512));
                let profile = AggProfile {
                    rows,
                    est_groups: sampled.est_groups,
                    skewed: sampled.skewed(),
                    wide: fns.len() > 1,
                    l2_bytes: ctx.dev.config().l2_bytes,
                };
                let e = explain_choose_group_by(&profile);
                (
                    e.algorithm,
                    Some(profile),
                    Some(sampled),
                    e.guard.to_string(),
                    e.rationale.to_string(),
                    e.rejected,
                )
            }
        };
        let rel = Relation::new("agg_input", key, payloads);
        let grouped = groupby::run_group_by(ctx.dev, alg, &rel, &fns, &self.config);
        let phases = grouped.stats.phases;
        let mut cols = vec![(self.group_by.clone(), grouped.keys)];
        for (spec, col) in self.aggs.iter().zip(grouped.aggregates) {
            cols.push((spec.output.clone(), col));
        }
        Ok(Evaluated {
            out: Value::Table(Table::from_columns("aggregated", cols)),
            phases: Some(phases),
            detail: Some(alg.name().to_string()),
            provenance: Some(Provenance::GroupBy(GroupByProvenance {
                rows,
                profile,
                sampled,
                pinned: self.algorithm.is_some(),
                choice: alg.name().to_string(),
                materialization: alg.materialization().to_string(),
                guard,
                rationale,
                rejected,
            })),
        })
    }
}
