//! The physical-operator layer: one execution contract for every operator.
//!
//! The paper's framework says joins and grouped aggregations are the *same*
//! three-phase computation; this module is that claim as an interface. A
//! [`PhysicalOperator`] binds its inputs, executes on a [`sim::Device`] and
//! returns output columns — and the driver ([`run_operator`]) wraps every
//! node in the same measurement harness: simulated time, peak device memory
//! and the hardware-counter delta all land in one shared [`sim::OpStats`]
//! per node, so a plan report reads like an Nsight profile of the tree.
//!
//! The layer is also where plan-level memory budgeting lives: before a join
//! executes, [`JoinOp`] runs the Section 4.4 memory model
//! ([`joins::chunked::plan_chunks`]) against the device's free memory and
//! transparently switches to the probe-side chunked join when the predicted
//! peak does not fit. Callers — `engine::execute`, `core::pipeline`, the
//! examples — get out-of-core execution without asking for it.
//!
//! [`compile`] lowers a logical [`Plan`] tree into operators; other crates
//! can also assemble operator trees directly ([`ValuesOp`] feeds
//! already-materialized tables, which is how `core::pipeline` routes the
//! paper's join→group-by pipeline through this layer).

use crate::exec::{to_relation, Catalog, NodeStats};
use crate::{AggSpec, EngineError, Expr, Plan, Table};
use columnar::Relation;
use groupby::{AggFn, GroupByAlgorithm, GroupByConfig};
use heuristics::{
    estimate_profile_with_stats, explain_choose_group_by, explain_choose_join, sample_group_stats,
    AggProfile, GroupByProvenance, JoinProvenance, Provenance,
};
use joins::{chunked, Algorithm, JoinConfig};
use primitives::gather_column;
use sim::{Device, OpStats, PhaseTimes};
use std::collections::HashMap;

/// What an operator needs to execute: the device, and (for scans) the
/// catalog. Operator trees built from materialized tables ([`ValuesOp`])
/// run without a catalog.
pub struct ExecContext<'a> {
    /// The simulated device all kernels charge to.
    pub dev: &'a Device,
    /// Table source for scans; `None` outside `engine::execute`.
    pub catalog: Option<&'a Catalog>,
}

/// A boxed operator — the node type of physical plans.
pub type BoxOp = Box<dyn PhysicalOperator>;

/// What one operator's execution produced, before the driver wraps it in
/// the shared measurement record.
pub struct Evaluated {
    /// The output table.
    pub table: Table,
    /// The paper's three-phase breakdown, for operators that have one
    /// (joins, aggregations). `None` means all device time is "other".
    pub phases: Option<PhaseTimes>,
    /// Suffix for the stats label (e.g. the algorithm an adaptive operator
    /// picked), rendered as `"{label} via {detail}"`.
    pub detail: Option<String>,
    /// Decision provenance for operators that ran a planner tree (joins,
    /// aggregations): what the planner saw and why it chose what it chose.
    pub provenance: Option<Provenance>,
}

impl Evaluated {
    /// An output with no phase breakdown and no label detail.
    pub fn plain(table: Table) -> Self {
        Evaluated {
            table,
            phases: None,
            detail: None,
            provenance: None,
        }
    }
}

/// The uniform operator contract: children to recurse into, a display
/// label, and an `evaluate` that consumes the children's output tables.
///
/// Implementations do *not* measure themselves — [`run_operator`] brackets
/// every `evaluate` call with the device's clock, memory watermark and
/// hardware counters so all nodes report identically.
pub trait PhysicalOperator {
    /// One-line description of the node (operator + parameters).
    fn label(&self) -> String;
    /// Input operators, in the order their tables arrive at `evaluate`.
    fn children(&self) -> &[BoxOp];
    /// Execute on the device, consuming one input table per child.
    fn evaluate(&self, ctx: &ExecContext<'_>, inputs: Vec<Table>)
        -> Result<Evaluated, EngineError>;
}

/// Execute an operator tree: children first, then the node itself, each
/// bracketed by the same measurement harness. Returns the root's output
/// table and the per-node stats tree.
pub fn run_operator(
    ctx: &ExecContext<'_>,
    op: &dyn PhysicalOperator,
) -> Result<(Table, NodeStats), EngineError> {
    let mut inputs = Vec::with_capacity(op.children().len());
    let mut children = Vec::with_capacity(op.children().len());
    for child in op.children() {
        let (table, stats) = run_operator(ctx, child.as_ref())?;
        inputs.push(table);
        children.push(stats);
    }
    let before = ctx.dev.counters();
    let t0 = ctx.dev.elapsed();
    ctx.dev.reset_peak_mem();
    let ev = op.evaluate(ctx, inputs)?;
    let t1 = ctx.dev.elapsed();
    let elapsed = t1 - t0;
    let phases = ev.phases.unwrap_or_default();
    let mut op_stats = OpStats::new(phases, ev.table.num_rows(), ctx.dev.mem_report().peak_bytes);
    // Device time outside the operator's phase breakdown: sampling,
    // chunk staging, plan glue. (SimTime subtraction saturates at zero.)
    op_stats.other = elapsed - op_stats.phases.total();
    op_stats.counters = ctx.dev.counters().delta_since(&before).0;
    op_stats.query = ctx.dev.query_id();
    let label = match &ev.detail {
        Some(d) => format!("{} via {}", op.label(), d),
        None => op.label(),
    };
    if ctx.dev.tracing_enabled() {
        // Operator covering span: its duration is exactly this node's
        // `OpStats::total_time()` (other = elapsed - phases, so
        // phases + other = elapsed). Operators without a phase breakdown
        // additionally get one `other` phase span so every instant of the
        // timeline is phase-attributed.
        if ev.phases.is_none() && elapsed.secs() > 0.0 {
            ctx.dev.trace_span(sim::SpanCat::Phase, "other", t0, t1);
        }
        ctx.dev.trace_span(sim::SpanCat::Operator, &label, t0, t1);
    }
    Ok((
        ev.table,
        NodeStats {
            label,
            op: op_stats,
            provenance: ev.provenance,
            children,
        },
    ))
}

/// Lower a logical [`Plan`] tree to a physical operator tree.
pub fn compile(plan: &Plan) -> BoxOp {
    match plan {
        Plan::Scan { table } => Box::new(ScanOp {
            table: table.clone(),
        }),
        Plan::Filter { input, predicate } => Box::new(FilterOp {
            children: vec![compile(input)],
            predicate: predicate.clone(),
        }),
        Plan::Project { input, exprs } => Box::new(ProjectOp {
            children: vec![compile(input)],
            exprs: exprs.clone(),
        }),
        Plan::Join {
            left,
            right,
            left_key,
            right_key,
            kind,
            algorithm,
        } => Box::new(JoinOp::new(
            compile(left),
            compile(right),
            left_key,
            right_key,
            JoinConfig {
                // Engine tables carry no uniqueness metadata; assume the
                // general (duplicate-tolerant) build.
                unique_build: false,
                kind: *kind,
                ..JoinConfig::default()
            },
            *algorithm,
        )),
        Plan::Sort {
            input,
            by,
            desc,
            limit,
        } => Box::new(SortOp {
            children: vec![compile(input)],
            by: by.clone(),
            desc: *desc,
            limit: *limit,
        }),
        Plan::Distinct { input, column } => Box::new(DistinctOp {
            children: vec![compile(input)],
            column: column.clone(),
        }),
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            algorithm,
        } => Box::new(AggregateOp::new(
            compile(input),
            group_by,
            aggs.clone(),
            GroupByConfig::default(),
            *algorithm,
        )),
    }
}

/// Read a catalog table; columns pass as zero-cost aliases.
struct ScanOp {
    table: String,
}

impl PhysicalOperator for ScanOp {
    fn label(&self) -> String {
        format!("Scan({})", self.table)
    }

    fn children(&self) -> &[BoxOp] {
        &[]
    }

    fn evaluate(
        &self,
        ctx: &ExecContext<'_>,
        _inputs: Vec<Table>,
    ) -> Result<Evaluated, EngineError> {
        let catalog = ctx
            .catalog
            .ok_or_else(|| EngineError::UnknownTable(self.table.clone()))?;
        let src = catalog.get(&self.table)?;
        let cols = src
            .columns()
            .iter()
            .map(|(n, c)| (n.clone(), c.alias()))
            .collect();
        Ok(Evaluated::plain(Table::from_columns(src.name(), cols)))
    }
}

/// A leaf that feeds an already-materialized table into an operator tree —
/// how callers with in-memory relations (e.g. `core::pipeline`) enter the
/// layer without a catalog.
pub struct ValuesOp {
    table: Table,
}

impl ValuesOp {
    /// Wrap a materialized table as a leaf operator.
    pub fn new(table: Table) -> Self {
        ValuesOp { table }
    }
}

impl PhysicalOperator for ValuesOp {
    fn label(&self) -> String {
        format!("Values({})", self.table.name())
    }

    fn children(&self) -> &[BoxOp] {
        &[]
    }

    fn evaluate(
        &self,
        _ctx: &ExecContext<'_>,
        _inputs: Vec<Table>,
    ) -> Result<Evaluated, EngineError> {
        let cols = self
            .table
            .columns()
            .iter()
            .map(|(n, c)| (n.clone(), c.alias()))
            .collect();
        Ok(Evaluated::plain(Table::from_columns(
            self.table.name(),
            cols,
        )))
    }
}

/// Keep rows where the predicate holds: predicate kernels, then one
/// compaction gather per column.
struct FilterOp {
    children: Vec<BoxOp>,
    predicate: Expr,
}

impl PhysicalOperator for FilterOp {
    fn label(&self) -> String {
        "Filter".to_string()
    }

    fn children(&self) -> &[BoxOp] {
        &self.children
    }

    fn evaluate(
        &self,
        ctx: &ExecContext<'_>,
        mut inputs: Vec<Table>,
    ) -> Result<Evaluated, EngineError> {
        let child = inputs.pop().expect("Filter takes one input");
        let mask = self.predicate.eval_mask(ctx.dev, &child)?;
        let sel: Vec<u32> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i as u32))
            .collect();
        let sel = ctx.dev.upload(sel, "filter.sel");
        // Compaction: one clustered gather per column (the selection
        // indices ascend).
        let cols = child
            .columns()
            .iter()
            .map(|(n, c)| (n.clone(), gather_column(ctx.dev, c, &sel)))
            .collect();
        Ok(Evaluated::plain(Table::from_columns("filtered", cols)))
    }
}

/// Compute output columns from expressions.
struct ProjectOp {
    children: Vec<BoxOp>,
    exprs: Vec<(String, Expr)>,
}

impl PhysicalOperator for ProjectOp {
    fn label(&self) -> String {
        "Project".to_string()
    }

    fn children(&self) -> &[BoxOp] {
        &self.children
    }

    fn evaluate(
        &self,
        ctx: &ExecContext<'_>,
        mut inputs: Vec<Table>,
    ) -> Result<Evaluated, EngineError> {
        let child = inputs.pop().expect("Project takes one input");
        let mut cols = Vec::with_capacity(self.exprs.len());
        for (name, e) in &self.exprs {
            cols.push((name.clone(), e.eval(ctx.dev, &child)?));
        }
        Ok(Evaluated::plain(Table::from_columns("projected", cols)))
    }
}

/// Equi-join: algorithm by the Figure 18 decision tree unless pinned, and
/// execution chunked by the Section 4.4 memory model whenever the predicted
/// peak exceeds the device's free memory.
pub struct JoinOp {
    children: Vec<BoxOp>,
    left_key: String,
    right_key: String,
    config: JoinConfig,
    algorithm: Option<Algorithm>,
}

impl JoinOp {
    /// Join `left` (build side) with `right` (probe side) on the named key
    /// columns. `algorithm: None` lets the decision tree choose from
    /// sampled statistics.
    pub fn new(
        left: BoxOp,
        right: BoxOp,
        left_key: &str,
        right_key: &str,
        config: JoinConfig,
        algorithm: Option<Algorithm>,
    ) -> Self {
        JoinOp {
            children: vec![left, right],
            left_key: left_key.to_string(),
            right_key: right_key.to_string(),
            config,
            algorithm,
        }
    }
}

impl PhysicalOperator for JoinOp {
    fn label(&self) -> String {
        format!(
            "Join({}={}, {})",
            self.left_key,
            self.right_key,
            self.config.kind.name()
        )
    }

    fn children(&self) -> &[BoxOp] {
        &self.children
    }

    fn evaluate(
        &self,
        ctx: &ExecContext<'_>,
        mut inputs: Vec<Table>,
    ) -> Result<Evaluated, EngineError> {
        let rt = inputs.pop().expect("Join takes two inputs");
        let lt = inputs.pop().expect("Join takes two inputs");
        let (l_rel, l_names) = to_relation(&lt, &self.left_key)?;
        let (r_rel, r_names) = to_relation(&rt, &self.right_key)?;
        if l_rel.key().dtype() != r_rel.key().dtype() {
            return Err(EngineError::KeyTypeMismatch {
                left: l_rel.key().dtype().label(),
                right: r_rel.key().dtype().label(),
            });
        }
        let free_mem = ctx
            .dev
            .mem_capacity()
            .saturating_sub(ctx.dev.mem_report().current_bytes);
        // Decision provenance: everything below is captured as it happens —
        // the sampled stats behind the profile, the branch taken and the
        // branches rejected — so `engine::explain` can replay the choice.
        let (alg, profile, sampled, guard, rationale, rejected) = match self.algorithm {
            Some(pinned) => (
                pinned,
                None,
                None,
                "pinned by plan".to_string(),
                "algorithm fixed by the plan; no decision tree ran".to_string(),
                Vec::new(),
            ),
            None => {
                // No optimizer statistics here: sample them (match ratio,
                // skew) and let the Figure 18 tree decide. The sampling cost
                // is charged and shows up in this node's "other" time.
                let (profile, stats) = estimate_profile_with_stats(ctx.dev, &l_rel, &r_rel, 512);
                let e = explain_choose_join(&profile);
                (
                    e.algorithm,
                    Some(profile),
                    Some(stats),
                    e.guard.to_string(),
                    e.rationale.to_string(),
                    e.rejected,
                )
            }
        };
        // Plan-level memory budget: run the Section 4.4 model against the
        // device's free memory and go out-of-core when the direct join
        // would not fit. `None` (build side alone too big) falls through to
        // the direct path, which reports the OOM.
        let (joined, detail, chunks) = match chunked::plan_chunks(ctx.dev, &l_rel, &r_rel) {
            Some(plan) if plan.chunks > 1 => {
                let (out, plan) = chunked::chunked_join(ctx.dev, alg, &l_rel, &r_rel, &self.config);
                (
                    out,
                    format!("{}, chunked x{}", alg.name(), plan.chunks),
                    plan.chunks,
                )
            }
            _ => (
                joins::run_join(ctx.dev, alg, &l_rel, &r_rel, &self.config),
                alg.name().to_string(),
                1,
            ),
        };
        let provenance = Provenance::Join(JoinProvenance {
            build_rows: l_rel.len(),
            probe_rows: r_rel.len(),
            free_mem_bytes: free_mem,
            profile,
            sampled,
            chunks,
            pinned: self.algorithm.is_some(),
            choice: alg.name().to_string(),
            materialization: alg.materialization().to_string(),
            guard,
            rationale,
            rejected,
        });
        let phases = joined.stats.phases;

        // Reassemble with names: key, build payloads, probe payloads;
        // colliding names get a `_n` suffix.
        let mut used: HashMap<String, usize> = HashMap::new();
        let mut unique = |base: &str| -> String {
            let n = used.entry(base.to_string()).or_insert(0);
            *n += 1;
            if *n == 1 {
                base.to_string()
            } else {
                format!("{base}_{n}")
            }
        };
        let mut cols = Vec::new();
        cols.push((unique(&self.left_key), joined.keys));
        for (name, col) in l_names.iter().zip(joined.r_payloads) {
            cols.push((unique(name), col));
        }
        for (name, col) in r_names.iter().zip(joined.s_payloads) {
            cols.push((unique(name), col));
        }
        Ok(Evaluated {
            table: Table::from_columns("joined", cols),
            phases: Some(phases),
            detail: Some(detail),
            provenance: Some(provenance),
        })
    }
}

/// Order by one column, optionally keeping only the first rows.
struct SortOp {
    children: Vec<BoxOp>,
    by: String,
    desc: bool,
    limit: Option<usize>,
}

impl PhysicalOperator for SortOp {
    fn label(&self) -> String {
        format!(
            "Sort(by {}{}{})",
            self.by,
            if self.desc { " desc" } else { "" },
            self.limit.map_or(String::new(), |l| format!(", limit {l}"))
        )
    }

    fn children(&self) -> &[BoxOp] {
        &self.children
    }

    fn evaluate(
        &self,
        ctx: &ExecContext<'_>,
        mut inputs: Vec<Table>,
    ) -> Result<Evaluated, EngineError> {
        let child = inputs.pop().expect("Sort takes one input");
        let dev = ctx.dev;
        // SORT-PAIRS on (key, row id), then truncate the id list to the
        // limit *before* gathering the other columns — only the surviving
        // rows pay materialization.
        let key = child.column(&self.by)?;
        let ids = dev.upload(
            (0..child.num_rows() as u32).collect::<Vec<u32>>(),
            "sort.ids",
        );
        let sorted_ids: Vec<u32> = match key {
            columnar::Column::I32(k) => primitives::sort_pairs(dev, k, &ids).1.to_vec(),
            columnar::Column::I64(k) => primitives::sort_pairs(dev, k, &ids).1.to_vec(),
        };
        let take = self.limit.unwrap_or(sorted_ids.len()).min(sorted_ids.len());
        let map: Vec<u32> = if self.desc {
            sorted_ids.iter().rev().take(take).copied().collect()
        } else {
            sorted_ids[..take].to_vec()
        };
        let map = dev.upload(map, "sort.map");
        let cols = child
            .columns()
            .iter()
            .map(|(n, c)| (n.clone(), gather_column(dev, c, &map)))
            .collect();
        Ok(Evaluated::plain(Table::from_columns("sorted", cols)))
    }
}

/// Distinct rows of a single column: grouping with no aggregates.
struct DistinctOp {
    children: Vec<BoxOp>,
    column: String,
}

impl PhysicalOperator for DistinctOp {
    fn label(&self) -> String {
        format!("Distinct({})", self.column)
    }

    fn children(&self) -> &[BoxOp] {
        &self.children
    }

    fn evaluate(
        &self,
        ctx: &ExecContext<'_>,
        mut inputs: Vec<Table>,
    ) -> Result<Evaluated, EngineError> {
        let child = inputs.pop().expect("Distinct takes one input");
        let key = child.column(&self.column)?.alias();
        let rows = key.len();
        let rel = Relation::new("distinct_input", key, Vec::new());
        let alg = GroupByAlgorithm::SortGftr;
        let grouped = groupby::run_group_by(ctx.dev, alg, &rel, &[], &GroupByConfig::default());
        let phases = grouped.stats.phases;
        Ok(Evaluated {
            table: Table::from_columns("distinct", vec![(self.column.clone(), grouped.keys)]),
            phases: Some(phases),
            detail: None,
            provenance: Some(Provenance::GroupBy(GroupByProvenance {
                rows,
                profile: None,
                sampled: None,
                pinned: true,
                choice: alg.name().to_string(),
                materialization: alg.materialization().to_string(),
                guard: "pinned by operator".to_string(),
                rationale: "Distinct always sorts: keys alone, no aggregates to gather".to_string(),
                rejected: Vec::new(),
            })),
        })
    }
}

/// Grouped aggregation: algorithm by the grouped-aggregation decision tree
/// unless pinned (group count and skew sampled from the key column).
pub struct AggregateOp {
    children: Vec<BoxOp>,
    group_by: String,
    aggs: Vec<AggSpec>,
    config: GroupByConfig,
    algorithm: Option<GroupByAlgorithm>,
}

impl AggregateOp {
    /// Group `input`'s rows by the named column. `algorithm: None` lets the
    /// decision tree choose from sampled statistics.
    pub fn new(
        input: BoxOp,
        group_by: &str,
        aggs: Vec<AggSpec>,
        config: GroupByConfig,
        algorithm: Option<GroupByAlgorithm>,
    ) -> Self {
        AggregateOp {
            children: vec![input],
            group_by: group_by.to_string(),
            aggs,
            config,
            algorithm,
        }
    }
}

impl PhysicalOperator for AggregateOp {
    fn label(&self) -> String {
        format!("Aggregate(by {})", self.group_by)
    }

    fn children(&self) -> &[BoxOp] {
        &self.children
    }

    fn evaluate(
        &self,
        ctx: &ExecContext<'_>,
        mut inputs: Vec<Table>,
    ) -> Result<Evaluated, EngineError> {
        let child = inputs.pop().expect("Aggregate takes one input");
        let key = child.column(&self.group_by)?.alias();
        let mut payloads = Vec::with_capacity(self.aggs.len());
        let mut fns: Vec<AggFn> = Vec::with_capacity(self.aggs.len());
        for a in &self.aggs {
            payloads.push(child.column(&a.column)?.alias());
            fns.push(a.agg);
        }
        let rows = key.len();
        let (alg, profile, sampled, guard, rationale, rejected) = match self.algorithm {
            Some(pinned) => (
                pinned,
                None,
                None,
                "pinned by plan".to_string(),
                "algorithm fixed by the plan; no decision tree ran".to_string(),
                Vec::new(),
            ),
            None => {
                // Sample the grouping key for a distinct-count and skew
                // estimate, then let the aggregation decision tree pick.
                let sampled = sample_group_stats(ctx.dev, &key, 512);
                let profile = AggProfile {
                    rows,
                    est_groups: sampled.est_groups,
                    skewed: sampled.skewed(),
                    wide: fns.len() > 1,
                    l2_bytes: ctx.dev.config().l2_bytes,
                };
                let e = explain_choose_group_by(&profile);
                (
                    e.algorithm,
                    Some(profile),
                    Some(sampled),
                    e.guard.to_string(),
                    e.rationale.to_string(),
                    e.rejected,
                )
            }
        };
        let rel = Relation::new("agg_input", key, payloads);
        let grouped = groupby::run_group_by(ctx.dev, alg, &rel, &fns, &self.config);
        let phases = grouped.stats.phases;
        let mut cols = vec![(self.group_by.clone(), grouped.keys)];
        for (spec, col) in self.aggs.iter().zip(grouped.aggregates) {
            cols.push((spec.output.clone(), col));
        }
        Ok(Evaluated {
            table: Table::from_columns("aggregated", cols),
            phases: Some(phases),
            detail: Some(alg.name().to_string()),
            provenance: Some(Provenance::GroupBy(GroupByProvenance {
                rows,
                profile,
                sampled,
                pinned: self.algorithm.is_some(),
                choice: alg.name().to_string(),
                materialization: alg.materialization().to_string(),
                guard,
                rationale,
                rejected,
            })),
        })
    }
}
