//! Plan execution against a catalog.
//!
//! `execute` lowers the logical [`Plan`] to a physical operator tree
//! ([`crate::op::compile`]) and runs it through the uniform driver
//! ([`crate::op::run_operator`]): columns move between operators as
//! zero-cost aliases (pointer passing); every operator's device work —
//! predicate kernels, compaction gathers, joins, aggregations — is charged
//! to the shared simulated device, and each node comes back with the shared
//! [`sim::OpStats`] record (times, rows, peak memory, hardware counters) as
//! a [`NodeStats`] tree.

use crate::op::{compile, compile_unfused, run_operator, ExecContext};
use crate::{EngineError, Plan, Table};
use columnar::{DType, Relation};
use sim::{Device, OpStats, SimTime};
use std::collections::HashMap;

/// Load-time statistics for one catalog column: the physical type plus the
/// observed value range. The SQL binder types expressions against `dtype`;
/// the lowering's composite-key packer sizes its bit fields from
/// `[min, max]`. `min > max` means the column is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Physical column type.
    pub dtype: DType,
    /// Smallest value present at load time.
    pub min: i64,
    /// Largest value present at load time.
    pub max: i64,
}

/// What the catalog knows about a table beyond its columns: row count,
/// per-column statistics in declaration order, an optional declared primary
/// key (the source of the functional dependencies the lowering exploits
/// when a composite grouping key will not pack), and dictionaries for
/// string-encoded columns (the SQL binder folds string literals to codes
/// through these).
#[derive(Debug, Clone, Default)]
pub struct TableSchema {
    /// Row count at load time.
    pub rows: usize,
    /// `(name, statistics)` per column, in declaration order.
    pub columns: Vec<(String, ColumnMeta)>,
    /// Declared primary key column, if any.
    pub primary_key: Option<String>,
    /// Dictionary per string-encoded column: `codes[i]` is the string the
    /// stored code `i` stands for.
    pub dictionaries: HashMap<String, Vec<String>>,
}

impl TableSchema {
    /// Statistics of one column, if the table has it.
    pub fn column(&self, name: &str) -> Option<&ColumnMeta> {
        self.columns
            .iter()
            .find_map(|(n, m)| (n == name).then_some(m))
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|(n, _)| n.clone()).collect()
    }
}

/// The tables a query can scan, with per-table schemas (row counts, column
/// statistics, keys and dictionaries) for the SQL binder and lowering.
#[derive(Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    schemas: HashMap<String, TableSchema>,
    /// Bumped on every mutation (insert, key/dictionary declarations).
    /// The plan cache keys entries on this, so a statistics refresh or
    /// reload invalidates every cached plan compiled against the old
    /// catalog.
    version: u64,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// The mutation counter: changes whenever the catalog's contents or
    /// declarations change. Plan-cache keys include this.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Register a table under its own name, computing its schema (row count
    /// plus per-column min/max — a host-side pass at load time, the moment
    /// real loaders collect zone maps). Returns the previously registered
    /// table of that name, if any — check it when silent replacement would
    /// be a bug.
    pub fn insert(&mut self, table: Table) -> Option<Table> {
        let columns = table
            .columns()
            .iter()
            .map(|(n, c)| {
                let (mut min, mut max) = (i64::MAX, i64::MIN);
                for v in c.iter_i64() {
                    min = min.min(v);
                    max = max.max(v);
                }
                (
                    n.clone(),
                    ColumnMeta {
                        dtype: c.dtype(),
                        min,
                        max,
                    },
                )
            })
            .collect();
        self.schemas.insert(
            table.name().to_string(),
            TableSchema {
                rows: table.num_rows(),
                columns,
                primary_key: None,
                dictionaries: HashMap::new(),
            },
        );
        self.version = self.version.wrapping_add(1);
        self.tables.insert(table.name().to_string(), table)
    }

    /// Declare `column` as `table`'s primary key (unique, one row per
    /// value). The lowering uses this to derive functional dependencies.
    pub fn set_primary_key(&mut self, table: &str, column: &str) -> Result<(), EngineError> {
        let schema = self
            .schemas
            .get_mut(table)
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))?;
        if schema.column(column).is_none() {
            return Err(EngineError::UnknownColumn {
                column: column.to_string(),
                available: schema.column_names(),
            });
        }
        schema.primary_key = Some(column.to_string());
        self.version = self.version.wrapping_add(1);
        Ok(())
    }

    /// Attach a string dictionary to `table.column`: the stored integer
    /// code `i` stands for `values[i]`. The SQL binder folds string
    /// literals on this column to their codes.
    pub fn set_dictionary(
        &mut self,
        table: &str,
        column: &str,
        values: Vec<String>,
    ) -> Result<(), EngineError> {
        let schema = self
            .schemas
            .get_mut(table)
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))?;
        if schema.column(column).is_none() {
            return Err(EngineError::UnknownColumn {
                column: column.to_string(),
                available: schema.column_names(),
            });
        }
        schema.dictionaries.insert(column.to_string(), values);
        self.version = self.version.wrapping_add(1);
        Ok(())
    }

    /// Look a table up.
    pub fn get(&self, name: &str) -> Result<&Table, EngineError> {
        self.tables
            .get(name)
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Look a table's schema up.
    pub fn schema(&self, name: &str) -> Result<&TableSchema, EngineError> {
        self.schemas
            .get(name)
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }
}

/// Per-node execution statistics: a display label, the shared per-operator
/// report, and the children's subtrees.
#[derive(Debug, Clone)]
pub struct NodeStats {
    /// Node description (operator + parameters, plus the algorithm adaptive
    /// operators picked).
    pub label: String,
    /// The shared per-operator report: simulated time (phases + other),
    /// output rows, peak device memory and hardware-counter deltas — all
    /// for this node only, children excluded.
    pub op: OpStats,
    /// How adaptive operators picked their algorithm: the sampled
    /// statistics, the decision-tree branch taken and the branches
    /// rejected on the way. `None` for operators with nothing to decide
    /// (scans, filters, projections).
    pub provenance: Option<heuristics::Provenance>,
    /// Child node statistics (inputs first).
    pub children: Vec<NodeStats>,
}

impl NodeStats {
    /// Output rows of this node.
    pub fn rows(&self) -> usize {
        self.op.rows
    }

    /// Simulated time spent in this node, children excluded.
    pub fn time(&self) -> SimTime {
        self.op.total_time()
    }

    /// Total simulated time of the subtree.
    pub fn total_time(&self) -> SimTime {
        self.time() + self.children.iter().map(NodeStats::total_time).sum()
    }

    /// Render an indented plan-with-times tree. Nodes that touched DRAM
    /// also show their traffic, coalescing quality and L2 hit rate — the
    /// Nsight Compute metrics of Table 4, per plan node.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let _ = write!(
            out,
            "{:indent$}{} [{} rows, {}",
            "",
            self.label,
            self.op.rows,
            self.time(),
            indent = depth * 2
        );
        let c = &self.op.counters;
        if c.dram_bytes() > 0 {
            let _ = write!(out, ", {} DRAM", sim::analysis::human_bytes(c.dram_bytes()));
            if c.load_requests > 0 {
                let _ = write!(out, ", {:.2} sect/req", c.sectors_per_request());
            }
            if c.l2_hits + c.l2_misses > 0 {
                let _ = write!(out, ", L2 {:.0}%", c.l2_hit_rate() * 100.0);
            }
        }
        let _ = writeln!(out, "]");
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

/// A finished query: the result table and the node-stats tree.
pub struct QueryOutput {
    /// Result rows.
    pub table: Table,
    /// Per-node execution reports.
    pub stats: NodeStats,
}

/// Execute `plan` against `catalog` on `dev`, with operator fusion on:
/// adjacent Filter/Project chains collapse into single nodes whose outputs
/// flow as late-materialized tickets ([`crate::fuse`]).
pub fn execute(dev: &Device, catalog: &Catalog, plan: &Plan) -> Result<QueryOutput, EngineError> {
    run_compiled(dev, catalog, compile(plan))
}

/// Execute `plan` with fusion off: one physical operator per plan node,
/// every intermediate fully materialized. Same results, more DRAM traffic —
/// the ablation baseline of `bench`'s `ablation_fusion` experiment and the
/// oracle side of the fusion-equivalence property tests.
pub fn execute_unfused(
    dev: &Device,
    catalog: &Catalog,
    plan: &Plan,
) -> Result<QueryOutput, EngineError> {
    run_compiled(dev, catalog, compile_unfused(plan))
}

fn run_compiled(
    dev: &Device,
    catalog: &Catalog,
    op: crate::op::BoxOp,
) -> Result<QueryOutput, EngineError> {
    let ctx = ExecContext::new(dev, Some(catalog));
    let (table, stats) = run_operator(&ctx, op.as_ref())?;
    Ok(QueryOutput { table, stats })
}

/// Split a table into a join relation (key + payload columns) and the
/// payload column names, preserving order.
pub(crate) fn to_relation(
    table: &Table,
    key: &str,
) -> Result<(Relation, Vec<String>), EngineError> {
    let key_idx = table.column_index(key)?;
    let key_col = table.columns()[key_idx].1.alias();
    let mut names = Vec::new();
    let mut payloads = Vec::new();
    for (i, (n, c)) in table.columns().iter().enumerate() {
        if i != key_idx {
            names.push(n.clone());
            payloads.push(c.alias());
        }
    }
    Ok((Relation::new(table.name(), key_col, payloads), names))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggSpec, Expr};
    use columnar::Column;
    use groupby::AggFn;
    use joins::{Algorithm, JoinKind};

    fn catalog(dev: &Device) -> Catalog {
        let mut c = Catalog::new();
        c.insert(Table::new(
            "orders",
            vec![
                ("o_id", Column::from_i32(dev, vec![0, 1, 2, 3], "o_id")),
                (
                    "o_cust",
                    Column::from_i32(dev, vec![100, 101, 100, 102], "o_cust"),
                ),
            ],
        ));
        c.insert(Table::new(
            "lineitem",
            vec![
                (
                    "l_oid",
                    Column::from_i32(dev, vec![0, 0, 1, 2, 2, 3, 9], "l_oid"),
                ),
                (
                    "l_qty",
                    Column::from_i64(dev, vec![5, 7, 11, 1, 2, 4, 99], "l_qty"),
                ),
            ],
        ));
        c
    }

    #[test]
    fn catalog_insert_reports_replacement() {
        let dev = Device::a100();
        let mut c = Catalog::new();
        assert!(c
            .insert(Table::new(
                "t",
                vec![("a", Column::from_i32(&dev, vec![1, 2], "a"))],
            ))
            .is_none());
        // Same name: the old table comes back instead of vanishing.
        let old = c.insert(Table::new(
            "t",
            vec![("b", Column::from_i32(&dev, vec![3], "b"))],
        ));
        assert_eq!(old.expect("replaced table returned").num_rows(), 2);
        assert_eq!(c.get("t").unwrap().column_names(), vec!["b"]);
    }

    #[test]
    fn catalog_schemas_carry_statistics() {
        let dev = Device::a100();
        let mut cat = catalog(&dev);
        let s = cat.schema("lineitem").unwrap();
        assert_eq!(s.rows, 7);
        let qty = s.column("l_qty").unwrap();
        assert_eq!((qty.dtype, qty.min, qty.max), (DType::I64, 1, 99));
        assert_eq!(s.column("l_oid").unwrap().dtype, DType::I32);
        assert!(s.column("nope").is_none());
        cat.set_primary_key("orders", "o_id").unwrap();
        assert_eq!(
            cat.schema("orders").unwrap().primary_key.as_deref(),
            Some("o_id")
        );
        assert!(cat.set_primary_key("orders", "nope").is_err());
        cat.set_dictionary("orders", "o_cust", vec!["a".into(), "b".into()])
            .unwrap();
        assert_eq!(
            cat.schema("orders").unwrap().dictionaries["o_cust"],
            vec!["a", "b"]
        );
        assert!(cat.schema("nope").is_err());
        assert_eq!(cat.table_names(), vec!["lineitem", "orders"]);
    }

    #[test]
    fn limit_keeps_the_first_rows() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        // Bare LIMIT over a materialized scan.
        let plan = Plan::scan("lineitem").limit(3);
        let out = execute(&dev, &cat, &plan).unwrap();
        assert_eq!(out.table.num_rows(), 3);
        assert_eq!(
            out.table.column("l_qty").unwrap().to_vec_i64(),
            vec![5, 7, 11]
        );
        assert!(
            out.stats.label.starts_with("Limit(3)"),
            "{}",
            out.stats.label
        );
        // LIMIT above the input size keeps everything.
        let plan = Plan::scan("lineitem").limit(100);
        let out = execute(&dev, &cat, &plan).unwrap();
        assert_eq!(out.table.num_rows(), 7);
        // LIMIT over a fused Filter/Project run: the selection truncates,
        // payloads materialize only for surviving rows, and fused/unfused
        // agree bit-for-bit.
        let plan = Plan::scan("lineitem")
            .filter(Expr::col("l_qty").ge(Expr::lit(4)))
            .project(vec![
                ("oid", Expr::col("l_oid")),
                ("q2", Expr::col("l_qty").mul(Expr::lit(2))),
            ])
            .limit(2);
        let fused = execute(&dev, &cat, &plan).unwrap();
        let unfused = execute_unfused(&dev, &cat, &plan).unwrap();
        assert_eq!(fused.table.num_rows(), 2);
        assert_eq!(fused.table.column("q2").unwrap().to_vec_i64(), vec![10, 14]);
        assert_eq!(fused.table.rows_sorted(), unfused.table.rows_sorted());
        assert_eq!(fused.table.column_names(), unfused.table.column_names());
    }

    #[test]
    fn scan_filter_project() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        let plan = Plan::scan("lineitem")
            .filter(Expr::col("l_qty").ge(Expr::lit(5)))
            .project(vec![
                ("oid", Expr::col("l_oid")),
                ("double_qty", Expr::col("l_qty").mul(Expr::lit(2))),
            ]);
        let out = execute(&dev, &cat, &plan).unwrap();
        assert_eq!(
            out.table.rows_sorted(),
            vec![vec![0, 10], vec![0, 14], vec![1, 22], vec![9, 198]]
        );
        assert!(out.stats.total_time().secs() > 0.0);
    }

    #[test]
    fn join_then_aggregate_q18_shape() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        let plan = Plan::scan("orders")
            .join(Plan::scan("lineitem"), "o_id", "l_oid")
            .aggregate(
                "o_id",
                vec![
                    AggSpec::new(AggFn::Sum, "l_qty", "total_qty"),
                    AggSpec::new(AggFn::Max, "o_cust", "cust"),
                ],
            );
        let out = execute(&dev, &cat, &plan).unwrap();
        assert_eq!(
            out.table.rows_sorted(),
            vec![
                vec![0, 12, 100],
                vec![1, 11, 101],
                vec![2, 3, 100],
                vec![3, 4, 102],
            ]
        );
        assert_eq!(out.table.column_names(), vec!["o_id", "total_qty", "cust"]);
        // The stats tree mirrors the plan.
        assert!(out.stats.label.starts_with("Aggregate"));
        assert_eq!(out.stats.children.len(), 1);
        assert!(out.stats.render().contains("Join"));
    }

    #[test]
    fn node_stats_carry_counters_and_render_them() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        let plan = Plan::scan("orders").join(Plan::scan("lineitem"), "o_id", "l_oid");
        let out = execute(&dev, &cat, &plan).unwrap();
        // The join node saw device traffic; its scans are pure aliasing.
        assert!(out.stats.op.counters.dram_bytes() > 0);
        assert!(out.stats.op.counters.kernel_launches > 0);
        for scan in &out.stats.children {
            assert_eq!(scan.op.counters.kernel_launches, 0);
        }
        let rendered = out.stats.render();
        assert!(rendered.contains("DRAM"), "traffic rendered: {rendered}");
        assert!(
            rendered.contains("sect/req"),
            "coalescing rendered: {rendered}"
        );
    }

    #[test]
    fn semi_join_in_a_plan() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        // Orders that have at least one lineitem: probe side = orders.
        let plan =
            Plan::scan("lineitem").join_kind(Plan::scan("orders"), "l_oid", "o_id", JoinKind::Semi);
        let out = execute(&dev, &cat, &plan).unwrap();
        assert_eq!(
            out.table.rows_sorted(),
            vec![vec![0, 100], vec![1, 101], vec![2, 100], vec![3, 102],]
        );
    }

    #[test]
    fn pinned_algorithm_is_respected() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        let plan = Plan::scan("orders")
            .join(Plan::scan("lineitem"), "o_id", "l_oid")
            .with_join_algorithm(Algorithm::SmjOm);
        let out = execute(&dev, &cat, &plan).unwrap();
        assert!(out.stats.label.contains("SMJ-OM"));
        assert_eq!(out.table.num_rows(), 6);
    }

    #[test]
    fn name_collisions_are_suffixed() {
        let dev = Device::a100();
        let mut cat = Catalog::new();
        cat.insert(Table::new(
            "a",
            vec![
                ("k", Column::from_i32(&dev, vec![1], "k")),
                ("v", Column::from_i32(&dev, vec![10], "v")),
            ],
        ));
        cat.insert(Table::new(
            "b",
            vec![
                ("k", Column::from_i32(&dev, vec![1], "k")),
                ("v", Column::from_i32(&dev, vec![20], "v")),
            ],
        ));
        let plan = Plan::scan("a").join(Plan::scan("b"), "k", "k");
        let out = execute(&dev, &cat, &plan).unwrap();
        assert_eq!(out.table.column_names(), vec!["k", "v", "v_2"]);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        assert!(matches!(
            execute(&dev, &cat, &Plan::scan("nope")),
            Err(EngineError::UnknownTable(_))
        ));
        let plan = Plan::scan("orders").filter(Expr::col("missing").gt(Expr::lit(0)));
        assert!(matches!(
            execute(&dev, &cat, &plan),
            Err(EngineError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn sort_and_limit() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        // Top-2 lineitems by quantity, descending.
        let plan = Plan::scan("lineitem").sort_by("l_qty", true, Some(2));
        let out = execute(&dev, &cat, &plan).unwrap();
        assert_eq!(out.table.num_rows(), 2);
        assert_eq!(
            out.table.column("l_qty").unwrap().to_vec_i64(),
            vec![99, 11]
        );
        // Ascending without a limit keeps everything, ordered.
        let plan = Plan::scan("lineitem").sort_by("l_qty", false, None);
        let out = execute(&dev, &cat, &plan).unwrap();
        let q = out.table.column("l_qty").unwrap().to_vec_i64();
        assert!(q.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(q.len(), 7);
        assert!(out.stats.label.starts_with("Sort"));
    }

    #[test]
    fn distinct_column() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        let plan = Plan::scan("lineitem").distinct("l_oid");
        let out = execute(&dev, &cat, &plan).unwrap();
        assert_eq!(
            out.table.rows_sorted(),
            vec![vec![0], vec![1], vec![2], vec![3], vec![9]]
        );
    }

    #[test]
    fn q18_full_shape_with_order_by_limit() {
        // The real Q18 ends ORDER BY total DESC LIMIT 100.
        let dev = Device::a100();
        let cat = catalog(&dev);
        let plan = Plan::scan("orders")
            .join(Plan::scan("lineitem"), "o_id", "l_oid")
            .aggregate("o_id", vec![AggSpec::new(AggFn::Sum, "l_qty", "total")])
            .sort_by("total", true, Some(2));
        let out = execute(&dev, &cat, &plan).unwrap();
        assert_eq!(
            out.table.column("total").unwrap().to_vec_i64(),
            vec![12, 11]
        );
    }

    #[test]
    fn composite_key_join_via_pack_projection() {
        // Join on (a, b) pairs by packing both sides into one i64 key.
        let dev = Device::a100();
        let mut cat = Catalog::new();
        cat.insert(Table::new(
            "x",
            vec![
                ("xa", Column::from_i32(&dev, vec![1, 1, 2], "xa")),
                ("xb", Column::from_i32(&dev, vec![10, 11, 10], "xb")),
                ("xv", Column::from_i32(&dev, vec![100, 200, 300], "xv")),
            ],
        ));
        cat.insert(Table::new(
            "y",
            vec![
                ("ya", Column::from_i32(&dev, vec![1, 2, 2], "ya")),
                ("yb", Column::from_i32(&dev, vec![10, 10, 99], "yb")),
                ("yv", Column::from_i32(&dev, vec![7, 8, 9], "yv")),
            ],
        ));
        let plan = Plan::scan("x")
            .project(vec![
                ("k", Expr::col("xa").pack(Expr::col("xb"))),
                ("xv", Expr::col("xv")),
            ])
            .join(
                Plan::scan("y").project(vec![
                    ("k", Expr::col("ya").pack(Expr::col("yb"))),
                    ("yv", Expr::col("yv")),
                ]),
                "k",
                "k",
            );
        let out = execute(&dev, &cat, &plan).unwrap();
        // Matching pairs: (1,10) and (2,10).
        let expected = vec![
            vec![(1i64 << 32) | 10, 100, 7],
            vec![(2i64 << 32) | 10, 300, 8],
        ];
        assert_eq!(out.table.rows_sorted(), expected);
    }

    #[test]
    fn key_type_mismatch_is_reported() {
        let dev = Device::a100();
        let mut cat = Catalog::new();
        cat.insert(Table::new(
            "x",
            vec![("k", Column::from_i32(&dev, vec![1], "k"))],
        ));
        cat.insert(Table::new(
            "y",
            vec![("k", Column::from_i64(&dev, vec![1], "k"))],
        ));
        let plan = Plan::scan("x").join(Plan::scan("y"), "k", "k");
        assert!(matches!(
            execute(&dev, &cat, &plan),
            Err(EngineError::KeyTypeMismatch { .. })
        ));
    }
}
