//! Plan execution against a catalog.
//!
//! Columns move between operators as zero-cost aliases (pointer passing);
//! every operator's device work — predicate kernels, compaction gathers,
//! joins, aggregations — is charged to the shared simulated device, and the
//! per-node simulated times come back as a [`NodeStats`] tree.

use crate::{EngineError, Plan, Table};
use columnar::{Column, Relation};
use groupby::{GroupByAlgorithm, GroupByConfig};
use heuristics::{choose_join, estimate_profile};
use joins::JoinConfig;
use primitives::gather_column;
use sim::{Device, SimTime};
use std::collections::HashMap;

/// The tables a query can scan.
#[derive(Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table under its own name.
    pub fn insert(&mut self, table: Table) {
        self.tables.insert(table.name().to_string(), table);
    }

    /// Look a table up.
    pub fn get(&self, name: &str) -> Result<&Table, EngineError> {
        self.tables
            .get(name)
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }
}

/// Per-node execution statistics.
#[derive(Debug, Clone)]
pub struct NodeStats {
    /// Node description (operator + parameters).
    pub label: String,
    /// Output rows.
    pub rows: usize,
    /// Simulated time spent in this node, children excluded.
    pub time: SimTime,
    /// Child node statistics (inputs first).
    pub children: Vec<NodeStats>,
}

impl NodeStats {
    /// Total simulated time of the subtree.
    pub fn total_time(&self) -> SimTime {
        self.time + self.children.iter().map(NodeStats::total_time).sum()
    }

    /// Render an indented plan-with-times tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "{:indent$}{} [{} rows, {}]",
            "",
            self.label,
            self.rows,
            self.time,
            indent = depth * 2
        );
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

/// A finished query: the result table and the node-stats tree.
pub struct QueryOutput {
    /// Result rows.
    pub table: Table,
    /// Per-node simulated times.
    pub stats: NodeStats,
}

/// Execute `plan` against `catalog` on `dev`.
pub fn execute(dev: &Device, catalog: &Catalog, plan: &Plan) -> Result<QueryOutput, EngineError> {
    let (table, stats) = run(dev, catalog, plan)?;
    Ok(QueryOutput { table, stats })
}

fn run(dev: &Device, catalog: &Catalog, plan: &Plan) -> Result<(Table, NodeStats), EngineError> {
    match plan {
        Plan::Scan { table } => {
            let src = catalog.get(table)?;
            // Scanning passes pointers; no device work.
            let cols = src
                .columns()
                .iter()
                .map(|(n, c)| (n.clone(), c.alias()))
                .collect();
            let out = Table::from_columns(src.name(), cols);
            let rows = out.num_rows();
            Ok((
                out,
                NodeStats {
                    label: plan.label(),
                    rows,
                    time: SimTime::ZERO,
                    children: Vec::new(),
                },
            ))
        }
        Plan::Filter { input, predicate } => {
            let (child, child_stats) = run(dev, catalog, input)?;
            let t0 = dev.elapsed();
            let mask = predicate.eval_mask(dev, &child)?;
            let sel: Vec<u32> = mask
                .iter()
                .enumerate()
                .filter_map(|(i, &keep)| keep.then_some(i as u32))
                .collect();
            let sel = dev.upload(sel, "filter.sel");
            // Compaction: one clustered gather per column (the selection
            // indices ascend).
            let cols = child
                .columns()
                .iter()
                .map(|(n, c)| (n.clone(), gather_column(dev, c, &sel)))
                .collect();
            let out = Table::from_columns("filtered", cols);
            let rows = out.num_rows();
            Ok((
                out,
                NodeStats {
                    label: plan.label(),
                    rows,
                    time: dev.elapsed() - t0,
                    children: vec![child_stats],
                },
            ))
        }
        Plan::Project { input, exprs } => {
            let (child, child_stats) = run(dev, catalog, input)?;
            let t0 = dev.elapsed();
            let mut cols = Vec::with_capacity(exprs.len());
            for (name, e) in exprs {
                cols.push((name.clone(), e.eval(dev, &child)?));
            }
            let out = Table::from_columns("projected", cols);
            let rows = out.num_rows();
            Ok((
                out,
                NodeStats {
                    label: plan.label(),
                    rows,
                    time: dev.elapsed() - t0,
                    children: vec![child_stats],
                },
            ))
        }
        Plan::Join {
            left,
            right,
            left_key,
            right_key,
            kind,
            algorithm,
        } => {
            let (lt, lstats) = run(dev, catalog, left)?;
            let (rt, rstats) = run(dev, catalog, right)?;
            let t0 = dev.elapsed();
            let (l_rel, l_names) = to_relation(&lt, left_key)?;
            let (r_rel, r_names) = to_relation(&rt, right_key)?;
            if l_rel.key().dtype() != r_rel.key().dtype() {
                return Err(EngineError::KeyTypeMismatch {
                    left: l_rel.key().dtype().label(),
                    right: r_rel.key().dtype().label(),
                });
            }
            let alg = algorithm.unwrap_or_else(|| {
                // No optimizer statistics here: sample them (match ratio,
                // skew) and let the Figure 18 tree decide. The sampling cost
                // is charged and shows up in this node's time.
                let profile = estimate_profile(dev, &l_rel, &r_rel, 512);
                choose_join(&profile).algorithm
            });
            let config = JoinConfig {
                unique_build: false,
                kind: *kind,
                ..JoinConfig::default()
            };
            let joined = joins::run_join(dev, alg, &l_rel, &r_rel, &config);

            // Reassemble with names: key, build payloads, probe payloads.
            let mut used: HashMap<String, usize> = HashMap::new();
            let mut unique = |base: &str| -> String {
                let n = used.entry(base.to_string()).or_insert(0);
                *n += 1;
                if *n == 1 {
                    base.to_string()
                } else {
                    format!("{base}_{n}")
                }
            };
            let mut cols = Vec::new();
            cols.push((unique(left_key), joined.keys));
            for (name, col) in l_names.iter().zip(joined.r_payloads) {
                cols.push((unique(name), col));
            }
            for (name, col) in r_names.iter().zip(joined.s_payloads) {
                cols.push((unique(name), col));
            }
            let out = Table::from_columns("joined", cols);
            let rows = out.num_rows();
            Ok((
                out,
                NodeStats {
                    label: format!("{} via {}", plan.label(), alg.name()),
                    rows,
                    time: dev.elapsed() - t0,
                    children: vec![lstats, rstats],
                },
            ))
        }
        Plan::Sort {
            input,
            by,
            desc,
            limit,
        } => {
            let (child, child_stats) = run(dev, catalog, input)?;
            let t0 = dev.elapsed();
            // SORT-PAIRS on (key, row id), then truncate the id list to the
            // limit *before* gathering the other columns — only the
            // surviving rows pay materialization.
            let key = child.column(by)?;
            let ids = dev.upload(
                (0..child.num_rows() as u32).collect::<Vec<u32>>(),
                "sort.ids",
            );
            let sorted_ids: Vec<u32> = match key {
                Column::I32(k) => primitives::sort_pairs(dev, k, &ids).1.to_vec(),
                Column::I64(k) => primitives::sort_pairs(dev, k, &ids).1.to_vec(),
            };
            let take = limit.unwrap_or(sorted_ids.len()).min(sorted_ids.len());
            let map: Vec<u32> = if *desc {
                sorted_ids.iter().rev().take(take).copied().collect()
            } else {
                sorted_ids[..take].to_vec()
            };
            let map = dev.upload(map, "sort.map");
            let cols = child
                .columns()
                .iter()
                .map(|(n, c)| (n.clone(), gather_column(dev, c, &map)))
                .collect();
            let out = Table::from_columns("sorted", cols);
            let rows = out.num_rows();
            Ok((
                out,
                NodeStats {
                    label: plan.label(),
                    rows,
                    time: dev.elapsed() - t0,
                    children: vec![child_stats],
                },
            ))
        }
        Plan::Distinct { input, column } => {
            let (child, child_stats) = run(dev, catalog, input)?;
            let t0 = dev.elapsed();
            let key = child.column(column)?.alias();
            let rel = Relation::new("distinct_input", key, Vec::new());
            let grouped = groupby::run_group_by(
                dev,
                GroupByAlgorithm::SortGftr,
                &rel,
                &[],
                &GroupByConfig::default(),
            );
            let out = Table::from_columns("distinct", vec![(column.clone(), grouped.keys)]);
            let rows = out.num_rows();
            Ok((
                out,
                NodeStats {
                    label: plan.label(),
                    rows,
                    time: dev.elapsed() - t0,
                    children: vec![child_stats],
                },
            ))
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            algorithm,
        } => {
            let (child, child_stats) = run(dev, catalog, input)?;
            let t0 = dev.elapsed();
            let key = child.column(group_by)?.alias();
            let mut payloads = Vec::with_capacity(aggs.len());
            let mut fns = Vec::with_capacity(aggs.len());
            for a in aggs {
                payloads.push(child.column(&a.column)?.alias());
                fns.push(a.agg);
            }
            let rel = Relation::new("agg_input", key, payloads);
            let alg = algorithm.unwrap_or(GroupByAlgorithm::PartitionedGftr);
            let grouped = groupby::run_group_by(dev, alg, &rel, &fns, &GroupByConfig::default());
            let mut cols = vec![(group_by.clone(), grouped.keys)];
            for (spec, col) in aggs.iter().zip(grouped.aggregates) {
                cols.push((spec.output.clone(), col));
            }
            let out = Table::from_columns("aggregated", cols);
            let rows = out.num_rows();
            Ok((
                out,
                NodeStats {
                    label: format!("{} via {}", plan.label(), alg.name()),
                    rows,
                    time: dev.elapsed() - t0,
                    children: vec![child_stats],
                },
            ))
        }
    }
}

/// Split a table into a join relation (key + payload columns) and the
/// payload column names, preserving order.
fn to_relation(table: &Table, key: &str) -> Result<(Relation, Vec<String>), EngineError> {
    let key_idx = table.column_index(key)?;
    let key_col = table.columns()[key_idx].1.alias();
    let mut names = Vec::new();
    let mut payloads = Vec::new();
    for (i, (n, c)) in table.columns().iter().enumerate() {
        if i != key_idx {
            names.push(n.clone());
            payloads.push(c.alias());
        }
    }
    Ok((Relation::new(table.name(), key_col, payloads), names))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggSpec, Expr};
    use groupby::AggFn;
    use joins::{Algorithm, JoinKind};

    fn catalog(dev: &Device) -> Catalog {
        let mut c = Catalog::new();
        c.insert(Table::new(
            "orders",
            vec![
                ("o_id", Column::from_i32(dev, vec![0, 1, 2, 3], "o_id")),
                (
                    "o_cust",
                    Column::from_i32(dev, vec![100, 101, 100, 102], "o_cust"),
                ),
            ],
        ));
        c.insert(Table::new(
            "lineitem",
            vec![
                (
                    "l_oid",
                    Column::from_i32(dev, vec![0, 0, 1, 2, 2, 3, 9], "l_oid"),
                ),
                (
                    "l_qty",
                    Column::from_i64(dev, vec![5, 7, 11, 1, 2, 4, 99], "l_qty"),
                ),
            ],
        ));
        c
    }

    #[test]
    fn scan_filter_project() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        let plan = Plan::scan("lineitem")
            .filter(Expr::col("l_qty").ge(Expr::lit(5)))
            .project(vec![
                ("oid", Expr::col("l_oid")),
                ("double_qty", Expr::col("l_qty").mul(Expr::lit(2))),
            ]);
        let out = execute(&dev, &cat, &plan).unwrap();
        assert_eq!(
            out.table.rows_sorted(),
            vec![vec![0, 10], vec![0, 14], vec![1, 22], vec![9, 198]]
        );
        assert!(out.stats.total_time().secs() > 0.0);
    }

    #[test]
    fn join_then_aggregate_q18_shape() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        let plan = Plan::scan("orders")
            .join(Plan::scan("lineitem"), "o_id", "l_oid")
            .aggregate(
                "o_id",
                vec![
                    AggSpec::new(AggFn::Sum, "l_qty", "total_qty"),
                    AggSpec::new(AggFn::Max, "o_cust", "cust"),
                ],
            );
        let out = execute(&dev, &cat, &plan).unwrap();
        assert_eq!(
            out.table.rows_sorted(),
            vec![
                vec![0, 12, 100],
                vec![1, 11, 101],
                vec![2, 3, 100],
                vec![3, 4, 102],
            ]
        );
        assert_eq!(out.table.column_names(), vec!["o_id", "total_qty", "cust"]);
        // The stats tree mirrors the plan.
        assert!(out.stats.label.starts_with("Aggregate"));
        assert_eq!(out.stats.children.len(), 1);
        assert!(out.stats.render().contains("Join"));
    }

    #[test]
    fn semi_join_in_a_plan() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        // Orders that have at least one lineitem: probe side = orders.
        let plan =
            Plan::scan("lineitem").join_kind(Plan::scan("orders"), "l_oid", "o_id", JoinKind::Semi);
        let out = execute(&dev, &cat, &plan).unwrap();
        assert_eq!(
            out.table.rows_sorted(),
            vec![vec![0, 100], vec![1, 101], vec![2, 100], vec![3, 102],]
        );
    }

    #[test]
    fn pinned_algorithm_is_respected() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        let plan = Plan::scan("orders")
            .join(Plan::scan("lineitem"), "o_id", "l_oid")
            .with_join_algorithm(Algorithm::SmjOm);
        let out = execute(&dev, &cat, &plan).unwrap();
        assert!(out.stats.label.contains("SMJ-OM"));
        assert_eq!(out.table.num_rows(), 6);
    }

    #[test]
    fn name_collisions_are_suffixed() {
        let dev = Device::a100();
        let mut cat = Catalog::new();
        cat.insert(Table::new(
            "a",
            vec![
                ("k", Column::from_i32(&dev, vec![1], "k")),
                ("v", Column::from_i32(&dev, vec![10], "v")),
            ],
        ));
        cat.insert(Table::new(
            "b",
            vec![
                ("k", Column::from_i32(&dev, vec![1], "k")),
                ("v", Column::from_i32(&dev, vec![20], "v")),
            ],
        ));
        let plan = Plan::scan("a").join(Plan::scan("b"), "k", "k");
        let out = execute(&dev, &cat, &plan).unwrap();
        assert_eq!(out.table.column_names(), vec!["k", "v", "v_2"]);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        assert!(matches!(
            execute(&dev, &cat, &Plan::scan("nope")),
            Err(EngineError::UnknownTable(_))
        ));
        let plan = Plan::scan("orders").filter(Expr::col("missing").gt(Expr::lit(0)));
        assert!(matches!(
            execute(&dev, &cat, &plan),
            Err(EngineError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn sort_and_limit() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        // Top-2 lineitems by quantity, descending.
        let plan = Plan::scan("lineitem").sort_by("l_qty", true, Some(2));
        let out = execute(&dev, &cat, &plan).unwrap();
        assert_eq!(out.table.num_rows(), 2);
        assert_eq!(
            out.table.column("l_qty").unwrap().to_vec_i64(),
            vec![99, 11]
        );
        // Ascending without a limit keeps everything, ordered.
        let plan = Plan::scan("lineitem").sort_by("l_qty", false, None);
        let out = execute(&dev, &cat, &plan).unwrap();
        let q = out.table.column("l_qty").unwrap().to_vec_i64();
        assert!(q.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(q.len(), 7);
        assert!(out.stats.label.starts_with("Sort"));
    }

    #[test]
    fn distinct_column() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        let plan = Plan::scan("lineitem").distinct("l_oid");
        let out = execute(&dev, &cat, &plan).unwrap();
        assert_eq!(
            out.table.rows_sorted(),
            vec![vec![0], vec![1], vec![2], vec![3], vec![9]]
        );
    }

    #[test]
    fn q18_full_shape_with_order_by_limit() {
        // The real Q18 ends ORDER BY total DESC LIMIT 100.
        let dev = Device::a100();
        let cat = catalog(&dev);
        let plan = Plan::scan("orders")
            .join(Plan::scan("lineitem"), "o_id", "l_oid")
            .aggregate("o_id", vec![AggSpec::new(AggFn::Sum, "l_qty", "total")])
            .sort_by("total", true, Some(2));
        let out = execute(&dev, &cat, &plan).unwrap();
        assert_eq!(
            out.table.column("total").unwrap().to_vec_i64(),
            vec![12, 11]
        );
    }

    #[test]
    fn composite_key_join_via_pack_projection() {
        // Join on (a, b) pairs by packing both sides into one i64 key.
        let dev = Device::a100();
        let mut cat = Catalog::new();
        cat.insert(Table::new(
            "x",
            vec![
                ("xa", Column::from_i32(&dev, vec![1, 1, 2], "xa")),
                ("xb", Column::from_i32(&dev, vec![10, 11, 10], "xb")),
                ("xv", Column::from_i32(&dev, vec![100, 200, 300], "xv")),
            ],
        ));
        cat.insert(Table::new(
            "y",
            vec![
                ("ya", Column::from_i32(&dev, vec![1, 2, 2], "ya")),
                ("yb", Column::from_i32(&dev, vec![10, 10, 99], "yb")),
                ("yv", Column::from_i32(&dev, vec![7, 8, 9], "yv")),
            ],
        ));
        let plan = Plan::scan("x")
            .project(vec![
                ("k", Expr::col("xa").pack(Expr::col("xb"))),
                ("xv", Expr::col("xv")),
            ])
            .join(
                Plan::scan("y").project(vec![
                    ("k", Expr::col("ya").pack(Expr::col("yb"))),
                    ("yv", Expr::col("yv")),
                ]),
                "k",
                "k",
            );
        let out = execute(&dev, &cat, &plan).unwrap();
        // Matching pairs: (1,10) and (2,10).
        let expected = vec![
            vec![(1i64 << 32) | 10, 100, 7],
            vec![(2i64 << 32) | 10, 300, 8],
        ];
        assert_eq!(out.table.rows_sorted(), expected);
    }

    #[test]
    fn key_type_mismatch_is_reported() {
        let dev = Device::a100();
        let mut cat = Catalog::new();
        cat.insert(Table::new(
            "x",
            vec![("k", Column::from_i32(&dev, vec![1], "k"))],
        ));
        cat.insert(Table::new(
            "y",
            vec![("k", Column::from_i64(&dev, vec![1], "k"))],
        ));
        let plan = Plan::scan("x").join(Plan::scan("y"), "k", "k");
        assert!(matches!(
            execute(&dev, &cat, &plan),
            Err(EngineError::KeyTypeMismatch { .. })
        ));
    }
}
