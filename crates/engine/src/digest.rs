//! Automatic slow-query attribution: turn a lifecycle trace, a metrics
//! snapshot and the per-query EXPLAIN reports into a "why was it slow"
//! digest.
//!
//! [`slow_queries`] is a *pure* function of its three inputs — it runs no
//! kernels, reads no clocks, and allocates nothing on the device — so the
//! digest it produces is byte-identical whenever its inputs are, which the
//! lifecycle invariant suite holds across host-thread counts and policies.
//!
//! A query is *slow* against its own SLO target when the serving session
//! configured one ([`crate::scheduler::ServingConfig::with_slo`]), and
//! against the population p99 latency otherwise. Each slow query's
//! end-to-end latency is attributed across the lifecycle stages —
//! admission-queue wait, planning (charge-free by construction, always
//! zero), execution slices, and cross-tenant interference — using the same
//! tick quantization the metrics pipeline uses, so the four stage totals
//! sum to the latency *exactly*. The dominant stage names the phase to
//! blame; when EXPLAIN output is available the digest also names the
//! dominant operator and its roofline bottleneck, plus plan-cache
//! provenance.

use crate::explain::{ExplainNode, QueryExplain};
use crate::plan_cache::CacheOutcome;
use serde::Serialize;
use sim::{secs_to_ticks, LifecycleStage, MetricsSnapshot, QueryId, Trace, SECONDS_SCALE};

/// Where one query's end-to-end latency went, in integer nanoseconds.
/// The four fields sum to the query's latency exactly (the lifecycle
/// partition identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct StageAttribution {
    /// Admission-queue wait: arrival to budget grant.
    pub queue_ns: u64,
    /// Planning time. Always zero: planning kernels run charge-free
    /// under `with_planning`, so the simulated clock never advances.
    pub planning_ns: u64,
    /// Time the query actually held the device (its exec slices).
    pub exec_ns: u64,
    /// Admitted-but-not-running time: gaps where co-tenants held the
    /// device turn gate.
    pub interference_ns: u64,
}

impl StageAttribution {
    /// Sum of all four stages — equals the query latency exactly.
    pub fn total_ns(&self) -> u64 {
        self.queue_ns + self.planning_ns + self.exec_ns + self.interference_ns
    }

    /// The stage to blame: the largest attribution, ties broken in
    /// pipeline order (queue, planning, exec, interference).
    pub fn dominant(&self) -> &'static str {
        let stages = [
            ("queue", self.queue_ns),
            ("planning", self.planning_ns),
            ("exec", self.exec_ns),
            ("interference", self.interference_ns),
        ];
        let max = stages.iter().map(|(_, v)| *v).max().unwrap_or(0);
        stages
            .iter()
            .find(|(_, v)| *v == max)
            .map(|(n, _)| *n)
            .unwrap_or("queue")
    }
}

/// The operator that dominated a slow query's execution time, per its
/// EXPLAIN report.
#[derive(Debug, Clone, Serialize)]
pub struct OperatorAttribution {
    /// The node's display label (operator + parameters + algorithm).
    pub label: String,
    /// Simulated time in the node, children excluded, seconds.
    pub time_secs: f64,
    /// The node's roofline verdict (e.g. "memory-bound, 87% of DRAM peak").
    pub bottleneck: String,
}

/// One slow query with its latency fully attributed.
#[derive(Debug, Clone, Serialize)]
pub struct SlowQueryReport {
    /// Device-side query id.
    pub query: QueryId,
    /// Serving class, when the session annotated one.
    pub class: Option<String>,
    /// End-to-end latency, arrival to completion, nanoseconds.
    pub latency_ns: u64,
    /// The SLO target the query was judged against, nanoseconds;
    /// `None` when it was judged against the population p99 instead.
    pub slo_ns: Option<u64>,
    /// Where the latency went. Sums to `latency_ns` exactly.
    pub attribution: StageAttribution,
    /// The stage to blame (largest attribution).
    pub dominant_stage: String,
    /// The operator to blame, when an EXPLAIN report was supplied.
    pub dominant_operator: Option<OperatorAttribution>,
    /// Plan-cache provenance from EXPLAIN (`"hit"` / `"miss"`), when
    /// the execution went through a plan cache.
    pub plan_cache: Option<String>,
}

/// The digest: every slow query in a session, worst first.
#[derive(Debug, Clone, Serialize)]
pub struct SlowQueryDigest {
    /// Device the trace came from.
    pub device: String,
    /// Completed queries considered (shed/rejected queries never
    /// complete and are excluded).
    pub queries: usize,
    /// Population p99 latency (rank `ceil(0.99 n)` of the completed
    /// latencies), nanoseconds — the threshold for queries without an
    /// SLO. `None` when no query completed.
    pub p99_ns: Option<u64>,
    /// Slow queries, sorted by latency descending (query id ascending on
    /// ties).
    pub slow: Vec<SlowQueryReport>,
}

/// Per-query accumulator while walking the lifecycle events.
#[derive(Default)]
struct LifeAcc {
    arrival: Option<f64>,
    queued: Option<(f64, f64)>,
    exec: Vec<(f64, f64)>,
    interference: Vec<(f64, f64)>,
    complete: Option<f64>,
    plan_cache: Option<&'static str>,
}

/// The deepest-preordered node with the largest own-time in the EXPLAIN
/// tree (first wins on ties — pre-order puts parents before children).
fn dominant_node(node: &ExplainNode) -> &ExplainNode {
    let mut best = node;
    let mut stack: Vec<&ExplainNode> = node.children.iter().rev().collect();
    while let Some(n) = stack.pop() {
        if n.time_secs > best.time_secs {
            best = n;
        }
        stack.extend(n.children.iter().rev());
    }
    best
}

/// Span duration in integer nanoseconds, quantized exactly as the metrics
/// pipeline quantizes timestamps — endpoint ticks subtract, so spans that
/// tile an interval telescope to the interval's tick length with no
/// rounding remainder.
fn span_ns(start: f64, end: f64) -> u64 {
    secs_to_ticks(end).saturating_sub(secs_to_ticks(start))
}

/// Build the slow-query digest for one serving session.
///
/// `trace` supplies the lifecycle events (enable tracing on the device
/// before the session), `metrics` supplies per-query class/SLO annotations
/// (and is where latency percentiles would come from), and `explains`
/// supplies optional per-query EXPLAIN reports for operator-level blame —
/// pass the pairs from [`crate::scheduler::QueryReport`] (`query`,
/// `explain`) for completed queries.
pub fn slow_queries(
    trace: &Trace,
    metrics: &MetricsSnapshot,
    explains: &[(QueryId, QueryExplain)],
) -> SlowQueryDigest {
    // Group lifecycle events by query id. Events without an id (rejected
    // before registration) never completed and carry no spans to
    // attribute.
    let mut accs: Vec<(QueryId, LifeAcc)> = Vec::new();
    for ev in trace.lifecycles() {
        let Some(q) = ev.query else { continue };
        let acc = match accs.iter_mut().find(|(id, _)| *id == q) {
            Some((_, acc)) => acc,
            None => {
                accs.push((q, LifeAcc::default()));
                &mut accs.last_mut().expect("just pushed").1
            }
        };
        match ev.stage {
            LifecycleStage::Arrival => acc.arrival = Some(ev.start),
            LifecycleStage::Queued => acc.queued = Some((ev.start, ev.end)),
            LifecycleStage::ExecSlice => acc.exec.push((ev.start, ev.end)),
            LifecycleStage::Interference => acc.interference.push((ev.start, ev.end)),
            LifecycleStage::Complete => acc.complete = Some(ev.end),
            LifecycleStage::PlanCacheHit => acc.plan_cache = Some("hit"),
            LifecycleStage::PlanCacheMiss => acc.plan_cache = Some("miss"),
            LifecycleStage::Admitted | LifecycleStage::Shed | LifecycleStage::Rejected => {}
        }
    }
    accs.sort_by_key(|(id, _)| *id);

    // Completed queries and their latencies; p99 by rank ceil(0.99 n).
    let mut completed: Vec<(QueryId, &LifeAcc, u64)> = Vec::new();
    for (id, acc) in &accs {
        if let (Some(arr), Some(done)) = (acc.arrival, acc.complete) {
            completed.push((*id, acc, span_ns(arr, done)));
        }
    }
    let p99_ns = if completed.is_empty() {
        None
    } else {
        let mut lat: Vec<u64> = completed.iter().map(|(_, _, l)| *l).collect();
        lat.sort_unstable();
        let rank = ((0.99 * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
        Some(lat[rank - 1])
    };

    let mut slow: Vec<SlowQueryReport> = Vec::new();
    for (id, acc, latency_ns) in &completed {
        let lifecycle = metrics.lifecycles.iter().find(|l| l.query == *id);
        let slo_ns = lifecycle.and_then(|l| l.slo_secs).map(secs_to_ticks);
        // Against an SLO a query is slow when it *misses* the target
        // (latency strictly above); against the p99 the rank statistic
        // itself is slow (latency at or above), so the digest is never
        // empty for a non-degenerate population.
        let is_slow = match (slo_ns, p99_ns) {
            (Some(slo), _) => *latency_ns > slo,
            (None, Some(p99)) => *latency_ns >= p99,
            (None, None) => false,
        };
        if !is_slow {
            continue;
        }
        let attribution = StageAttribution {
            queue_ns: acc.queued.map(|(s, e)| span_ns(s, e)).unwrap_or(0),
            planning_ns: 0,
            exec_ns: acc.exec.iter().map(|&(s, e)| span_ns(s, e)).sum(),
            interference_ns: acc.interference.iter().map(|&(s, e)| span_ns(s, e)).sum(),
        };
        let explain = explains.iter().find(|(q, _)| q == id).map(|(_, e)| e);
        let dominant_operator = explain.map(|e| {
            let node = dominant_node(&e.root);
            OperatorAttribution {
                label: node.label.clone(),
                time_secs: node.time_secs,
                bottleneck: node.roofline.summary(),
            }
        });
        let plan_cache = explain
            .and_then(|e| e.cache.as_ref())
            .map(|c| match c.outcome {
                CacheOutcome::Hit => "hit".to_string(),
                CacheOutcome::Miss => "miss".to_string(),
            })
            .or_else(|| acc.plan_cache.map(str::to_string));
        slow.push(SlowQueryReport {
            query: *id,
            class: lifecycle.and_then(|l| l.class.clone()),
            latency_ns: *latency_ns,
            slo_ns,
            attribution,
            dominant_stage: attribution.dominant().to_string(),
            dominant_operator,
            plan_cache,
        });
    }
    slow.sort_by(|a, b| b.latency_ns.cmp(&a.latency_ns).then(a.query.cmp(&b.query)));

    SlowQueryDigest {
        device: trace.device.clone(),
        queries: completed.len(),
        p99_ns,
        slow,
    }
}

fn fmt_secs(ns: u64) -> String {
    format!("{:.6}s", ns as f64 * SECONDS_SCALE)
}

impl SlowQueryDigest {
    /// Deterministic JSON rendering (field order fixed by the struct
    /// definitions) — what `--digest <path>` writes.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("digest serializes") + "\n"
    }

    /// Human-readable "why slow" report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "slow-query digest: device {}, {} completed quer{}, p99 {}\n",
            self.device,
            self.queries,
            if self.queries == 1 { "y" } else { "ies" },
            self.p99_ns.map(fmt_secs).unwrap_or_else(|| "n/a".into()),
        ));
        if self.slow.is_empty() {
            out.push_str("no slow queries\n");
            return out;
        }
        for r in &self.slow {
            let total = r.attribution.total_ns().max(1);
            let pct = |ns: u64| ns as f64 * 100.0 / total as f64;
            out.push_str(&format!(
                "q{}{}: latency {}{} — dominant stage: {}\n",
                r.query,
                r.class
                    .as_deref()
                    .map(|c| format!(" (class {c})"))
                    .unwrap_or_default(),
                fmt_secs(r.latency_ns),
                r.slo_ns
                    .map(|s| format!(" (slo {})", fmt_secs(s)))
                    .unwrap_or_default(),
                r.dominant_stage,
            ));
            out.push_str(&format!(
                "  queue {} ({:.1}%), planning {} ({:.1}%), exec {} ({:.1}%), interference {} ({:.1}%)\n",
                fmt_secs(r.attribution.queue_ns),
                pct(r.attribution.queue_ns),
                fmt_secs(r.attribution.planning_ns),
                pct(r.attribution.planning_ns),
                fmt_secs(r.attribution.exec_ns),
                pct(r.attribution.exec_ns),
                fmt_secs(r.attribution.interference_ns),
                pct(r.attribution.interference_ns),
            ));
            if let Some(op) = &r.dominant_operator {
                out.push_str(&format!(
                    "  dominant operator: {} ({:.6}s) — {}\n",
                    op.label, op.time_secs, op.bottleneck
                ));
            }
            if let Some(cache) = &r.plan_cache {
                out.push_str(&format!("  plan cache: {cache}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{self, OpenQuery, Policy, QuerySpec, ServingConfig};
    use crate::{Catalog, Plan, Table};
    use columnar::Column;
    use sim::{Device, SimTime};

    fn catalog(dev: &Device) -> Catalog {
        let n = 8192usize;
        let mut c = Catalog::new();
        c.insert(Table::new(
            "t",
            vec![(
                "k",
                Column::from_i64(dev, (0..n as i64).map(|i| i % 31).collect(), "k"),
            )],
        ));
        c
    }

    fn session(dev: &Device, slo: f64) -> Vec<scheduler::QueryReport> {
        let cat = catalog(dev);
        let arrivals: Vec<OpenQuery> = (0..4)
            .map(|i| {
                OpenQuery::new(
                    SimTime::from_secs(i as f64 * 1e-6),
                    "t1",
                    QuerySpec::new(Plan::scan("t").distinct("k")),
                )
            })
            .collect();
        scheduler::run_open_loop_with(
            dev,
            &cat,
            arrivals,
            Policy::RoundRobin,
            &ServingConfig::new().with_slo("t1", slo),
        )
    }

    #[test]
    fn attribution_partitions_latency_exactly() {
        let dev = Device::a100();
        dev.enable_tracing();
        dev.enable_metrics(SimTime::from_secs(1e-3));
        let reports = session(&dev, 0.0); // slo 0: every query is slow
        let trace = dev.take_trace().unwrap();
        let snap = dev.metrics_snapshot().unwrap();
        let explains: Vec<_> = reports
            .iter()
            .filter_map(|r| r.explain.clone().map(|e| (r.query, e)))
            .collect();
        let digest = slow_queries(&trace, &snap, &explains);
        assert_eq!(digest.queries, 4);
        assert_eq!(digest.slow.len(), 4, "slo 0 makes every query slow");
        for r in &digest.slow {
            assert_eq!(
                r.attribution.total_ns(),
                r.latency_ns,
                "stage attribution must partition q{}'s latency exactly",
                r.query
            );
            assert!(r.dominant_operator.is_some());
            assert_eq!(r.slo_ns, Some(0));
        }
        // Later arrivals wait on earlier tenants: the worst query is
        // queue- or interference-dominated, never pure exec.
        let worst = &digest.slow[0];
        assert!(worst.attribution.queue_ns + worst.attribution.interference_ns > 0);
    }

    #[test]
    fn p99_threshold_flags_the_tail_when_no_slo() {
        let dev = Device::a100();
        dev.enable_tracing();
        dev.enable_metrics(SimTime::from_secs(1e-3));
        let cat = catalog(&dev);
        let arrivals: Vec<OpenQuery> = (0..4)
            .map(|i| {
                OpenQuery::new(
                    SimTime::from_secs(i as f64 * 1e-6),
                    "t1",
                    QuerySpec::new(Plan::scan("t").distinct("k")),
                )
            })
            .collect();
        let _ = scheduler::run_open_loop(&dev, &cat, arrivals, Policy::RoundRobin);
        let trace = dev.take_trace().unwrap();
        let snap = dev.metrics_snapshot().unwrap();
        let digest = slow_queries(&trace, &snap, &[]);
        assert_eq!(digest.queries, 4);
        let p99 = digest.p99_ns.expect("population p99");
        assert!(!digest.slow.is_empty(), "p99 rank statistic is always slow");
        assert!(digest.slow.iter().all(|r| r.latency_ns >= p99));
        assert!(digest.slow.iter().all(|r| r.slo_ns.is_none()));
    }

    #[test]
    fn digest_is_pure_and_renderings_deterministic() {
        let dev = Device::a100();
        dev.enable_tracing();
        dev.enable_metrics(SimTime::from_secs(1e-3));
        let _ = session(&dev, 0.0);
        let trace = dev.take_trace().unwrap();
        let snap = dev.metrics_snapshot().unwrap();
        let a = slow_queries(&trace, &snap, &[]);
        let b = slow_queries(&trace, &snap, &[]);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render(), b.render());
        assert!(a.to_json().contains("\"dominant_stage\""));
        assert!(a.render().contains("dominant stage"));
    }
}
