//! Named-column tables: the engine-facing view of [`columnar`] data.

use crate::EngineError;
use columnar::Column;

/// A table: an ordered list of named columns of equal length.
pub struct Table {
    name: String,
    columns: Vec<(String, Column)>,
}

impl Table {
    /// Assemble a table; panics on ragged columns (a construction bug, not
    /// a plan error).
    pub fn new(name: impl Into<String>, columns: Vec<(&str, Column)>) -> Self {
        let name = name.into();
        let columns: Vec<(String, Column)> = columns
            .into_iter()
            .map(|(n, c)| (n.to_string(), c))
            .collect();
        if let Some((_, first)) = columns.first() {
            let n = first.len();
            assert!(
                columns.iter().all(|(_, c)| c.len() == n),
                "ragged table '{name}'"
            );
        }
        Table { name, columns }
    }

    /// Assemble from already-owned `(String, Column)` pairs (executor use).
    pub fn from_columns(name: impl Into<String>, columns: Vec<(String, Column)>) -> Self {
        let name = name.into();
        if let Some((_, first)) = columns.first() {
            let n = first.len();
            assert!(
                columns.iter().all(|(_, c)| c.len() == n),
                "ragged table '{name}'"
            );
        }
        Table { name, columns }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows (0 for a column-less table).
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, |(_, c)| c.len())
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column names in schema order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Look a column up by name.
    pub fn column(&self, name: &str) -> Result<&Column, EngineError> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
            .ok_or_else(|| EngineError::UnknownColumn {
                column: name.to_string(),
                available: self.column_names(),
            })
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize, EngineError> {
        self.columns
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| EngineError::UnknownColumn {
                column: name.to_string(),
                available: self.column_names(),
            })
    }

    /// All columns with names, in order.
    pub fn columns(&self) -> &[(String, Column)] {
        &self.columns
    }

    /// Consume into parts.
    pub fn into_columns(self) -> Vec<(String, Column)> {
        self.columns
    }

    /// Rows widened to `i64`, sorted — the order-insensitive comparison form
    /// used by tests.
    pub fn rows_sorted(&self) -> Vec<Vec<i64>> {
        let mut rows: Vec<Vec<i64>> = (0..self.num_rows())
            .map(|i| self.columns.iter().map(|(_, c)| c.value(i)).collect())
            .collect();
        rows.sort_unstable();
        rows
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.name)
            .field("rows", &self.num_rows())
            .field("columns", &self.column_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Device;

    #[test]
    fn lookup_and_shape() {
        let dev = Device::a100();
        let t = Table::new(
            "t",
            vec![
                ("a", Column::from_i32(&dev, vec![1, 2], "a")),
                ("b", Column::from_i64(&dev, vec![3, 4], "b")),
            ],
        );
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.column("b").unwrap().value(1), 4);
        assert_eq!(t.column_index("a").unwrap(), 0);
        assert!(matches!(
            t.column("zzz"),
            Err(EngineError::UnknownColumn { .. })
        ));
        assert_eq!(t.rows_sorted(), vec![vec![1, 3], vec![2, 4]]);
    }

    #[test]
    fn empty_table() {
        let t = Table::new("t", vec![]);
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_columns(), 0);
    }
}
