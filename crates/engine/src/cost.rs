//! A coarse plan-cost model for admission control and cost-ordered
//! queueing.
//!
//! The serving layer needs two numbers *before* a query runs: a predicted
//! execution time (the Shortest-Job-First rank) and a predicted peak
//! device-memory footprint (the admission gate — a tenant whose floor
//! already exceeds its budget is rejected up front instead of unwinding
//! mid-flight on `BudgetExceeded`).
//!
//! The model is a single catalog-statistics walk over the logical
//! [`Plan`]: row counts come from [`Catalog`] schemas, widths are the flat
//! 8 bytes/column the columnar layer stores, and time is bytes-moved over
//! the device's effective bandwidth plus a per-node launch overhead. It
//! deliberately ignores everything the adaptive planner samples at run
//! time (match ratios, skew, L2 residency) — those need the data; this
//! needs only the catalog. Absolute accuracy is not the point: SJF only
//! needs the *relative* order of predicted times to be consistent, and the
//! property suite (`tests/admission_invariants.rs`) holds the scheduler to
//! exactly that contract.

use crate::exec::Catalog;
use crate::{EngineError, Plan};
use sim::DeviceConfig;

/// Bytes per stored column value (the columnar layer is fixed-width).
const COL_BYTES: u64 = 8;

/// Assumed filter selectivity when no statistics say otherwise.
const FILTER_SELECTIVITY: f64 = 0.33;

/// What the cost model predicts for one plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Predicted execution time, seconds. Drives SJF ordering; only the
    /// relative ranking across plans is meaningful.
    pub secs: f64,
    /// Predicted peak device-memory footprint, bytes: the largest single
    /// materialization the plan will hold (a floor, not a ceiling — the
    /// admission gate rejects only queries that cannot possibly fit).
    pub peak_bytes: u64,
}

/// Rows and column count flowing out of a subplan, plus accumulated cost.
struct Walk {
    rows: f64,
    cols: u64,
}

/// Estimate `plan`'s execution time and peak memory from catalog
/// statistics alone. Fails only on unknown tables/columns, mirroring what
/// binding would report anyway.
pub fn estimate(
    cfg: &DeviceConfig,
    catalog: &Catalog,
    plan: &Plan,
) -> Result<CostEstimate, EngineError> {
    let mut acc = Acc {
        bytes_moved: 0.0,
        nodes: 0,
        peak_bytes: 0,
    };
    walk(catalog, plan, &mut acc)?;
    let bw = (cfg.mem_bandwidth * cfg.bandwidth_efficiency).max(1.0);
    let secs = acc.bytes_moved / bw + acc.nodes as f64 * cfg.kernel_launch_overhead;
    Ok(CostEstimate {
        secs,
        peak_bytes: acc.peak_bytes,
    })
}

struct Acc {
    bytes_moved: f64,
    nodes: usize,
    peak_bytes: u64,
}

impl Acc {
    /// Charge one node: `traffic` bytes of DRAM movement and a
    /// materialization of `rows x cols` values held at once.
    fn charge(&mut self, traffic: f64, rows: f64, cols: u64) {
        self.bytes_moved += traffic;
        self.nodes += 1;
        let held = (rows.max(0.0) * cols as f64 * COL_BYTES as f64) as u64;
        self.peak_bytes = self.peak_bytes.max(held);
    }
}

fn walk(catalog: &Catalog, plan: &Plan, acc: &mut Acc) -> Result<Walk, EngineError> {
    match plan {
        Plan::Scan { table } => {
            let schema = catalog.schema(table)?;
            let rows = schema.rows as f64;
            let cols = schema.columns.len().max(1) as u64;
            // Scans alias catalog columns; the first consumer pays the
            // read. Charge a nominal touch so an all-scan plan still
            // orders by table size.
            acc.charge(rows * cols as f64 * COL_BYTES as f64, rows, cols);
            Ok(Walk { rows, cols })
        }
        Plan::Filter { input, .. } => {
            let w = walk(catalog, input, acc)?;
            let out = w.rows * FILTER_SELECTIVITY;
            // Read the predicate column, write the selection, gather
            // survivors.
            acc.charge(
                (w.rows + out * w.cols as f64) * COL_BYTES as f64,
                out,
                w.cols,
            );
            Ok(Walk { rows: out, ..w })
        }
        Plan::Project { input, exprs, .. } => {
            let w = walk(catalog, input, acc)?;
            let cols = exprs.len().max(1) as u64;
            acc.charge(w.rows * cols as f64 * COL_BYTES as f64, w.rows, cols);
            Ok(Walk { rows: w.rows, cols })
        }
        Plan::Join { left, right, .. } => {
            let l = walk(catalog, left, acc)?;
            let r = walk(catalog, right, acc)?;
            // FK-join default: one build match per probe row. Peak holds
            // the build table (hash table ≈ 2x the key column) plus the
            // widest output materialization.
            let out_rows = r.rows;
            let out_cols = l.cols + r.cols;
            let build = l.rows * 2.0 * COL_BYTES as f64;
            let probe = r.rows * COL_BYTES as f64;
            let emit = out_rows * out_cols as f64 * COL_BYTES as f64;
            acc.charge(build + probe + emit, l.rows * 2.0 + out_rows, out_cols);
            Ok(Walk {
                rows: out_rows,
                cols: out_cols,
            })
        }
        Plan::Sort { input, limit, .. } => {
            let w = walk(catalog, input, acc)?;
            // Key sort + permutation apply: roughly three passes over the
            // relation.
            acc.charge(
                3.0 * w.rows * w.cols as f64 * COL_BYTES as f64,
                w.rows,
                w.cols,
            );
            let rows = match limit {
                Some(n) => w.rows.min(*n as f64),
                None => w.rows,
            };
            Ok(Walk { rows, ..w })
        }
        Plan::Limit { input, count } => {
            let w = walk(catalog, input, acc)?;
            let rows = w.rows.min(*count as f64);
            acc.charge(rows * w.cols as f64 * COL_BYTES as f64, rows, w.cols);
            Ok(Walk { rows, ..w })
        }
        Plan::Distinct { input, .. } => {
            let w = walk(catalog, input, acc)?;
            let groups = est_groups(w.rows);
            acc.charge((w.rows + groups) * COL_BYTES as f64, w.rows + groups, 1);
            Ok(Walk {
                rows: groups,
                cols: 1,
            })
        }
        Plan::Aggregate { input, aggs, .. } => {
            let w = walk(catalog, input, acc)?;
            let groups = est_groups(w.rows);
            let cols = (1 + aggs.len()) as u64;
            // Read key + payloads once, write one row per group.
            acc.charge(
                (w.rows * cols as f64 + groups * cols as f64) * COL_BYTES as f64,
                w.rows + groups,
                cols,
            );
            Ok(Walk { rows: groups, cols })
        }
    }
}

/// Distinct-group estimate with no statistics: sub-linear in the input so
/// aggregation-heavy plans still rank by input size.
fn est_groups(rows: f64) -> f64 {
    rows.max(0.0).sqrt().max(1.0).min(rows.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggSpec, Expr, Table};
    use columnar::Column;
    use groupby::AggFn;
    use sim::Device;

    fn catalog(dev: &Device) -> Catalog {
        let mut c = Catalog::new();
        let small: Vec<i64> = (0..100).collect();
        let big: Vec<i64> = (0..100_000).map(|i| i % 100).collect();
        c.insert(Table::new(
            "small",
            vec![("k", Column::from_i64(dev, small, "k"))],
        ));
        c.insert(Table::new(
            "big",
            vec![
                ("fk", Column::from_i64(dev, big.clone(), "fk")),
                ("v", Column::from_i64(dev, big, "v")),
            ],
        ));
        c
    }

    #[test]
    fn bigger_inputs_predict_longer_times() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        let small = estimate(dev.config(), &cat, &Plan::scan("small")).unwrap();
        let big = estimate(dev.config(), &cat, &Plan::scan("big")).unwrap();
        assert!(big.secs > small.secs);
        assert!(big.peak_bytes > small.peak_bytes);
    }

    #[test]
    fn deeper_plans_cost_more_than_their_inputs() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        let scan = estimate(dev.config(), &cat, &Plan::scan("big")).unwrap();
        let plan = Plan::scan("big")
            .filter(Expr::col("v").lt(Expr::lit(50)))
            .join(Plan::scan("small"), "fk", "k")
            .aggregate("k", vec![AggSpec::new(AggFn::Sum, "v", "s")]);
        let full = estimate(dev.config(), &cat, &plan).unwrap();
        assert!(full.secs > scan.secs);
        assert!(full.peak_bytes >= scan.peak_bytes);
    }

    #[test]
    fn unknown_tables_are_reported() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        let err = estimate(dev.config(), &cat, &Plan::scan("missing")).unwrap_err();
        assert!(matches!(err, EngineError::UnknownTable(_)));
    }
}
