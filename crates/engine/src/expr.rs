//! Column-at-a-time scalar expressions.
//!
//! Expressions evaluate over a [`Table`] into either a value column
//! (widened to `i64`) or, for predicates, a selection bitmap. Every
//! evaluation charges one streaming kernel over its inputs — the
//! vectorized-execution cost shape of a columnar GPU engine.

use crate::{EngineError, Table};
use columnar::Column;
use primitives::STREAM_WARP_INSTR;
use serde::{Deserialize, Serialize};
use sim::{Device, DeviceBuffer};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl CmpOp {
    fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Ge => a >= b,
            CmpOp::Gt => a > b,
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Expr {
    /// A column reference by name.
    Col(String),
    /// A literal.
    Lit(i64),
    /// Arithmetic: `lhs + rhs`.
    Add(Box<Expr>, Box<Expr>),
    /// Arithmetic: `lhs - rhs`.
    Sub(Box<Expr>, Box<Expr>),
    /// Arithmetic: `lhs * rhs`.
    Mul(Box<Expr>, Box<Expr>),
    /// Arithmetic: `lhs / rhs` (truncating; division by zero yields 0, the
    /// GPU-safe convention — no lane ever faults).
    Div(Box<Expr>, Box<Expr>),
    /// Arithmetic: `lhs % rhs` (remainder; modulo zero yields 0). Together
    /// with [`Expr::Div`] this is how packed composite keys unpack:
    /// `(key / 2^shift) % 2^width`.
    Mod(Box<Expr>, Box<Expr>),
    /// Comparison producing a predicate.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Pack two 32-bit-ranged values into one 64-bit key:
    /// `(hi << 32) | (lo & 0xFFFF_FFFF)` — the standard composite-join-key
    /// encoding (both TPC-H and TPC-DS join on multi-column keys in places).
    Pack(Box<Expr>, Box<Expr>),
    /// Conjunction of predicates.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction of predicates.
    Or(Box<Expr>, Box<Expr>),
}

// The builder methods deliberately mirror operator names (`add`, `sub`,
// `mul`): they build AST nodes rather than computing, like other query DSLs.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Literal value.
    pub fn lit(v: i64) -> Expr {
        Expr::Lit(v)
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `self / rhs` (truncating; `x / 0 == 0`).
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }

    /// `self % rhs` (remainder; `x % 0 == 0`).
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::Mod(Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }

    /// `self == rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs))
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
    }

    /// Composite key: `(self << 32) | (rhs & 0xFFFF_FFFF)`. Lossless for any
    /// pair of 32-bit-ranged values; join two tables on multi-column keys by
    /// projecting this on both sides first.
    pub fn pack(self, rhs: Expr) -> Expr {
        Expr::Pack(Box::new(self), Box::new(rhs))
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// All column names the expression references.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Col(n) => out.push(n),
            Expr::Lit(_) => {}
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b)
            | Expr::Pack(a, b)
            | Expr::Cmp(_, a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
        }
    }

    /// Evaluate to a value column (widened to `i64`). Predicates evaluate
    /// to 0/1. Charges one streaming kernel per expression node over the
    /// table's rows.
    pub fn eval(&self, dev: &Device, input: &Table) -> Result<Column, EngineError> {
        let vals = self.eval_values(input)?;
        self.charge(dev, input);
        Ok(Column::from_i64(dev, vals, "expr.out"))
    }

    /// Evaluate as a predicate into a host selection mask (oracle/test
    /// helper). Charges the predicate kernel but not the mask write —
    /// operators use [`Expr::eval_mask_device`], which accounts for both.
    pub fn eval_mask(&self, dev: &Device, input: &Table) -> Result<Vec<bool>, EngineError> {
        let vals = self.eval_values(input)?;
        self.charge(dev, input);
        Ok(vals.into_iter().map(|v| v != 0).collect())
    }

    /// Evaluate as a predicate into a device byte mask (1 byte per row),
    /// charging one fused kernel: every referenced column streamed in once,
    /// the mask streamed out once. Feed the result to
    /// [`primitives::compact_mask`] for the selection vector.
    pub fn eval_mask_device(
        &self,
        dev: &Device,
        input: &Table,
    ) -> Result<DeviceBuffer<u8>, EngineError> {
        let vals = self.eval_values(input)?;
        let n = input.num_rows() as u64;
        // Dedupe references: a fused AND of several predicates may name the
        // same base column more than once, but the kernel loads it once.
        let mut refs = self.columns();
        refs.sort_unstable();
        refs.dedup();
        let mut read = 0u64;
        for c in refs {
            if let Ok(col) = input.column(c) {
                read += col.size_bytes();
            }
        }
        dev.kernel("expr.mask")
            .items(n, STREAM_WARP_INSTR)
            .seq_read_bytes(read)
            .seq_write_bytes(n)
            .launch();
        Ok(dev.upload(
            vals.into_iter().map(|v| (v != 0) as u8).collect(),
            "expr.mask",
        ))
    }

    /// Rewrite every column reference through a substitution environment:
    /// `Col(name)` becomes `env[name]`. This is how the fusion pass pushes
    /// predicates and projections below intervening projections — the
    /// resulting expression reads directly from the base schema. References
    /// absent from the environment are reported as [`EngineError::
    /// UnknownColumn`] with the environment's names, exactly the error the
    /// unfused Project-then-Filter execution would raise at runtime.
    pub fn substitute(&self, env: &[(String, Expr)]) -> Result<Expr, EngineError> {
        let lookup = |name: &str| -> Result<Expr, EngineError> {
            env.iter()
                .find(|(n, _)| n == name)
                .map(|(_, e)| e.clone())
                .ok_or_else(|| EngineError::UnknownColumn {
                    column: name.to_string(),
                    available: env.iter().map(|(n, _)| n.clone()).collect(),
                })
        };
        Ok(match self {
            Expr::Col(n) => lookup(n)?,
            Expr::Lit(v) => Expr::Lit(*v),
            Expr::Add(a, b) => {
                Expr::Add(Box::new(a.substitute(env)?), Box::new(b.substitute(env)?))
            }
            Expr::Sub(a, b) => {
                Expr::Sub(Box::new(a.substitute(env)?), Box::new(b.substitute(env)?))
            }
            Expr::Mul(a, b) => {
                Expr::Mul(Box::new(a.substitute(env)?), Box::new(b.substitute(env)?))
            }
            Expr::Div(a, b) => {
                Expr::Div(Box::new(a.substitute(env)?), Box::new(b.substitute(env)?))
            }
            Expr::Mod(a, b) => {
                Expr::Mod(Box::new(a.substitute(env)?), Box::new(b.substitute(env)?))
            }
            Expr::Pack(a, b) => {
                Expr::Pack(Box::new(a.substitute(env)?), Box::new(b.substitute(env)?))
            }
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.substitute(env)?),
                Box::new(b.substitute(env)?),
            ),
            Expr::And(a, b) => {
                Expr::And(Box::new(a.substitute(env)?), Box::new(b.substitute(env)?))
            }
            Expr::Or(a, b) => Expr::Or(Box::new(a.substitute(env)?), Box::new(b.substitute(env)?)),
        })
    }

    fn charge(&self, dev: &Device, input: &Table) {
        // One fused kernel: read every referenced column once, write the
        // result once.
        let n = input.num_rows() as u64;
        let mut read = 0u64;
        for c in self.columns() {
            if let Ok(col) = input.column(c) {
                read += col.size_bytes();
            }
        }
        dev.kernel("expr.eval")
            .items(n, STREAM_WARP_INSTR)
            .seq_read_bytes(read)
            .seq_write_bytes(n * 8)
            .launch();
    }

    fn eval_values(&self, input: &Table) -> Result<Vec<i64>, EngineError> {
        let n = input.num_rows();
        Ok(match self {
            Expr::Col(name) => input.column(name)?.to_vec_i64(),
            Expr::Lit(v) => vec![*v; n],
            Expr::Add(a, b) => zip(a.eval_values(input)?, b.eval_values(input)?, |x, y| {
                x.wrapping_add(y)
            }),
            Expr::Sub(a, b) => zip(a.eval_values(input)?, b.eval_values(input)?, |x, y| {
                x.wrapping_sub(y)
            }),
            Expr::Mul(a, b) => zip(a.eval_values(input)?, b.eval_values(input)?, |x, y| {
                x.wrapping_mul(y)
            }),
            Expr::Div(a, b) => zip(a.eval_values(input)?, b.eval_values(input)?, |x, y| {
                if y == 0 {
                    0
                } else {
                    x.wrapping_div(y)
                }
            }),
            Expr::Mod(a, b) => zip(a.eval_values(input)?, b.eval_values(input)?, |x, y| {
                if y == 0 {
                    0
                } else {
                    x.wrapping_rem(y)
                }
            }),
            Expr::Pack(a, b) => zip(a.eval_values(input)?, b.eval_values(input)?, |x, y| {
                (x << 32) | (y & 0xFFFF_FFFF)
            }),
            Expr::Cmp(op, a, b) => zip(a.eval_values(input)?, b.eval_values(input)?, |x, y| {
                op.apply(x, y) as i64
            }),
            Expr::And(a, b) => zip(a.eval_values(input)?, b.eval_values(input)?, |x, y| {
                ((x != 0) && (y != 0)) as i64
            }),
            Expr::Or(a, b) => zip(a.eval_values(input)?, b.eval_values(input)?, |x, y| {
                ((x != 0) || (y != 0)) as i64
            }),
        })
    }
}

fn zip(a: Vec<i64>, b: Vec<i64>, f: impl Fn(i64, i64) -> i64) -> Vec<i64> {
    a.into_iter().zip(b).map(|(x, y)| f(x, y)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Device;

    fn table(dev: &Device) -> Table {
        Table::new(
            "t",
            vec![
                ("a", Column::from_i32(dev, vec![1, 2, 3, 4], "a")),
                ("b", Column::from_i64(dev, vec![10, 20, 30, 40], "b")),
            ],
        )
    }

    #[test]
    fn arithmetic_and_comparison() {
        let dev = Device::a100();
        let t = table(&dev);
        let e = Expr::col("a").mul(Expr::lit(10)).add(Expr::col("b"));
        assert_eq!(e.eval(&dev, &t).unwrap().to_vec_i64(), vec![20, 40, 60, 80]);
        let p = Expr::col("a")
            .ge(Expr::lit(2))
            .and(Expr::col("b").lt(Expr::lit(40)));
        assert_eq!(
            p.eval_mask(&dev, &t).unwrap(),
            vec![false, true, true, false]
        );
    }

    #[test]
    fn or_and_ne() {
        let dev = Device::a100();
        let t = table(&dev);
        let p = Expr::col("a")
            .eq(Expr::lit(1))
            .or(Expr::col("a").ne(Expr::lit(3)));
        assert_eq!(
            p.eval_mask(&dev, &t).unwrap(),
            vec![true, true, false, true]
        );
    }

    #[test]
    fn unknown_column_is_an_error() {
        let dev = Device::a100();
        let t = table(&dev);
        assert!(matches!(
            Expr::col("zzz").eval(&dev, &t),
            Err(EngineError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn pack_is_lossless_for_32_bit_pairs() {
        let dev = Device::a100();
        let t = Table::new(
            "t",
            vec![
                ("hi", Column::from_i32(&dev, vec![0, 1, -1, i32::MAX], "hi")),
                ("lo", Column::from_i32(&dev, vec![7, -7, 0, i32::MIN], "lo")),
            ],
        );
        let packed = Expr::col("hi")
            .pack(Expr::col("lo"))
            .eval(&dev, &t)
            .unwrap();
        for i in 0..4 {
            let v = packed.value(i);
            let hi = (v >> 32) as i32;
            let lo = (v & 0xFFFF_FFFF) as u32 as i32;
            assert_eq!(hi as i64, t.column("hi").unwrap().value(i));
            assert_eq!(lo as i64, t.column("lo").unwrap().value(i));
        }
        // Distinct pairs stay distinct.
        let vals = packed.to_vec_i64();
        let set: std::collections::HashSet<i64> = vals.iter().copied().collect();
        assert_eq!(set.len(), vals.len());
    }

    #[test]
    fn div_mod_unpack_a_packed_key() {
        let dev = Device::a100();
        let t = Table::new(
            "t",
            vec![("v", Column::from_i64(&dev, vec![7, 0, -9, 100], "v"))],
        );
        let q = Expr::col("v").div(Expr::lit(4)).eval(&dev, &t).unwrap();
        assert_eq!(q.to_vec_i64(), vec![1, 0, -2, 25]);
        let r = Expr::col("v").rem(Expr::lit(4)).eval(&dev, &t).unwrap();
        assert_eq!(r.to_vec_i64(), vec![3, 0, -1, 0]);
        // Division / modulo by zero are total: every lane yields 0.
        let z = Expr::col("v").div(Expr::lit(0)).eval(&dev, &t).unwrap();
        assert_eq!(z.to_vec_i64(), vec![0; 4]);
        let z = Expr::col("v").rem(Expr::lit(0)).eval(&dev, &t).unwrap();
        assert_eq!(z.to_vec_i64(), vec![0; 4]);
        // The composite-key identity: c == (pack(c) / 2^s) % 2^w for
        // in-range values.
        let packed = Expr::col("v")
            .add(Expr::lit(9)) // shift into [0, 109]
            .mul(Expr::lit(1 << 8))
            .add(Expr::lit(5));
        let unpacked = packed
            .div(Expr::lit(1 << 8))
            .rem(Expr::lit(1 << 7))
            .sub(Expr::lit(9));
        assert_eq!(
            unpacked.eval(&dev, &t).unwrap().to_vec_i64(),
            t.column("v").unwrap().to_vec_i64()
        );
    }

    #[test]
    fn columns_collects_references() {
        let e = Expr::col("x").add(Expr::col("y").mul(Expr::lit(2)));
        assert_eq!(e.columns(), vec!["x", "y"]);
    }

    #[test]
    fn mask_device_matches_host_mask_and_charges_write() {
        let dev = Device::a100();
        let t = table(&dev);
        let p = Expr::col("a").ge(Expr::lit(2));
        let host = p.eval_mask(&dev, &t).unwrap();
        dev.reset_stats();
        let mask = p.eval_mask_device(&dev, &t).unwrap();
        assert_eq!(
            mask.iter().map(|&b| b != 0).collect::<Vec<_>>(),
            host,
            "device mask disagrees with host oracle"
        );
        let c = dev.counters();
        assert_eq!(c.kernel_launches, 1);
        // The 1-byte-per-row mask write is part of the accounted traffic.
        assert!(c.dram_bytes() >= t.num_rows() as u64);
    }

    #[test]
    fn substitute_pushes_references_through_projections() {
        let env = vec![
            ("x".to_string(), Expr::col("a").add(Expr::col("b"))),
            ("y".to_string(), Expr::lit(3)),
        ];
        let e = Expr::col("x").mul(Expr::col("y")).substitute(&env).unwrap();
        assert_eq!(e.columns(), vec!["a", "b"]);
        let missing = Expr::col("z").substitute(&env);
        match missing {
            Err(EngineError::UnknownColumn { column, available }) => {
                assert_eq!(column, "z");
                assert_eq!(available, vec!["x".to_string(), "y".to_string()]);
            }
            other => panic!("expected UnknownColumn, got {other:?}"),
        }
    }

    #[test]
    fn evaluation_charges_device_time() {
        let dev = Device::a100();
        let t = table(&dev);
        let before = dev.elapsed();
        let _ = Expr::col("a").add(Expr::lit(1)).eval(&dev, &t).unwrap();
        assert!(dev.elapsed() > before);
    }
}
