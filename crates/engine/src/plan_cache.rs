//! Plan caching for the serving path: steady-state traffic skips planning.
//!
//! The adaptive planner pays two costs per query that repeat traffic does
//! not need to pay twice: lowering the logical plan to a physical operator
//! tree, and running the statistics-sampling kernels that feed the
//! decision trees (match ratio and skew for joins, distinct count and skew
//! for aggregations). A [`PlanCache`] keys both on the plan's normalized
//! shape *and* the catalog version — a statistics refresh or reload bumps
//! [`Catalog::version`] and silently invalidates every entry compiled
//! against stale statistics.
//!
//! **Byte-identity contract.** A cache hit replays the recorded sampling
//! observations positionally into the same operator tree, so its output
//! table, `OpStats`, and EXPLAIN tree are byte-identical to the recording
//! (cold) run. The cold run itself executes its sampling kernels inside
//! [`sim::Device::with_planning`] — charge-free on every clock — which is
//! what makes the two runs indistinguishable to every observer. The
//! property suite (`tests/admission_invariants.rs`) holds the cache to
//! exactly this contract.
//!
//! Hit, miss and eviction counts are exported through the device metrics
//! registry (`plan_cache_hits_total`, `plan_cache_misses_total`,
//! `plan_cache_evictions_total`) and each execution reports its
//! [`PlanCacheInfo`], which [`crate::explain::QueryExplain::with_cache`]
//! renders as cache provenance.

use crate::exec::{Catalog, QueryOutput};
use crate::op::{compile, run_operator, BoxOp, ExecContext, SiteSample};
use crate::{EngineError, Plan};
use serde::Serialize;
use sim::Device;
use std::collections::HashMap;

/// Whether an execution was served from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CacheOutcome {
    /// Compiled plan and sampled statistics reused; sampling skipped.
    Hit,
    /// Cold: compiled and sampled fresh, then cached.
    Miss,
}

/// Cache provenance for one execution, rendered into EXPLAIN.
#[derive(Debug, Clone, Serialize)]
pub struct PlanCacheInfo {
    /// Hit or miss.
    pub outcome: CacheOutcome,
    /// The plan-shape fingerprint the lookup used.
    pub fingerprint: u64,
    /// The catalog version the entry is valid for.
    pub catalog_version: u64,
}

/// FNV-1a 64-bit over a byte string: stable, dependency-free, and good
/// enough for shape fingerprints (collisions only cost a wrong-entry
/// *replay*, which the positional type check turns into a live-sampling
/// fallback, not a wrong answer).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of a logical plan's shape: the debug rendering is a
/// deterministic, total serialization of the tree (tables, columns,
/// predicates, pinned algorithms), so equal plans — however they were
/// built — fingerprint equal.
pub fn plan_fingerprint(plan: &Plan) -> u64 {
    fnv1a(format!("{plan:?}").as_bytes())
}

struct Entry {
    op: BoxOp,
    samples: Vec<SiteSample>,
}

/// An LRU cache of compiled physical plans plus their recorded sampling
/// observations, keyed by `(fingerprint, catalog version)`.
pub struct PlanCache {
    capacity: usize,
    entries: HashMap<(u64, u64), Entry>,
    /// Keys in recency order, most recent last.
    recency: Vec<(u64, u64)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// A cache holding at most `capacity` entries (at least one).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            recency: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Cached entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime `(hits, misses, evictions)`.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Execute `plan`, fingerprinting its shape for the cache key.
    pub fn execute(
        &mut self,
        dev: &Device,
        catalog: &Catalog,
        plan: &Plan,
    ) -> Result<(QueryOutput, PlanCacheInfo), EngineError> {
        self.execute_keyed(plan_fingerprint(plan), dev, catalog, plan)
    }

    /// Execute `plan` under a caller-supplied fingerprint — the SQL
    /// frontend passes `sql::fingerprint(text)` here so textual variants
    /// of one query (whitespace, case, comments) share an entry without
    /// re-planning.
    pub fn execute_keyed(
        &mut self,
        fingerprint: u64,
        dev: &Device,
        catalog: &Catalog,
        plan: &Plan,
    ) -> Result<(QueryOutput, PlanCacheInfo), EngineError> {
        let key = (fingerprint, catalog.version());
        let info = |outcome| PlanCacheInfo {
            outcome,
            fingerprint,
            catalog_version: catalog.version(),
        };
        if self.entries.contains_key(&key) {
            self.hits += 1;
            dev.with_metrics(|reg| {
                reg.counter_add("plan_cache_hits_total", Vec::new(), 1);
            });
            if dev.tracing_enabled() {
                let now = dev.elapsed();
                dev.trace_lifecycle(dev.query_id(), sim::LifecycleStage::PlanCacheHit, now, now);
            }
            self.touch(key);
            let entry = &self.entries[&key];
            let ctx = ExecContext::with_replay(dev, Some(catalog), entry.samples.clone());
            let (table, stats) = run_operator(&ctx, entry.op.as_ref())?;
            return Ok((QueryOutput { table, stats }, info(CacheOutcome::Hit)));
        }
        self.misses += 1;
        dev.with_metrics(|reg| {
            reg.counter_add("plan_cache_misses_total", Vec::new(), 1);
        });
        if dev.tracing_enabled() {
            let now = dev.elapsed();
            dev.trace_lifecycle(dev.query_id(), sim::LifecycleStage::PlanCacheMiss, now, now);
        }
        let op = compile(plan);
        let ctx = ExecContext::with_recording(dev, Some(catalog));
        let (table, stats) = run_operator(&ctx, op.as_ref())?;
        let samples = ctx.take_samples();
        self.insert(key, Entry { op, samples }, dev);
        Ok((QueryOutput { table, stats }, info(CacheOutcome::Miss)))
    }

    fn touch(&mut self, key: (u64, u64)) {
        if let Some(pos) = self.recency.iter().position(|&k| k == key) {
            self.recency.remove(pos);
        }
        self.recency.push(key);
    }

    fn insert(&mut self, key: (u64, u64), entry: Entry, dev: &Device) {
        if !self.entries.contains_key(&key) && self.entries.len() == self.capacity {
            let victim = self.recency.remove(0);
            self.entries.remove(&victim);
            self.evictions += 1;
            dev.with_metrics(|reg| {
                reg.counter_add("plan_cache_evictions_total", Vec::new(), 1);
            });
        }
        self.entries.insert(key, entry);
        self.touch(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute, AggSpec, Expr, Table};
    use columnar::Column;
    use groupby::AggFn;

    fn catalog(dev: &Device) -> Catalog {
        let n = 4096usize;
        let mut c = Catalog::new();
        c.insert(Table::new(
            "facts",
            vec![
                (
                    "k",
                    Column::from_i64(dev, (0..n as i64).map(|i| i % 97).collect(), "k"),
                ),
                ("v", Column::from_i64(dev, (0..n as i64).collect(), "v")),
            ],
        ));
        c
    }

    fn plan() -> Plan {
        Plan::scan("facts")
            .filter(Expr::col("v").lt(Expr::lit(3000)))
            .aggregate("k", vec![AggSpec::new(AggFn::Sum, "v", "s")])
    }

    #[test]
    fn equal_plans_fingerprint_equal_and_different_plans_differ() {
        assert_eq!(plan_fingerprint(&plan()), plan_fingerprint(&plan()));
        assert_ne!(
            plan_fingerprint(&plan()),
            plan_fingerprint(&Plan::scan("facts"))
        );
    }

    #[test]
    fn hit_matches_cold_run_byte_for_byte() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        let mut cache = PlanCache::new(4);
        // Compare cold and hot from identical device state (two fresh
        // devices with identically built catalogs — the cache key is
        // device-independent). Back-to-back runs on one device differ by
        // real carryover: warm L2, leftover allocations, and clock offset
        // (solo OpStats subtract absolute device clocks, so a different
        // start offset shifts float rounding at the last ulp).
        let (cold, i0) = cache.execute(&dev, &cat, &plan()).unwrap();
        let dev2 = Device::a100();
        let cat2 = catalog(&dev2);
        let (hot, i1) = cache.execute(&dev2, &cat2, &plan()).unwrap();
        assert_eq!(i0.outcome, CacheOutcome::Miss);
        assert_eq!(i1.outcome, CacheOutcome::Hit);
        assert_eq!(cold.table.rows_sorted(), hot.table.rows_sorted());
        assert_eq!(cold.table.column_names(), hot.table.column_names());
        assert_eq!(format!("{:?}", cold.stats), format!("{:?}", hot.stats));
        assert_eq!(cache.stats(), (1, 1, 0));
    }

    #[test]
    fn cached_run_matches_plain_execute_results() {
        // The cache must change performance accounting only, never answers:
        // same result rows as the ordinary uncached path.
        let dev = Device::a100();
        let cat = catalog(&dev);
        let mut cache = PlanCache::new(4);
        let plain = execute(&dev, &cat, &plan()).unwrap();
        let (cached, _) = cache.execute(&dev, &cat, &plan()).unwrap();
        assert_eq!(plain.table.rows_sorted(), cached.table.rows_sorted());
    }

    #[test]
    fn catalog_version_bump_invalidates() {
        let dev = Device::a100();
        let mut cat = catalog(&dev);
        let mut cache = PlanCache::new(4);
        let (_, i0) = cache.execute(&dev, &cat, &plan()).unwrap();
        cat.insert(Table::new(
            "other",
            vec![("x", Column::from_i64(&dev, vec![1], "x"))],
        ));
        let (_, i1) = cache.execute(&dev, &cat, &plan()).unwrap();
        assert_eq!(i0.outcome, CacheOutcome::Miss);
        assert_eq!(i1.outcome, CacheOutcome::Miss);
        assert_ne!(i0.catalog_version, i1.catalog_version);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        let mut cache = PlanCache::new(1);
        cache.execute(&dev, &cat, &plan()).unwrap();
        cache.execute(&dev, &cat, &Plan::scan("facts")).unwrap();
        let (_, again) = cache.execute(&dev, &cat, &plan()).unwrap();
        assert_eq!(again.outcome, CacheOutcome::Miss, "evicted by capacity 1");
        assert_eq!(cache.stats().2, 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn counters_reach_the_metrics_registry() {
        let dev = Device::a100();
        dev.enable_metrics(sim::SimTime::from_secs(1.0));
        let cat = catalog(&dev);
        let mut cache = PlanCache::new(4);
        cache.execute(&dev, &cat, &plan()).unwrap();
        cache.execute(&dev, &cat, &plan()).unwrap();
        let snap = dev.metrics_snapshot().unwrap();
        assert_eq!(snap.registry.counter("plan_cache_misses_total", &[]), 1);
        assert_eq!(snap.registry.counter("plan_cache_hits_total", &[]), 1);
    }
}
