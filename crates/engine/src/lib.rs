//! # engine — a minimal columnar query engine on the simulated GPU
//!
//! The paper studies joins and grouped aggregations as operators inside GPU
//! query engines; this crate provides that surrounding engine in miniature,
//! so whole query segments (the shape of TPC-H Q3/Q18) can run end to end
//! over the same simulated device:
//!
//! * [`Table`] — named columns (thin sugar over [`columnar`]);
//! * [`Expr`] — column-at-a-time scalar expressions and predicates;
//! * [`Plan`] — Scan / Filter / Project / Join / Aggregate nodes;
//! * [`op`] — the physical-operator layer: every operator (and any caller
//!   that assembles [`op::PhysicalOperator`] trees directly, like
//!   `core::pipeline`) executes through one driver that reports the shared
//!   [`sim::OpStats`] record per node and applies the Section 4.4 memory
//!   budget, going out-of-core transparently when a join won't fit;
//! * [`fuse`] — operator fusion and plan-wide late materialization:
//!   adjacent Filter/Project chains collapse into one node that evaluates a
//!   single combined predicate and hands consumers a row-id ticket
//!   ([`fuse::Deferred`]) instead of materialized payloads — the paper's
//!   GFTR discipline applied across operators;
//! * [`execute`] — lowers a plan against a [`Catalog`] into that layer
//!   (fused; [`execute_unfused`] is the ablation baseline), picking join
//!   and aggregation implementations with the paper's decision trees
//!   unless the plan pins them.
//!
//! ```
//! use engine::{execute, Catalog, Expr, Plan, Table};
//! use columnar::Column;
//! use sim::Device;
//!
//! let dev = Device::a100();
//! let mut catalog = Catalog::new();
//! catalog.insert(Table::new(
//!     "t",
//!     vec![
//!         ("k", Column::from_i32(&dev, vec![1, 2, 3], "k")),
//!         ("v", Column::from_i32(&dev, vec![10, 20, 30], "v")),
//!     ],
//! ));
//! let plan = Plan::scan("t").filter(Expr::col("v").gt(Expr::lit(15)));
//! let out = execute(&dev, &catalog, &plan).unwrap();
//! assert_eq!(out.table.num_rows(), 2);
//! ```

pub mod cost;
pub mod demo;
pub mod digest;
mod error;
mod exec;
pub mod explain;
mod expr;
pub mod fuse;
pub mod op;
mod plan;
pub mod plan_cache;
pub mod scheduler;
mod table;

pub use cost::CostEstimate;
pub use digest::{slow_queries, SlowQueryDigest, SlowQueryReport, StageAttribution};
pub use error::{EngineError, SqlSpan};
pub use exec::{
    execute, execute_unfused, Catalog, ColumnMeta, NodeStats, QueryOutput, TableSchema,
};
pub use explain::{ExplainNode, QueryExplain};
pub use expr::{CmpOp, Expr};
pub use plan::{AggSpec, Plan};
pub use plan_cache::{CacheOutcome, PlanCache, PlanCacheInfo};
pub use scheduler::{
    run_open_loop, run_open_loop_with, run_queries, OpenQuery, OperatorBreakdown, Policy,
    QueryReport, QuerySpec, ServingConfig,
};
pub use table::Table;
