//! # engine — a minimal columnar query engine on the simulated GPU
//!
//! The paper studies joins and grouped aggregations as operators inside GPU
//! query engines; this crate provides that surrounding engine in miniature,
//! so whole query segments (the shape of TPC-H Q3/Q18) can run end to end
//! over the same simulated device:
//!
//! * [`Table`] — named columns (thin sugar over [`columnar`]);
//! * [`Expr`] — column-at-a-time scalar expressions and predicates;
//! * [`Plan`] — Scan / Filter / Project / Join / Aggregate nodes;
//! * [`execute`] — evaluates a plan against a [`Catalog`], picking the join
//!   implementation with the paper's Figure 18 decision tree unless the
//!   plan pins one, and reporting per-node simulated times.
//!
//! ```
//! use engine::{execute, Catalog, Expr, Plan, Table};
//! use columnar::Column;
//! use sim::Device;
//!
//! let dev = Device::a100();
//! let mut catalog = Catalog::new();
//! catalog.insert(Table::new(
//!     "t",
//!     vec![
//!         ("k", Column::from_i32(&dev, vec![1, 2, 3], "k")),
//!         ("v", Column::from_i32(&dev, vec![10, 20, 30], "v")),
//!     ],
//! ));
//! let plan = Plan::scan("t").filter(Expr::col("v").gt(Expr::lit(15)));
//! let out = execute(&dev, &catalog, &plan).unwrap();
//! assert_eq!(out.table.num_rows(), 2);
//! ```

pub mod demo;
mod error;
mod exec;
mod expr;
mod plan;
mod table;

pub use error::EngineError;
pub use exec::{execute, Catalog, NodeStats, QueryOutput};
pub use expr::{CmpOp, Expr};
pub use plan::{AggSpec, Plan};
pub use table::Table;
