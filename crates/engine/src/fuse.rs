//! Operator fusion and plan-wide late materialization (the GFTR ticket
//! discipline, applied to whole plans).
//!
//! The paper's Section 3 distinguishes *early* materialization (GFUR: gather
//! payload values as soon as rows are touched) from *late* materialization
//! (GFTR: carry row-id "tickets" and gather payloads once, at the end).
//! Inside a single join the engine already honors that choice; this module
//! extends it across operators. `take_run` collapses every maximal chain
//! of adjacent `Filter`/`Project` plan nodes into one [`FusedOp`], which
//!
//! 1. rewrites all predicates and projections over the chain's *base*
//!    schema (expression substitution, [`crate::Expr::substitute`]),
//! 2. evaluates the AND of every filter predicate in one fused kernel
//!    ([`crate::Expr::eval_mask_device`]) and compacts the mask into a
//!    selection vector on the device ([`primitives::compact_mask`]), and
//! 3. emits a [`Deferred`] value — base table + selection + logical output
//!    columns — instead of gathering payload columns eagerly.
//!
//! Downstream operators consume the ticket: a join materializes only the
//! key (and any computed expressions) and lets base payload columns ride an
//! extra 4-byte ticket column through the join, gathering them once from
//! the base afterwards; an aggregation gathers only the grouping key and
//! aggregate inputs; a sort composes its permutation with the selection.
//! Columns that no consumer ever asks for are never gathered at all.
//!
//! Fusion never crosses a pipeline breaker (`Join`, `Aggregate`, `Sort`,
//! `Distinct`): those operators need value columns (keys) to do their work,
//! so the run ends there and the boundary decides what materializes.

use crate::op::{BoxOp, Evaluated, ExecContext, PhysicalOperator, Value};
use crate::{EngineError, Expr, Plan, Table};
use columnar::Column;
use heuristics::{FusionProvenance, Provenance};
use primitives::{compact_mask, gather_column, gather_column_or_null};
use sim::{Device, DeviceBuffer};
use std::collections::HashMap;

/// A logical output column of a fused run, expressed over the base schema.
#[derive(Debug, Clone)]
pub(crate) enum DCol {
    /// A base column passed through unchanged — deferrable: consumers can
    /// gather it through the ticket at their materialization boundary.
    Base(String),
    /// A computed expression over base columns — evaluated over the
    /// selection when a consumer needs the values.
    Expr(Expr),
}

/// A late-materialized relation: the un-filtered base table, a selection
/// vector of surviving row ids (the ticket), and the logical output columns
/// over the base schema. No payload values are gathered until a consumer
/// materializes them.
pub struct Deferred {
    /// The source table the tickets index into.
    pub(crate) base: Table,
    /// Ascending surviving row ids into `base`.
    pub(crate) sel: DeviceBuffer<u32>,
    /// Logical output columns `(name, definition)`, in output order.
    pub(crate) cols: Vec<(String, DCol)>,
}

impl Deferred {
    /// Logical row count (selection length).
    pub fn num_rows(&self) -> usize {
        self.sel.len()
    }

    /// Logical table name (fused Filter/Project preserve the source's).
    pub fn name(&self) -> &str {
        self.base.name()
    }

    /// Logical column names in output order.
    pub fn column_names(&self) -> Vec<String> {
        self.cols.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Materialize one logical column through `map` (row ids into the
    /// base). Base columns pay one gather; computed columns gather their
    /// references and evaluate over the gathered rows. `cache` dedupes base
    /// gathers across calls — a base column shared by several outputs is
    /// gathered once and aliased after.
    ///
    /// `with_nulls` gathers through [`primitives::NULL_ID`] entries as the
    /// dtype's null sentinel (outer-join tickets); it only applies to base
    /// columns — computed expressions are evaluated *before* a join, so
    /// their sentinel rows come from the join's own null gather.
    pub(crate) fn gather_dcol(
        &self,
        dev: &Device,
        dcol: &DCol,
        map: &DeviceBuffer<u32>,
        with_nulls: bool,
        cache: &mut HashMap<String, Column>,
    ) -> Result<Column, EngineError> {
        let mut fetch = |b: &str| -> Result<Column, EngineError> {
            if let Some(c) = cache.get(b) {
                return Ok(c.alias());
            }
            let src = self.base.column(b)?;
            let g = if with_nulls {
                gather_column_or_null(dev, src, map)
            } else {
                gather_column(dev, src, map)
            };
            cache.insert(b.to_string(), g.alias());
            Ok(g)
        };
        match dcol {
            DCol::Base(b) => fetch(b),
            DCol::Expr(e) => {
                let mut refs: Vec<&str> = Vec::new();
                for r in e.columns() {
                    if !refs.contains(&r) {
                        refs.push(r);
                    }
                }
                let gathered = refs
                    .into_iter()
                    .map(|r| Ok((r.to_string(), fetch(r)?)))
                    .collect::<Result<Vec<_>, EngineError>>()?;
                let over = Table::from_columns(self.base.name(), gathered);
                e.eval(dev, &over)
            }
        }
    }

    /// Materialize the logical column called `name` through `map`.
    pub(crate) fn gather_named(
        &self,
        dev: &Device,
        name: &str,
        map: &DeviceBuffer<u32>,
        cache: &mut HashMap<String, Column>,
    ) -> Result<Column, EngineError> {
        let dcol = self
            .cols
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
            .ok_or_else(|| EngineError::UnknownColumn {
                column: name.to_string(),
                available: self.column_names(),
            })?;
        self.gather_dcol(dev, dcol, map, false, cache)
    }

    /// Materialize every logical column through the selection — the
    /// GFUR moment, paid exactly once at the boundary.
    pub(crate) fn materialize(&self, dev: &Device) -> Result<Table, EngineError> {
        let mut cache = HashMap::new();
        let mut out = Vec::with_capacity(self.cols.len());
        for (n, c) in &self.cols {
            out.push((
                n.clone(),
                self.gather_dcol(dev, c, &self.sel, false, &mut cache)?,
            ));
        }
        Ok(Table::from_columns(self.base.name(), out))
    }
}

/// One collapsed plan node inside a fused run, innermost first.
#[derive(Debug, Clone)]
pub(crate) enum FuseStep {
    /// A `Plan::Filter` predicate.
    Filter(Expr),
    /// A `Plan::Project` output list.
    Project(Vec<(String, Expr)>),
}

impl FuseStep {
    fn name(&self) -> &'static str {
        match self {
            FuseStep::Filter(_) => "Filter",
            FuseStep::Project(_) => "Project",
        }
    }
}

/// Peel the maximal run of `Filter`/`Project` nodes off the top of `plan`.
/// Returns the steps innermost-first plus the first non-fusible plan below
/// them, or `None` if `plan` starts with neither.
pub(crate) fn take_run(plan: &Plan) -> Option<(Vec<FuseStep>, &Plan)> {
    let mut steps = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            Plan::Filter { input, predicate } => {
                steps.push(FuseStep::Filter(predicate.clone()));
                cur = input;
            }
            Plan::Project { input, exprs } => {
                steps.push(FuseStep::Project(exprs.clone()));
                cur = input;
            }
            _ => break,
        }
    }
    if steps.is_empty() {
        None
    } else {
        steps.reverse();
        Some((steps, cur))
    }
}

/// A maximal `Filter`/`Project` run collapsed into one operator: a single
/// predicate evaluation over one selection vector, with output columns
/// deferred as tickets until `boundary` (set by [`crate::op::compile`] from
/// what consumes this node).
pub struct FusedOp {
    children: Vec<BoxOp>,
    steps: Vec<FuseStep>,
    /// Root nodes materialize; nodes feeding a ticket-aware consumer defer.
    materialize_output: bool,
    /// Human-readable lifetime boundary of the ticket, for provenance.
    boundary: &'static str,
}

impl FusedOp {
    pub(crate) fn new(
        input: BoxOp,
        steps: Vec<FuseStep>,
        materialize_output: bool,
        boundary: &'static str,
    ) -> Self {
        FusedOp {
            children: vec![input],
            steps,
            materialize_output,
            boundary,
        }
    }
}

impl PhysicalOperator for FusedOp {
    fn label(&self) -> String {
        let names: Vec<&str> = self.steps.iter().map(FuseStep::name).collect();
        format!("Fused({})", names.join("+"))
    }

    fn kind(&self) -> &'static str {
        "fused"
    }

    fn children(&self) -> &[BoxOp] {
        &self.children
    }

    fn evaluate(
        &self,
        ctx: &ExecContext<'_>,
        mut inputs: Vec<Value>,
    ) -> Result<Evaluated, EngineError> {
        let base = inputs
            .pop()
            .expect("Fused takes one input")
            .into_table(ctx.dev)?;
        // The substitution environment σ: the logical schema at the current
        // step, each column as an expression over the *base* schema. Every
        // step rewrites through σ, so predicates and outputs all read
        // straight from base columns no matter how many projections
        // intervened.
        let mut env: Vec<(String, Expr)> = base
            .columns()
            .iter()
            .map(|(n, _)| (n.clone(), Expr::col(n.clone())))
            .collect();
        let mut preds: Vec<Expr> = Vec::new();
        for step in &self.steps {
            match step {
                FuseStep::Filter(p) => preds.push(p.substitute(&env)?),
                FuseStep::Project(exprs) => {
                    let mut next = Vec::with_capacity(exprs.len());
                    for (n, e) in exprs {
                        next.push((n.clone(), e.substitute(&env)?));
                    }
                    env = next;
                }
            }
        }
        let cols: Vec<(String, DCol)> = env
            .into_iter()
            .map(|(n, e)| {
                let c = match e {
                    Expr::Col(b) => DCol::Base(b),
                    e => DCol::Expr(e),
                };
                (n, c)
            })
            .collect();
        let input_rows = base.num_rows();
        let deferred_cols = cols
            .iter()
            .filter(|(_, c)| matches!(c, DCol::Base(_)))
            .count();
        let computed_cols = cols.len() - deferred_cols;
        let steps: Vec<String> = self.steps.iter().map(|s| s.name().to_string()).collect();

        if preds.is_empty() {
            // Projection-only run: nothing selects, so there is no ticket
            // to defer — pass base columns as aliases and evaluate computed
            // outputs in place.
            let mut out = Vec::with_capacity(cols.len());
            for (n, c) in &cols {
                let col = match c {
                    DCol::Base(b) => base.column(b)?.alias(),
                    DCol::Expr(e) => e.eval(ctx.dev, &base)?,
                };
                out.push((n.clone(), col));
            }
            return Ok(Evaluated {
                out: Value::Table(Table::from_columns(base.name(), out)),
                phases: None,
                detail: None,
                provenance: Some(Provenance::Fusion(FusionProvenance {
                    steps,
                    predicates: 0,
                    input_rows,
                    selected_rows: input_rows,
                    deferred_cols: 0,
                    computed_cols,
                    materialized_here: true,
                    boundary: "no filter in the fused run — nothing to defer".to_string(),
                })),
            });
        }

        // One fused predicate kernel over the base, one device compaction:
        // the selection vector is the only thing this node writes.
        let combined = preds
            .iter()
            .skip(1)
            .fold(preds[0].clone(), |a, p| a.and(p.clone()));
        let mask = combined.eval_mask_device(ctx.dev, &base)?;
        let sel = compact_mask(ctx.dev, &mask);
        let selected_rows = sel.len();
        let deferred = Deferred { base, sel, cols };
        let provenance = Provenance::Fusion(FusionProvenance {
            steps,
            predicates: preds.len(),
            input_rows,
            selected_rows,
            deferred_cols,
            computed_cols,
            materialized_here: self.materialize_output,
            boundary: self.boundary.to_string(),
        });
        let out = if self.materialize_output {
            Value::Table(deferred.materialize(ctx.dev)?)
        } else {
            Value::Deferred(deferred)
        };
        Ok(Evaluated {
            out,
            phases: None,
            detail: None,
            provenance: Some(provenance),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute, Catalog};

    fn catalog(dev: &Device) -> Catalog {
        let mut cat = Catalog::new();
        cat.insert(Table::new(
            "t",
            vec![
                ("k", Column::from_i32(dev, (0..100).collect(), "k")),
                (
                    "v",
                    Column::from_i64(dev, (0..100).map(|i| i * 10).collect(), "v"),
                ),
            ],
        ));
        cat
    }

    #[test]
    fn take_run_peels_maximal_chains() {
        let plan = Plan::scan("t")
            .filter(Expr::col("k").gt(Expr::lit(3)))
            .project(vec![("k2", Expr::col("k"))])
            .filter(Expr::col("k2").lt(Expr::lit(90)));
        let (steps, inner) = take_run(&plan).expect("run of three");
        assert_eq!(steps.len(), 3);
        assert!(matches!(steps[0], FuseStep::Filter(_)), "innermost first");
        assert!(matches!(steps[2], FuseStep::Filter(_)));
        assert!(matches!(inner, Plan::Scan { .. }), "run stops at the scan");
        assert!(take_run(&Plan::scan("t")).is_none());
    }

    #[test]
    fn runs_never_cross_a_join() {
        let plan = Plan::scan("a")
            .filter(Expr::col("x").gt(Expr::lit(0)))
            .join(
                Plan::scan("b").filter(Expr::col("y").gt(Expr::lit(0))),
                "x",
                "y",
            )
            .filter(Expr::col("x").lt(Expr::lit(10)));
        let (steps, inner) = take_run(&plan).expect("the top filter fuses");
        assert_eq!(steps.len(), 1, "only the post-join filter is in the run");
        assert!(matches!(inner, Plan::Join { .. }));
    }

    #[test]
    fn fused_filter_project_matches_the_plain_interpretation() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        let plan = Plan::scan("t")
            .filter(Expr::col("v").ge(Expr::lit(200)))
            .project(vec![
                ("k", Expr::col("k")),
                ("v2", Expr::col("v").mul(Expr::lit(2))),
            ])
            .filter(Expr::col("v2").lt(Expr::lit(1800)));
        let out = execute(&dev, &cat, &plan).unwrap();
        let expected: Vec<Vec<i64>> = (0..100i64)
            .filter(|i| i * 10 >= 200 && i * 20 < 1800)
            .map(|i| vec![i, i * 20])
            .collect();
        assert_eq!(out.table.rows_sorted(), expected);
        assert_eq!(out.table.name(), "t", "source name survives fusion");
        // The whole run is one plan node over the scan.
        assert_eq!(out.stats.label, "Fused(Filter+Project+Filter)");
        assert_eq!(out.stats.children.len(), 1);
    }

    #[test]
    fn fusion_provenance_reports_the_boundary() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        let plan = Plan::scan("t").filter(Expr::col("k").lt(Expr::lit(10)));
        let out = execute(&dev, &cat, &plan).unwrap();
        let Some(Provenance::Fusion(f)) = &out.stats.provenance else {
            panic!("fused node must carry fusion provenance");
        };
        assert_eq!(f.predicates, 1);
        assert_eq!(f.input_rows, 100);
        assert_eq!(f.selected_rows, 10);
        assert!(f.materialized_here, "plan root materializes");
        assert!(f.boundary.contains("root"), "{}", f.boundary);
    }

    #[test]
    fn substitution_errors_name_the_live_schema() {
        let dev = Device::a100();
        let cat = catalog(&dev);
        // `v` is projected away before the filter references it.
        let plan = Plan::scan("t")
            .project(vec![("k2", Expr::col("k"))])
            .filter(Expr::col("v").gt(Expr::lit(0)));
        let err = match execute(&dev, &cat, &plan) {
            Err(e) => e,
            Ok(_) => panic!("filtering a projected-away column must fail"),
        };
        match err {
            EngineError::UnknownColumn { column, available } => {
                assert_eq!(column, "v");
                assert_eq!(available, vec!["k2".to_string()]);
            }
            other => panic!("expected UnknownColumn, got {other:?}"),
        }
    }
}
