//! Logical query plans: the operator tree the executor walks.

use crate::Expr;
use groupby::{AggFn, GroupByAlgorithm};
use joins::{Algorithm, JoinKind};

/// One aggregate in an [`Plan::Aggregate`] node.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Aggregate function.
    pub agg: AggFn,
    /// Input column name.
    pub column: String,
    /// Output column name.
    pub output: String,
}

impl AggSpec {
    /// Shorthand constructor.
    pub fn new(agg: AggFn, column: impl Into<String>, output: impl Into<String>) -> Self {
        AggSpec {
            agg,
            column: column.into(),
            output: output.into(),
        }
    }
}

/// A logical plan node. Build trees with the fluent helpers
/// ([`Plan::scan`], [`Plan::filter`], ...).
#[derive(Debug, Clone)]
pub enum Plan {
    /// Read a catalog table.
    Scan {
        /// Table name.
        table: String,
    },
    /// Keep rows where the predicate holds.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Boolean expression.
        predicate: Expr,
    },
    /// Compute output columns from expressions.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// `(output name, expression)` pairs.
        exprs: Vec<(String, Expr)>,
    },
    /// Equi-join two inputs. The left side is the build side.
    Join {
        /// Build-side plan.
        left: Box<Plan>,
        /// Probe-side plan.
        right: Box<Plan>,
        /// Build-side key column.
        left_key: String,
        /// Probe-side key column.
        right_key: String,
        /// Join semantics.
        kind: JoinKind,
        /// Pin an implementation; `None` lets the Figure 18 decision tree
        /// choose.
        algorithm: Option<Algorithm>,
    },
    /// Order by one column, optionally keeping only the first rows — the
    /// `ORDER BY ... LIMIT` tail of most TPC queries.
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// Sort-key column name.
        by: String,
        /// Descending order.
        desc: bool,
        /// Keep only the first `limit` rows after sorting.
        limit: Option<usize>,
    },
    /// Keep only the first `count` rows of the input, in input order — the
    /// standalone `LIMIT` tail (a `Sort` already folds its own limit in).
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Rows to keep.
        count: usize,
    },
    /// Distinct rows of a single column (grouping with no aggregates).
    Distinct {
        /// Input plan.
        input: Box<Plan>,
        /// Column to deduplicate.
        column: String,
    },
    /// Grouped aggregation.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Group-key column name.
        group_by: String,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
        /// Pin an implementation; `None` lets the grouped-aggregation
        /// decision tree choose from sampled statistics.
        algorithm: Option<GroupByAlgorithm>,
    },
}

impl Plan {
    /// Scan a catalog table.
    pub fn scan(table: impl Into<String>) -> Plan {
        Plan::Scan {
            table: table.into(),
        }
    }

    /// Filter this plan's output.
    pub fn filter(self, predicate: Expr) -> Plan {
        Plan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Project this plan's output.
    pub fn project(self, exprs: Vec<(&str, Expr)>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            exprs: exprs.into_iter().map(|(n, e)| (n.to_string(), e)).collect(),
        }
    }

    /// Inner-join this plan (as build side) with `right` (probe side).
    pub fn join(self, right: Plan, left_key: &str, right_key: &str) -> Plan {
        self.join_kind(right, left_key, right_key, JoinKind::Inner)
    }

    /// Join with explicit semantics.
    pub fn join_kind(self, right: Plan, left_key: &str, right_key: &str, kind: JoinKind) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_key: left_key.to_string(),
            right_key: right_key.to_string(),
            kind,
            algorithm: None,
        }
    }

    /// Pin the join implementation of the topmost Join node.
    pub fn with_join_algorithm(mut self, alg: Algorithm) -> Plan {
        if let Plan::Join { algorithm, .. } = &mut self {
            *algorithm = Some(alg);
        }
        self
    }

    /// Order this plan's output by `by` (ascending unless `desc`), keeping
    /// only `limit` rows if given.
    pub fn sort_by(self, by: &str, desc: bool, limit: Option<usize>) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            by: by.to_string(),
            desc,
            limit,
        }
    }

    /// Keep only the first `count` rows of this plan's output.
    pub fn limit(self, count: usize) -> Plan {
        Plan::Limit {
            input: Box::new(self),
            count,
        }
    }

    /// Deduplicate one column of this plan's output.
    pub fn distinct(self, column: &str) -> Plan {
        Plan::Distinct {
            input: Box::new(self),
            column: column.to_string(),
        }
    }

    /// Group this plan's output.
    pub fn aggregate(self, group_by: &str, aggs: Vec<AggSpec>) -> Plan {
        Plan::Aggregate {
            input: Box::new(self),
            group_by: group_by.to_string(),
            aggs,
            algorithm: None,
        }
    }

    /// Pin the aggregation implementation of the topmost Aggregate node.
    pub fn with_group_algorithm(mut self, alg: GroupByAlgorithm) -> Plan {
        if let Plan::Aggregate { algorithm, .. } = &mut self {
            *algorithm = Some(alg);
        }
        self
    }

    /// Human-readable one-line description of the node (for stats).
    pub fn label(&self) -> String {
        match self {
            Plan::Scan { table } => format!("Scan({table})"),
            Plan::Filter { .. } => "Filter".to_string(),
            Plan::Project { .. } => "Project".to_string(),
            Plan::Join {
                left_key,
                right_key,
                kind,
                ..
            } => format!("Join({left_key}={right_key}, {})", kind.name()),
            Plan::Aggregate { group_by, .. } => format!("Aggregate(by {group_by})"),
            Plan::Sort {
                by, desc, limit, ..
            } => format!(
                "Sort(by {by}{}{})",
                if *desc { " desc" } else { "" },
                limit.map_or(String::new(), |l| format!(", limit {l}"))
            ),
            Plan::Limit { count, .. } => format!("Limit({count})"),
            Plan::Distinct { column, .. } => format!("Distinct({column})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let p = Plan::scan("orders")
            .filter(Expr::col("qty").gt(Expr::lit(5)))
            .join(Plan::scan("lineitem"), "o_id", "l_oid")
            .with_join_algorithm(Algorithm::PhjOm)
            .aggregate("o_id", vec![AggSpec::new(AggFn::Sum, "qty", "total")])
            .with_group_algorithm(GroupByAlgorithm::SortGftr);
        match &p {
            Plan::Aggregate {
                input, algorithm, ..
            } => {
                assert_eq!(*algorithm, Some(GroupByAlgorithm::SortGftr));
                match input.as_ref() {
                    Plan::Join { algorithm, .. } => {
                        assert_eq!(*algorithm, Some(Algorithm::PhjOm))
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(p.label().starts_with("Aggregate"));
    }
}
