//! A miniature TPC-H-shaped catalog and three query plans over it, used by
//! the examples, the integration tests and the `g06_queries` benchmark.
//!
//! The schema is a cut-down `customer / orders / lineitem` star:
//!
//! ```text
//! customer(c_id, c_nation)
//! orders(o_id, o_cust, o_date)
//! lineitem(l_oid, l_qty, l_price, l_flag)
//! ```
//!
//! Every FK matches (the paper's in-database-ML setting); dates, flags and
//! nations are small integer domains.

use crate::{AggSpec, Catalog, Expr, Plan, Table};
use columnar::Column;
use groupby::AggFn;
use rand::{Rng, SeedableRng};
use sim::Device;

/// Generate the demo catalog with `orders` orders and ~4 lineitems each.
pub fn tpch_mini(dev: &Device, orders: usize, seed: u64) -> Catalog {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let customers = (orders / 10).max(1);
    let lineitems = orders * 4;

    let mut catalog = Catalog::new();
    catalog.insert(Table::new(
        "customer",
        vec![
            (
                "c_id",
                Column::from_i32(dev, (0..customers as i32).collect(), "c_id"),
            ),
            (
                "c_nation",
                Column::from_i32(
                    dev,
                    (0..customers).map(|_| rng.gen_range(0..25)).collect(),
                    "c_nation",
                ),
            ),
        ],
    ));
    let o_cust: Vec<i32> = (0..orders)
        .map(|_| rng.gen_range(0..customers as i32))
        .collect();
    catalog.insert(Table::new(
        "orders",
        vec![
            (
                "o_id",
                Column::from_i32(dev, (0..orders as i32).collect(), "o_id"),
            ),
            ("o_cust", Column::from_i32(dev, o_cust, "o_cust")),
            (
                "o_date",
                Column::from_i32(
                    dev,
                    (0..orders).map(|_| rng.gen_range(0..2557)).collect(),
                    "o_date",
                ),
            ),
        ],
    ));
    let l_oid: Vec<i32> = (0..lineitems)
        .map(|_| rng.gen_range(0..orders as i32))
        .collect();
    catalog.insert(Table::new(
        "lineitem",
        vec![
            ("l_oid", Column::from_i32(dev, l_oid, "l_oid")),
            (
                "l_qty",
                Column::from_i64(
                    dev,
                    (0..lineitems).map(|_| rng.gen_range(1..51)).collect(),
                    "l_qty",
                ),
            ),
            (
                "l_price",
                Column::from_i64(
                    dev,
                    (0..lineitems).map(|_| rng.gen_range(100..10_000)).collect(),
                    "l_price",
                ),
            ),
            (
                "l_flag",
                Column::from_i32(
                    dev,
                    (0..lineitems).map(|_| rng.gen_range(0..3)).collect(),
                    "l_flag",
                ),
            ),
        ],
    ));
    catalog
}

/// The five market segments of `c_mktsegment`'s dictionary.
pub const MKT_SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// Generate the *full* TPC-H-named star for the SQL frontend:
///
/// ```text
/// customer(c_custkey PK, c_name, c_mktsegment dict, c_nationkey, c_acctbal)
/// orders(o_orderkey PK, o_custkey FK, o_orderdate, o_totalprice, o_shippriority)
/// lineitem(l_orderkey FK, l_quantity, l_extendedprice, l_discount, l_shipdate)
/// ```
///
/// `orders` has `lineitems / 4` rows and `customer` a tenth of that. Dates
/// are epoch days ([`columnar::date`]) spanning 1992-01-01..1998-08-02 like
/// the benchmark's; `c_mktsegment` is dictionary-encoded over
/// [`MKT_SEGMENTS`], and the primary keys are declared so the planner's
/// functional-dependency analysis has something to work with.
pub fn tpch_full(dev: &Device, lineitems: usize, seed: u64) -> Catalog {
    use columnar::date::parse_date;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let orders = (lineitems / 4).max(1);
    let customers = (orders / 10).max(1);
    let date_lo = parse_date("1992-01-01").expect("anchor date");
    let date_hi = parse_date("1998-08-02").expect("anchor date");

    let mut catalog = Catalog::new();
    catalog.insert(Table::new(
        "customer",
        vec![
            (
                "c_custkey",
                Column::from_i32(dev, (0..customers as i32).collect(), "c_custkey"),
            ),
            (
                "c_name",
                Column::from_i64(
                    dev,
                    (0..customers as i64).map(|k| 1_000_000 + k).collect(),
                    "c_name",
                ),
            ),
            (
                "c_mktsegment",
                Column::from_i32(
                    dev,
                    (0..customers)
                        .map(|_| rng.gen_range(0..MKT_SEGMENTS.len() as i32))
                        .collect(),
                    "c_mktsegment",
                ),
            ),
            (
                "c_nationkey",
                Column::from_i32(
                    dev,
                    (0..customers).map(|_| rng.gen_range(0..25)).collect(),
                    "c_nationkey",
                ),
            ),
            (
                "c_acctbal",
                Column::from_i64(
                    dev,
                    (0..customers)
                        .map(|_| rng.gen_range(-999..10_000))
                        .collect(),
                    "c_acctbal",
                ),
            ),
        ],
    ));
    catalog.insert(Table::new(
        "orders",
        vec![
            (
                "o_orderkey",
                Column::from_i32(dev, (0..orders as i32).collect(), "o_orderkey"),
            ),
            (
                "o_custkey",
                Column::from_i32(
                    dev,
                    (0..orders)
                        .map(|_| rng.gen_range(0..customers as i32))
                        .collect(),
                    "o_custkey",
                ),
            ),
            (
                "o_orderdate",
                Column::from_i64(
                    dev,
                    (0..orders)
                        .map(|_| rng.gen_range(date_lo..=date_hi))
                        .collect(),
                    "o_orderdate",
                ),
            ),
            (
                "o_totalprice",
                Column::from_i64(
                    dev,
                    (0..orders).map(|_| rng.gen_range(1_000..500_000)).collect(),
                    "o_totalprice",
                ),
            ),
            (
                "o_shippriority",
                Column::from_i32(
                    dev,
                    (0..orders).map(|_| rng.gen_range(0..3)).collect(),
                    "o_shippriority",
                ),
            ),
        ],
    ));
    catalog.insert(Table::new(
        "lineitem",
        vec![
            (
                "l_orderkey",
                Column::from_i32(
                    dev,
                    (0..lineitems)
                        .map(|_| rng.gen_range(0..orders as i32))
                        .collect(),
                    "l_orderkey",
                ),
            ),
            (
                "l_quantity",
                Column::from_i64(
                    dev,
                    (0..lineitems).map(|_| rng.gen_range(1..51)).collect(),
                    "l_quantity",
                ),
            ),
            (
                "l_extendedprice",
                Column::from_i64(
                    dev,
                    (0..lineitems)
                        .map(|_| rng.gen_range(1_000..100_000))
                        .collect(),
                    "l_extendedprice",
                ),
            ),
            (
                "l_discount",
                Column::from_i64(
                    dev,
                    (0..lineitems).map(|_| rng.gen_range(0..11)).collect(),
                    "l_discount",
                ),
            ),
            (
                "l_shipdate",
                Column::from_i64(
                    dev,
                    (0..lineitems)
                        .map(|_| rng.gen_range(date_lo..=date_hi))
                        .collect(),
                    "l_shipdate",
                ),
            ),
        ],
    ));
    catalog
        .set_primary_key("customer", "c_custkey")
        .expect("customer PK");
    catalog
        .set_primary_key("orders", "o_orderkey")
        .expect("orders PK");
    catalog
        .set_dictionary(
            "customer",
            "c_mktsegment",
            MKT_SEGMENTS.iter().map(|s| s.to_string()).collect(),
        )
        .expect("segment dictionary");
    catalog
}

/// TPC-H Q3 (shipping priority), as SQL for the frontend. Revenue uses the
/// integer domain: `l_extendedprice * (100 - l_discount)` is the paper's
/// `price * (1 - discount)` scaled by 100.
pub fn q3_sql() -> &'static str {
    "SELECT o_orderkey, SUM(l_extendedprice * (100 - l_discount)) AS revenue, \
            o_orderdate, o_shippriority \
     FROM customer, orders, lineitem \
     WHERE c_mktsegment = 'BUILDING' \
       AND c_custkey = o_custkey \
       AND l_orderkey = o_orderkey \
       AND o_orderdate < DATE '1995-03-15' \
       AND l_shipdate > DATE '1995-03-15' \
     GROUP BY o_orderkey, o_orderdate, o_shippriority \
     ORDER BY revenue DESC, o_orderdate \
     LIMIT 10"
}

/// TPC-H Q18 (large-volume customers), as SQL for the frontend.
pub fn q18_sql() -> &'static str {
    "SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, \
            SUM(l_quantity) AS total_qty \
     FROM customer, orders, lineitem \
     WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey \
     GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice \
     HAVING SUM(l_quantity) > 150 \
     ORDER BY o_totalprice DESC, o_orderdate \
     LIMIT 100"
}

/// Q1-shaped: filtered scan + grouped aggregation over lineitem.
///
/// ```sql
/// SELECT l_flag, SUM(l_qty), SUM(l_price), COUNT(*)
/// FROM lineitem WHERE l_qty <= 45 GROUP BY l_flag
/// ```
pub fn q1_like() -> Plan {
    Plan::scan("lineitem")
        .filter(Expr::col("l_qty").le(Expr::lit(45)))
        .aggregate(
            "l_flag",
            vec![
                AggSpec::new(AggFn::Sum, "l_qty", "sum_qty"),
                AggSpec::new(AggFn::Sum, "l_price", "sum_price"),
                AggSpec::new(AggFn::Count, "l_qty", "count_order"),
            ],
        )
}

/// Q3-shaped: a two-join pipeline with a date filter and revenue
/// aggregation per order.
///
/// ```sql
/// SELECT o_id, SUM(l_price)
/// FROM customer ⋈ orders ⋈ lineitem
/// WHERE o_date < 1000
/// GROUP BY o_id
/// ```
pub fn q3_like() -> Plan {
    Plan::scan("customer")
        .join(
            Plan::scan("orders").filter(Expr::col("o_date").lt(Expr::lit(1000))),
            "c_id",
            "o_cust",
        )
        .join(Plan::scan("lineitem"), "o_id", "l_oid")
        .aggregate("o_id", vec![AggSpec::new(AggFn::Sum, "l_price", "revenue")])
}

/// Q18-shaped: large-quantity orders — join, aggregate, then a HAVING-style
/// filter over the aggregate.
///
/// ```sql
/// SELECT o_id, SUM(l_qty) AS total
/// FROM orders ⋈ lineitem GROUP BY o_id HAVING total > 150
/// ```
pub fn q18_like() -> Plan {
    Plan::scan("orders")
        .join(Plan::scan("lineitem"), "o_id", "l_oid")
        .aggregate("o_id", vec![AggSpec::new(AggFn::Sum, "l_qty", "total")])
        .filter(Expr::col("total").gt(Expr::lit(150)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute;

    #[test]
    fn demo_queries_run_and_make_sense() {
        let dev = Device::a100();
        let catalog = tpch_mini(&dev, 1000, 11);

        let q1 = execute(&dev, &catalog, &q1_like()).unwrap();
        assert!(q1.table.num_rows() <= 3, "at most 3 flags");
        // Count column is positive everywhere.
        let counts = q1.table.column("count_order").unwrap();
        assert!(counts.iter_i64().all(|c| c > 0));

        let q3 = execute(&dev, &catalog, &q3_like()).unwrap();
        // Only orders with o_date < 1000 survive; every lineitem of such an
        // order contributes.
        assert!(q3.table.num_rows() > 0);
        assert!(q3.table.num_rows() < 1000);

        let q18 = execute(&dev, &catalog, &q18_like()).unwrap();
        let totals = q18.table.column("total").unwrap();
        assert!(totals.iter_i64().all(|t| t > 150), "HAVING applied");
    }

    #[test]
    fn q1_matches_host_computation() {
        let dev = Device::a100();
        let catalog = tpch_mini(&dev, 500, 3);
        let out = execute(&dev, &catalog, &q1_like()).unwrap();

        // Host recomputation from the catalog.
        let li = catalog.get("lineitem").unwrap();
        let mut expected: std::collections::HashMap<i64, (i64, i64, i64)> = Default::default();
        for i in 0..li.num_rows() {
            let qty = li.column("l_qty").unwrap().value(i);
            if qty <= 45 {
                let e = expected
                    .entry(li.column("l_flag").unwrap().value(i))
                    .or_default();
                e.0 += qty;
                e.1 += li.column("l_price").unwrap().value(i);
                e.2 += 1;
            }
        }
        let mut expected: Vec<Vec<i64>> = expected
            .into_iter()
            .map(|(k, (q, p, c))| vec![k, q, p, c])
            .collect();
        expected.sort_unstable();
        assert_eq!(out.table.rows_sorted(), expected);
    }
}
