//! Property tests: engine plans agree with a straightforward host
//! interpretation of the same query over arbitrary inputs.

use columnar::Column;
use engine::{execute, AggSpec, Catalog, Expr, Plan, Table};
use groupby::AggFn;
use joins::JoinKind;
use proptest::prelude::*;
use sim::Device;

#[derive(Debug, Clone)]
struct TableSpec {
    keys: Vec<i32>,
    vals: Vec<i64>,
}

fn table_strategy(max_rows: usize, key_range: i32) -> impl Strategy<Value = TableSpec> {
    (0..=max_rows)
        .prop_flat_map(move |n| {
            (
                proptest::collection::vec(0..key_range, n),
                proptest::collection::vec(-1000i64..1000, n),
            )
        })
        .prop_map(|(keys, vals)| TableSpec { keys, vals })
}

fn catalog(dev: &Device, a: &TableSpec, b: &TableSpec) -> Catalog {
    let mut c = Catalog::new();
    c.insert(Table::new(
        "a",
        vec![
            ("ak", Column::from_i32(dev, a.keys.clone(), "ak")),
            ("av", Column::from_i64(dev, a.vals.clone(), "av")),
        ],
    ));
    c.insert(Table::new(
        "b",
        vec![
            ("bk", Column::from_i32(dev, b.keys.clone(), "bk")),
            ("bv", Column::from_i64(dev, b.vals.clone(), "bv")),
        ],
    ));
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn filter_project_matches_host(t in table_strategy(120, 50), threshold in -1000i64..1000) {
        let dev = Device::a100();
        let cat = catalog(&dev, &t, &TableSpec { keys: vec![], vals: vec![] });
        let plan = Plan::scan("a")
            .filter(Expr::col("av").ge(Expr::lit(threshold)))
            .project(vec![
                ("k", Expr::col("ak")),
                ("v3", Expr::col("av").mul(Expr::lit(3)).sub(Expr::lit(1))),
            ]);
        let out = execute(&dev, &cat, &plan).unwrap();
        let mut expected: Vec<Vec<i64>> = t
            .keys
            .iter()
            .zip(&t.vals)
            .filter(|(_, &v)| v >= threshold)
            .map(|(&k, &v)| vec![k as i64, v * 3 - 1])
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(out.table.rows_sorted(), expected);
    }

    #[test]
    fn join_plan_matches_host(a in table_strategy(60, 12), b in table_strategy(60, 12)) {
        let dev = Device::a100();
        let cat = catalog(&dev, &a, &b);
        let plan = Plan::scan("a").join(Plan::scan("b"), "ak", "bk");
        let out = execute(&dev, &cat, &plan).unwrap();
        let mut expected = Vec::new();
        for (j, (&bk, &bv)) in b.keys.iter().zip(&b.vals).enumerate() {
            let _ = j;
            for (&ak, &av) in a.keys.iter().zip(&a.vals) {
                if ak == bk {
                    expected.push(vec![ak as i64, av, bv]);
                }
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(out.table.rows_sorted(), expected);
    }

    #[test]
    fn aggregate_plan_matches_host(t in table_strategy(120, 10)) {
        let dev = Device::a100();
        let cat = catalog(&dev, &t, &TableSpec { keys: vec![], vals: vec![] });
        let plan = Plan::scan("a").aggregate(
            "ak",
            vec![
                AggSpec::new(AggFn::Sum, "av", "s"),
                AggSpec::new(AggFn::Min, "av", "lo"),
            ],
        );
        let out = execute(&dev, &cat, &plan).unwrap();
        let mut expected: std::collections::HashMap<i64, (i64, i64)> = Default::default();
        for (&k, &v) in t.keys.iter().zip(&t.vals) {
            let e = expected.entry(k as i64).or_insert((0, i64::MAX));
            e.0 += v;
            e.1 = e.1.min(v);
        }
        let mut expected: Vec<Vec<i64>> =
            expected.into_iter().map(|(k, (s, lo))| vec![k, s, lo]).collect();
        expected.sort_unstable();
        prop_assert_eq!(out.table.rows_sorted(), expected);
    }

    #[test]
    fn anti_join_plan_matches_host(a in table_strategy(50, 10), b in table_strategy(50, 10)) {
        let dev = Device::a100();
        let cat = catalog(&dev, &a, &b);
        let plan = Plan::scan("a").join_kind(Plan::scan("b"), "ak", "bk", JoinKind::Anti);
        let out = execute(&dev, &cat, &plan).unwrap();
        let a_keys: std::collections::HashSet<i32> = a.keys.iter().copied().collect();
        let mut expected: Vec<Vec<i64>> = b
            .keys
            .iter()
            .zip(&b.vals)
            .filter(|(k, _)| !a_keys.contains(k))
            .map(|(&k, &v)| vec![k as i64, v])
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(out.table.rows_sorted(), expected);
    }
}
