//! The operator layer against the host-side join oracle: every join kind ×
//! every algorithm through engine plans, plus the plan-level memory budget
//! routing over-budget joins through the out-of-core path transparently.

use columnar::{Column, Relation};
use engine::{execute, Catalog, Plan, Table};
use joins::oracle::{hash_join_oracle, join_oracle_kind};
use joins::{Algorithm, JoinKind};
use sim::{Device, DeviceConfig};

const ALL_ALGORITHMS: [Algorithm; 7] = [
    Algorithm::SmjUm,
    Algorithm::SmjOm,
    Algorithm::PhjUm,
    Algorithm::PhjOm,
    Algorithm::PhjOmGfur,
    Algorithm::Nphj,
    Algorithm::CpuRadix,
];

/// R(rk, r1) with unique keys 0..nr, S(sk, s1) with foreign keys striding
/// over `2 * nr` so about half the probe rows dangle — every join kind then
/// produces a distinct, non-trivial result.
fn inputs(dev: &Device, nr: usize, ns: usize) -> (Relation, Relation) {
    let pk: Vec<i32> = (0..nr as i32).collect();
    let fk: Vec<i32> = (0..ns).map(|i| ((i * 7) % (2 * nr)) as i32).collect();
    (
        Relation::new(
            "R",
            Column::from_i32(dev, pk.clone(), "rk"),
            vec![Column::from_i32(
                dev,
                pk.iter().map(|&k| k * 2).collect(),
                "r1",
            )],
        ),
        Relation::new(
            "S",
            Column::from_i32(dev, fk.clone(), "sk"),
            vec![Column::from_i64(
                dev,
                fk.iter().map(|&k| k as i64 + 5).collect(),
                "s1",
            )],
        ),
    )
}

fn catalog_of(r: &Relation, s: &Relation) -> Catalog {
    let mut cat = Catalog::new();
    cat.insert(Table::new(
        "r",
        vec![("rk", r.key().alias()), ("r1", r.payloads()[0].alias())],
    ));
    cat.insert(Table::new(
        "s",
        vec![("sk", s.key().alias()), ("s1", s.payloads()[0].alias())],
    ));
    cat
}

#[test]
fn every_kind_and_algorithm_agree_with_the_oracle() {
    let dev = Device::a100();
    let (r, s) = inputs(&dev, 512, 4096);
    let cat = catalog_of(&r, &s);
    for kind in [
        JoinKind::Inner,
        JoinKind::Semi,
        JoinKind::Anti,
        JoinKind::Outer,
    ] {
        let expected = join_oracle_kind(&r, &s, kind);
        assert!(
            !expected.is_empty(),
            "{} oracle is non-trivial",
            kind.name()
        );
        for alg in ALL_ALGORITHMS {
            let plan = Plan::scan("r")
                .join_kind(Plan::scan("s"), "rk", "sk", kind)
                .with_join_algorithm(alg);
            let out = execute(&dev, &cat, &plan).unwrap();
            assert_eq!(
                out.table.rows_sorted(),
                expected,
                "{} via {}",
                kind.name(),
                alg.name()
            );
        }
    }
}

#[test]
fn over_budget_joins_chunk_transparently_and_match_the_oracle() {
    // A device barely big enough for R plus a fraction of S: the planner's
    // Section 4.4 memory model must route the join through the out-of-core
    // path without the caller asking for it.
    let mut cfg = DeviceConfig::a100();
    cfg.global_mem_bytes = 1 << 20;
    let dev = Device::new(cfg);
    let (r, s) = inputs(&dev, 1000, 30_000);
    let cat = catalog_of(&r, &s);
    let plan = Plan::scan("r")
        .join(Plan::scan("s"), "rk", "sk")
        .with_join_algorithm(Algorithm::PhjOm);
    let out = execute(&dev, &cat, &plan).unwrap();
    assert!(
        out.stats.label.contains("chunked"),
        "expected the chunked path, got {:?}",
        out.stats.label
    );
    assert_eq!(out.table.rows_sorted(), hash_join_oracle(&r, &s));
    assert!(
        dev.mem_report().current_bytes <= dev.config().global_mem_bytes,
        "nothing beyond the device capacity stays resident"
    );
}

#[test]
fn in_budget_joins_stay_on_the_direct_path() {
    let dev = Device::a100();
    let (r, s) = inputs(&dev, 1000, 30_000);
    let cat = catalog_of(&r, &s);
    let plan = Plan::scan("r")
        .join(Plan::scan("s"), "rk", "sk")
        .with_join_algorithm(Algorithm::PhjOm);
    let out = execute(&dev, &cat, &plan).unwrap();
    assert!(
        !out.stats.label.contains("chunked"),
        "an A100-sized device must not chunk this join: {:?}",
        out.stats.label
    );
    assert_eq!(out.table.rows_sorted(), hash_join_oracle(&r, &s));
}
