//! # workloads — data generators for the evaluation
//!
//! Everything Section 5 of the paper joins or aggregates:
//!
//! * [`synthetic`] — the microbenchmark generator: shuffled primary keys,
//!   foreign keys with configurable match ratio and Zipf skew, arbitrary
//!   payload column counts and widths (Figures 7-15, Tables 4-5).
//! * [`star`] — star schemas for the sequences-of-joins experiment
//!   (Figure 16).
//! * [`tpc`] — the five TPC-H/TPC-DS join extracts of Table 6 (Figure 17),
//!   generated synthetically at a configurable scale with the paper's row
//!   counts, key/non-key layouts and join cardinalities.
//! * [`agg`] — grouped-aggregation inputs (group-count and skew sweeps) for
//!   the SIGMOD-extension experiments.

pub mod agg;
pub mod star;
pub mod synthetic;
pub mod tpc;

pub use synthetic::{JoinWorkload, PayloadSpec};
