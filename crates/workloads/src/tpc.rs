//! The five TPC-H / TPC-DS join extracts of Table 6 (Section 5.3), generated
//! synthetically with the paper's row counts, key/non-key column layouts and
//! join cardinalities:
//!
//! | ID | query | \|R\| | \|S\| | \|R ⋈ S\| | payload columns | remark |
//! |----|-------|------|------|----------|-----------------|--------|
//! | J1 | TPC-H Q7 (SF10)   | 15M  | 18.2M | 18.2M | 1K3NK(R) + 1NK(S) | PK-FK wide |
//! | J2 | TPC-H Q18 (SF10)  | 15M  | 60M   | 60M   | 1K2NK(R) + 1NK(S) | PK-FK wide |
//! | J3 | TPC-H Q19 (SF10)  | 2M   | 2.1M  | 2.1M  | 3NK(R) + 3NK(S)   | PK-FK wide |
//! | J4 | TPC-DS Q64 (SF100)| 1.9M | 58M   | 58M   | 1NK(R) + 3K7NK(S) | PK-FK wide |
//! | J5 | TPC-DS Q95 (SF100)| 72M  | 72M   | 904M  | 1NK(R) + 1NK(S)   | self narrow FK-FK |
//!
//! Following the paper, "K" payload columns (primary/foreign keys carried as
//! payloads) take the join-key width and "NK" columns are 8 bytes; string
//! attributes are dictionary-encoded into integers first (J3 exercises the
//! real [`columnar::DictionaryEncoder`] on TPC-H-shaped brand/container
//! strings). A `scale` factor shrinks the row counts proportionally so the
//! simulator can sweep all five joins quickly.

use crate::synthetic::{key_column, payload_column};
use columnar::{Column, DType, DictionaryEncoder, Relation};
use joins::JoinConfig;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sim::Device;

/// Identifier of one of the five extracted joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TpcJoinId {
    /// TPC-H Q7: supplier ⋈ lineitem side.
    J1,
    /// TPC-H Q18: customer/orders ⋈ lineitem side.
    J2,
    /// TPC-H Q19: part ⋈ lineitem (small inputs).
    J3,
    /// TPC-DS Q64: item ⋈ store_sales (many payload columns on S).
    J4,
    /// TPC-DS Q95: web_sales self join on order number (exploding output).
    J5,
}

impl TpcJoinId {
    /// All five joins, in paper order.
    pub const ALL: [TpcJoinId; 5] = [
        TpcJoinId::J1,
        TpcJoinId::J2,
        TpcJoinId::J3,
        TpcJoinId::J4,
        TpcJoinId::J5,
    ];

    /// The paper's static description of this join.
    pub fn spec(self) -> TpcSpec {
        match self {
            TpcJoinId::J1 => TpcSpec {
                id: "J1",
                benchmark: "TPC-H SF10",
                query: "Q7",
                r_tuples: 15_000_000,
                s_tuples: 18_200_000,
                out_tuples: 18_200_000,
                r_key_payloads: 1,
                r_nonkey_payloads: 3,
                s_key_payloads: 0,
                s_nonkey_payloads: 1,
                self_join: false,
            },
            TpcJoinId::J2 => TpcSpec {
                id: "J2",
                benchmark: "TPC-H SF10",
                query: "Q18",
                r_tuples: 15_000_000,
                s_tuples: 60_000_000,
                out_tuples: 60_000_000,
                r_key_payloads: 1,
                r_nonkey_payloads: 2,
                s_key_payloads: 0,
                s_nonkey_payloads: 1,
                self_join: false,
            },
            TpcJoinId::J3 => TpcSpec {
                id: "J3",
                benchmark: "TPC-H SF10",
                query: "Q19",
                r_tuples: 2_000_000,
                s_tuples: 2_100_000,
                out_tuples: 2_100_000,
                r_key_payloads: 0,
                r_nonkey_payloads: 3,
                s_key_payloads: 0,
                s_nonkey_payloads: 3,
                self_join: false,
            },
            TpcJoinId::J4 => TpcSpec {
                id: "J4",
                benchmark: "TPC-DS SF100",
                query: "Q64",
                r_tuples: 1_900_000,
                s_tuples: 58_000_000,
                out_tuples: 58_000_000,
                r_key_payloads: 0,
                r_nonkey_payloads: 1,
                s_key_payloads: 3,
                s_nonkey_payloads: 7,
                self_join: false,
            },
            TpcJoinId::J5 => TpcSpec {
                id: "J5",
                benchmark: "TPC-DS SF100",
                query: "Q95",
                r_tuples: 72_000_000,
                s_tuples: 72_000_000,
                out_tuples: 904_000_000,
                r_key_payloads: 0,
                r_nonkey_payloads: 1,
                s_key_payloads: 0,
                s_nonkey_payloads: 1,
                self_join: true,
            },
        }
    }
}

impl std::fmt::Display for TpcJoinId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().id)
    }
}

/// Static shape of one Table 6 join.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TpcSpec {
    /// Paper label (J1..J5).
    pub id: &'static str,
    /// Source benchmark and scale factor.
    pub benchmark: &'static str,
    /// Source query.
    pub query: &'static str,
    /// Build-side rows at the paper's scale.
    pub r_tuples: usize,
    /// Probe-side rows at the paper's scale.
    pub s_tuples: usize,
    /// Output rows at the paper's scale.
    pub out_tuples: usize,
    /// Key-typed payload columns on R ("K" in Table 6).
    pub r_key_payloads: usize,
    /// 8-byte payload columns on R ("NK").
    pub r_nonkey_payloads: usize,
    /// Key-typed payload columns on S.
    pub s_key_payloads: usize,
    /// 8-byte payload columns on S.
    pub s_nonkey_payloads: usize,
    /// FK-FK self join (J5): both sides share a duplicated key multiset.
    pub self_join: bool,
}

/// A generated instance: the two relations plus how to join them.
pub struct TpcInstance {
    /// The static spec this instance was generated from.
    pub spec: TpcSpec,
    /// Build side.
    pub r: Relation,
    /// Probe side.
    pub s: Relation,
    /// Join configuration (uniqueness of the build side).
    pub config: JoinConfig,
    /// Expected output cardinality at this scale (approximate for J5).
    pub expected_out: usize,
}

/// Generate one of the Table 6 joins at `scale` (1.0 = the paper's SF10 /
/// SF100 row counts) with `key_type`-wide join keys and key payloads.
pub fn generate(dev: &Device, id: TpcJoinId, scale: f64, key_type: DType) -> TpcInstance {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let spec = id.spec();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE ^ id as u64);
    let nr = ((spec.r_tuples as f64 * scale).round() as usize).max(64);
    let ns = ((spec.s_tuples as f64 * scale).round() as usize).max(64);

    let (r_keys, s_keys, expected_out, unique_build) = if spec.self_join {
        // J5: both sides draw the same duplicated key multiset. The paper's
        // cardinalities imply ~12.5 rows per order number.
        let mult = (spec.out_tuples as f64 / spec.s_tuples as f64).round() as usize;
        let distinct = (nr / mult).max(1);
        let mut keys: Vec<i64> = (0..nr).map(|i| (i % distinct) as i64).collect();
        keys.shuffle(&mut rng);
        let mut keys2 = keys.clone();
        keys2.shuffle(&mut rng);
        // Both sides share the multiset, so |out| = Σ c_k² exactly: keys
        // 0..(nr % distinct) occur ⌊nr/distinct⌋+1 times, the rest ⌊·⌋.
        let q = nr / distinct;
        let rem = nr % distinct;
        let expected = (distinct - rem) * q * q + rem * (q + 1) * (q + 1);
        (keys, keys2, expected, false)
    } else {
        let mut pk: Vec<i64> = (0..nr as i64).collect();
        pk.shuffle(&mut rng);
        let fk: Vec<i64> = (0..ns).map(|_| rng.gen_range(0..nr as i64)).collect();
        (pk, fk, ns, true)
    };

    let mut r_payloads = Vec::new();
    for i in 0..spec.r_key_payloads {
        r_payloads.push(payload_column(
            dev,
            key_type,
            &r_keys,
            i as i64 + 1,
            "tpc.rk",
        ));
    }
    for i in 0..spec.r_nonkey_payloads {
        r_payloads.push(payload_column(
            dev,
            DType::I64,
            &r_keys,
            100 + i as i64,
            "tpc.rnk",
        ));
    }
    // J3 (Q19) filters on string attributes: dictionary-encode brand and
    // container strings into the first NK column of each side, the way the
    // paper preprocesses strings.
    if id == TpcJoinId::J3 {
        let mut dict = DictionaryEncoder::new();
        let brands: Vec<i64> = r_keys
            .iter()
            .map(|&k| dict.encode(&format!("Brand#{}", 11 + (k % 45))) as i64)
            .collect();
        r_payloads[0] = Column::from_i64(dev, brands, "tpc.brand");
    }

    let mut s_payloads = Vec::new();
    for i in 0..spec.s_key_payloads {
        s_payloads.push(payload_column(
            dev,
            key_type,
            &s_keys,
            i as i64 + 1,
            "tpc.sk",
        ));
    }
    for i in 0..spec.s_nonkey_payloads {
        s_payloads.push(payload_column(
            dev,
            DType::I64,
            &s_keys,
            200 + i as i64,
            "tpc.snk",
        ));
    }
    if id == TpcJoinId::J3 {
        let mut dict = DictionaryEncoder::new();
        let containers = [
            "SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX",
        ];
        let vals: Vec<i64> = s_keys
            .iter()
            .map(|&k| dict.encode(containers[(k % 6) as usize]) as i64)
            .collect();
        s_payloads[0] = Column::from_i64(dev, vals, "tpc.container");
    }

    let r = Relation::new(
        format!("{}_R", spec.id),
        key_column(dev, key_type, &r_keys, "tpc.r_key"),
        r_payloads,
    );
    let s = Relation::new(
        format!("{}_S", spec.id),
        key_column(dev, key_type, &s_keys, "tpc.s_key"),
        s_payloads,
    );
    TpcInstance {
        spec,
        r,
        s,
        config: JoinConfig {
            unique_build,
            ..JoinConfig::default()
        },
        expected_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joins::oracle::join_cardinality;
    use sim::Device;

    #[test]
    fn specs_match_table6() {
        let j2 = TpcJoinId::J2.spec();
        assert_eq!(j2.r_tuples, 15_000_000);
        assert_eq!(j2.s_tuples, 60_000_000);
        assert_eq!((j2.r_key_payloads, j2.r_nonkey_payloads), (1, 2));
        let j4 = TpcJoinId::J4.spec();
        assert_eq!((j4.s_key_payloads, j4.s_nonkey_payloads), (3, 7));
        assert!(TpcJoinId::J5.spec().self_join);
    }

    #[test]
    fn pkfk_extracts_have_full_match() {
        let dev = Device::a100();
        for id in [TpcJoinId::J1, TpcJoinId::J2, TpcJoinId::J3, TpcJoinId::J4] {
            let inst = generate(&dev, id, 0.0005, DType::I32);
            assert_eq!(
                join_cardinality(&inst.r, &inst.s),
                inst.s.len(),
                "{id}: every FK must match"
            );
            assert_eq!(inst.expected_out, inst.s.len());
            assert_eq!(
                inst.r.num_payloads(),
                inst.spec.r_key_payloads + inst.spec.r_nonkey_payloads
            );
        }
    }

    #[test]
    fn j5_explodes_by_the_multiplicity_squared() {
        let dev = Device::a100();
        let inst = generate(&dev, TpcJoinId::J5, 0.0002, DType::I32);
        let actual = join_cardinality(&inst.r, &inst.s);
        let ratio = actual as f64 / inst.s.len() as f64;
        // Paper: 904M / 72M ≈ 12.5x explosion.
        assert!(
            (10.0..=16.0).contains(&ratio),
            "output explosion ratio {ratio}"
        );
        assert!(!inst.config.unique_build);
    }

    #[test]
    fn j3_uses_dictionary_encoded_strings() {
        let dev = Device::a100();
        let inst = generate(&dev, TpcJoinId::J3, 0.001, DType::I32);
        // Brand codes are dense, small integers (45 distinct brands).
        let max_code = inst.r.payload(0).iter_i64().max().unwrap();
        assert!(
            max_code < 45,
            "dictionary codes must be dense, got {max_code}"
        );
        let max_cont = inst.s.payload(0).iter_i64().max().unwrap();
        assert!(max_cont < 6);
    }

    #[test]
    fn wide_keys_change_column_width() {
        let dev = Device::a100();
        let inst = generate(&dev, TpcJoinId::J1, 0.0005, DType::I64);
        assert_eq!(inst.r.key().dtype(), DType::I64);
        assert_eq!(inst.r.payload(0).dtype(), DType::I64); // key payload
    }
}
