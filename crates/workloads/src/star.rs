//! Star schemas for the sequences-of-joins experiment (Section 5.2.7,
//! Figure 16): a fact table with `N` foreign keys and `N` dimension tables.

use crate::synthetic::payload_column;
use columnar::{Column, DType, Relation};
use joins::plan::FactTable;
use rand::{Rng, SeedableRng};
use sim::Device;

/// Generate the Figure 16 workload: `|F| = fact_tuples` rows with
/// `num_joins` uniformly distributed FK columns, and `num_joins` dimension
/// tables of `dim_tuples` rows (PK `0..dim_tuples`, shuffled; one payload
/// column each). All FKs match (the paper's setting).
pub fn star_schema(
    dev: &Device,
    fact_tuples: usize,
    dim_tuples: usize,
    num_joins: usize,
    seed: u64,
) -> (FactTable, Vec<Relation>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let fks = (0..num_joins)
        .map(|_| {
            Column::from_i32(
                dev,
                (0..fact_tuples)
                    .map(|_| rng.gen_range(0..dim_tuples as i32))
                    .collect(),
                "star.fk",
            )
        })
        .collect();
    let dims = (0..num_joins)
        .map(|d| {
            let mut pk: Vec<i64> = (0..dim_tuples as i64).collect();
            use rand::seq::SliceRandom;
            pk.shuffle(&mut rng);
            Relation::new(
                format!("D{d}"),
                Column::from_i32(dev, pk.iter().map(|&k| k as i32).collect(), "star.dk"),
                vec![payload_column(
                    dev,
                    DType::I32,
                    &pk,
                    d as i64 + 1,
                    "star.dp",
                )],
            )
        })
        .collect();
    (FactTable::new(fks), dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use joins::{plan::join_sequence, Algorithm, JoinConfig};
    use sim::Device;

    #[test]
    fn all_fks_match_and_pipeline_runs() {
        let dev = Device::a100();
        let (fact, dims) = star_schema(&dev, 2000, 256, 3, 7);
        assert_eq!(fact.len(), 2000);
        assert_eq!(dims.len(), 3);
        let out = join_sequence(&dev, &fact, &dims, Algorithm::PhjOm, &JoinConfig::default());
        assert_eq!(out.rows, 2000, "100% match keeps every fact row");
        assert_eq!(out.payloads.len(), 3);
        // Spot-check payload correctness: every value must equal
        // fk * 31 + (dim index + 1) for some fk in the dimension domain.
        for (d, col) in out.payloads.iter().enumerate() {
            for v in col.iter_i64() {
                let tag = d as i64 + 1;
                let fk = (v - tag) / 31;
                assert_eq!(fk * 31 + tag, v);
                assert!((0..256).contains(&fk));
            }
        }
    }
}
