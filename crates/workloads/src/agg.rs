//! Grouped-aggregation workloads for the SIGMOD-extension experiments:
//! group-count sweeps, skew sweeps, and wide aggregations.

use crate::synthetic::payload_column;
use columnar::{DType, Relation};
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};
use serde::{Deserialize, Serialize};
use sim::Device;

/// Declarative description of a grouped-aggregation input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggWorkload {
    /// Number of input rows.
    pub tuples: usize,
    /// Number of distinct group keys the generator draws from.
    pub groups: usize,
    /// Width of the group-key column.
    pub key_type: DType,
    /// Widths of the columns to aggregate.
    pub payloads: Vec<DType>,
    /// Zipf exponent over the group keys; 0.0 = uniform.
    pub zipf: f64,
    /// RNG seed.
    pub seed: u64,
}

impl AggWorkload {
    /// Uniform groups, one 4-byte value column — the baseline shape.
    pub fn uniform(tuples: usize, groups: usize) -> Self {
        AggWorkload {
            tuples,
            groups,
            key_type: DType::I32,
            payloads: vec![DType::I32],
            zipf: 0.0,
            seed: 42,
        }
    }

    /// Materialize on a device.
    pub fn generate(&self, dev: &Device) -> Relation {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let keys: Vec<i64> = if self.zipf > 0.0 {
            let dist = Zipf::new(self.groups as u64, self.zipf).expect("valid zipf");
            (0..self.tuples)
                .map(|_| dist.sample(&mut rng) as i64 - 1)
                .collect()
        } else {
            (0..self.tuples)
                .map(|_| rng.gen_range(0..self.groups as i64))
                .collect()
        };
        let payloads = self
            .payloads
            .iter()
            .enumerate()
            .map(|(i, &d)| payload_column(dev, d, &keys, i as i64 + 1, "agg.payload"))
            .collect();
        Relation::new(
            "AGG",
            crate::synthetic::key_column(dev, self.key_type, &keys, "agg.key"),
            payloads,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Device;
    use std::collections::HashSet;

    #[test]
    fn group_domain_respected() {
        let dev = Device::a100();
        let w = AggWorkload::uniform(10_000, 64);
        let rel = w.generate(&dev);
        let distinct: HashSet<i64> = rel.key().iter_i64().collect();
        assert!(distinct.len() <= 64);
        assert!(distinct.len() > 48, "uniform draw should hit most groups");
        assert!(rel.key().iter_i64().all(|k| (0..64).contains(&k)));
    }

    #[test]
    fn zipf_concentrates_groups() {
        let dev = Device::a100();
        let w = AggWorkload {
            zipf: 1.75,
            ..AggWorkload::uniform(10_000, 1024)
        };
        let rel = w.generate(&dev);
        let mut counts = std::collections::HashMap::new();
        for k in rel.key().iter_i64() {
            *counts.entry(k).or_insert(0u64) += 1;
        }
        let hottest = *counts.values().max().unwrap();
        assert!(hottest as f64 / 10_000.0 > 0.3);
    }

    #[test]
    fn wide_payloads() {
        let dev = Device::a100();
        let w = AggWorkload {
            payloads: vec![DType::I32, DType::I64, DType::I32],
            ..AggWorkload::uniform(1000, 10)
        };
        let rel = w.generate(&dev);
        assert_eq!(rel.num_payloads(), 3);
        assert_eq!(rel.payload(1).dtype(), DType::I64);
    }
}
