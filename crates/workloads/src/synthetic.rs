//! The microbenchmark workload generator (Section 5.1):
//!
//! * R holds primary keys `0..|R|-1`, randomly shuffled;
//! * S holds foreign keys drawn uniformly (or Zipf-distributed) from R's
//!   key domain;
//! * the match ratio is lowered by replacing a fraction of R's primary keys
//!   with values outside the foreign-key domain (Section 5.2.3);
//! * payloads are derived deterministically from the key so tests can check
//!   results without shipping the generator's state around.

use columnar::{Column, DType, Relation};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};
use serde::{Deserialize, Serialize};
use sim::Device;

/// Width of one payload column.
pub type PayloadSpec = DType;

/// Declarative description of a two-relation PK-FK join workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinWorkload {
    /// Rows in the primary-key relation R.
    pub r_tuples: usize,
    /// Rows in the foreign-key relation S.
    pub s_tuples: usize,
    /// Width of the join key columns.
    pub key_type: DType,
    /// Payload column widths for R.
    pub r_payloads: Vec<PayloadSpec>,
    /// Payload column widths for S.
    pub s_payloads: Vec<PayloadSpec>,
    /// Fraction of S tuples that find a partner (1.0 = every FK matches,
    /// the paper's default).
    pub match_ratio: f64,
    /// Zipf exponent for the FK distribution; 0.0 = uniform.
    pub zipf: f64,
    /// RNG seed (fixed seeds make every experiment reproducible).
    pub seed: u64,
}

impl JoinWorkload {
    /// The paper's default shape: narrow 4-byte join with `|S| = 2|R|`,
    /// 100% match ratio, uniform keys.
    pub fn narrow(r_tuples: usize) -> Self {
        JoinWorkload {
            r_tuples,
            s_tuples: r_tuples * 2,
            key_type: DType::I32,
            r_payloads: vec![DType::I32],
            s_payloads: vec![DType::I32],
            match_ratio: 1.0,
            zipf: 0.0,
            seed: 42,
        }
    }

    /// The paper's wide-join shape: two payload columns per relation
    /// (Figure 10).
    pub fn wide(r_tuples: usize) -> Self {
        JoinWorkload {
            r_payloads: vec![DType::I32; 2],
            s_payloads: vec![DType::I32; 2],
            ..Self::narrow(r_tuples)
        }
    }

    /// Total input bytes (the paper's `1G ⋈ 2G` notation measures this).
    pub fn total_bytes(&self) -> u64 {
        let row = |payloads: &[DType]| {
            self.key_type.size() + payloads.iter().map(|d| d.size()).sum::<u64>()
        };
        self.r_tuples as u64 * row(&self.r_payloads) + self.s_tuples as u64 * row(&self.s_payloads)
    }

    /// Total input tuples `|R| + |S|` (the throughput denominator).
    pub fn total_tuples(&self) -> usize {
        self.r_tuples + self.s_tuples
    }

    /// Materialize the workload on a device.
    pub fn generate(&self, dev: &Device) -> (Relation, Relation) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let nr = self.r_tuples;

        // Primary keys 0..nr-1, shuffled; a (1 - match_ratio) fraction is
        // bumped out of the FK domain so those S tuples dangle.
        let mut pk: Vec<i64> = (0..nr as i64).collect();
        pk.shuffle(&mut rng);
        if self.match_ratio < 1.0 {
            let replace = ((1.0 - self.match_ratio) * nr as f64).round() as usize;
            for slot in pk.iter_mut().take(replace) {
                *slot += nr as i64; // outside 0..nr, never referenced by S
            }
        }

        // Foreign keys: uniform or Zipf over the *original* PK domain.
        let fk: Vec<i64> = if self.zipf > 0.0 {
            let dist = Zipf::new(nr as u64, self.zipf).expect("valid zipf parameters");
            (0..self.s_tuples)
                .map(|_| dist.sample(&mut rng) as i64 - 1)
                .collect()
        } else {
            (0..self.s_tuples)
                .map(|_| rng.gen_range(0..nr as i64))
                .collect()
        };

        let r = Relation::new(
            "R",
            key_column(dev, self.key_type, &pk, "r.key"),
            self.r_payloads
                .iter()
                .enumerate()
                .map(|(i, &d)| payload_column(dev, d, &pk, i as i64 + 1, "r.payload"))
                .collect(),
        );
        let s = Relation::new(
            "S",
            key_column(dev, self.key_type, &fk, "s.key"),
            self.s_payloads
                .iter()
                .enumerate()
                .map(|(i, &d)| payload_column(dev, d, &fk, -(i as i64) - 1, "s.payload"))
                .collect(),
        );
        (r, s)
    }
}

/// Build a key column of the requested width. Panics if a value does not
/// fit (4-byte workloads cap the domain well below `i32::MAX`).
pub fn key_column(dev: &Device, dtype: DType, values: &[i64], label: &'static str) -> Column {
    match dtype {
        DType::I32 => Column::from_i32(
            dev,
            values
                .iter()
                .map(|&v| i32::try_from(v).expect("key exceeds 4-byte domain"))
                .collect(),
            label,
        ),
        DType::I64 => Column::from_i64(dev, values.to_vec(), label),
    }
}

/// Deterministic payload derived from the key: `key * 31 + tag`, truncated
/// to the column width. Tests recompute this to validate join outputs.
pub fn payload_column(
    dev: &Device,
    dtype: DType,
    keys: &[i64],
    tag: i64,
    label: &'static str,
) -> Column {
    match dtype {
        DType::I32 => Column::from_i32(
            dev,
            keys.iter()
                .map(|&k| (k.wrapping_mul(31).wrapping_add(tag)) as i32)
                .collect(),
            label,
        ),
        DType::I64 => Column::from_i64(
            dev,
            keys.iter()
                .map(|&k| k.wrapping_mul(31).wrapping_add(tag))
                .collect(),
            label,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joins::oracle::join_cardinality;
    use sim::Device;

    #[test]
    fn full_match_ratio_matches_every_s_tuple() {
        let dev = Device::a100();
        let w = JoinWorkload::narrow(1000);
        let (r, s) = w.generate(&dev);
        assert_eq!(r.len(), 1000);
        assert_eq!(s.len(), 2000);
        assert_eq!(join_cardinality(&r, &s), 2000);
    }

    #[test]
    fn match_ratio_scales_join_cardinality() {
        let dev = Device::a100();
        for ratio in [0.25, 0.5, 0.75] {
            let w = JoinWorkload {
                match_ratio: ratio,
                ..JoinWorkload::narrow(2000)
            };
            let (r, s) = w.generate(&dev);
            let matched = join_cardinality(&r, &s) as f64 / s.len() as f64;
            assert!(
                (matched - ratio).abs() < 0.05,
                "requested {ratio}, observed {matched}"
            );
        }
    }

    #[test]
    fn zipf_concentrates_mass() {
        let dev = Device::a100();
        let w = JoinWorkload {
            zipf: 1.5,
            ..JoinWorkload::narrow(4096)
        };
        let (_, s) = w.generate(&dev);
        let mut counts = std::collections::HashMap::new();
        for v in s.key().iter_i64() {
            *counts.entry(v).or_insert(0u64) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        // Under Zipf(1.5) the hottest of 4096 keys draws a large share;
        // uniform would put ~1/4096 on each.
        assert!(
            max as f64 / s.len() as f64 > 0.2,
            "hottest share {}",
            max as f64 / s.len() as f64
        );
        // And the keys stay inside the PK domain.
        assert!(counts.keys().all(|&k| (0..4096).contains(&k)));
    }

    #[test]
    fn same_seed_reproduces_different_seed_differs() {
        let dev = Device::a100();
        let w = JoinWorkload::narrow(512);
        let (r1, _) = w.generate(&dev);
        let (r2, _) = w.generate(&dev);
        assert_eq!(r1.key().to_vec_i64(), r2.key().to_vec_i64());
        let w2 = JoinWorkload {
            seed: 43,
            ..JoinWorkload::narrow(512)
        };
        let (r3, _) = w2.generate(&dev);
        assert_ne!(r1.key().to_vec_i64(), r3.key().to_vec_i64());
    }

    #[test]
    fn byte_accounting() {
        let w = JoinWorkload {
            r_payloads: vec![DType::I64, DType::I32],
            s_payloads: vec![DType::I32],
            ..JoinWorkload::narrow(100)
        };
        // R: 100 * (4 + 8 + 4), S: 200 * (4 + 4).
        assert_eq!(w.total_bytes(), 100 * 16 + 200 * 8);
        assert_eq!(w.total_tuples(), 300);
    }

    #[test]
    fn wide_payloads_are_derivable_from_keys() {
        let dev = Device::a100();
        let w = JoinWorkload::wide(256);
        let (r, _) = w.generate(&dev);
        for i in 0..r.len() {
            let k = r.key().value(i);
            assert_eq!(r.payload(0).value(i), (k * 31 + 1) as i32 as i64);
            assert_eq!(r.payload(1).value(i), (k * 31 + 2) as i32 as i64);
        }
    }
}
