//! Sampling-based workload statistics.
//!
//! Section 5.4 of the paper: the decision tree's inputs (match ratio, skew,
//! widths, sizes) are "typically available to an optimizer". This module
//! produces them when they are *not* available, from a cheap device-side
//! sample: one clustered gather of `sample_size` probe keys plus a build-side
//! membership filter, a few microseconds at any realistic size.

use crate::{profile_from_stats, SideShape, WorkloadProfile};
use columnar::{Column, Relation};
use serde::{Deserialize, Serialize};
use sim::Device;
use std::collections::HashMap;

/// Statistics estimated from a key sample.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EstimatedStats {
    /// Estimated fraction of probe tuples with a build-side partner.
    pub match_ratio: f64,
    /// Share of the sample held by the most frequent probe key — the skew
    /// signal (uniform keys over `d` distinct values give ~1/d; a Zipf(1+)
    /// distribution gives tens of percent).
    pub top_key_share: f64,
    /// Sample size actually used.
    pub sample_size: usize,
}

impl EstimatedStats {
    /// The skew verdict the decision tree wants: is the hottest key heavy
    /// enough to serialize bucket-chain atomics? The 5% threshold maps to
    /// roughly Zipf ≥ 1 over realistic domains (compare Figure 14).
    pub fn skewed(&self) -> bool {
        self.top_key_share > 0.05
    }
}

/// Estimate match ratio and skew by sampling `sample_size` evenly spaced
/// probe keys and testing membership against a build-side key set.
///
/// Device cost: one strided sample gather of the probe keys and one
/// build-side read to assemble the membership filter (on hardware this is a
/// Bloom filter build; we charge the same streaming pass).
pub fn sample_stats(
    dev: &Device,
    r: &Relation,
    s: &Relation,
    sample_size: usize,
) -> EstimatedStats {
    let n = s.len();
    let sample_size = sample_size.clamp(1, n.max(1));
    // Membership filter from R's keys (streaming read, like a Bloom build).
    let build: std::collections::HashSet<i64> = r.key().iter_i64().collect();
    dev.kernel("estimate.filter_build")
        .items(r.len() as u64, primitives::STREAM_WARP_INSTR)
        .seq_read_bytes(r.key().size_bytes())
        .launch();

    // Evenly spaced probe sample (clustered-ish strided gather).
    let stride = (n / sample_size).max(1);
    let mut matched = 0usize;
    let mut freq: HashMap<i64, usize> = HashMap::new();
    let mut taken = 0usize;
    let mut i = 0usize;
    while i < n && taken < sample_size {
        let k = s.key().value(i);
        if build.contains(&k) {
            matched += 1;
        }
        *freq.entry(k).or_insert(0) += 1;
        taken += 1;
        i += stride;
    }
    dev.kernel("estimate.sample_probe")
        .items(taken as u64, primitives::STREAM_WARP_INSTR)
        .seq_read_bytes(taken as u64 * s.key().dtype().size())
        .launch();

    let top = freq.values().copied().max().unwrap_or(0);
    EstimatedStats {
        match_ratio: if taken == 0 {
            0.0
        } else {
            matched as f64 / taken as f64
        },
        top_key_share: if taken == 0 {
            0.0
        } else {
            top as f64 / taken as f64
        },
        sample_size: taken,
    }
}

/// Statistics estimated from a grouping-key sample.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EstimatedGroupStats {
    /// Estimated number of distinct groups in the full column (Chao1
    /// extrapolation from the sample).
    pub est_groups: usize,
    /// Share of the sample held by the most frequent key — same skew signal
    /// as [`EstimatedStats::top_key_share`].
    pub top_key_share: f64,
    /// Sample size actually used.
    pub sample_size: usize,
}

impl EstimatedGroupStats {
    /// Is the hottest group heavy enough to serialize atomic updates on the
    /// global hash table? Same 5% threshold as the join-side estimator.
    pub fn skewed(&self) -> bool {
        self.top_key_share > 0.05
    }
}

/// Estimate the distinct-group count and key skew of a grouping column by
/// sampling `sample_size` evenly spaced keys.
///
/// The extrapolation is the Chao1 estimator `d + f1^2 / (2 f2)` (singletons
/// `f1`, doubletons `f2` in the sample), clamped to `[d_sample, rows]` — the
/// standard abundance-based richness estimate, good enough to tell "the
/// table is L2-resident" from "it is not", which is all the decision tree
/// needs. Device cost: one strided sample gather, same as [`sample_stats`].
pub fn sample_group_stats(dev: &Device, key: &Column, sample_size: usize) -> EstimatedGroupStats {
    let n = key.len();
    let sample_size = sample_size.clamp(1, n.max(1));
    // Pseudo-random positions (splitmix64, fixed seed): Chao1 assumes a
    // random sample, and a deterministic stride both aliases with cyclic
    // key layouts and never produces the duplicate draws the estimator
    // counts. With-replacement draws are fine at these sampling fractions.
    let mut freq: HashMap<i64, usize> = HashMap::new();
    let mut taken = 0usize;
    if n > 0 {
        for j in 0..sample_size {
            let mut z = (j as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            *freq.entry(key.value((z % n as u64) as usize)).or_insert(0) += 1;
            taken += 1;
        }
    }
    dev.kernel("estimate.group_sample")
        .items(taken as u64, primitives::STREAM_WARP_INSTR)
        .seq_read_bytes(taken as u64 * key.dtype().size())
        .launch();

    let d = freq.len();
    let f1 = freq.values().filter(|&&c| c == 1).count();
    let f2 = freq.values().filter(|&&c| c == 2).count();
    // Chao1; the f2 == 0 form follows Chao (1984)'s bias-corrected variant.
    let extra = if f2 > 0 {
        (f1 * f1) as f64 / (2 * f2) as f64
    } else {
        (f1 * (f1.saturating_sub(1))) as f64 / 2.0
    };
    let est_groups = ((d as f64 + extra).round() as usize).clamp(d, n.max(d));
    let top = freq.values().copied().max().unwrap_or(0);
    EstimatedGroupStats {
        est_groups,
        top_key_share: if taken == 0 {
            0.0
        } else {
            top as f64 / taken as f64
        },
        sample_size: taken,
    }
}

/// Build a full [`WorkloadProfile`] from the relations plus sampled
/// statistics — the estimator-backed version of [`crate::profile_of`].
pub fn estimate_profile(
    dev: &Device,
    r: &Relation,
    s: &Relation,
    sample_size: usize,
) -> WorkloadProfile {
    estimate_profile_with_stats(dev, r, s, sample_size).0
}

/// [`estimate_profile`] keeping the raw sample behind the profile — the
/// provenance-capturing variant. Identical device cost and identical
/// profile: the plain version is implemented on top of this one.
pub fn estimate_profile_with_stats(
    dev: &Device,
    r: &Relation,
    s: &Relation,
    sample_size: usize,
) -> (WorkloadProfile, EstimatedStats) {
    let stats = sample_stats(dev, r, s, sample_size);
    let profile = profile_from_stats(
        &stats,
        &SideShape::of(r),
        &SideShape::of(s),
        dev.config().l2_bytes,
    );
    (profile, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::Column;
    use sim::Device;

    fn rel(dev: &Device, keys: Vec<i32>) -> Relation {
        let p = keys.clone();
        Relation::new(
            "T",
            Column::from_i32(dev, keys, "k"),
            vec![Column::from_i32(dev, p, "p")],
        )
    }

    #[test]
    fn match_ratio_estimate_tracks_truth() {
        let dev = Device::a100();
        let nr = 4000;
        let r = rel(&dev, (0..nr).collect());
        for ratio in [0.25f64, 0.5, 1.0] {
            // FKs drawn so that `ratio` of them land inside R's domain.
            let s_keys: Vec<i32> = (0..8000)
                .map(|i| {
                    if (i as f64 / 8000.0) < ratio {
                        i % nr
                    } else {
                        nr + i // outside the domain
                    }
                })
                .collect();
            let s = rel(&dev, s_keys);
            let est = sample_stats(&dev, &r, &s, 512);
            assert!(
                (est.match_ratio - ratio).abs() < 0.12,
                "true {ratio}, estimated {}",
                est.match_ratio
            );
        }
    }

    #[test]
    fn skew_detection() {
        let dev = Device::a100();
        let r = rel(&dev, (0..1024).collect());
        let uniform = rel(&dev, (0..8192).map(|i| i % 1024).collect());
        let est = sample_stats(&dev, &r, &uniform, 512);
        assert!(!est.skewed(), "uniform keys flagged skewed: {est:?}");

        let skewed = rel(
            &dev,
            (0..8192)
                .map(|i| if i % 3 == 0 { i % 1024 } else { 7 })
                .collect(),
        );
        let est = sample_stats(&dev, &r, &skewed, 512);
        assert!(est.skewed(), "2/3 mass on one key must flag: {est:?}");
    }

    #[test]
    fn estimator_charges_device_time_proportional_to_sample() {
        let dev = Device::a100();
        let r = rel(&dev, (0..1000).collect());
        let s = rel(&dev, (0..100_000).map(|i| i % 1000).collect());
        dev.reset_stats();
        let _ = sample_stats(&dev, &r, &s, 256);
        let t = dev.elapsed().secs();
        assert!(t > 0.0, "sampling is charged");
        // Far cheaper than a pass over S.
        dev.reset_stats();
        dev.kernel("estimate.full_scan")
            .seq_read_bytes(s.key().size_bytes())
            .launch();
        assert!(t < 10.0 * dev.elapsed().secs());
    }

    #[test]
    fn profile_composes_estimates_with_schema_facts() {
        let dev = Device::a100();
        let r = rel(&dev, (0..512).collect());
        let s = rel(&dev, (0..2048).map(|i| i % 512).collect());
        let p = estimate_profile(&dev, &r, &s, 256);
        assert!(!p.wide);
        assert!(p.match_ratio > 0.9);
        assert!(!p.has_8byte);
        assert!(p.small_inputs);
    }

    #[test]
    fn group_estimate_tracks_truth() {
        let dev = Device::a100();
        for d in [16usize, 256, 4096] {
            let keys = Column::from_i32(&dev, (0..65_536).map(|i| (i % d) as i32).collect(), "g");
            let est = sample_group_stats(&dev, &keys, 1024);
            assert!(
                est.est_groups >= d / 4 && est.est_groups <= d * 8,
                "true {d} groups, estimated {}",
                est.est_groups
            );
        }
    }

    #[test]
    fn group_skew_detection() {
        let dev = Device::a100();
        let uniform = Column::from_i32(&dev, (0..8192).map(|i| i % 1024).collect(), "g");
        assert!(!sample_group_stats(&dev, &uniform, 512).skewed());
        let hot = Column::from_i32(
            &dev,
            (0..8192).map(|i| if i % 2 == 0 { 7 } else { i }).collect(),
            "g",
        );
        assert!(sample_group_stats(&dev, &hot, 512).skewed());
    }

    #[test]
    fn empty_probe_side() {
        let dev = Device::a100();
        let r = rel(&dev, vec![1, 2, 3]);
        let s = rel(&dev, vec![]);
        let est = sample_stats(&dev, &r, &s, 64);
        assert_eq!(est.match_ratio, 0.0);
        assert!(!est.skewed());
    }

    /// The values must be finite (no NaN/Inf anywhere the explain layer
    /// would print) and the record must serialize to a complete JSON object
    /// — the renderability contract provenance capture relies on.
    fn assert_renderable(est: &EstimatedGroupStats) {
        assert!(est.top_key_share.is_finite(), "top_key_share NaN: {est:?}");
        assert!(
            (0.0..=1.0).contains(&est.top_key_share),
            "share out of range: {est:?}"
        );
        let v = serde_json::to_value(est);
        for field in ["est_groups", "top_key_share", "sample_size"] {
            assert!(!v[field].is_null(), "field {field} missing/null: {v:?}");
        }
        let text = serde_json::to_string(est).expect("serializes");
        assert!(
            !text.contains("null") && !text.contains("NaN"),
            "unrenderable value in {text}"
        );
    }

    #[test]
    fn chao1_on_empty_column() {
        let dev = Device::a100();
        let empty = Column::from_i32(&dev, vec![], "g");
        let est = sample_group_stats(&dev, &empty, 512);
        assert_eq!(est.est_groups, 0);
        assert_eq!(est.sample_size, 0);
        assert_eq!(est.top_key_share, 0.0);
        assert!(!est.skewed());
        assert_renderable(&est);
    }

    #[test]
    fn chao1_on_all_distinct_sample() {
        let dev = Device::a100();
        // Far more distinct keys than sample draws: essentially every draw
        // is a singleton, f2 ~ 0, so the bias-corrected f1(f1-1)/2 form
        // fires. The estimate explodes upward by design — the clamp must
        // cap it at the row count, never NaN or overflow.
        let n = 1 << 20;
        let keys = Column::from_i32(&dev, (0..n).collect(), "g");
        let est = sample_group_stats(&dev, &keys, 256);
        assert!(est.est_groups >= 200, "mostly singletons: {est:?}");
        assert!(est.est_groups <= n as usize, "clamped to rows: {est:?}");
        assert!(!est.skewed(), "all-distinct is the opposite of skew");
        assert_renderable(&est);
    }

    #[test]
    fn chao1_on_single_group_sample() {
        let dev = Device::a100();
        let keys = Column::from_i32(&dev, vec![42; 4096], "g");
        let est = sample_group_stats(&dev, &keys, 512);
        // One group, zero singletons and doubletons: d=1, extra=0.
        assert_eq!(est.est_groups, 1);
        assert_eq!(est.top_key_share, 1.0);
        assert!(est.skewed(), "one group holding everything is maximal skew");
        assert_renderable(&est);
    }

    #[test]
    fn chao1_on_single_row_column() {
        let dev = Device::a100();
        let keys = Column::from_i32(&dev, vec![7], "g");
        let est = sample_group_stats(&dev, &keys, 512);
        // One row sampled once or more: d=1, f1 counts at most one
        // singleton, and the clamp pins the estimate to [1, 1].
        assert_eq!(est.est_groups, 1);
        assert_renderable(&est);
    }

    #[test]
    fn with_stats_variant_matches_plain_profile_and_device_cost() {
        let dev = Device::a100();
        let r = rel(&dev, (0..512).collect());
        let s = rel(&dev, (0..2048).map(|i| i % 512).collect());
        let plain = estimate_profile(&dev, &r, &s, 256);
        let t_plain = dev.elapsed().secs();
        dev.reset_stats();
        let (profile, stats) = estimate_profile_with_stats(&dev, &r, &s, 256);
        assert_eq!(dev.elapsed().secs().to_bits(), t_plain.to_bits());
        assert_eq!(profile.match_ratio.to_bits(), plain.match_ratio.to_bits());
        assert_eq!(profile.skewed, plain.skewed);
        assert_eq!(stats.sample_size, 256);
    }
}
