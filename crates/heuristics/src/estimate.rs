//! Sampling-based workload statistics.
//!
//! Section 5.4 of the paper: the decision tree's inputs (match ratio, skew,
//! widths, sizes) are "typically available to an optimizer". This module
//! produces them when they are *not* available, from a cheap device-side
//! sample: one clustered gather of `sample_size` probe keys plus a build-side
//! membership filter, a few microseconds at any realistic size.

use crate::WorkloadProfile;
use columnar::{DType, Relation};
use sim::Device;
use std::collections::HashMap;

/// Statistics estimated from a key sample.
#[derive(Debug, Clone, Copy)]
pub struct EstimatedStats {
    /// Estimated fraction of probe tuples with a build-side partner.
    pub match_ratio: f64,
    /// Share of the sample held by the most frequent probe key — the skew
    /// signal (uniform keys over `d` distinct values give ~1/d; a Zipf(1+)
    /// distribution gives tens of percent).
    pub top_key_share: f64,
    /// Sample size actually used.
    pub sample_size: usize,
}

impl EstimatedStats {
    /// The skew verdict the decision tree wants: is the hottest key heavy
    /// enough to serialize bucket-chain atomics? The 5% threshold maps to
    /// roughly Zipf ≥ 1 over realistic domains (compare Figure 14).
    pub fn skewed(&self) -> bool {
        self.top_key_share > 0.05
    }
}

/// Estimate match ratio and skew by sampling `sample_size` evenly spaced
/// probe keys and testing membership against a build-side key set.
///
/// Device cost: one strided sample gather of the probe keys and one
/// build-side read to assemble the membership filter (on hardware this is a
/// Bloom filter build; we charge the same streaming pass).
pub fn sample_stats(
    dev: &Device,
    r: &Relation,
    s: &Relation,
    sample_size: usize,
) -> EstimatedStats {
    let n = s.len();
    let sample_size = sample_size.clamp(1, n.max(1));
    // Membership filter from R's keys (streaming read, like a Bloom build).
    let build: std::collections::HashSet<i64> = r.key().iter_i64().collect();
    dev.kernel("estimate_filter_build")
        .items(r.len() as u64, primitives::STREAM_WARP_INSTR)
        .seq_read_bytes(r.key().size_bytes())
        .launch();

    // Evenly spaced probe sample (clustered-ish strided gather).
    let stride = (n / sample_size).max(1);
    let mut matched = 0usize;
    let mut freq: HashMap<i64, usize> = HashMap::new();
    let mut taken = 0usize;
    let mut i = 0usize;
    while i < n && taken < sample_size {
        let k = s.key().value(i);
        if build.contains(&k) {
            matched += 1;
        }
        *freq.entry(k).or_insert(0) += 1;
        taken += 1;
        i += stride;
    }
    dev.kernel("estimate_sample_probe")
        .items(taken as u64, primitives::STREAM_WARP_INSTR)
        .seq_read_bytes(taken as u64 * s.key().dtype().size())
        .launch();

    let top = freq.values().copied().max().unwrap_or(0);
    EstimatedStats {
        match_ratio: if taken == 0 {
            0.0
        } else {
            matched as f64 / taken as f64
        },
        top_key_share: if taken == 0 {
            0.0
        } else {
            top as f64 / taken as f64
        },
        sample_size: taken,
    }
}

/// Build a full [`WorkloadProfile`] from the relations plus sampled
/// statistics — the estimator-backed version of [`crate::profile_of`].
pub fn estimate_profile(
    dev: &Device,
    r: &Relation,
    s: &Relation,
    sample_size: usize,
) -> WorkloadProfile {
    let stats = sample_stats(dev, r, s, sample_size);
    let has_8byte = r.key().dtype() == DType::I64
        || s.key().dtype() == DType::I64
        || r.payloads().iter().any(|c| c.dtype() == DType::I64)
        || s.payloads().iter().any(|c| c.dtype() == DType::I64);
    WorkloadProfile {
        wide: r.num_payloads() > 1 || s.num_payloads() > 1,
        match_ratio: stats.match_ratio,
        skewed: stats.skewed(),
        has_8byte,
        small_inputs: r.size_bytes().max(s.size_bytes()) < dev.config().l2_bytes / 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::Column;
    use sim::Device;

    fn rel(dev: &Device, keys: Vec<i32>) -> Relation {
        let p = keys.clone();
        Relation::new(
            "T",
            Column::from_i32(dev, keys, "k"),
            vec![Column::from_i32(dev, p, "p")],
        )
    }

    #[test]
    fn match_ratio_estimate_tracks_truth() {
        let dev = Device::a100();
        let nr = 4000;
        let r = rel(&dev, (0..nr).collect());
        for ratio in [0.25f64, 0.5, 1.0] {
            // FKs drawn so that `ratio` of them land inside R's domain.
            let s_keys: Vec<i32> = (0..8000)
                .map(|i| {
                    if (i as f64 / 8000.0) < ratio {
                        i % nr
                    } else {
                        nr + i // outside the domain
                    }
                })
                .collect();
            let s = rel(&dev, s_keys);
            let est = sample_stats(&dev, &r, &s, 512);
            assert!(
                (est.match_ratio - ratio).abs() < 0.12,
                "true {ratio}, estimated {}",
                est.match_ratio
            );
        }
    }

    #[test]
    fn skew_detection() {
        let dev = Device::a100();
        let r = rel(&dev, (0..1024).collect());
        let uniform = rel(&dev, (0..8192).map(|i| i % 1024).collect());
        let est = sample_stats(&dev, &r, &uniform, 512);
        assert!(!est.skewed(), "uniform keys flagged skewed: {est:?}");

        let skewed = rel(
            &dev,
            (0..8192)
                .map(|i| if i % 3 == 0 { i % 1024 } else { 7 })
                .collect(),
        );
        let est = sample_stats(&dev, &r, &skewed, 512);
        assert!(est.skewed(), "2/3 mass on one key must flag: {est:?}");
    }

    #[test]
    fn estimator_charges_device_time_proportional_to_sample() {
        let dev = Device::a100();
        let r = rel(&dev, (0..1000).collect());
        let s = rel(&dev, (0..100_000).map(|i| i % 1000).collect());
        dev.reset_stats();
        let _ = sample_stats(&dev, &r, &s, 256);
        let t = dev.elapsed().secs();
        assert!(t > 0.0, "sampling is charged");
        // Far cheaper than a pass over S.
        dev.reset_stats();
        dev.kernel("full_scan")
            .seq_read_bytes(s.key().size_bytes())
            .launch();
        assert!(t < 10.0 * dev.elapsed().secs());
    }

    #[test]
    fn profile_composes_estimates_with_schema_facts() {
        let dev = Device::a100();
        let r = rel(&dev, (0..512).collect());
        let s = rel(&dev, (0..2048).map(|i| i % 512).collect());
        let p = estimate_profile(&dev, &r, &s, 256);
        assert!(!p.wide);
        assert!(p.match_ratio > 0.9);
        assert!(!p.has_8byte);
        assert!(p.small_inputs);
    }

    #[test]
    fn empty_probe_side() {
        let dev = Device::a100();
        let r = rel(&dev, vec![1, 2, 3]);
        let s = rel(&dev, vec![]);
        let est = sample_stats(&dev, &r, &s, 64);
        assert_eq!(est.match_ratio, 0.0);
        assert!(!est.skewed());
    }
}
