//! Composite grouping/ordering keys on single-key kernels.
//!
//! The paper's join and grouped-aggregation kernels take one integer key
//! column. SQL's multi-column GROUP BY / ORDER BY therefore lowers to a
//! *synthesized* key, and this module is the decision tree that picks how:
//!
//! - **Pack** — when the columns' value ranges fit 63 bits together, pack
//!   them into one i64 (each column shifted into its own bit field, offsets
//!   removed). The packed key sorts/hashes exactly like the tuple it
//!   encodes — lexicographic order is preserved — and unpacks at the
//!   boundary with one Div/Mod projection per column.
//! - **FdReduce** — when the ranges are too wide but one grouping column
//!   functionally determines the rest (a declared primary key surviving
//!   the joins), group by the determinant alone and carry the determined
//!   columns through as `MAX` aggregates (constant per group, so any
//!   exemplar aggregate reproduces them).
//! - **Reject** — neither applies; the query is outside the supported
//!   subset and the binder reports it rather than silently overflowing.
//!
//! Like the join and aggregation trees in the crate root, the tree is data:
//! the planner and the EXPLAIN provenance walk the same branches by
//! construction.

use super::{walk_tree, Branch, Explained};

/// What the lowering knows about a composite key when it must choose a
/// strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompositeProfile {
    /// Number of key columns.
    pub columns: usize,
    /// Total bits needed to pack every column's `[min, max]` range
    /// side by side (sum of per-column `ceil(log2(span + 1))`).
    pub bits_required: u32,
    /// Rows feeding the grouping/sort.
    pub rows: usize,
    /// Whether one key column functionally determines all the others.
    pub fd_available: bool,
}

/// How to run a multi-column GROUP BY / ORDER BY on single-key kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompositeStrategy {
    /// Pack the columns into one 63-bit integer key.
    Pack,
    /// Group by the functionally-determining column; carry the rest as
    /// exemplar aggregates.
    FdReduce,
    /// Unsupported: ranges too wide and no functional dependency.
    Reject,
}

impl CompositeStrategy {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CompositeStrategy::Pack => "PACK",
            CompositeStrategy::FdReduce => "FD-REDUCE",
            CompositeStrategy::Reject => "REJECT",
        }
    }
}

/// Bits needed to distinguish `span + 1` values (a column whose range is
/// `[min, max]` has span `max - min`). Zero-span (constant) columns still
/// take one bit so every column owns a field and unpacking stays uniform.
pub fn bits_for_span(span: u64) -> u32 {
    64 - span.max(1).leading_zeros()
}

static COMPOSITE_TREE: [Branch<CompositeProfile, CompositeStrategy>; 3] = [
    Branch {
        guard: "ranges pack into 63 bits",
        holds: |p| p.bits_required <= 63,
        algorithm: CompositeStrategy::Pack,
        rationale: "the columns' value ranges fit one i64 side by side: pack them into \
                    a synthesized key (order-preserving), run the single-key kernel, \
                    unpack at the boundary with one Div/Mod projection per column",
    },
    Branch {
        guard: "a key column determines the rest",
        holds: |p| p.fd_available,
        algorithm: CompositeStrategy::FdReduce,
        rationale: "ranges overflow 63 bits but one grouping column functionally \
                    determines the others (primary key surviving the joins): group by \
                    the determinant alone and carry the rest as exemplar aggregates",
    },
    Branch {
        guard: "otherwise",
        holds: |_| true,
        algorithm: CompositeStrategy::Reject,
        rationale: "ranges overflow 63 bits and no functional dependency covers the \
                    key: outside the supported subset, reported rather than silently \
                    overflowing the packed key",
    },
];

/// Walk the composite-key tree with full provenance.
pub fn explain_choose_composite(p: &CompositeProfile) -> Explained<CompositeStrategy> {
    walk_tree(&COMPOSITE_TREE, p, CompositeStrategy::name)
}

/// The choice alone.
pub fn choose_composite(p: &CompositeProfile) -> CompositeStrategy {
    explain_choose_composite(p).algorithm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(bits: u32, fd: bool) -> CompositeProfile {
        CompositeProfile {
            columns: 3,
            bits_required: bits,
            rows: 1 << 20,
            fd_available: fd,
        }
    }

    #[test]
    fn narrow_ranges_pack() {
        let e = explain_choose_composite(&profile(55, false));
        assert_eq!(e.algorithm, CompositeStrategy::Pack);
        assert!(e.rejected.is_empty());
    }

    #[test]
    fn wide_ranges_fall_back_to_the_functional_dependency() {
        let e = explain_choose_composite(&profile(76, true));
        assert_eq!(e.algorithm, CompositeStrategy::FdReduce);
        assert_eq!(e.rejected.len(), 1);
        assert_eq!(e.rejected[0].algorithm, "PACK");
    }

    #[test]
    fn wide_ranges_without_fd_reject() {
        let e = explain_choose_composite(&profile(76, false));
        assert_eq!(e.algorithm, CompositeStrategy::Reject);
        assert_eq!(e.rejected.len(), 2);
    }

    #[test]
    fn bit_widths() {
        assert_eq!(bits_for_span(0), 1); // constant column still owns a bit
        assert_eq!(bits_for_span(1), 1);
        assert_eq!(bits_for_span(2), 2);
        assert_eq!(bits_for_span(255), 8);
        assert_eq!(bits_for_span(256), 9);
        assert_eq!(bits_for_span(u64::MAX - 1), 64);
    }
}
