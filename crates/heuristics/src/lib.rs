//! # heuristics — the paper's decision trees (Figure 18)
//!
//! Section 5.4 distills the performance study into rules a query optimizer
//! can apply from workload statistics it already has: payload widths, match
//! ratio estimates, skew estimates, and input sizes.
//!
//! * [`choose_join`] encodes Figure 18a — picking among all four GPU
//!   implementations;
//! * [`choose_smj`] encodes Figure 18b — the SMJ-OM vs SMJ-UM subtree;
//! * [`profile_of`] derives a [`WorkloadProfile`] from actual relations, so
//!   the recommendation can be validated against measured runs (the
//!   `fig18_decision_tree` experiment does exactly that);
//! * [`estimate`] fills the statistics an optimizer would otherwise supply
//!   (match ratio, skew) by sampling — Section 5.4's "this type of
//!   information is typically available to an optimizer", made operational.

pub mod estimate;

pub use estimate::{
    estimate_profile, sample_group_stats, sample_stats, EstimatedGroupStats, EstimatedStats,
};

use columnar::{DType, Relation};
use groupby::GroupByAlgorithm;
use joins::Algorithm;
use serde::{Deserialize, Serialize};

/// The workload statistics the decision trees branch on.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// More than one payload column on either input ("wide" join).
    pub wide: bool,
    /// Estimated fraction of probe tuples with a match partner.
    pub match_ratio: f64,
    /// Foreign keys heavily skewed (Zipf factor ≳ 1).
    pub skewed: bool,
    /// Any 8-byte keys or payload columns present.
    pub has_8byte: bool,
    /// Inputs small enough that payload columns are L2-resident, which
    /// makes unclustered gathers cheap (the paper's TPC-H J3 case).
    pub small_inputs: bool,
}

impl WorkloadProfile {
    /// The paper's default microbenchmark shape: wide, 100% match, uniform,
    /// 4-byte, large.
    pub fn default_wide() -> Self {
        WorkloadProfile {
            wide: true,
            match_ratio: 1.0,
            skewed: false,
            has_8byte: false,
            small_inputs: false,
        }
    }
}

/// A recommendation plus the branch of the tree that produced it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Recommendation {
    /// The implementation to run.
    pub algorithm: Algorithm,
    /// Human-readable rationale (the tree path taken).
    pub rationale: &'static str,
}

/// Figure 18a: choose among SMJ-UM, SMJ-OM, PHJ-UM and PHJ-OM.
///
/// The partitioned hash joins dominate throughout the study ("partitioning
/// is more efficient than sorting but both transformations make the
/// match-finding phase similarly efficient"), so the tree mostly decides
/// *which* PHJ variant to use.
pub fn choose_join(p: &WorkloadProfile) -> Recommendation {
    if p.skewed {
        // Bucket chaining collapses under skew (Figure 14); the stable
        // radix partitioner does not.
        return Recommendation {
            algorithm: Algorithm::PhjOm,
            rationale: "skewed foreign keys: bucket-chain partitioning (PHJ-UM) degrades, \
                        RADIX-PARTITION is distribution-robust",
        };
    }
    if !p.wide {
        return Recommendation {
            algorithm: Algorithm::PhjUm,
            rationale: "narrow join: nothing to gain from transforming payloads; \
                        PHJ-UM and PHJ-OM are nearly identical, bucket chaining is \
                        marginally ahead on small inputs",
        };
    }
    if p.match_ratio < 0.25 {
        return Recommendation {
            algorithm: Algorithm::PhjUm,
            rationale: "low match ratio: little is materialized, unclustered gathers are \
                        cheap, and GFTR's transformation cost does not pay off (Figure 13)",
        };
    }
    if p.small_inputs {
        return Recommendation {
            algorithm: Algorithm::PhjUm,
            rationale: "inputs fit the L2 cache: unclustered gathers are already fast \
                        (the TPC-H J3 effect), skip the payload transformation",
        };
    }
    Recommendation {
        algorithm: Algorithm::PhjOm,
        rationale: "wide join with a high match ratio: materialization dominates and \
                    clustered gathers win despite the partitioning cost (Figure 10); \
                    PHJ-OM also tolerates 8-byte values where SMJ-OM does not",
    }
}

/// Figure 18b: within the sort-merge family, does optimized materialization
/// pay off?
pub fn choose_smj(p: &WorkloadProfile) -> Recommendation {
    if !p.wide {
        return Recommendation {
            algorithm: Algorithm::SmjUm,
            rationale: "narrow join: SMJ-OM degenerates to SMJ-UM",
        };
    }
    if p.match_ratio < 0.25 {
        return Recommendation {
            algorithm: Algorithm::SmjUm,
            rationale: "low match ratio: materialization is not the bottleneck",
        };
    }
    if p.skewed {
        return Recommendation {
            algorithm: Algorithm::SmjUm,
            rationale: "skewed keys: few primary keys have matches, so little is \
                        materialized and consistent sorting wins (Figure 14)",
        };
    }
    if p.has_8byte {
        return Recommendation {
            algorithm: Algorithm::SmjUm,
            rationale: "8-byte keys/payloads: sorting every payload column becomes too \
                        expensive (Figure 15); gather from untransformed relations",
        };
    }
    if p.small_inputs {
        return Recommendation {
            algorithm: Algorithm::SmjUm,
            rationale: "L2-resident inputs make unclustered gathers cheap",
        };
    }
    Recommendation {
        algorithm: Algorithm::SmjOm,
        rationale: "wide 4-byte join with a high match ratio: clustered gathers repay \
                    the extra sorting (Figure 10)",
    }
}

/// The statistics the grouped-aggregation decision branches on — the
/// aggregation-side counterpart of [`WorkloadProfile`], fed either from
/// optimizer knowledge or from [`sample_group_stats`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AggProfile {
    /// Input rows.
    pub rows: usize,
    /// Estimated number of distinct groups.
    pub est_groups: usize,
    /// Grouping keys heavily skewed (one group holds ≳5% of the rows).
    pub skewed: bool,
    /// More than one aggregated column ("wide" aggregation).
    pub wide: bool,
    /// L2 capacity of the target device, bytes.
    pub l2_bytes: u64,
}

impl AggProfile {
    /// Does the global hash table (key + accumulator slots per group) fit
    /// comfortably in L2? This is the paper's "few groups" regime where the
    /// untransformed atomic variant is hard to beat.
    pub fn table_fits_l2(&self) -> bool {
        // ~16 bytes per slot (widened key + i64 accumulator) at 50% target
        // occupancy, against half the L2 to leave room for the input stream.
        (self.est_groups as u64) * 16 * 2 <= self.l2_bytes / 2
    }
}

/// A grouped-aggregation recommendation plus the branch that produced it —
/// the counterpart of [`Recommendation`] for [`GroupByAlgorithm`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupByRecommendation {
    /// The implementation to run.
    pub algorithm: GroupByAlgorithm,
    /// Human-readable rationale (the tree path taken).
    pub rationale: &'static str,
}

/// The grouped-aggregation decision: global hash table while it is
/// L2-resident and uniform, otherwise transform — with the GFTR/GFUR choice
/// following the same width logic as the join tree (Section 5.4 applied to
/// the aggregation half of the paper).
pub fn choose_group_by(p: &AggProfile) -> GroupByRecommendation {
    if p.table_fits_l2() && !p.skewed {
        return GroupByRecommendation {
            algorithm: GroupByAlgorithm::HashGlobal,
            rationale: "few groups: the global hash table is L2-resident, random atomic \
                        updates are cheap and skip the transformation entirely",
        };
    }
    if p.skewed && p.table_fits_l2() {
        return GroupByRecommendation {
            algorithm: GroupByAlgorithm::PartitionedGfur,
            rationale: "skewed keys serialize global atomics on the hot group; the stable \
                        radix partitioner spreads each group over shared-memory tables",
        };
    }
    if p.wide {
        return GroupByRecommendation {
            algorithm: GroupByAlgorithm::PartitionedGftr,
            rationale: "many groups and several aggregate columns: transforming every \
                        column (GFTR) converts the random accesses of aggregation into \
                        sequential ones",
        };
    }
    GroupByRecommendation {
        algorithm: GroupByAlgorithm::PartitionedGfur,
        rationale: "many groups but few columns: partition the (key, ID) pairs once and \
                    gather — the transformation cost of GFTR would not pay off",
    }
}

/// Derive a profile from concrete relations plus distribution estimates the
/// caller knows (match ratio and skew are generator/optimizer knowledge, not
/// derivable from a cheap scan).
pub fn profile_of(
    r: &Relation,
    s: &Relation,
    match_ratio: f64,
    zipf: f64,
    l2_bytes: u64,
) -> WorkloadProfile {
    let has_8byte = r.key().dtype() == DType::I64
        || s.key().dtype() == DType::I64
        || r.payloads().iter().any(|c| c.dtype() == DType::I64)
        || s.payloads().iter().any(|c| c.dtype() == DType::I64);
    // "Small" when the larger side's payload data fits in L2 with room to
    // spare for the gather's working set.
    let small_inputs = r.size_bytes().max(s.size_bytes()) < l2_bytes / 2;
    WorkloadProfile {
        wide: r.num_payloads() > 1 || s.num_payloads() > 1,
        match_ratio,
        skewed: zipf >= 1.0,
        has_8byte,
        small_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_always_routes_to_phj_om() {
        let p = WorkloadProfile {
            skewed: true,
            ..WorkloadProfile::default_wide()
        };
        assert_eq!(choose_join(&p).algorithm, Algorithm::PhjOm);
        let narrow_skewed = WorkloadProfile {
            wide: false,
            skewed: true,
            ..WorkloadProfile::default_wide()
        };
        assert_eq!(choose_join(&narrow_skewed).algorithm, Algorithm::PhjOm);
    }

    #[test]
    fn narrow_uniform_prefers_phj_um() {
        let p = WorkloadProfile {
            wide: false,
            ..WorkloadProfile::default_wide()
        };
        assert_eq!(choose_join(&p).algorithm, Algorithm::PhjUm);
    }

    #[test]
    fn low_match_ratio_avoids_gftr() {
        let p = WorkloadProfile {
            match_ratio: 0.1,
            ..WorkloadProfile::default_wide()
        };
        assert_eq!(choose_join(&p).algorithm, Algorithm::PhjUm);
        assert_eq!(choose_smj(&p).algorithm, Algorithm::SmjUm);
    }

    #[test]
    fn wide_high_match_uses_gftr() {
        let p = WorkloadProfile::default_wide();
        assert_eq!(choose_join(&p).algorithm, Algorithm::PhjOm);
        assert_eq!(choose_smj(&p).algorithm, Algorithm::SmjOm);
    }

    #[test]
    fn eight_byte_values_kill_smj_om_but_not_phj_om() {
        let p = WorkloadProfile {
            has_8byte: true,
            ..WorkloadProfile::default_wide()
        };
        assert_eq!(choose_smj(&p).algorithm, Algorithm::SmjUm);
        assert_eq!(choose_join(&p).algorithm, Algorithm::PhjOm);
    }

    #[test]
    fn small_inputs_prefer_unoptimized_materialization() {
        let p = WorkloadProfile {
            small_inputs: true,
            ..WorkloadProfile::default_wide()
        };
        assert_eq!(choose_join(&p).algorithm, Algorithm::PhjUm);
        assert_eq!(choose_smj(&p).algorithm, Algorithm::SmjUm);
    }

    #[test]
    fn few_uniform_groups_stay_on_the_hash_table() {
        let p = AggProfile {
            rows: 1 << 24,
            est_groups: 1024,
            skewed: false,
            wide: true,
            l2_bytes: 40 << 20,
        };
        assert_eq!(choose_group_by(&p).algorithm, GroupByAlgorithm::HashGlobal);
    }

    #[test]
    fn skew_leaves_the_global_hash_table() {
        let p = AggProfile {
            rows: 1 << 24,
            est_groups: 1024,
            skewed: true,
            wide: true,
            l2_bytes: 40 << 20,
        };
        assert_ne!(choose_group_by(&p).algorithm, GroupByAlgorithm::HashGlobal);
    }

    #[test]
    fn many_groups_pick_a_transform_by_width() {
        let many = AggProfile {
            rows: 1 << 26,
            est_groups: 1 << 24,
            skewed: false,
            wide: true,
            l2_bytes: 40 << 20,
        };
        assert_eq!(
            choose_group_by(&many).algorithm,
            GroupByAlgorithm::PartitionedGftr
        );
        let narrow = AggProfile {
            wide: false,
            ..many
        };
        assert_eq!(
            choose_group_by(&narrow).algorithm,
            GroupByAlgorithm::PartitionedGfur
        );
    }

    #[test]
    fn profile_detects_widths_and_size() {
        use columnar::Column;
        let dev = sim::Device::a100();
        let r = Relation::new(
            "R",
            Column::from_i32(&dev, vec![1, 2], "k"),
            vec![Column::from_i64(&dev, vec![1, 2], "p")],
        );
        let s = Relation::new(
            "S",
            Column::from_i32(&dev, vec![1, 2], "k"),
            vec![
                Column::from_i32(&dev, vec![1, 2], "p"),
                Column::from_i32(&dev, vec![1, 2], "q"),
            ],
        );
        let p = profile_of(&r, &s, 1.0, 0.0, 40 << 20);
        assert!(p.wide, "S has two payload columns");
        assert!(p.has_8byte, "R payload is 8-byte");
        assert!(p.small_inputs);
        assert!(!p.skewed);
    }
}
