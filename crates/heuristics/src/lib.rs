//! # heuristics — the paper's decision trees (Figure 18)
//!
//! Section 5.4 distills the performance study into rules a query optimizer
//! can apply from workload statistics it already has: payload widths, match
//! ratio estimates, skew estimates, and input sizes.
//!
//! * [`choose_join`] encodes Figure 18a — picking among all four GPU
//!   implementations;
//! * [`choose_smj`] encodes Figure 18b — the SMJ-OM vs SMJ-UM subtree;
//! * [`profile_of`] derives a [`WorkloadProfile`] from actual relations, so
//!   the recommendation can be validated against measured runs (the
//!   `fig18_decision_tree` experiment does exactly that);
//! * [`estimate`] fills the statistics an optimizer would otherwise supply
//!   (match ratio, skew) by sampling — Section 5.4's "this type of
//!   information is typically available to an optimizer", made operational.

pub mod composite;
pub mod estimate;

pub use estimate::{
    estimate_profile, estimate_profile_with_stats, sample_group_stats, sample_stats,
    EstimatedGroupStats, EstimatedStats,
};

use columnar::{DType, Relation};
use groupby::GroupByAlgorithm;
use joins::Algorithm;
use serde::{Deserialize, Serialize};

/// The workload statistics the decision trees branch on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// More than one payload column on either input ("wide" join).
    pub wide: bool,
    /// Estimated fraction of probe tuples with a match partner.
    pub match_ratio: f64,
    /// Foreign keys heavily skewed (Zipf factor ≳ 1).
    pub skewed: bool,
    /// Any 8-byte keys or payload columns present.
    pub has_8byte: bool,
    /// Inputs small enough that payload columns are L2-resident, which
    /// makes unclustered gathers cheap (the paper's TPC-H J3 case).
    pub small_inputs: bool,
}

impl WorkloadProfile {
    /// The paper's default microbenchmark shape: wide, 100% match, uniform,
    /// 4-byte, large.
    pub fn default_wide() -> Self {
        WorkloadProfile {
            wide: true,
            match_ratio: 1.0,
            skewed: false,
            has_8byte: false,
            small_inputs: false,
        }
    }
}

/// The schema facts one join input contributes to a [`WorkloadProfile`] —
/// kept separable from the physical [`Relation`] so a late-materializing
/// executor can describe the *logical* input (the columns the query will
/// eventually materialize) rather than the ticket-carrying physical one it
/// actually feeds the join. Fused and unfused plans then branch on the same
/// profile and pick the same algorithm.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SideShape {
    /// Rows in this input.
    pub rows: usize,
    /// Payload (non-key) columns the query materializes from this side.
    pub num_payloads: usize,
    /// Any 8-byte key or payload column on this side.
    pub has_8byte: bool,
    /// Total bytes of the materialized key + payload columns.
    pub size_bytes: u64,
}

impl SideShape {
    /// The shape of a concrete relation (the eager-materialization case).
    pub fn of(rel: &Relation) -> SideShape {
        SideShape {
            rows: rel.len(),
            num_payloads: rel.num_payloads(),
            has_8byte: rel.key().dtype() == DType::I64
                || rel.payloads().iter().any(|c| c.dtype() == DType::I64),
            size_bytes: rel.size_bytes(),
        }
    }
}

/// Compose sampled statistics with the two sides' schema facts into the
/// profile the join tree branches on. [`estimate::estimate_profile_with_stats`]
/// is this function applied to [`SideShape::of`] the physical relations;
/// late-materializing callers pass logical shapes instead.
pub fn profile_from_stats(
    stats: &EstimatedStats,
    r: &SideShape,
    s: &SideShape,
    l2_bytes: u64,
) -> WorkloadProfile {
    WorkloadProfile {
        wide: r.num_payloads > 1 || s.num_payloads > 1,
        match_ratio: stats.match_ratio,
        skewed: stats.skewed(),
        has_8byte: r.has_8byte || s.has_8byte,
        small_inputs: r.size_bytes.max(s.size_bytes) < l2_bytes / 2,
    }
}

/// A recommendation plus the branch of the tree that produced it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Recommendation {
    /// The implementation to run.
    pub algorithm: Algorithm,
    /// Human-readable rationale (the tree path taken).
    pub rationale: &'static str,
}

/// One branch of a decision tree: a named guard over the profile and the
/// recommendation when the guard holds. Every tree ends in a fallthrough
/// branch whose guard is always true, so a walk always terminates on a
/// branch.
///
/// The trees are data, not control flow, so [`choose_join`] and the
/// provenance-producing [`explain_choose_join`] (etc.) walk the *same*
/// branches by construction — the explain layer can never describe a
/// different tree than the one the planner ran.
struct Branch<P: 'static, A: 'static> {
    /// The predicate as the paper's figure states it (shown in provenance).
    guard: &'static str,
    holds: fn(&P) -> bool,
    algorithm: A,
    rationale: &'static str,
}

/// A branch the walk evaluated and rejected before reaching its choice —
/// the "roads not taken" half of decision provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectedBranch {
    /// Display name of the algorithm this branch would have picked.
    pub algorithm: String,
    /// The guard that evaluated false.
    pub guard: String,
}

/// The outcome of walking a decision tree with full provenance: the choice,
/// the guard that fired, and every branch rejected on the way down.
#[derive(Debug, Clone)]
pub struct Explained<A> {
    /// The algorithm the tree picked.
    pub algorithm: A,
    /// The guard of the branch taken (`"otherwise"` for the fallthrough).
    pub guard: &'static str,
    /// The taken branch's rationale.
    pub rationale: &'static str,
    /// Branches evaluated and rejected before the taken one, in tree order.
    pub rejected: Vec<RejectedBranch>,
}

fn walk_tree<P, A: Copy>(
    tree: &'static [Branch<P, A>],
    p: &P,
    name: fn(A) -> &'static str,
) -> Explained<A> {
    let mut rejected = Vec::new();
    for b in tree {
        if (b.holds)(p) {
            return Explained {
                algorithm: b.algorithm,
                guard: b.guard,
                rationale: b.rationale,
                rejected,
            };
        }
        rejected.push(RejectedBranch {
            algorithm: name(b.algorithm).to_string(),
            guard: b.guard.to_string(),
        });
    }
    unreachable!("every decision tree ends in an always-true fallthrough branch")
}

/// Figure 18a as data. The partitioned hash joins dominate throughout the
/// study ("partitioning is more efficient than sorting but both
/// transformations make the match-finding phase similarly efficient"), so
/// the tree mostly decides *which* PHJ variant to use.
static JOIN_TREE: [Branch<WorkloadProfile, Algorithm>; 5] = [
    Branch {
        guard: "skewed foreign keys",
        holds: |p| p.skewed,
        // Bucket chaining collapses under skew (Figure 14); the stable
        // radix partitioner does not.
        algorithm: Algorithm::PhjOm,
        rationale: "skewed foreign keys: bucket-chain partitioning (PHJ-UM) degrades, \
                    RADIX-PARTITION is distribution-robust",
    },
    Branch {
        guard: "narrow join (single payload)",
        holds: |p| !p.wide,
        algorithm: Algorithm::PhjUm,
        rationale: "narrow join: nothing to gain from transforming payloads; \
                    PHJ-UM and PHJ-OM are nearly identical, bucket chaining is \
                    marginally ahead on small inputs",
    },
    Branch {
        guard: "match ratio < 0.25",
        holds: |p| p.match_ratio < 0.25,
        algorithm: Algorithm::PhjUm,
        rationale: "low match ratio: little is materialized, unclustered gathers are \
                    cheap, and GFTR's transformation cost does not pay off (Figure 13)",
    },
    Branch {
        guard: "inputs fit L2",
        holds: |p| p.small_inputs,
        algorithm: Algorithm::PhjUm,
        rationale: "inputs fit the L2 cache: unclustered gathers are already fast \
                    (the TPC-H J3 effect), skip the payload transformation",
    },
    Branch {
        guard: "otherwise",
        holds: |_| true,
        algorithm: Algorithm::PhjOm,
        rationale: "wide join with a high match ratio: materialization dominates and \
                    clustered gathers win despite the partitioning cost (Figure 10); \
                    PHJ-OM also tolerates 8-byte values where SMJ-OM does not",
    },
];

/// Figure 18b as data: within the sort-merge family, does optimized
/// materialization pay off?
static SMJ_TREE: [Branch<WorkloadProfile, Algorithm>; 6] = [
    Branch {
        guard: "narrow join (single payload)",
        holds: |p| !p.wide,
        algorithm: Algorithm::SmjUm,
        rationale: "narrow join: SMJ-OM degenerates to SMJ-UM",
    },
    Branch {
        guard: "match ratio < 0.25",
        holds: |p| p.match_ratio < 0.25,
        algorithm: Algorithm::SmjUm,
        rationale: "low match ratio: materialization is not the bottleneck",
    },
    Branch {
        guard: "skewed foreign keys",
        holds: |p| p.skewed,
        algorithm: Algorithm::SmjUm,
        rationale: "skewed keys: few primary keys have matches, so little is \
                    materialized and consistent sorting wins (Figure 14)",
    },
    Branch {
        guard: "8-byte keys or payloads",
        holds: |p| p.has_8byte,
        algorithm: Algorithm::SmjUm,
        rationale: "8-byte keys/payloads: sorting every payload column becomes too \
                    expensive (Figure 15); gather from untransformed relations",
    },
    Branch {
        guard: "inputs fit L2",
        holds: |p| p.small_inputs,
        algorithm: Algorithm::SmjUm,
        rationale: "L2-resident inputs make unclustered gathers cheap",
    },
    Branch {
        guard: "otherwise",
        holds: |_| true,
        algorithm: Algorithm::SmjOm,
        rationale: "wide 4-byte join with a high match ratio: clustered gathers repay \
                    the extra sorting (Figure 10)",
    },
];

/// Figure 18a: choose among SMJ-UM, SMJ-OM, PHJ-UM and PHJ-OM.
pub fn choose_join(p: &WorkloadProfile) -> Recommendation {
    let e = explain_choose_join(p);
    Recommendation {
        algorithm: e.algorithm,
        rationale: e.rationale,
    }
}

/// [`choose_join`] with full provenance: the same walk over the same tree,
/// also reporting the guard taken and the branches rejected.
pub fn explain_choose_join(p: &WorkloadProfile) -> Explained<Algorithm> {
    walk_tree(&JOIN_TREE, p, Algorithm::name)
}

/// Figure 18b: within the sort-merge family, does optimized materialization
/// pay off?
pub fn choose_smj(p: &WorkloadProfile) -> Recommendation {
    let e = explain_choose_smj(p);
    Recommendation {
        algorithm: e.algorithm,
        rationale: e.rationale,
    }
}

/// [`choose_smj`] with full provenance.
pub fn explain_choose_smj(p: &WorkloadProfile) -> Explained<Algorithm> {
    walk_tree(&SMJ_TREE, p, Algorithm::name)
}

/// The statistics the grouped-aggregation decision branches on — the
/// aggregation-side counterpart of [`WorkloadProfile`], fed either from
/// optimizer knowledge or from [`sample_group_stats`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AggProfile {
    /// Input rows.
    pub rows: usize,
    /// Estimated number of distinct groups.
    pub est_groups: usize,
    /// Grouping keys heavily skewed (one group holds ≳5% of the rows).
    pub skewed: bool,
    /// More than one aggregated column ("wide" aggregation).
    pub wide: bool,
    /// L2 capacity of the target device, bytes.
    pub l2_bytes: u64,
}

impl AggProfile {
    /// Does the global hash table (key + accumulator slots per group) fit
    /// comfortably in L2? This is the paper's "few groups" regime where the
    /// untransformed atomic variant is hard to beat.
    pub fn table_fits_l2(&self) -> bool {
        // ~16 bytes per slot (widened key + i64 accumulator) at 50% target
        // occupancy, against half the L2 to leave room for the input stream.
        (self.est_groups as u64) * 16 * 2 <= self.l2_bytes / 2
    }
}

/// A grouped-aggregation recommendation plus the branch that produced it —
/// the counterpart of [`Recommendation`] for [`GroupByAlgorithm`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupByRecommendation {
    /// The implementation to run.
    pub algorithm: GroupByAlgorithm,
    /// Human-readable rationale (the tree path taken).
    pub rationale: &'static str,
}

/// The grouped-aggregation tree as data: global hash table while it is
/// L2-resident and uniform, otherwise transform — with the GFTR/GFUR choice
/// following the same width logic as the join tree (Section 5.4 applied to
/// the aggregation half of the paper).
static GROUP_BY_TREE: [Branch<AggProfile, GroupByAlgorithm>; 4] = [
    Branch {
        guard: "hash table fits L2, uniform keys",
        holds: |p| p.table_fits_l2() && !p.skewed,
        algorithm: GroupByAlgorithm::HashGlobal,
        rationale: "few groups: the global hash table is L2-resident, random atomic \
                    updates are cheap and skip the transformation entirely",
    },
    Branch {
        guard: "hash table fits L2, skewed keys",
        holds: |p| p.skewed && p.table_fits_l2(),
        algorithm: GroupByAlgorithm::PartitionedGfur,
        rationale: "skewed keys serialize global atomics on the hot group; the stable \
                    radix partitioner spreads each group over shared-memory tables",
    },
    Branch {
        guard: "several aggregate columns",
        holds: |p| p.wide,
        algorithm: GroupByAlgorithm::PartitionedGftr,
        rationale: "many groups and several aggregate columns: transforming every \
                    column (GFTR) converts the random accesses of aggregation into \
                    sequential ones",
    },
    Branch {
        guard: "otherwise",
        holds: |_| true,
        algorithm: GroupByAlgorithm::PartitionedGfur,
        rationale: "many groups but few columns: partition the (key, ID) pairs once and \
                    gather — the transformation cost of GFTR would not pay off",
    },
];

/// The grouped-aggregation decision (the winning branch's rationale, from
/// the static group-by tree).
pub fn choose_group_by(p: &AggProfile) -> GroupByRecommendation {
    let e = explain_choose_group_by(p);
    GroupByRecommendation {
        algorithm: e.algorithm,
        rationale: e.rationale,
    }
}

/// [`choose_group_by`] with full provenance: the same walk over the same
/// tree, also reporting the guard taken and the branches rejected.
pub fn explain_choose_group_by(p: &AggProfile) -> Explained<GroupByAlgorithm> {
    walk_tree(&GROUP_BY_TREE, p, GroupByAlgorithm::name)
}

/// Everything the planner knew when it picked a join algorithm: the inputs
/// it looked at, the statistics it sampled, the branch it took and the
/// branches it rejected. Captured at plan time by `engine::op`, rendered by
/// `engine::explain`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinProvenance {
    /// Build-side rows at plan time.
    pub build_rows: usize,
    /// Probe-side rows at plan time.
    pub probe_rows: usize,
    /// Free device memory the chunk planner saw, bytes.
    pub free_mem_bytes: u64,
    /// The profile the tree branched on (`None` when the algorithm was
    /// pinned by the plan, skipping profiling entirely).
    pub profile: Option<WorkloadProfile>,
    /// The sampled statistics behind the profile (`None` when the profile
    /// came from optimizer knowledge rather than sampling).
    pub sampled: Option<EstimatedStats>,
    /// Chunk count the out-of-core planner settled on (1 = in-core).
    pub chunks: usize,
    /// True when the plan pinned the algorithm and no tree ran.
    pub pinned: bool,
    /// Display name of the chosen algorithm.
    pub choice: String,
    /// Materialization strategy of the choice (`"GFTR"` / `"GFUR"` / ...).
    pub materialization: String,
    /// The guard that fired (`"pinned by plan"` when pinned).
    pub guard: String,
    /// The taken branch's rationale.
    pub rationale: String,
    /// Branches rejected before the taken one, in tree order.
    pub rejected: Vec<RejectedBranch>,
}

/// Everything the planner knew when it picked a grouped-aggregation
/// algorithm — the aggregation-side counterpart of [`JoinProvenance`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupByProvenance {
    /// Input rows at plan time.
    pub rows: usize,
    /// The profile the tree branched on (`None` when pinned).
    pub profile: Option<AggProfile>,
    /// The sampled grouping-key statistics (Chao1 estimate, skew signal).
    pub sampled: Option<EstimatedGroupStats>,
    /// True when the plan pinned the algorithm and no tree ran.
    pub pinned: bool,
    /// Display name of the chosen algorithm.
    pub choice: String,
    /// Materialization strategy of the choice.
    pub materialization: String,
    /// The guard that fired (`"pinned by plan"` when pinned).
    pub guard: String,
    /// The taken branch's rationale.
    pub rationale: String,
    /// Branches rejected before the taken one, in tree order.
    pub rejected: Vec<RejectedBranch>,
}

/// What the plan-rewrite fusion pass did at one fused node: which adjacent
/// Filter/Project plan nodes it collapsed, how selective the single fused
/// predicate turned out to be, and whether the node's output left as
/// materialized columns or as deferred row-id tickets — plus why.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FusionProvenance {
    /// Labels of the collapsed plan nodes, outermost last
    /// (e.g. `["Filter", "Project", "Filter"]`).
    pub steps: Vec<String>,
    /// Filter predicates merged into the single fused evaluation.
    pub predicates: usize,
    /// Input rows the fused predicate scanned.
    pub input_rows: usize,
    /// Rows surviving the selection (equal to `input_rows` with no filters).
    pub selected_rows: usize,
    /// Output columns deferred as tickets (base columns gathered later, at
    /// the materialization boundary).
    pub deferred_cols: usize,
    /// Output columns that are computed expressions (evaluated over the
    /// selection, not deferrable past a join).
    pub computed_cols: usize,
    /// True when this node materialized its output columns itself.
    pub materialized_here: bool,
    /// Why the output was deferred or materialized here (the ticket's
    /// lifetime boundary: plan root, or the consumer that takes tickets).
    pub boundary: String,
}

/// Decision provenance attached to an executed operator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Provenance {
    /// A join planner decision.
    Join(JoinProvenance),
    /// A grouped-aggregation planner decision.
    GroupBy(GroupByProvenance),
    /// An operator-fusion rewrite decision.
    Fusion(FusionProvenance),
}

impl Provenance {
    /// Display name of the chosen algorithm.
    pub fn choice(&self) -> &str {
        match self {
            Provenance::Join(j) => &j.choice,
            Provenance::GroupBy(g) => &g.choice,
            Provenance::Fusion(_) => "fused pipeline",
        }
    }

    /// Materialization strategy label of the choice.
    pub fn materialization(&self) -> &str {
        match self {
            Provenance::Join(j) => &j.materialization,
            Provenance::GroupBy(g) => &g.materialization,
            // Deferred tickets are the plan-wide form of the paper's GFTR
            // late materialization; materializing in place is the GFUR form.
            Provenance::Fusion(f) => {
                if f.materialized_here {
                    "GFUR"
                } else {
                    "GFTR"
                }
            }
        }
    }
}

/// Derive a profile from concrete relations plus distribution estimates the
/// caller knows (match ratio and skew are generator/optimizer knowledge, not
/// derivable from a cheap scan).
pub fn profile_of(
    r: &Relation,
    s: &Relation,
    match_ratio: f64,
    zipf: f64,
    l2_bytes: u64,
) -> WorkloadProfile {
    let has_8byte = r.key().dtype() == DType::I64
        || s.key().dtype() == DType::I64
        || r.payloads().iter().any(|c| c.dtype() == DType::I64)
        || s.payloads().iter().any(|c| c.dtype() == DType::I64);
    // "Small" when the larger side's payload data fits in L2 with room to
    // spare for the gather's working set.
    let small_inputs = r.size_bytes().max(s.size_bytes()) < l2_bytes / 2;
    WorkloadProfile {
        wide: r.num_payloads() > 1 || s.num_payloads() > 1,
        match_ratio,
        skewed: zipf >= 1.0,
        has_8byte,
        small_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_always_routes_to_phj_om() {
        let p = WorkloadProfile {
            skewed: true,
            ..WorkloadProfile::default_wide()
        };
        assert_eq!(choose_join(&p).algorithm, Algorithm::PhjOm);
        let narrow_skewed = WorkloadProfile {
            wide: false,
            skewed: true,
            ..WorkloadProfile::default_wide()
        };
        assert_eq!(choose_join(&narrow_skewed).algorithm, Algorithm::PhjOm);
    }

    #[test]
    fn narrow_uniform_prefers_phj_um() {
        let p = WorkloadProfile {
            wide: false,
            ..WorkloadProfile::default_wide()
        };
        assert_eq!(choose_join(&p).algorithm, Algorithm::PhjUm);
    }

    #[test]
    fn low_match_ratio_avoids_gftr() {
        let p = WorkloadProfile {
            match_ratio: 0.1,
            ..WorkloadProfile::default_wide()
        };
        assert_eq!(choose_join(&p).algorithm, Algorithm::PhjUm);
        assert_eq!(choose_smj(&p).algorithm, Algorithm::SmjUm);
    }

    #[test]
    fn wide_high_match_uses_gftr() {
        let p = WorkloadProfile::default_wide();
        assert_eq!(choose_join(&p).algorithm, Algorithm::PhjOm);
        assert_eq!(choose_smj(&p).algorithm, Algorithm::SmjOm);
    }

    #[test]
    fn eight_byte_values_kill_smj_om_but_not_phj_om() {
        let p = WorkloadProfile {
            has_8byte: true,
            ..WorkloadProfile::default_wide()
        };
        assert_eq!(choose_smj(&p).algorithm, Algorithm::SmjUm);
        assert_eq!(choose_join(&p).algorithm, Algorithm::PhjOm);
    }

    #[test]
    fn small_inputs_prefer_unoptimized_materialization() {
        let p = WorkloadProfile {
            small_inputs: true,
            ..WorkloadProfile::default_wide()
        };
        assert_eq!(choose_join(&p).algorithm, Algorithm::PhjUm);
        assert_eq!(choose_smj(&p).algorithm, Algorithm::SmjUm);
    }

    #[test]
    fn few_uniform_groups_stay_on_the_hash_table() {
        let p = AggProfile {
            rows: 1 << 24,
            est_groups: 1024,
            skewed: false,
            wide: true,
            l2_bytes: 40 << 20,
        };
        assert_eq!(choose_group_by(&p).algorithm, GroupByAlgorithm::HashGlobal);
    }

    #[test]
    fn skew_leaves_the_global_hash_table() {
        let p = AggProfile {
            rows: 1 << 24,
            est_groups: 1024,
            skewed: true,
            wide: true,
            l2_bytes: 40 << 20,
        };
        assert_ne!(choose_group_by(&p).algorithm, GroupByAlgorithm::HashGlobal);
    }

    #[test]
    fn many_groups_pick_a_transform_by_width() {
        let many = AggProfile {
            rows: 1 << 26,
            est_groups: 1 << 24,
            skewed: false,
            wide: true,
            l2_bytes: 40 << 20,
        };
        assert_eq!(
            choose_group_by(&many).algorithm,
            GroupByAlgorithm::PartitionedGftr
        );
        let narrow = AggProfile {
            wide: false,
            ..many
        };
        assert_eq!(
            choose_group_by(&narrow).algorithm,
            GroupByAlgorithm::PartitionedGfur
        );
    }

    #[test]
    fn logical_shapes_override_physical_ticket_relations() {
        use columnar::Column;
        let dev = sim::Device::a100();
        // The physical relation a late-materializing executor feeds a join:
        // key + one narrow i32 ticket column.
        let tickets = Relation::new(
            "tickets",
            Column::from_i32(&dev, (0..4096).collect(), "k"),
            vec![Column::from_i32(&dev, (0..4096).collect(), "ticket")],
        );
        let probe = Relation::new(
            "probe",
            Column::from_i32(&dev, (0..4096).collect(), "k"),
            vec![Column::from_i32(&dev, (0..4096).collect(), "p")],
        );
        // The logical input it stands for: two payloads, one 8-byte.
        let logical = SideShape {
            rows: 4096,
            num_payloads: 2,
            has_8byte: true,
            size_bytes: 4096 * (4 + 4 + 8),
        };
        let stats = EstimatedStats {
            match_ratio: 1.0,
            top_key_share: 0.0,
            sample_size: 512,
        };
        let physical = profile_from_stats(
            &stats,
            &SideShape::of(&tickets),
            &SideShape::of(&probe),
            40 << 20,
        );
        let shaped = profile_from_stats(&stats, &logical, &SideShape::of(&probe), 40 << 20);
        assert!(!physical.wide && !physical.has_8byte);
        assert!(shaped.wide && shaped.has_8byte);
        // The eagerly materialized twin of the same input: identical tree
        // inputs, so the ticket relation picks the identical algorithm.
        let eager = Relation::new(
            "eager",
            Column::from_i32(&dev, (0..4096).collect(), "k"),
            vec![
                Column::from_i32(&dev, (0..4096).collect(), "p1"),
                Column::from_i64(&dev, (0..4096i64).collect(), "p2"),
            ],
        );
        let eager_profile = profile_from_stats(
            &stats,
            &SideShape::of(&eager),
            &SideShape::of(&probe),
            40 << 20,
        );
        assert_eq!(shaped, eager_profile, "logical shape == eager twin's shape");
        assert_eq!(
            choose_join(&shaped).algorithm,
            choose_join(&eager_profile).algorithm
        );
    }

    #[test]
    fn fusion_provenance_reports_strategy() {
        let f = FusionProvenance {
            steps: vec!["Filter".into(), "Project".into()],
            predicates: 1,
            input_rows: 100,
            selected_rows: 10,
            deferred_cols: 3,
            computed_cols: 1,
            materialized_here: false,
            boundary: "Join gathers through tickets".into(),
        };
        let p = Provenance::Fusion(f);
        assert_eq!(p.choice(), "fused pipeline");
        assert_eq!(p.materialization(), "GFTR");
        let Provenance::Fusion(mut f) = p else {
            unreachable!()
        };
        f.materialized_here = true;
        assert_eq!(Provenance::Fusion(f).materialization(), "GFUR");
    }

    #[test]
    fn profile_detects_widths_and_size() {
        use columnar::Column;
        let dev = sim::Device::a100();
        let r = Relation::new(
            "R",
            Column::from_i32(&dev, vec![1, 2], "k"),
            vec![Column::from_i64(&dev, vec![1, 2], "p")],
        );
        let s = Relation::new(
            "S",
            Column::from_i32(&dev, vec![1, 2], "k"),
            vec![
                Column::from_i32(&dev, vec![1, 2], "p"),
                Column::from_i32(&dev, vec![1, 2], "q"),
            ],
        );
        let p = profile_of(&r, &s, 1.0, 0.0, 40 << 20);
        assert!(p.wide, "S has two payload columns");
        assert!(p.has_8byte, "R payload is 8-byte");
        assert!(p.small_inputs);
        assert!(!p.skewed);
    }
}
