//! Property-based tests of the device primitives: the invariants every
//! operator builds on.

use primitives::{
    exclusive_scan, gather, merge_join, partition_of, radix_partition, run_boundaries, scatter,
    sort_pairs,
};
use proptest::prelude::*;
use sim::Device;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// sort_pairs sorts keys and keeps every (key, value) pair intact.
    #[test]
    fn sort_pairs_sorts_and_preserves_pairs(keys in proptest::collection::vec(any::<i32>(), 0..300)) {
        let dev = Device::a100();
        let vals: Vec<u32> = (0..keys.len() as u32).collect();
        let kb = dev.upload(keys.clone(), "k");
        let vb = dev.upload(vals.clone(), "v");
        let (sk, sv) = sort_pairs(&dev, &kb, &vb);
        // Sorted...
        prop_assert!(sk.windows(2).all(|w| w[0] <= w[1]));
        // ...and a permutation of the input pairing.
        let mut got: Vec<(i32, u32)> = sk.iter().copied().zip(sv.iter().copied()).collect();
        let mut expected: Vec<(i32, u32)> = keys.into_iter().zip(vals).collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// sort_pairs is stable: equal keys keep their input order.
    #[test]
    fn sort_pairs_is_stable(keys in proptest::collection::vec(0i32..16, 0..300)) {
        let dev = Device::a100();
        let vals: Vec<u32> = (0..keys.len() as u32).collect();
        let kb = dev.upload(keys, "k");
        let vb = dev.upload(vals, "v");
        let (sk, sv) = sort_pairs(&dev, &kb, &vb);
        for w in sk.windows(2).zip(sv.windows(2)) {
            if w.0[0] == w.0[1] {
                prop_assert!(w.1[0] < w.1[1], "stability violated on equal keys");
            }
        }
    }

    /// radix_partition groups by the digit, stably, with exact offsets.
    #[test]
    fn radix_partition_is_a_stable_grouping(
        keys in proptest::collection::vec(any::<i32>(), 0..300),
        bits in 1u32..10,
    ) {
        let dev = Device::a100();
        let vals: Vec<u32> = (0..keys.len() as u32).collect();
        let kb = dev.upload(keys.clone(), "k");
        let vb = dev.upload(vals, "v");
        let p = radix_partition(&dev, &kb, &vb, bits);
        prop_assert_eq!(p.offsets.len(), (1usize << bits) + 1);
        prop_assert_eq!(*p.offsets.last().unwrap() as usize, keys.len());
        for part in 0..p.num_partitions() {
            let range = p.partition_range(part);
            // Every key belongs to this partition...
            prop_assert!(range.clone().all(|i| partition_of(p.keys[i], bits) == part));
            // ...and values (input positions) ascend within it (stability).
            prop_assert!(range
                .clone()
                .zip(range.skip(1))
                .all(|(a, b)| p.vals[a] < p.vals[b]));
        }
    }

    /// scatter by a permutation then gather by the same permutation is the
    /// identity.
    #[test]
    fn scatter_then_gather_roundtrip(n in 0usize..300, seed in any::<u64>()) {
        let dev = Device::a100();
        let data: Vec<i64> = (0..n as i64).map(|i| i * 3 - 7).collect();
        // Build a permutation from the seed.
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            perm.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let src = dev.upload(data.clone(), "src");
        let map = dev.upload(perm, "map");
        let scattered = scatter(&dev, &src, &map, n);
        let back = gather(&dev, &scattered, &map);
        prop_assert_eq!(back.as_slice(), data.as_slice());
    }

    /// merge_join equals the quadratic oracle on sorted inputs.
    #[test]
    fn merge_join_matches_quadratic_oracle(
        mut r in proptest::collection::vec(-20i32..20, 0..60),
        mut s in proptest::collection::vec(-20i32..20, 0..60),
    ) {
        r.sort_unstable();
        s.sort_unstable();
        let dev = Device::a100();
        let rb = dev.upload(r.clone(), "r");
        let sb = dev.upload(s.clone(), "s");
        let m = merge_join(&dev, &rb, &sb, false);
        let mut got: Vec<(i32, u32, u32)> = (0..m.len())
            .map(|i| (m.keys[i], m.r_idx[i], m.s_idx[i]))
            .collect();
        let mut expected = Vec::new();
        for (j, &sv) in s.iter().enumerate() {
            for (i, &rv) in r.iter().enumerate() {
                if rv == sv {
                    expected.push((rv, i as u32, j as u32));
                }
            }
        }
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// exclusive_scan is the running sum.
    #[test]
    fn scan_is_running_sum(counts in proptest::collection::vec(0u32..1000, 0..200)) {
        let dev = Device::a100();
        let out = exclusive_scan(&dev, &counts);
        prop_assert_eq!(out.len(), counts.len() + 1);
        let mut acc = 0u32;
        for (i, &c) in counts.iter().enumerate() {
            prop_assert_eq!(out[i], acc);
            acc += c;
        }
        prop_assert_eq!(*out.last().unwrap(), acc);
    }

    /// run_boundaries reconstructs the segment structure of any sorted input.
    #[test]
    fn boundaries_segment_sorted_keys(mut keys in proptest::collection::vec(-50i32..50, 0..300)) {
        keys.sort_unstable();
        let dev = Device::a100();
        let b = run_boundaries(&dev, &keys);
        // Segments are non-empty, cover everything, and are key-constant.
        prop_assert_eq!(b[0], 0);
        prop_assert_eq!(*b.last().unwrap() as usize, keys.len());
        for w in b.windows(2) {
            prop_assert!(w[0] < w[1] || (keys.is_empty() && w[0] == w[1]));
            let seg = &keys[w[0] as usize..w[1] as usize];
            prop_assert!(seg.windows(2).all(|x| x[0] == x[1]));
        }
        // Adjacent segments have different keys.
        for w in b.windows(3) {
            prop_assert_ne!(keys[w[0] as usize], keys[w[1] as usize]);
        }
    }

    /// Gathers never mutate their source and always produce map-length
    /// output.
    #[test]
    fn gather_shape_and_source_invariance(
        src in proptest::collection::vec(any::<i32>(), 1..100),
        picks in proptest::collection::vec(any::<prop::sample::Index>(), 0..200),
    ) {
        let dev = Device::a100();
        let map: Vec<u32> = picks.iter().map(|ix| ix.index(src.len()) as u32).collect();
        let sb = dev.upload(src.clone(), "src");
        let mb = dev.upload(map.clone(), "map");
        let out = gather(&dev, &sb, &mb);
        prop_assert_eq!(out.len(), map.len());
        prop_assert_eq!(sb.as_slice(), src.as_slice());
        for (o, &m) in out.iter().zip(&map) {
            prop_assert_eq!(*o, src[m as usize]);
        }
    }
}
