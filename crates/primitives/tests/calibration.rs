//! Calibration of the simulator against Table 4 of the paper: the
//! microarchitectural comparison between unclustered and clustered GATHERs.
//!
//! Table 4 (A100, 2^27 items):
//!
//! | metric                        | unclustered | clustered |
//! |-------------------------------|-------------|-----------|
//! | avg sectors per load request  | 18          | 6         |
//! | memory reads                  | 4.5 GB      | 1.5 GB    |
//! | cycles ratio                  | ~8.5x       | 1x        |
//!
//! We reproduce the *shape* at a reduced scale, choosing the region size
//! relative to L2 the way the paper's scale relates to the A100's 40 MB
//! (region >> L2, so unclustered gathers miss). The RTX 3090 preset (6 MB
//! L2) gives that regime at 2^24 items without minute-long test runs.

use primitives::gather;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sim::Device;

const N: usize = 1 << 24;

fn random_map(n: usize) -> Vec<u32> {
    let mut map: Vec<u32> = (0..n as u32).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    map.shuffle(&mut rng);
    map
}

#[test]
fn table4_unclustered_vs_clustered_gather() {
    let dev = Device::rtx3090();
    let src = dev.upload((0..N as i32).collect::<Vec<_>>(), "src");

    // Unclustered: a random permutation map (what GFUR's materialization
    // sees after sorting/partitioning scrambles tuple IDs).
    let map = dev.upload(random_map(N), "umap");
    dev.reset_stats();
    let _ = gather(&dev, &src, &map);
    let unclustered = dev.counters();
    let unclustered_time = dev.elapsed();

    // Clustered: the identity map (what GFTR's materialization sees — the
    // matched virtual IDs are sorted positions).
    let map = dev.upload((0..N as u32).collect::<Vec<_>>(), "cmap");
    dev.reset_stats();
    let _ = gather(&dev, &src, &map);
    let clustered = dev.counters();
    let clustered_time = dev.elapsed();

    // Same instruction work on both sides (Table 4: identical warp
    // instruction counts).
    assert_eq!(unclustered.warp_instructions, clustered.warp_instructions);

    // Sectors per request: ~18 unclustered (32 data + 4 map averaged),
    // ~4-6 clustered.
    let spr_u = unclustered.sectors_per_request();
    let spr_c = clustered.sectors_per_request();
    assert!(
        (15.0..=19.0).contains(&spr_u),
        "unclustered sectors/request {spr_u}, Table 4 says 18"
    );
    assert!(
        (3.5..=7.0).contains(&spr_c),
        "clustered sectors/request {spr_c}, Table 4 says 6"
    );

    // Memory reads ratio ~3x (4.5 GB vs 1.5 GB).
    let reads_ratio = unclustered.dram_read_bytes as f64 / clustered.dram_read_bytes as f64;
    assert!(
        (2.0..=4.5).contains(&reads_ratio),
        "read-bytes ratio {reads_ratio}, Table 4 says 3x"
    );

    // Cycle/time ratio ~8.5x; accept the 5-14x band for the model.
    let cycle_ratio = unclustered_time.secs() / clustered_time.secs();
    assert!(
        (5.0..=14.0).contains(&cycle_ratio),
        "cycle ratio {cycle_ratio}, Table 4 says 8.5x"
    );
}

#[test]
fn small_relation_gathers_hit_l2_and_get_cheap() {
    // The paper's TPC-H J3 observation: when inputs are small, the L2
    // absorbs unclustered gathers and the GFUR pattern stops losing.
    let dev = Device::a100();
    let n = 1 << 18; // 1 MB region, far below the 40 MB L2
    let src = dev.upload((0..n as i32).collect::<Vec<_>>(), "src");
    let map = dev.upload(random_map(n), "umap");
    // Warm up, then measure the steady state.
    let _ = gather(&dev, &src, &map);
    dev.reset_stats();
    let _ = gather(&dev, &src, &map);
    let c = dev.counters();
    assert!(
        c.l2_hit_rate() > 0.9,
        "small-region gather should be L2-resident, hit rate {}",
        c.l2_hit_rate()
    );
}

#[test]
fn a100_larger_l2_still_cannot_fix_huge_unclustered_gathers() {
    // Figure 7's note: "a larger GPU like the A100 with a much larger L2
    // cache ... cannot alleviate the inefficiency of unclustered gathers"
    // — because the gathered region dwarfs even 40 MB.
    let dev = Device::a100();
    let n = 1 << 24; // 64 MB region vs 40 MB L2
    let src = dev.upload((0..n as i32).collect::<Vec<_>>(), "src");
    let map = dev.upload(random_map(n), "umap");
    dev.reset_stats();
    let _ = gather(&dev, &src, &map);
    let slow = dev.elapsed();
    let cmap = dev.upload((0..n as u32).collect::<Vec<_>>(), "cmap");
    dev.reset_stats();
    let _ = gather(&dev, &src, &cmap);
    let fast = dev.elapsed();
    assert!(
        slow.secs() > 2.0 * fast.secs(),
        "unclustered {} vs clustered {}",
        slow,
        fast
    );
}
