//! SORT-PAIRS — LSD radix sort of (key, value) pairs, as CUB implements it
//! (Section 2.3 of the paper): a sequence of stable RADIX-PARTITION passes
//! from the least significant digit up. Sorting a 4-byte key takes four
//! 8-bit passes; with a 4-byte payload that is the "~17 sequential scans"
//! of key and payload arrays quoted in Section 4.2.

use crate::partition::radix_partition_pass;
use sim::{Device, DeviceBuffer, Element};

/// Sort pairs by the low `bits` of the key's radix image.
///
/// Exposed separately from [`sort_pairs`] so callers that know their key
/// domain (e.g. keys in `0..|R|`) can run fewer passes — an ablation the
/// benchmark harness uses; the paper's implementations sort the full width.
pub fn sort_pairs_bits<K: Element, V: Element>(
    dev: &Device,
    keys: &DeviceBuffer<K>,
    vals: &DeviceBuffer<V>,
    bits: u32,
) -> (DeviceBuffer<K>, DeviceBuffer<V>) {
    let per_pass = dev.config().max_radix_bits_per_pass;
    let mut shift = 0u32;
    let mut cur: Option<(DeviceBuffer<K>, DeviceBuffer<V>)> = None;
    while shift < bits {
        let b = (bits - shift).min(per_pass);
        let (k, v) = match &cur {
            None => radix_partition_pass(dev, keys, vals, shift, b),
            Some((ck, cv)) => radix_partition_pass(dev, ck, cv, shift, b),
        };
        cur = Some((k, v));
        shift += b;
    }
    cur.unwrap_or_else(|| {
        // bits == 0: the sort is a no-op copy.
        (
            dev.upload(keys.to_vec(), "sort_pairs.keys"),
            dev.upload(vals.to_vec(), "sort_pairs.vals"),
        )
    })
}

/// Sort pairs by the full key width (ascending, signed-aware), the way the
/// paper's SMJ variants use the primitive.
pub fn sort_pairs<K: Element, V: Element>(
    dev: &Device,
    keys: &DeviceBuffer<K>,
    vals: &DeviceBuffer<V>,
) -> (DeviceBuffer<K>, DeviceBuffer<V>) {
    sort_pairs_bits(dev, keys, vals, (K::SIZE * 8) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Device;

    #[test]
    fn sorts_and_preserves_pairing() {
        let dev = Device::a100();
        let ks = vec![5i32, -3, 9, 0, -3, 2];
        let vs: Vec<u32> = (0..ks.len() as u32).collect();
        let kb = dev.upload(ks.clone(), "k");
        let vb = dev.upload(vs.clone(), "v");
        let (sk, sv) = sort_pairs(&dev, &kb, &vb);
        let mut expected: Vec<(i32, u32)> = ks.iter().copied().zip(vs).collect();
        expected.sort_by_key(|&(k, v)| (k, v)); // stable ties keep insertion order
        let got: Vec<(i32, u32)> = sk.iter().copied().zip(sv.iter().copied()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn stability_on_duplicate_keys() {
        let dev = Device::a100();
        let kb = dev.upload(vec![1i32, 1, 1, 0, 0], "k");
        let vb = dev.upload(vec![10u32, 11, 12, 20, 21], "v");
        let (sk, sv) = sort_pairs(&dev, &kb, &vb);
        assert_eq!(sk.as_slice(), &[0, 0, 1, 1, 1]);
        assert_eq!(sv.as_slice(), &[20, 21, 10, 11, 12]);
    }

    #[test]
    fn sixty_four_bit_keys() {
        let dev = Device::a100();
        let ks = vec![i64::MAX, -1, 0, i64::MIN, 42];
        let kb = dev.upload(ks.clone(), "k");
        let vb = dev.upload((0..5u32).collect::<Vec<_>>(), "v");
        let (sk, _) = sort_pairs(&dev, &kb, &vb);
        let mut expected = ks;
        expected.sort_unstable();
        assert_eq!(sk.as_slice(), expected.as_slice());
    }

    #[test]
    fn four_byte_sort_runs_four_passes() {
        let dev = Device::a100();
        let n = 1usize << 12;
        let kb = dev.upload((0..n as i32).rev().collect::<Vec<_>>(), "k");
        let vb = dev.upload((0..n as u32).collect::<Vec<_>>(), "v");
        dev.reset_stats();
        let _ = sort_pairs(&dev, &kb, &vb);
        // 4 passes × (histogram + scan + scatter) = 12 kernels.
        assert_eq!(dev.counters().kernel_launches, 12);
    }

    #[test]
    fn restricted_bits_run_fewer_passes_and_still_sort_in_domain() {
        let dev = Device::a100();
        let ks: Vec<i32> = vec![200, 3, 150, 77, 0, 255];
        let kb = dev.upload(ks.clone(), "k");
        let vb = dev.upload((0..6u32).collect::<Vec<_>>(), "v");
        dev.reset_stats();
        let (sk, _) = sort_pairs_bits(&dev, &kb, &vb, 8);
        assert_eq!(dev.counters().kernel_launches, 3);
        let mut expected = ks;
        expected.sort_unstable();
        assert_eq!(sk.as_slice(), expected.as_slice());
    }

    #[test]
    fn zero_bits_copies() {
        let dev = Device::a100();
        let kb = dev.upload(vec![3i32, 1], "k");
        let vb = dev.upload(vec![0u32, 1], "v");
        let (sk, sv) = sort_pairs_bits(&dev, &kb, &vb, 0);
        assert_eq!(sk.as_slice(), &[3, 1]);
        assert_eq!(sv.as_slice(), &[0, 1]);
    }
}
