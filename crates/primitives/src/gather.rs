//! GATHER and SCATTER — the materialization primitives.
//!
//! `out[i] = in[map[i]]` (gather) and `out[map[i]] = in[i]` (scatter). The
//! efficiency of a gather is entirely determined by how *clustered* the map
//! is (Section 2.3): warps reading neighbouring `map` entries that point to
//! neighbouring source rows coalesce into few sectors and hit L2; random
//! maps touch a sector per lane. Both the map read and the data read issue
//! warp load requests — which is why Table 4 reports ~18 sectors/request
//! for the unclustered case (32 for the data + 4 for the map, averaged) and
//! ~6 for the clustered one.

use crate::GATHER_WARP_INSTR;
use columnar::Column;
use sim::{Device, DeviceBuffer, Element};

/// Gather `src[map[i]]` for every `i`, charging warp-level coalescing costs.
///
/// Panics if any map entry is out of bounds — GPU code would fault; the
/// simulator surfaces the bug eagerly.
pub fn gather<T: Element>(
    dev: &Device,
    src: &DeviceBuffer<T>,
    map: &DeviceBuffer<u32>,
) -> DeviceBuffer<T> {
    let n = map.len();
    let mut out = Vec::with_capacity(n);
    // Precompute the data-read address stream alongside the host copy, so
    // the simulator's (possibly multi-threaded) traffic accounting consumes
    // a flat slice instead of re-chasing the map per address.
    let mut data_addrs = Vec::with_capacity(n);
    for (i, &m) in map.iter().enumerate() {
        assert!(
            (m as usize) < src.len(),
            "gather map[{i}] = {m} out of bounds for source of {} rows",
            src.len()
        );
        out.push(src[m as usize]);
        data_addrs.push(src.addr_of(m as usize));
    }
    dev.kernel("gather")
        .items(n as u64, GATHER_WARP_INSTR)
        // The map itself is streamed with coalesced warp loads.
        .warp_loads(4, (0..n).map(|i| map.addr_of(i)))
        // The data reads coalesce only as well as the map is clustered.
        .warp_loads(T::SIZE, data_addrs)
        .seq_write_bytes(n as u64 * T::SIZE)
        .launch();
    dev.upload(out, "gather.out")
}

/// Scatter `src[i]` to `out[map[i]]`. The inverse access pattern of
/// [`gather`]: reads stream, writes chase the map.
pub fn scatter<T: Element>(
    dev: &Device,
    src: &DeviceBuffer<T>,
    map: &DeviceBuffer<u32>,
    out_len: usize,
) -> DeviceBuffer<T> {
    assert_eq!(src.len(), map.len(), "scatter source/map length mismatch");
    let mut out = vec![T::default(); out_len];
    let out_buf = dev.alloc::<T>(out_len, "scatter.out");
    let mut store_addrs = Vec::with_capacity(map.len());
    for (i, &m) in map.iter().enumerate() {
        assert!(
            (m as usize) < out_len,
            "scatter map[{i}] = {m} out of bounds for output of {out_len} rows"
        );
        out[m as usize] = src[i];
        store_addrs.push(out_buf.addr_of(m as usize));
    }
    let mut out_buf = out_buf;
    out_buf.as_mut_slice().copy_from_slice(&out);
    dev.kernel("scatter")
        .items(src.len() as u64, GATHER_WARP_INSTR)
        .seq_read_bytes(src.len() as u64 * (T::SIZE + 4))
        .warp_stores(T::SIZE, store_addrs)
        .launch();
    out_buf
}

/// Sentinel map entry meaning "no source row": [`gather_or`] emits the
/// fallback value for these lanes. Used by outer joins for unmatched rows.
pub const NULL_ID: u32 = u32::MAX;

/// Gather with null handling: `out[i] = if map[i] == NULL_ID { fallback }
/// else { src[map[i]] }`. Null lanes issue no memory traffic.
pub fn gather_or<T: Element>(
    dev: &Device,
    src: &DeviceBuffer<T>,
    map: &DeviceBuffer<u32>,
    fallback: T,
) -> DeviceBuffer<T> {
    let n = map.len();
    let mut out = Vec::with_capacity(n);
    // Null lanes issue no memory traffic, so they contribute no address.
    let mut data_addrs = Vec::with_capacity(n);
    for (i, &m) in map.iter().enumerate() {
        if m == NULL_ID {
            out.push(fallback);
        } else {
            assert!(
                (m as usize) < src.len(),
                "gather map[{i}] = {m} out of bounds for source of {} rows",
                src.len()
            );
            out.push(src[m as usize]);
            data_addrs.push(src.addr_of(m as usize));
        }
    }
    dev.kernel("gather_or")
        .items(n as u64, GATHER_WARP_INSTR)
        .warp_loads(4, (0..n).map(|i| map.addr_of(i)))
        .warp_loads(T::SIZE, data_addrs)
        .seq_write_bytes(n as u64 * T::SIZE)
        .launch();
    dev.upload(out, "gather_or.out")
}

/// [`gather_or`] lifted to [`Column`]s; the fallback is the column type's
/// null sentinel (`i32::MIN` / `i64::MIN`).
pub fn gather_column_or_null(dev: &Device, src: &Column, map: &DeviceBuffer<u32>) -> Column {
    match src {
        Column::I32(b) => Column::I32(gather_or(dev, b, map, i32::MIN)),
        Column::I64(b) => Column::I64(gather_or(dev, b, map, i64::MIN)),
    }
}

/// [`gather`] lifted to dynamically typed [`Column`]s — the form the
/// materialization phase uses, one payload column at a time (Algorithm 1,
/// lines 6 and 9).
pub fn gather_column(dev: &Device, src: &Column, map: &DeviceBuffer<u32>) -> Column {
    match src {
        Column::I32(b) => Column::I32(gather(dev, b, map)),
        Column::I64(b) => Column::I64(gather(dev, b, map)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Device;

    #[test]
    fn gather_basic() {
        let dev = Device::a100();
        let src = dev.upload(vec![10i32, 20, 30, 40], "src");
        let map = dev.upload(vec![3u32, 0, 3, 1], "map");
        let out = gather(&dev, &src, &map);
        assert_eq!(out.as_slice(), &[40, 10, 40, 20]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_oob_panics() {
        let dev = Device::a100();
        let src = dev.upload(vec![1i32], "src");
        let map = dev.upload(vec![1u32], "map");
        let _ = gather(&dev, &src, &map);
    }

    #[test]
    fn scatter_inverts_gather_for_permutations() {
        let dev = Device::a100();
        let src = dev.upload(vec![10i64, 20, 30, 40], "src");
        let perm = dev.upload(vec![2u32, 0, 3, 1], "perm");
        let scat = scatter(&dev, &src, &perm, 4);
        let back = gather(&dev, &scat, &perm);
        assert_eq!(back.as_slice(), src.as_slice());
    }

    #[test]
    fn clustered_map_touches_fewer_sectors_than_random() {
        let dev = Device::a100();
        let n = 1usize << 18;
        let src = dev.upload((0..n as i32).collect::<Vec<_>>(), "src");
        let clustered = dev.upload((0..n as u32).collect::<Vec<_>>(), "cmap");
        let _ = gather(&dev, &src, &clustered);
        let spr_clustered = dev.counters().sectors_per_request();
        dev.reset_stats();
        let random: Vec<u32> = (0..n).map(|i| ((i * 2654435761) % n) as u32).collect();
        let rmap = dev.upload(random, "rmap");
        let _ = gather(&dev, &src, &rmap);
        let spr_random = dev.counters().sectors_per_request();
        assert!(
            spr_random > 2.5 * spr_clustered,
            "random {spr_random} vs clustered {spr_clustered}"
        );
    }

    #[test]
    fn gather_column_dispatches_both_types() {
        let dev = Device::a100();
        let map = dev.upload(vec![1u32, 1, 0], "map");
        let c4 = Column::from_i32(&dev, vec![7, 8], "c4");
        assert_eq!(gather_column(&dev, &c4, &map).to_vec_i64(), vec![8, 8, 7]);
        let c8 = Column::from_i64(&dev, vec![70, 80], "c8");
        assert_eq!(
            gather_column(&dev, &c8, &map).to_vec_i64(),
            vec![80, 80, 70]
        );
    }

    #[test]
    fn empty_gather() {
        let dev = Device::a100();
        let src = dev.upload(vec![1i32], "src");
        let map = dev.upload(Vec::<u32>::new(), "map");
        let out = gather(&dev, &src, &map);
        assert!(out.is_empty());
    }
}

#[cfg(test)]
mod null_tests {
    use super::*;
    use sim::Device;

    #[test]
    fn gather_or_substitutes_fallback() {
        let dev = Device::a100();
        let src = dev.upload(vec![10i32, 20], "src");
        let map = dev.upload(vec![1u32, NULL_ID, 0], "map");
        let out = gather_or(&dev, &src, &map, -1);
        assert_eq!(out.as_slice(), &[20, -1, 10]);
    }

    #[test]
    fn gather_column_or_null_uses_type_min() {
        let dev = Device::a100();
        let map = dev.upload(vec![NULL_ID, 0], "map");
        let c4 = Column::from_i32(&dev, vec![5], "c");
        assert_eq!(
            gather_column_or_null(&dev, &c4, &map).to_vec_i64(),
            vec![i32::MIN as i64, 5]
        );
        let c8 = Column::from_i64(&dev, vec![7], "c");
        assert_eq!(
            gather_column_or_null(&dev, &c8, &map).to_vec_i64(),
            vec![i64::MIN, 7]
        );
    }

    #[test]
    fn all_null_map_issues_no_data_loads() {
        let dev = Device::a100();
        let src = dev.upload(vec![1i32; 64], "src");
        let map = dev.upload(vec![NULL_ID; 256], "map");
        dev.reset_stats();
        let out = gather_or(&dev, &src, &map, 9);
        assert!(out.iter().all(|&v| v == 9));
        // Only the map itself was read (8 requests of 4 sectors).
        assert_eq!(dev.counters().load_requests, 8);
    }
}
