//! Hash-based match finding: the per-partition shared-memory join kernel
//! (PHJ match finding, Sections 3.2 and 4.3) and the global hash table of
//! the non-partitioned baseline (cuDF's join, Section 5.2.2).

use crate::{BUILD_WARP_INSTR, GLOBAL_HASH_WARP_INSTR, PROBE_WARP_INSTR};
use sim::{Device, DeviceBuffer, Element};

/// Matched tuples: the intermediate relation `T'(key, ID_R, ID_S)` of
/// Section 2.2. Depending on the pattern, the index columns hold physical
/// tuple IDs (GFUR) or positions in the transformed relations (GFTR).
pub struct MatchResult<K: Element> {
    /// Matched key values, one per output row.
    pub keys: DeviceBuffer<K>,
    /// Matching positions into the R side.
    pub r_idx: DeviceBuffer<u32>,
    /// Matching positions into the S side.
    pub s_idx: DeviceBuffer<u32>,
}

impl<K: Element> MatchResult<K> {
    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the join produced no matches.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Diagnostics from [`join_copartitions`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CoPartitionCost {
    /// Largest number of build-side chunks any partition needed (1 means
    /// every build partition fit the shared-memory hash table at once).
    pub max_build_chunks: u32,
    /// Total probe-side tuples re-read due to multi-chunk (block-nested-
    /// loop) processing, beyond the first pass.
    pub probe_rereads: u64,
}

/// Multiplicative hash into `mask + 1` slots (Fibonacci hashing).
#[inline]
fn slot_of(key: u64, mask: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask
}

/// Join co-partitions with per-partition shared-memory hash tables — the
/// match-finding kernel of the partitioned hash joins (Figure 6, step 2).
///
/// `r_offsets`/`s_offsets` are the partition boundary arrays produced by
/// [`crate::radix_partition`]; both sides must use the same fan-out. A
/// thread block builds a hash table from (a chunk of) the build partition in
/// shared memory and streams the probe co-partition through it; build
/// partitions larger than the shared-memory budget fall back to the
/// block-nested-loop behaviour the paper describes, re-reading the probe
/// partition once per chunk.
///
/// Returned positions are *global* indices into the partitioned arrays, and
/// the probe-side (`s_idx`) output is non-decreasing — the clustering that
/// GFTR's cheap materialization relies on.
pub fn join_copartitions<K: Element + Eq>(
    dev: &Device,
    r_keys: &DeviceBuffer<K>,
    r_offsets: &[u32],
    s_keys: &DeviceBuffer<K>,
    s_offsets: &[u32],
) -> (MatchResult<K>, CoPartitionCost) {
    assert_eq!(
        r_offsets.len(),
        s_offsets.len(),
        "co-partitioned inputs must share a fan-out"
    );
    let parts = r_offsets.len() - 1;
    // Shared-memory hash table capacity, in tuples of (key, position).
    let cap = dev.config().shared_mem_tuples(K::SIZE + 4).max(64) as usize;

    let mut keys = Vec::new();
    let mut r_idx = Vec::new();
    let mut s_idx = Vec::new();
    let mut cost = CoPartitionCost::default();

    // Reusable open-addressing table: (radix key, global r position).
    let mut table: Vec<(u64, u32)> = Vec::new();

    let mut probe_tuples_read = 0u64;
    let mut build_tuples_read = 0u64;

    for p in 0..parts {
        let r_range = r_offsets[p] as usize..r_offsets[p + 1] as usize;
        let s_range = s_offsets[p] as usize..s_offsets[p + 1] as usize;
        if r_range.is_empty() || s_range.is_empty() {
            continue;
        }
        let chunks = r_range.len().div_ceil(cap);
        cost.max_build_chunks = cost.max_build_chunks.max(chunks as u32);
        if chunks > 1 {
            cost.probe_rereads += (chunks as u64 - 1) * s_range.len() as u64;
        }

        for chunk in 0..chunks {
            let chunk_start = r_range.start + chunk * cap;
            let chunk_end = (chunk_start + cap).min(r_range.end);

            // Build: open addressing sized to the next power of two ≥ 2x.
            let chunk_len = chunk_end - chunk_start;
            let slots = (chunk_len * 2).next_power_of_two();
            let mask = slots - 1;
            table.clear();
            table.resize(slots, (u64::MAX, u32::MAX));
            for gi in chunk_start..chunk_end {
                let k = r_keys[gi].to_radix();
                let mut s = slot_of(k, mask);
                while table[s].1 != u32::MAX {
                    s = (s + 1) & mask;
                }
                table[s] = (k, gi as u32);
            }
            build_tuples_read += chunk_len as u64;

            // Probe: stream the S co-partition; duplicates on the build side
            // are found by continuing the probe chain to the first empty slot.
            for (sg, sk) in s_range.clone().map(|i| (i, s_keys[i])) {
                let k = sk.to_radix();
                let mut s = slot_of(k, mask);
                while table[s].1 != u32::MAX {
                    if table[s].0 == k {
                        keys.push(sk);
                        r_idx.push(table[s].1);
                        s_idx.push(sg as u32);
                    }
                    s = (s + 1) & mask;
                }
            }
            probe_tuples_read += s_range.len() as u64;
        }
    }

    let out_rows = keys.len() as u64;
    dev.kernel("copartition.build")
        .items(build_tuples_read, BUILD_WARP_INSTR)
        .seq_read_bytes(build_tuples_read * K::SIZE)
        .launch();
    dev.kernel("copartition.probe")
        .items(probe_tuples_read, PROBE_WARP_INSTR)
        .seq_read_bytes(probe_tuples_read * K::SIZE)
        .seq_write_bytes(out_rows * (K::SIZE + 4 + 4))
        .launch();

    (
        MatchResult {
            keys: dev.upload(keys, "copartition_join.keys"),
            r_idx: dev.upload(r_idx, "copartition_join.r_idx"),
            s_idx: dev.upload(s_idx, "copartition_join.s_idx"),
        },
        cost,
    )
}

/// A global hash table in device memory — the core of the non-partitioned
/// hash join (cuDF baseline). Every insert and probe chases random slots in
/// global memory; the simulator routes those accesses through the L2 model,
/// so small tables are cheap and large ones pay the paper's random-access
/// tax (Section 5.2.2: "cuDF is the most inefficient of all because of the
/// random accesses during the construction and probing of the hash table").
pub struct GlobalHashTable<K: Element> {
    keys: DeviceBuffer<u64>,
    vals: DeviceBuffer<u32>,
    occupied: Vec<bool>,
    mask: usize,
    _marker: std::marker::PhantomData<K>,
}

impl<K: Element + Eq> GlobalHashTable<K> {
    /// Allocate a table able to hold `n` entries at ≤50% load factor.
    pub fn new(dev: &Device, n: usize) -> Self {
        let slots = (n.max(1) * 2).next_power_of_two();
        GlobalHashTable {
            keys: dev.alloc::<u64>(slots, "global_ht.keys"),
            vals: dev.alloc::<u32>(slots, "global_ht.vals"),
            occupied: vec![false; slots],
            mask: slots - 1,
            _marker: std::marker::PhantomData,
        }
    }

    /// Build the table from `build_keys`, storing each key's position.
    pub fn build(&mut self, dev: &Device, build_keys: &DeviceBuffer<K>) {
        let mut touched: Vec<u64> = Vec::with_capacity(build_keys.len());
        for (i, bk) in build_keys.iter().enumerate() {
            let k = bk.to_radix();
            let mut s = slot_of(k, self.mask);
            loop {
                touched.push(self.keys.addr_of(s));
                if !self.occupied[s] {
                    self.occupied[s] = true;
                    self.keys[s] = k;
                    self.vals[s] = i as u32;
                    break;
                }
                s = (s + 1) & self.mask;
            }
        }
        dev.kernel("global_ht.build")
            .items(build_keys.len() as u64, GLOBAL_HASH_WARP_INSTR)
            .seq_read_bytes(build_keys.len() as u64 * K::SIZE)
            .warp_stores(12, touched)
            .launch();
    }

    /// Probe with `probe_keys`; returns matches in probe order (`s_idx`
    /// clustered, `r_idx` random — which is why the NPHJ's materialization
    /// of the build side stays expensive).
    pub fn probe(&self, dev: &Device, probe_keys: &DeviceBuffer<K>) -> MatchResult<K> {
        let mut keys = Vec::new();
        let mut r_idx = Vec::new();
        let mut s_idx = Vec::new();
        let mut touched: Vec<u64> = Vec::with_capacity(probe_keys.len());
        for (j, pk) in probe_keys.iter().enumerate() {
            let k = pk.to_radix();
            let mut s = slot_of(k, self.mask);
            loop {
                touched.push(self.keys.addr_of(s));
                if !self.occupied[s] {
                    break;
                }
                if self.keys[s] == k {
                    keys.push(*pk);
                    r_idx.push(self.vals[s]);
                    s_idx.push(j as u32);
                }
                s = (s + 1) & self.mask;
            }
        }
        let out_rows = keys.len() as u64;
        dev.kernel("global_ht.probe")
            .items(probe_keys.len() as u64, GLOBAL_HASH_WARP_INSTR)
            .seq_read_bytes(probe_keys.len() as u64 * K::SIZE)
            .warp_loads(12, touched)
            .seq_write_bytes(out_rows * (K::SIZE + 4 + 4))
            .launch();
        MatchResult {
            keys: dev.upload(keys, "global_ht.out_keys"),
            r_idx: dev.upload(r_idx, "global_ht.out_r_idx"),
            s_idx: dev.upload(s_idx, "global_ht.out_s_idx"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix_partition;
    use sim::Device;

    #[test]
    fn copartition_join_matches_oracle() {
        let dev = Device::a100();
        let r: Vec<i32> = (0..1000).collect();
        let s: Vec<i32> = (0..2000).map(|i| (i * 7) % 1500).collect();
        let rk = dev.upload(r.clone(), "r");
        let rv = dev.upload((0..r.len() as u32).collect::<Vec<_>>(), "rv");
        let sk = dev.upload(s.clone(), "s");
        let sv = dev.upload((0..s.len() as u32).collect::<Vec<_>>(), "sv");
        let rp = radix_partition(&dev, &rk, &rv, 4);
        let sp = radix_partition(&dev, &sk, &sv, 4);
        let (m, _) = join_copartitions(&dev, &rp.keys, &rp.offsets, &sp.keys, &sp.offsets);

        let expected: usize = s.iter().filter(|&&v| (0..1000).contains(&v)).count();
        assert_eq!(m.len(), expected);
        for i in 0..m.len() {
            assert_eq!(rp.keys[m.r_idx[i] as usize], m.keys[i]);
            assert_eq!(sp.keys[m.s_idx[i] as usize], m.keys[i]);
        }
        // Probe side clustered.
        assert!(m.s_idx.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn copartition_join_handles_duplicates_on_both_sides() {
        let dev = Device::a100();
        let rk = dev.upload(vec![4i32, 4, 8], "r");
        let rv = dev.upload(vec![0u32, 1, 2], "rv");
        let sk = dev.upload(vec![4i32, 8, 4], "s");
        let sv = dev.upload(vec![0u32, 1, 2], "sv");
        let rp = radix_partition(&dev, &rk, &rv, 2);
        let sp = radix_partition(&dev, &sk, &sv, 2);
        let (m, _) = join_copartitions(&dev, &rp.keys, &rp.offsets, &sp.keys, &sp.offsets);
        // key 4: 2 (R) × 2 (S) + key 8: 1 × 1.
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn oversized_build_partition_falls_back_to_chunks() {
        let mut cfg = sim::DeviceConfig::a100();
        cfg.shared_mem_bytes = 1 << 10; // tiny: 64-tuple chunks
        let dev = Device::new(cfg);
        let n = 1000i32;
        let rk = dev.upload((0..n).collect::<Vec<_>>(), "r");
        let rv = dev.upload((0..n as u32).collect::<Vec<_>>(), "rv");
        let sk = dev.upload((0..n).collect::<Vec<_>>(), "s");
        let sv = dev.upload((0..n as u32).collect::<Vec<_>>(), "sv");
        // Single partition => build side far larger than shared memory.
        let rp = radix_partition(&dev, &rk, &rv, 0);
        let sp = radix_partition(&dev, &sk, &sv, 0);
        let (m, cost) = join_copartitions(&dev, &rp.keys, &rp.offsets, &sp.keys, &sp.offsets);
        assert_eq!(m.len(), n as usize);
        assert!(cost.max_build_chunks > 1);
        assert!(cost.probe_rereads > 0);
    }

    #[test]
    fn global_table_build_probe_roundtrip() {
        let dev = Device::a100();
        let build = dev.upload((0..512i32).map(|i| i * 2).collect::<Vec<_>>(), "b");
        let probe = dev.upload((0..512i32).collect::<Vec<_>>(), "p");
        let mut ht = GlobalHashTable::new(&dev, build.len());
        ht.build(&dev, &build);
        let m = ht.probe(&dev, &probe);
        assert_eq!(m.len(), 256); // even numbers only
        for i in 0..m.len() {
            assert_eq!(build[m.r_idx[i] as usize], m.keys[i]);
            assert_eq!(probe[m.s_idx[i] as usize], m.keys[i]);
        }
        assert!(m.s_idx.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn global_table_random_access_is_charged() {
        let dev = Device::a100();
        // Large table (footprint >> L2) with shuffled keys: probes must
        // touch many sectors.
        let n = 1 << 21;
        let keys: Vec<i32> = (0..n)
            .map(|i| (i * 2654435761u64 as i64 % n) as i32)
            .collect();
        let build = dev.upload(keys, "b");
        let mut ht = GlobalHashTable::new(&dev, build.len());
        dev.reset_stats();
        ht.build(&dev, &build);
        let c = dev.counters();
        assert!(
            c.sectors_per_request() > 8.0,
            "spr={}",
            c.sectors_per_request()
        );
    }

    #[test]
    fn global_table_handles_duplicate_build_keys() {
        let dev = Device::a100();
        let build = dev.upload(vec![7i32, 7, 9], "b");
        let probe = dev.upload(vec![7i32], "p");
        let mut ht = GlobalHashTable::new(&dev, 3);
        ht.build(&dev, &build);
        let m = ht.probe(&dev, &probe);
        assert_eq!(m.len(), 2);
    }
}
