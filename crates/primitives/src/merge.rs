//! Merge join over sorted inputs, balanced with the Merge Path algorithm
//! (Green et al., ICS'12) as used by Rui et al. and ModernGPU.
//!
//! Merge Path splits both sorted arrays into co-partitions of equal total
//! work regardless of the data distribution — the property that makes SMJ's
//! match-finding phase skew-resilient (Section 5.2.4 of the paper). The
//! bounds search reads both key arrays once per pass; primary-key joins need
//! a single pass, general joins two (lower and upper bounds, Section 3.1).

use crate::hash::MatchResult;
use crate::MERGE_WARP_INSTR;
use sim::{Device, DeviceBuffer, Element};

/// Split the merge of `r` and `s` into `num_parts` balanced co-partitions.
///
/// Returns `num_parts + 1` split points `(i, j)`: partition `p` merges
/// `r[i_p..i_{p+1}]` with `s[j_p..j_{p+1}]`, and every partition covers the
/// same number of elements (±1) of the combined input.
pub fn merge_path_partitions<K: Element + Ord>(
    r: &[K],
    s: &[K],
    num_parts: usize,
) -> Vec<(usize, usize)> {
    assert!(num_parts > 0, "need at least one partition");
    let total = r.len() + s.len();
    let mut splits = Vec::with_capacity(num_parts + 1);
    for p in 0..=num_parts {
        let diag = (total * p) / num_parts;
        // Binary search along the diagonal: find i in [max(0, diag-|s|),
        // min(diag, |r|)] such that r[..i] and s[..diag-i] interleave.
        let mut lo = diag.saturating_sub(s.len());
        let mut hi = diag.min(r.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            let j = diag - mid;
            // Merge Path invariant: r[mid] vs s[j-1].
            if j > 0 && mid < r.len() && r[mid] < s[j - 1] {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        splits.push((lo, diag - lo));
    }
    splits
}

/// Merge-join two *sorted* key arrays, producing matched keys and the pair
/// of matching positions into each input.
///
/// Output order is s-major (all matches of `s[0]`, then `s[1]`, ...), so
/// both index columns come out *clustered* when the inputs are sorted —
/// the property GFTR's cheap gathers rely on (Section 4.1).
///
/// `unique_r` declares `r` duplicate-free (a primary key side): the bounds
/// search then runs once instead of twice, as the paper's PK-FK
/// specialization does.
pub fn merge_join<K: Element + Ord>(
    dev: &Device,
    r_keys: &DeviceBuffer<K>,
    s_keys: &DeviceBuffer<K>,
    unique_r: bool,
) -> MatchResult<K> {
    debug_assert!(r_keys.windows(2).all(|w| w[0] <= w[1]), "r must be sorted");
    debug_assert!(s_keys.windows(2).all(|w| w[0] <= w[1]), "s must be sorted");

    let bound_passes = if unique_r { 1 } else { 2 };
    for _ in 0..bound_passes {
        dev.kernel("merge_join.path_bounds")
            .items((r_keys.len() + s_keys.len()) as u64, MERGE_WARP_INSTR)
            .seq_read_bytes((r_keys.len() + s_keys.len()) as u64 * K::SIZE)
            .launch();
    }

    let mut keys = Vec::new();
    let mut r_idx = Vec::new();
    let mut s_idx = Vec::new();
    let (r, s) = (r_keys.as_slice(), s_keys.as_slice());
    let (mut i, mut j) = (0usize, 0usize);
    while i < r.len() && j < s.len() {
        if r[i] < s[j] {
            i += 1;
        } else if s[j] < r[i] {
            j += 1;
        } else {
            let k = r[i];
            let ri_end = i + r[i..].iter().take_while(|&&x| x == k).count();
            let sj_end = j + s[j..].iter().take_while(|&&x| x == k).count();
            for sj in j..sj_end {
                for ri in i..ri_end {
                    keys.push(k);
                    r_idx.push(ri as u32);
                    s_idx.push(sj as u32);
                }
            }
            i = ri_end;
            j = sj_end;
        }
    }

    let out_rows = keys.len() as u64;
    dev.kernel("merge_join.expand")
        .items((r.len() + s.len()) as u64, MERGE_WARP_INSTR)
        .seq_read_bytes((r.len() + s.len()) as u64 * K::SIZE)
        .seq_write_bytes(out_rows * (K::SIZE + 4 + 4))
        .launch();

    MatchResult {
        keys: dev.upload(keys, "merge_join.keys"),
        r_idx: dev.upload(r_idx, "merge_join.r_idx"),
        s_idx: dev.upload(s_idx, "merge_join.s_idx"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Device;

    #[test]
    fn merge_path_splits_cover_everything_evenly() {
        let r: Vec<i32> = (0..100).map(|i| i * 2).collect();
        let s: Vec<i32> = (0..50).map(|i| i * 4 + 1).collect();
        let parts = 8;
        let splits = merge_path_partitions(&r, &s, parts);
        assert_eq!(splits.len(), parts + 1);
        assert_eq!(splits[0], (0, 0));
        assert_eq!(splits[parts], (r.len(), s.len()));
        for w in splits.windows(2) {
            let work = (w[1].0 - w[0].0) + (w[1].1 - w[0].1);
            let ideal = (r.len() + s.len()) / parts;
            assert!(
                work.abs_diff(ideal) <= 1,
                "unbalanced split: {work} vs {ideal}"
            );
            // Split points must be monotone.
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn merge_path_is_balanced_even_on_skew() {
        // All of s equals one value that sits in the middle of r.
        let r: Vec<i32> = (0..1000).collect();
        let s: Vec<i32> = vec![500; 1000];
        let splits = merge_path_partitions(&r, &s, 16);
        for w in splits.windows(2) {
            let work = (w[1].0 - w[0].0) + (w[1].1 - w[0].1);
            assert!(work.abs_diff(2000 / 16) <= 1);
        }
    }

    #[test]
    fn pk_fk_join_finds_all_matches() {
        let dev = Device::a100();
        let r = dev.upload(vec![1i32, 3, 5, 7], "r");
        let s = dev.upload(vec![1i32, 1, 3, 6, 7, 7], "s");
        let m = merge_join(&dev, &r, &s, true);
        assert_eq!(m.keys.as_slice(), &[1, 1, 3, 7, 7]);
        assert_eq!(m.r_idx.as_slice(), &[0, 0, 1, 3, 3]);
        assert_eq!(m.s_idx.as_slice(), &[0, 1, 2, 4, 5]);
    }

    #[test]
    fn many_to_many_emits_cross_product_per_key() {
        let dev = Device::a100();
        let r = dev.upload(vec![2i32, 2, 5], "r");
        let s = dev.upload(vec![2i32, 2, 2], "s");
        let m = merge_join(&dev, &r, &s, false);
        assert_eq!(m.len(), 6); // 2 × 3
                                // s-major order, r ascending within each s.
        assert_eq!(m.s_idx.as_slice(), &[0, 0, 1, 1, 2, 2]);
        assert_eq!(m.r_idx.as_slice(), &[0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn disjoint_inputs_produce_nothing() {
        let dev = Device::a100();
        let r = dev.upload(vec![1i32, 2], "r");
        let s = dev.upload(vec![3i32, 4], "s");
        let m = merge_join(&dev, &r, &s, true);
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn unique_r_saves_a_bounds_pass() {
        let dev = Device::a100();
        let r = dev.upload((0..1024i32).collect::<Vec<_>>(), "r");
        let s = dev.upload((0..1024i32).collect::<Vec<_>>(), "s");
        dev.reset_stats();
        let _ = merge_join(&dev, &r, &s, true);
        let pk = dev.counters().kernel_launches;
        dev.reset_stats();
        let _ = merge_join(&dev, &r, &s, false);
        let general = dev.counters().kernel_launches;
        assert_eq!(general, pk + 1);
    }

    #[test]
    fn output_indices_are_clustered() {
        let dev = Device::a100();
        let r = dev.upload((0..512i32).collect::<Vec<_>>(), "r");
        let s = dev.upload((0..512i32).flat_map(|k| [k, k]).collect::<Vec<_>>(), "s");
        let m = merge_join(&dev, &r, &s, true);
        // s-idx strictly non-decreasing; r-idx non-decreasing for PK-FK.
        assert!(m.s_idx.windows(2).all(|w| w[0] <= w[1]));
        assert!(m.r_idx.windows(2).all(|w| w[0] <= w[1]));
    }
}
