//! Prefix scans, sorted-run boundary detection and mask compaction.

use crate::STREAM_WARP_INSTR;
use sim::{Device, DeviceBuffer};

/// Exclusive prefix sum of `counts`, returning a vector one element longer:
/// `out[i]` is the sum of `counts[..i]`, `out[counts.len()]` the grand total.
///
/// Used to turn radix histograms into partition offsets. The device cost of
/// one streaming pass over the counts is charged (scans of histogram-sized
/// arrays are negligible next to the data passes, exactly as on hardware).
pub fn exclusive_scan(dev: &Device, counts: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0u32;
    out.push(0);
    for &c in counts {
        acc = acc
            .checked_add(c)
            .expect("prefix sum overflowed u32 — partition too large");
        out.push(acc);
    }
    dev.kernel("scan.exclusive")
        .items(counts.len() as u64, STREAM_WARP_INSTR)
        .seq_read_bytes(counts.len() as u64 * 4)
        .seq_write_bytes(out.len() as u64 * 4)
        .launch();
    out
}

/// Boundaries of equal-key runs in a sorted slice: returns `b` with
/// `b[0] = 0`, `b[last] = keys.len()`, and one entry at every index where
/// `keys[i] != keys[i-1]`.
///
/// This is the segment-detection kernel of sort-based grouped aggregation
/// (one streaming read of the keys plus a compacted write of the flags).
pub fn run_boundaries<K: PartialEq + sim::Element>(dev: &Device, keys: &[K]) -> Vec<u32> {
    let mut b = Vec::new();
    b.push(0u32);
    if keys.is_empty() {
        // Zero groups: a single boundary, so `len - 1 == 0` segments.
        return b;
    }
    for i in 1..keys.len() {
        if keys[i] != keys[i - 1] {
            b.push(i as u32);
        }
    }
    b.push(keys.len() as u32);
    dev.kernel("scan.boundaries")
        .items(keys.len() as u64, STREAM_WARP_INSTR)
        .seq_read_bytes(keys.len() as u64 * K::SIZE)
        .seq_write_bytes(b.len() as u64 * 4)
        .launch();
    b
}

/// Compact a byte mask into a selection vector: returns the (ascending) row
/// ids of every `mask[i] != 0` as a device buffer — the standard
/// prefix-sum stream compaction (CUB's `DeviceSelect::Flagged`).
///
/// Cost: one streaming read of the mask (1 byte/row) plus a coalesced write
/// of the surviving ids, as on hardware where the block-wide prefix sum
/// lives in shared memory and only the flags and ids touch DRAM.
pub fn compact_mask(dev: &Device, mask: &DeviceBuffer<u8>) -> DeviceBuffer<u32> {
    let sel: Vec<u32> = mask
        .iter()
        .enumerate()
        .filter_map(|(i, &keep)| (keep != 0).then_some(i as u32))
        .collect();
    dev.kernel("compact.mask")
        .items(mask.len() as u64, STREAM_WARP_INSTR)
        .seq_read_bytes(mask.len() as u64)
        .seq_write_bytes(sel.len() as u64 * 4)
        .launch();
    dev.upload(sel, "compact.sel")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Device;

    #[test]
    fn scan_basic() {
        let dev = Device::a100();
        assert_eq!(exclusive_scan(&dev, &[3, 0, 2, 5]), vec![0, 3, 3, 5, 10]);
        assert_eq!(exclusive_scan(&dev, &[]), vec![0]);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn scan_overflow_detected() {
        let dev = Device::a100();
        let _ = exclusive_scan(&dev, &[u32::MAX, 2]);
    }

    #[test]
    fn boundaries_of_sorted_runs() {
        let dev = Device::a100();
        let keys: Vec<i32> = vec![1, 1, 1, 4, 4, 9];
        assert_eq!(run_boundaries(&dev, &keys), vec![0, 3, 5, 6]);
        let empty: Vec<i32> = vec![];
        assert_eq!(
            run_boundaries(&dev, &empty),
            vec![0],
            "empty input: zero groups"
        );
        assert_eq!(run_boundaries(&dev, &[7i32]), vec![0, 1]);
    }

    #[test]
    fn scan_charges_device_time() {
        let dev = Device::a100();
        let before = dev.elapsed();
        let _ = exclusive_scan(&dev, &[1; 1024]);
        assert!(dev.elapsed() > before);
    }

    #[test]
    fn compact_mask_selects_ascending_ids() {
        let dev = Device::a100();
        let mask = dev.upload(vec![1u8, 0, 1, 1, 0, 1], "m");
        let sel = compact_mask(&dev, &mask);
        assert_eq!(sel.as_slice(), &[0, 2, 3, 5]);
        let none = compact_mask(&dev, &dev.upload(vec![0u8; 4], "m0"));
        assert!(none.is_empty());
        let empty = compact_mask(&dev, &dev.upload(Vec::<u8>::new(), "me"));
        assert!(empty.is_empty());
    }

    #[test]
    fn compact_mask_charges_one_launch_and_honest_bytes() {
        let dev = Device::a100();
        let n = 1usize << 16;
        let mask = dev.upload((0..n).map(|i| (i % 10 == 0) as u8).collect::<Vec<_>>(), "m");
        dev.reset_stats();
        let sel = compact_mask(&dev, &mask);
        let c = dev.counters();
        assert_eq!(c.kernel_launches, 1);
        // One byte read per row plus 4 bytes written per survivor.
        let expected = n as u64 + sel.len() as u64 * 4;
        assert!(
            c.dram_bytes() >= expected,
            "dram {} < honest minimum {expected}",
            c.dram_bytes()
        );
    }

    #[test]
    fn compact_mask_is_classified_as_streaming() {
        // The fused-filter compaction kernel must read as a streaming pass
        // in the roofline/diagnosis layer, never as a random gather.
        let dev = Device::a100();
        let n = 1usize << 18;
        let mask = dev.upload((0..n).map(|i| (i % 3 == 0) as u8).collect::<Vec<_>>(), "m");
        dev.reset_stats();
        let _ = compact_mask(&dev, &mask);
        let diags = sim::analysis::diagnose(&dev.counters(), dev.config());
        assert!(
            diags
                .iter()
                .all(|d| d.pattern != sim::analysis::AccessPattern::RandomGather),
            "compaction misdiagnosed: {diags:?}"
        );
    }
}
