//! Prefix scans and sorted-run boundary detection.

use crate::STREAM_WARP_INSTR;
use sim::Device;

/// Exclusive prefix sum of `counts`, returning a vector one element longer:
/// `out[i]` is the sum of `counts[..i]`, `out[counts.len()]` the grand total.
///
/// Used to turn radix histograms into partition offsets. The device cost of
/// one streaming pass over the counts is charged (scans of histogram-sized
/// arrays are negligible next to the data passes, exactly as on hardware).
pub fn exclusive_scan(dev: &Device, counts: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0u32;
    out.push(0);
    for &c in counts {
        acc = acc
            .checked_add(c)
            .expect("prefix sum overflowed u32 — partition too large");
        out.push(acc);
    }
    dev.kernel("scan.exclusive")
        .items(counts.len() as u64, STREAM_WARP_INSTR)
        .seq_read_bytes(counts.len() as u64 * 4)
        .seq_write_bytes(out.len() as u64 * 4)
        .launch();
    out
}

/// Boundaries of equal-key runs in a sorted slice: returns `b` with
/// `b[0] = 0`, `b[last] = keys.len()`, and one entry at every index where
/// `keys[i] != keys[i-1]`.
///
/// This is the segment-detection kernel of sort-based grouped aggregation
/// (one streaming read of the keys plus a compacted write of the flags).
pub fn run_boundaries<K: PartialEq + sim::Element>(dev: &Device, keys: &[K]) -> Vec<u32> {
    let mut b = Vec::new();
    b.push(0u32);
    if keys.is_empty() {
        // Zero groups: a single boundary, so `len - 1 == 0` segments.
        return b;
    }
    for i in 1..keys.len() {
        if keys[i] != keys[i - 1] {
            b.push(i as u32);
        }
    }
    b.push(keys.len() as u32);
    dev.kernel("scan.boundaries")
        .items(keys.len() as u64, STREAM_WARP_INSTR)
        .seq_read_bytes(keys.len() as u64 * K::SIZE)
        .seq_write_bytes(b.len() as u64 * 4)
        .launch();
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Device;

    #[test]
    fn scan_basic() {
        let dev = Device::a100();
        assert_eq!(exclusive_scan(&dev, &[3, 0, 2, 5]), vec![0, 3, 3, 5, 10]);
        assert_eq!(exclusive_scan(&dev, &[]), vec![0]);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn scan_overflow_detected() {
        let dev = Device::a100();
        let _ = exclusive_scan(&dev, &[u32::MAX, 2]);
    }

    #[test]
    fn boundaries_of_sorted_runs() {
        let dev = Device::a100();
        let keys: Vec<i32> = vec![1, 1, 1, 4, 4, 9];
        assert_eq!(run_boundaries(&dev, &keys), vec![0, 3, 5, 6]);
        let empty: Vec<i32> = vec![];
        assert_eq!(
            run_boundaries(&dev, &empty),
            vec![0],
            "empty input: zero groups"
        );
        assert_eq!(run_boundaries(&dev, &[7i32]), vec![0, 1]);
    }

    #[test]
    fn scan_charges_device_time() {
        let dev = Device::a100();
        let before = dev.elapsed();
        let _ = exclusive_scan(&dev, &[1; 1024]);
        assert!(dev.elapsed() > before);
    }
}
