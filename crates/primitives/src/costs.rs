//! Instruction-cost constants for the simulated kernels.
//!
//! Each constant is the number of warp instructions a warp issues to process
//! its 32 items. They matter only when a kernel would otherwise be
//! unrealistically compute-free; every primitive here is memory-bound at the
//! paper's scales, so these are deliberately coarse. The one calibrated
//! value is [`GATHER_WARP_INSTR`], which matches Table 4 of the paper
//! (77.6M warp instructions for 2^27 gathered items → 18.5 per warp).

/// Warp instructions per warp for the gather kernel (calibrated, Table 4).
pub const GATHER_WARP_INSTR: f64 = 18.5;

/// Histogram kernel: load key, extract digit, shared-memory atomic.
pub const HISTOGRAM_WARP_INSTR: f64 = 10.0;

/// Radix scatter pass: load pair, compute digit + offset, staged store.
pub const SCATTER_WARP_INSTR: f64 = 20.0;

/// Merge-path based merge join: diagonal search amortized + compare/advance.
pub const MERGE_WARP_INSTR: f64 = 28.0;

/// Shared-memory hash build: hash, shared store, conflict handling.
pub const BUILD_WARP_INSTR: f64 = 14.0;

/// Shared-memory hash probe: hash, shared loads along the probe chain,
/// match emit.
pub const PROBE_WARP_INSTR: f64 = 22.0;

/// Global hash table insert/probe instruction overhead (address math only —
/// the memory cost dominates and is charged via warp loads/stores).
pub const GLOBAL_HASH_WARP_INSTR: f64 = 12.0;

/// Streaming transform (scan, boundary detection, aggregation update).
pub const STREAM_WARP_INSTR: f64 = 8.0;
