//! Stable radix partitioning — the RADIX-PARTITION primitive of Section 2.3.
//!
//! One pass moves at most [`sim::DeviceConfig::max_radix_bits_per_pass`]
//! bits (8 on Ampere → 256 partitions); wider fan-outs compose passes from
//! the least significant digit up, which keeps the result *stable* — the
//! property Section 4.3 of the paper relies on to partition every payload
//! column identically to its key column.

use crate::{exclusive_scan, HISTOGRAM_WARP_INSTR, SCATTER_WARP_INSTR};
use sim::{Device, DeviceBuffer, Element};

/// Output of [`radix_partition`]: reordered pairs plus partition offsets.
///
/// Partition `p` occupies `keys[offsets[p] as usize .. offsets[p + 1] as
/// usize]` — contiguous storage with no fragmentation, in contrast to the
/// bucket chains of Sioulas et al. (Section 3.2).
pub struct PartitionedPairs<K: Element, V: Element> {
    /// Keys, grouped by partition (stable within each partition).
    pub keys: DeviceBuffer<K>,
    /// Values, moved with their keys.
    pub vals: DeviceBuffer<V>,
    /// `num_partitions + 1` offsets into `keys`/`vals`.
    pub offsets: Vec<u32>,
    /// Number of radix bits defining a partition.
    pub bits: u32,
}

impl<K: Element, V: Element> PartitionedPairs<K, V> {
    /// Number of partitions (`2^bits`).
    pub fn num_partitions(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Half-open row range of partition `p`.
    pub fn partition_range(&self, p: usize) -> std::ops::Range<usize> {
        self.offsets[p] as usize..self.offsets[p + 1] as usize
    }
}

/// The partition id (digit under the full `bits` mask) of a key.
#[inline]
pub fn partition_of<K: Element>(key: K, bits: u32) -> usize {
    (key.to_radix() & ((1u64 << bits) - 1)) as usize
}

/// One stable counting pass on `bits` starting at `shift`. Panics if `bits`
/// exceeds the device's per-pass limit — compose passes instead, as the
/// hardware primitive requires (Section 2.3).
pub fn radix_partition_pass<K: Element, V: Element>(
    dev: &Device,
    keys: &DeviceBuffer<K>,
    vals: &DeviceBuffer<V>,
    shift: u32,
    bits: u32,
) -> (DeviceBuffer<K>, DeviceBuffer<V>) {
    assert!(
        bits <= dev.config().max_radix_bits_per_pass,
        "a single RADIX-PARTITION pass supports at most {} bits, got {bits}",
        dev.config().max_radix_bits_per_pass
    );
    assert_eq!(keys.len(), vals.len(), "key/value arrays must pair up");
    let n = keys.len();
    let buckets = 1usize << bits;
    let mask = (buckets - 1) as u64;

    // Histogram kernel: one streaming read of the keys. Per-block histograms
    // live in shared memory; the global merge is tiny.
    let mut hist = vec![0u32; buckets];
    for k in keys.iter() {
        hist[((k.to_radix() >> shift) & mask) as usize] += 1;
    }
    dev.kernel("radix_partition.histogram")
        .items(n as u64, HISTOGRAM_WARP_INSTR)
        .seq_read_bytes(n as u64 * K::SIZE)
        .launch();

    let offsets = exclusive_scan(dev, &hist);
    let mut cursor: Vec<u32> = offsets[..buckets].to_vec();

    // Scatter kernel: reads both arrays, writes both. Writes are staged per
    // digit in shared memory and flushed coalesced (the OneSweep pattern),
    // so they charge as sequential traffic.
    let mut out_k = vec![K::default(); n];
    let mut out_v = vec![V::default(); n];
    for i in 0..n {
        let b = ((keys[i].to_radix() >> shift) & mask) as usize;
        let pos = cursor[b] as usize;
        cursor[b] += 1;
        out_k[pos] = keys[i];
        out_v[pos] = vals[i];
    }
    dev.kernel("radix_partition.scatter")
        .items(n as u64, SCATTER_WARP_INSTR)
        .seq_read_bytes(n as u64 * (K::SIZE + V::SIZE))
        .seq_write_bytes(n as u64 * (K::SIZE + V::SIZE))
        .launch();

    (
        dev.upload(out_k, "radix_partition.keys"),
        dev.upload(out_v, "radix_partition.vals"),
    )
}

/// Partition pairs into `2^bits` partitions by the low `bits` of the key's
/// radix image, composing as many ≤8-bit passes as needed (two for the
/// 15-16 bits the paper's PHJ-OM uses — Section 4.3).
///
/// The result is stable and contiguous, and comes with partition offsets
/// (histogram + prefix sum, as described for Figure 6 step 1).
pub fn radix_partition<K: Element, V: Element>(
    dev: &Device,
    keys: &DeviceBuffer<K>,
    vals: &DeviceBuffer<V>,
    bits: u32,
) -> PartitionedPairs<K, V> {
    assert!(bits <= 24, "fan-out beyond 2^24 partitions is unrealistic");
    let per_pass = dev.config().max_radix_bits_per_pass;
    let n = keys.len();

    if bits == 0 {
        // Single partition: logically a copy (used by degenerate configs).
        let out_k = dev.upload(keys.to_vec(), "radix_partition.keys");
        let out_v = dev.upload(vals.to_vec(), "radix_partition.vals");
        dev.kernel("radix_partition.copy")
            .items(n as u64, SCATTER_WARP_INSTR)
            .seq_read_bytes(n as u64 * (K::SIZE + V::SIZE))
            .seq_write_bytes(n as u64 * (K::SIZE + V::SIZE))
            .launch();
        return PartitionedPairs {
            keys: out_k,
            vals: out_v,
            offsets: vec![0, n as u32],
            bits,
        };
    }

    let mut shift = 0u32;
    let (mut cur_k, mut cur_v) = {
        let b = bits.min(per_pass);
        shift += b;
        radix_partition_pass(dev, keys, vals, 0, b)
    };
    while shift < bits {
        let b = (bits - shift).min(per_pass);
        let (nk, nv) = radix_partition_pass(dev, &cur_k, &cur_v, shift, b);
        cur_k = nk;
        cur_v = nv;
        shift += b;
    }

    // Partition offsets: histogram over the fully partitioned keys + scan.
    let buckets = 1usize << bits;
    let mask = (buckets - 1) as u64;
    let mut hist = vec![0u32; buckets];
    for k in cur_k.iter() {
        hist[(k.to_radix() & mask) as usize] += 1;
    }
    dev.kernel("radix_partition.offsets")
        .items(n as u64, HISTOGRAM_WARP_INSTR)
        .seq_read_bytes(n as u64 * K::SIZE)
        .launch();
    let offsets = exclusive_scan(dev, &hist);

    PartitionedPairs {
        keys: cur_k,
        vals: cur_v,
        offsets,
        bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Device;

    fn check_partitioned(p: &PartitionedPairs<i32, u32>, orig: &[(i32, u32)], bits: u32) {
        // Every partition holds exactly the keys with that digit, stably.
        assert_eq!(p.offsets.len(), (1 << bits) + 1);
        assert_eq!(*p.offsets.last().unwrap() as usize, orig.len());
        for part in 0..p.num_partitions() {
            let range = p.partition_range(part);
            let got: Vec<(i32, u32)> = range.clone().map(|i| (p.keys[i], p.vals[i])).collect();
            let expected: Vec<(i32, u32)> = orig
                .iter()
                .copied()
                .filter(|&(k, _)| partition_of(k, bits) == part)
                .collect();
            assert_eq!(got, expected, "partition {part} differs (stability?)");
        }
    }

    #[test]
    fn single_pass_partitions_stably() {
        let dev = Device::a100();
        let pairs: Vec<(i32, u32)> = vec![(5, 0), (2, 1), (5, 2), (0, 3), (7, 4), (2, 5)];
        let keys = dev.upload(pairs.iter().map(|p| p.0).collect(), "k");
        let vals = dev.upload(pairs.iter().map(|p| p.1).collect(), "v");
        let p = radix_partition(&dev, &keys, &vals, 3);
        check_partitioned(&p, &pairs, 3);
    }

    #[test]
    fn multi_pass_matches_wide_fanout() {
        let dev = Device::a100();
        let n = 10_000;
        let pairs: Vec<(i32, u32)> = (0..n)
            .map(|i| (((i as i64 * 2654435761) % 100_000) as i32, i as u32))
            .collect();
        let keys = dev.upload(pairs.iter().map(|p| p.0).collect(), "k");
        let vals = dev.upload(pairs.iter().map(|p| p.1).collect(), "v");
        let bits = 12; // needs two passes (8 + 4)
        let p = radix_partition(&dev, &keys, &vals, bits);
        check_partitioned(&p, &pairs, bits);
    }

    #[test]
    fn zero_bits_is_identity() {
        let dev = Device::a100();
        let keys = dev.upload(vec![3i32, 1, 2], "k");
        let vals = dev.upload(vec![0u32, 1, 2], "v");
        let p = radix_partition(&dev, &keys, &vals, 0);
        assert_eq!(p.keys.as_slice(), &[3, 1, 2]);
        assert_eq!(p.vals.as_slice(), &[0, 1, 2]);
        assert_eq!(p.offsets, vec![0, 3]);
    }

    #[test]
    fn empty_input() {
        let dev = Device::a100();
        let keys = dev.upload(Vec::<i32>::new(), "k");
        let vals = dev.upload(Vec::<u32>::new(), "v");
        let p = radix_partition(&dev, &keys, &vals, 4);
        assert_eq!(p.num_partitions(), 16);
        assert!(p.offsets.iter().all(|&o| o == 0));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn per_pass_limit_enforced() {
        let dev = Device::a100();
        let keys = dev.upload(vec![1i32], "k");
        let vals = dev.upload(vec![0u32], "v");
        let _ = radix_partition_pass(&dev, &keys, &vals, 0, 9);
    }

    #[test]
    fn negative_keys_partition_by_radix_image() {
        let dev = Device::a100();
        let pairs: Vec<(i32, u32)> = vec![(-1, 0), (1, 1), (-2, 2), (2, 3)];
        let keys = dev.upload(pairs.iter().map(|p| p.0).collect(), "k");
        let vals = dev.upload(pairs.iter().map(|p| p.1).collect(), "v");
        let p = radix_partition(&dev, &keys, &vals, 2);
        check_partitioned(&p, &pairs, 2);
    }

    #[test]
    fn two_pass_partitioning_charges_more_traffic_than_one() {
        let dev = Device::a100();
        let n = 1 << 16;
        let keys = dev.upload((0..n).collect(), "k");
        let vals = dev.upload((0..n as u32).collect(), "v");
        let _ = radix_partition(&dev, &keys, &vals, 8);
        let one_pass = dev.counters().dram_bytes();
        dev.reset_stats();
        let _ = radix_partition(&dev, &keys, &vals, 16);
        let two_pass = dev.counters().dram_bytes();
        assert!(two_pass > one_pass * 3 / 2, "{two_pass} vs {one_pass}");
    }
}
