//! # primitives — device primitives for joins and grouped aggregations
//!
//! The procedures of Section 2.3 of the paper, implemented on the [`sim`]
//! substrate with the same cost structure as their CUB/Thrust/ModernGPU
//! originals:
//!
//! * [`radix_partition`] / [`radix_partition_pass`] — stable LSD radix
//!   partitioning, at most 8 bits per pass (the Ampere limit the paper
//!   cites), with partition offsets computed by histogram + prefix sum.
//! * [`sort_pairs`] — least-significant-digit radix sort of (key, value)
//!   pairs, built from partition passes exactly like CUB's OneSweep; for
//!   4-byte keys this is the "~17 sequential passes" of Section 4.2.
//! * [`gather`] / [`gather_column`] / [`scatter`] — the Thrust-style gather
//!   with warp-level coalescing accounting; this is where clustered vs
//!   unclustered maps (Table 4) diverge.
//! * [`merge_join`] — merge-path-balanced sorted merge join (ModernGPU /
//!   Rui et al. style).
//! * [`join_copartitions`] — per-partition shared-memory hash join
//!   (the match-finding kernel of the paper's PHJ-OM, Section 4.3).
//! * [`GlobalHashTable`] — a non-partitioned global hash table (the cuDF
//!   baseline's core).
//! * [`exclusive_scan`], [`run_boundaries`] — support primitives for
//!   partition offsets and sort-based grouped aggregation.
//! * [`compact_mask`] — prefix-sum stream compaction of a predicate byte
//!   mask into a selection vector (CUB `DeviceSelect::Flagged`); the
//!   device-side half of the engine's fused Filter evaluation.

mod costs;
mod gather;
mod hash;
mod merge;
mod partition;
mod scan;
mod sort;

pub use costs::*;
pub use gather::{gather, gather_column, gather_column_or_null, gather_or, scatter, NULL_ID};
pub use hash::{join_copartitions, CoPartitionCost};
pub use hash::{GlobalHashTable, MatchResult};
pub use merge::{merge_join, merge_path_partitions};
pub use partition::{partition_of, radix_partition, radix_partition_pass, PartitionedPairs};
pub use scan::{compact_mask, exclusive_scan, run_boundaries};
pub use sort::{sort_pairs, sort_pairs_bits};
