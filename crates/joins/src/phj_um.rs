//! PHJ-UM: the bucket-chain partitioned hash join of Sioulas et al.
//! (Section 3.2, Figure 3) — the GFUR state of the art the paper improves
//! on.
//!
//! Partitions live in chains of fixed-size buckets carved out of a
//! pre-allocated pool. Buckets are claimed and filled with atomic
//! operations, which makes the layout
//!
//! * **non-deterministic** — the insertion order depends on the block
//!   schedule, so partitioning `(key, col_1)` and `(key, col_2)` separately
//!   would interleave rows differently (the simulator reproduces this with
//!   a seeded block scheduler; see [`layout_fingerprint`]), and
//! * **fragmented** — the last bucket of every chain is partially full, so
//!   positional lookup into a partitioned column is not O(1).
//!
//! Together these are why the GFTR pattern cannot be retrofitted onto
//! bucket chaining (Section 4.3) and why this implementation always
//! materializes through unclustered gathers. The atomic bookkeeping also
//! makes the partitioner collapse under heavy skew (Figure 14), which the
//! cost model charges via the hottest partition's serialized atomics.

use crate::kinds::{apply_kind_timed, JoinKind};
use crate::smj::{dispatch_keys, iota};
use crate::{choose_radix_bits, timed_phase, Algorithm, JoinConfig, JoinOutput, JoinStats};
use columnar::{Column, ColumnElement, Relation};
use primitives::{
    gather_column, gather_column_or_null, MatchResult, BUILD_WARP_INSTR, PROBE_WARP_INSTR,
    SCATTER_WARP_INSTR,
};
use sim::{Device, DeviceBuffer, Element, PhaseTimes};

/// A relation's keys and physical IDs, partitioned into bucket chains.
struct BucketChains<K: Element> {
    /// Bucket pool for keys; buckets are `bucket_tuples` wide.
    pool_keys: DeviceBuffer<K>,
    /// Bucket pool for physical tuple IDs.
    pool_ids: DeviceBuffer<u32>,
    /// Per partition, the chain of `(pool_start, filled)` bucket descriptors.
    chains: Vec<Vec<(u32, u32)>>,
}

/// Deterministic pseudo-shuffle of block processing order from a seed —
/// the stand-in for the GPU's nondeterministic block scheduler.
fn scheduled_blocks(num_blocks: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..num_blocks).collect();
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    for i in (1..num_blocks).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        order.swap(i, (state % (i as u64 + 1)) as usize);
    }
    order
}

/// Partition `(keys, physical IDs)` into bucket chains, charging the
/// two-pass atomic partitioning cost of Sioulas et al.
fn bucket_partition<K: ColumnElement>(
    dev: &Device,
    keys: &DeviceBuffer<K>,
    bits: u32,
    config: &JoinConfig,
) -> BucketChains<K> {
    let n = keys.len();
    let parts = 1usize << bits;
    // `bucket_tuples == 0` auto-sizes buckets to the shared-memory hash
    // table one thread block can build (so one bucket ~ one build chunk).
    let bucket = if config.bucket_tuples == 0 {
        dev.config().shared_mem_tuples(K::SIZE + 4).max(64) as usize
    } else {
        config.bucket_tuples
    };
    let ids = iota(dev, n, "phj_um.ids");

    // Pool sized for the worst case: every partition wastes one partial
    // bucket — the fragmentation of Figure 3 — plus 50% headroom, since the
    // chains grow dynamically and the implementation cannot bound per-
    // partition sizes before the pass runs. This over-allocation is what
    // puts PHJ-UM above PHJ-OM in the paper's measured Table 5.
    let max_buckets = (parts + n.div_ceil(bucket)) * 3 / 2;
    let mut pool_keys = dev.alloc::<K>(max_buckets * bucket, "phj_um.pool_keys");
    let mut pool_ids = dev.alloc::<u32>(max_buckets * bucket, "phj_um.pool_ids");

    let mut chains: Vec<Vec<(u32, u32)>> = vec![Vec::new(); parts];
    let mut next_bucket = 0u32;
    let mut hist = vec![0u64; parts];

    // Blocks race to append; the seeded schedule decides the interleaving.
    const BLOCK_TUPLES: usize = 4096;
    let num_blocks = n.div_ceil(BLOCK_TUPLES);
    for b in scheduled_blocks(num_blocks, config.scheduler_seed) {
        let lo = b * BLOCK_TUPLES;
        let hi = (lo + BLOCK_TUPLES).min(n);
        for i in lo..hi {
            let p = (keys[i].to_radix() & ((1u64 << bits) - 1)) as usize;
            hist[p] += 1;
            let need_new = match chains[p].last() {
                None => true,
                Some(&(_, filled)) => filled as usize == bucket,
            };
            if need_new {
                chains[p].push((next_bucket * bucket as u32, 0));
                next_bucket += 1;
            }
            let slot = chains[p].last_mut().expect("chain has a bucket");
            let pos = slot.0 as usize + slot.1 as usize;
            pool_keys[pos] = keys[i];
            pool_ids[pos] = ids[i];
            slot.1 += 1;
        }
    }

    // Cost: the paper's implementation runs two partitioning passes over
    // (key, ID); each pass reads and writes both arrays and performs one
    // atomic bookkeeping op per tuple, serializing on the hottest partition.
    let hottest = hist.iter().copied().max().unwrap_or(0);
    let pair = n as u64 * (K::SIZE + 4);
    for pass in ["phj_um.partition.pass1", "phj_um.partition.pass2"] {
        dev.kernel(pass)
            .items(n as u64, SCATTER_WARP_INSTR)
            .seq_read_bytes(pair)
            .seq_write_bytes(pair)
            .atomics(n as u64, hottest)
            .launch();
    }

    BucketChains {
        pool_keys,
        pool_ids,
        chains,
    }
}

/// Join co-partitions bucket by bucket: build a shared-memory table per
/// build bucket, stream the probe chain through it (block-nested-loop when
/// a build partition has several buckets — Section 3.2).
fn bucket_join<K: ColumnElement>(
    dev: &Device,
    r: &BucketChains<K>,
    s: &BucketChains<K>,
) -> (Vec<K>, Vec<u32>, Vec<u32>) {
    let mut out_keys = Vec::new();
    let mut out_r = Vec::new();
    let mut out_s = Vec::new();
    let mut table: Vec<(u64, u32)> = Vec::new();
    let mut build_reads = 0u64;
    let mut probe_reads = 0u64;

    for (rp, sp) in r.chains.iter().zip(&s.chains) {
        if rp.is_empty() || sp.is_empty() {
            continue;
        }
        for &(r_start, r_len) in rp {
            // Build this bucket's table.
            let slots = ((r_len as usize * 2).next_power_of_two()).max(4);
            let mask = slots - 1;
            table.clear();
            table.resize(slots, (u64::MAX, u32::MAX));
            for off in 0..r_len as usize {
                let pos = r_start as usize + off;
                let k = r.pool_keys[pos].to_radix();
                let mut h = (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize & mask;
                while table[h].1 != u32::MAX {
                    h = (h + 1) & mask;
                }
                table[h] = (k, r.pool_ids[pos]);
            }
            build_reads += r_len as u64;

            // Probe the whole S chain against it.
            for &(s_start, s_len) in sp {
                for off in 0..s_len as usize {
                    let pos = s_start as usize + off;
                    let sk = s.pool_keys[pos];
                    let k = sk.to_radix();
                    let mut h = (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize & mask;
                    while table[h].1 != u32::MAX {
                        if table[h].0 == k {
                            out_keys.push(sk);
                            out_r.push(table[h].1);
                            out_s.push(s.pool_ids[pos]);
                        }
                        h = (h + 1) & mask;
                    }
                }
                probe_reads += s_len as u64;
            }
        }
    }

    dev.kernel("phj_um.build")
        .items(build_reads, BUILD_WARP_INSTR)
        .seq_read_bytes(build_reads * (K::SIZE + 4))
        .launch();
    dev.kernel("phj_um.probe")
        .items(probe_reads, PROBE_WARP_INSTR)
        .seq_read_bytes(probe_reads * (K::SIZE + 4))
        .seq_write_bytes(out_keys.len() as u64 * (K::SIZE + 8))
        .launch();

    (out_keys, out_r, out_s)
}

/// PHJ-UM: bucket-chain partitioned hash join with GFUR materialization.
///
/// For *narrow* joins (at most one payload column per side) the classic
/// implementation carries the payload directly as the pair value, so no
/// materialization gather happens at all — which is why the paper finds
/// PHJ-UM and PHJ-OM "very close" on narrow inputs (Section 5.2.2). We
/// reuse the radix-partitioned GFTR path for that case and relabel; the
/// bucket-chain machinery below is the wide-join path, where the ID detour
/// (and its skew-sensitive atomic partitioning) is unavoidable.
pub fn phj_um(dev: &Device, r: &Relation, s: &Relation, config: &JoinConfig) -> JoinOutput {
    if r.num_payloads() <= 1 && s.num_payloads() <= 1 {
        let mut out = crate::phj_om::phj_om(dev, r, s, config);
        out.stats.algorithm = Algorithm::PhjUm;
        return out;
    }
    fn typed<K: ColumnElement>(
        r_keys: &DeviceBuffer<K>,
        s_keys: &DeviceBuffer<K>,
        dev: &Device,
        r: &Relation,
        s: &Relation,
        config: &JoinConfig,
    ) -> JoinOutput {
        dev.reset_peak_mem();
        let mut reservation =
            crate::OutputReservation::new(dev, r, s, crate::estimated_out_rows(config, s));
        let mut phases = PhaseTimes::default();
        let bits = choose_radix_bits(dev, r.len().max(1), K::SIZE, config);

        let ((rc, sc), t) = timed_phase(dev, "transform", || {
            (
                bucket_partition(dev, r_keys, bits, config),
                bucket_partition(dev, s_keys, bits, config),
            )
        });
        phases.transform = t;

        let ((keys, r_ids, s_ids), t) = timed_phase(dev, "match_find", || {
            reservation.release_keys();
            let (k, ri, si) = bucket_join(dev, &rc, &sc);
            (
                dev.upload(k, "phj_um.out_keys"),
                dev.upload(ri, "phj_um.out_r_ids"),
                dev.upload(si, "phj_um.out_s_ids"),
            )
        });
        phases.match_find = t;
        drop((rc, sc));
        // Kind adjustment in physical-ID space.
        let adj = apply_kind_timed(
            dev,
            config.kind,
            MatchResult {
                keys,
                r_idx: r_ids,
                s_idx: s_ids,
            },
            s_keys,
            s.len(),
        );
        phases.match_find += adj.time;

        let ((r_payloads, s_payloads), t) = timed_phase(dev, "materialize", || {
            let rp: Vec<Column> = if adj.materialize_r {
                r.payloads()
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        reservation.release_r(i);
                        if config.kind == JoinKind::Outer {
                            gather_column_or_null(dev, c, &adj.r_map)
                        } else {
                            gather_column(dev, c, &adj.r_map)
                        }
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let sp: Vec<Column> = s
                .payloads()
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    reservation.release_s(i);
                    gather_column(dev, c, &adj.s_map)
                })
                .collect();
            (rp, sp)
        });
        phases.materialize = t;

        let rows = adj.keys.len();
        JoinOutput {
            keys: K::wrap(adj.keys),
            r_payloads,
            s_payloads,
            stats: JoinStats::new(Algorithm::PhjUm, phases, rows, dev.mem_report().peak_bytes),
        }
    }
    dispatch_keys!(r, s, typed(dev, r, s, config))
}

/// Fingerprint of the bucket-pool layout a given scheduler seed produces for
/// a relation's keys — used to *demonstrate* the non-determinism of bucket
/// chaining (Section 4.3): different seeds generally give different
/// fingerprints while the join result stays identical.
pub fn layout_fingerprint(dev: &Device, rel: &Relation, config: &JoinConfig) -> u64 {
    fn typed<K: ColumnElement>(keys: &DeviceBuffer<K>, dev: &Device, config: &JoinConfig) -> u64 {
        let bits = choose_radix_bits(dev, keys.len().max(1), K::SIZE, config);
        let chains = bucket_partition(dev, keys, bits, config);
        let mut h = 0xcbf29ce484222325u64;
        for part in &chains.chains {
            for &(start, len) in part {
                for off in 0..len as usize {
                    let v = chains.pool_ids[start as usize + off] as u64;
                    h = (h ^ v).wrapping_mul(0x100000001b3);
                }
            }
        }
        h
    }
    match rel.key() {
        Column::I32(k) => typed(k, dev, config),
        Column::I64(k) => typed(k, dev, config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::hash_join_oracle;
    use columnar::Column;
    use sim::Device;

    fn inputs(dev: &Device, nr: usize, ns: usize) -> (Relation, Relation) {
        let pk: Vec<i32> = (0..nr as i32).map(|i| (i * 37 + 11) % nr as i32).collect();
        // (i*37+11) mod nr is a permutation only if gcd(37, nr)=1; use a
        // co-prime nr in callers.
        let fk: Vec<i32> = (0..ns).map(|i| ((i * 3) % nr) as i32).collect();
        // Two payload columns on R keep these tests on the wide-join path,
        // where the bucket-chain machinery actually runs.
        let r = Relation::new(
            "R",
            Column::from_i32(dev, pk.clone(), "rk"),
            vec![
                Column::from_i32(dev, pk.iter().map(|&k| k * 2).collect(), "r1"),
                Column::from_i32(dev, pk.iter().map(|&k| k + 9).collect(), "r2"),
            ],
        );
        let s = Relation::new(
            "S",
            Column::from_i32(dev, fk.clone(), "sk"),
            vec![Column::from_i64(
                dev,
                fk.iter().map(|&k| k as i64 - 5).collect(),
                "s1",
            )],
        );
        (r, s)
    }

    #[test]
    fn phj_um_matches_oracle() {
        let dev = Device::a100();
        let (r, s) = inputs(&dev, 701, 2100);
        let cfg = JoinConfig {
            unique_build: false,
            ..JoinConfig::default()
        };
        let out = phj_um(&dev, &r, &s, &cfg);
        assert_eq!(out.rows_sorted(), hash_join_oracle(&r, &s));
    }

    #[test]
    fn result_invariant_under_scheduler_seed() {
        let dev = Device::a100();
        let (r, s) = inputs(&dev, 701, 1000);
        let mut results = Vec::new();
        for seed in [0u64, 7, 1234] {
            let cfg = JoinConfig {
                scheduler_seed: seed,
                bucket_tuples: 64,
                ..JoinConfig::default()
            };
            results.push(phj_um(&dev, &r, &s, &cfg).rows_sorted());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn layout_is_nondeterministic_across_seeds() {
        let dev = Device::a100();
        let (r, _) = inputs(&dev, 5003, 10);
        let cfg0 = JoinConfig {
            scheduler_seed: 0,
            bucket_tuples: 32,
            ..JoinConfig::default()
        };
        let cfg1 = JoinConfig {
            scheduler_seed: 99,
            ..cfg0.clone()
        };
        let f0 = layout_fingerprint(&dev, &r, &cfg0);
        let f1 = layout_fingerprint(&dev, &r, &cfg1);
        // Identical seeds reproduce; different seeds diverge.
        assert_eq!(f0, layout_fingerprint(&dev, &r, &cfg0));
        assert_ne!(f0, f1, "block schedule should change the bucket layout");
    }

    #[test]
    fn tiny_buckets_force_chains() {
        let dev = Device::a100();
        let (r, s) = inputs(&dev, 701, 3000);
        let cfg = JoinConfig {
            bucket_tuples: 8,
            radix_bits: Some(3),
            unique_build: false,
            ..JoinConfig::default()
        };
        let out = phj_um(&dev, &r, &s, &cfg);
        assert_eq!(out.rows_sorted(), hash_join_oracle(&r, &s));
    }

    #[test]
    fn skew_blows_up_partition_time() {
        let dev = Device::a100();
        let n = 1 << 16;
        // Uniform foreign keys.
        let uniform: Vec<i32> = (0..n).map(|i| i % 1024).collect();
        // Extreme skew: everything hits one key.
        let skewed: Vec<i32> = vec![7; n as usize];
        let pk: Vec<i32> = (0..1024).collect();
        let mk = |fk: Vec<i32>| {
            let r = Relation::new(
                "R",
                Column::from_i32(&dev, pk.clone(), "rk"),
                vec![
                    Column::from_i32(&dev, pk.clone(), "r1"),
                    Column::from_i32(&dev, pk.clone(), "r2"),
                ],
            );
            let s = Relation::new(
                "S",
                Column::from_i32(&dev, fk.clone(), "sk"),
                vec![
                    Column::from_i32(&dev, fk.clone(), "s1"),
                    Column::from_i32(&dev, fk, "s2"),
                ],
            );
            (r, s)
        };
        let cfg = JoinConfig {
            radix_bits: Some(10),
            ..JoinConfig::default()
        };
        let (r, s) = mk(uniform);
        let t_uniform = phj_um(&dev, &r, &s, &cfg).stats.phases.transform;
        let (r, s) = mk(skewed);
        let t_skewed = phj_um(&dev, &r, &s, &cfg).stats.phases.transform;
        assert!(
            t_skewed.secs() > 3.0 * t_uniform.secs(),
            "skewed {} vs uniform {}",
            t_skewed,
            t_uniform
        );
    }

    #[test]
    fn fragmentation_costs_pool_memory() {
        let dev = Device::a100();
        let (r, s) = inputs(&dev, 701, 701);
        let cfg = JoinConfig {
            bucket_tuples: 512,
            radix_bits: Some(8),
            unique_build: false,
            ..JoinConfig::default()
        };
        let out = phj_um(&dev, &r, &s, &cfg);
        // Pool is allocated for (parts + n/bucket) buckets on each side —
        // far more than the tuples themselves.
        assert!(out.stats.peak_mem_bytes > 2 * (r.size_bytes() + s.size_bytes()));
    }
}
