//! PHJ-OM: the paper's new radix-partitioned hash join (Section 4.3,
//! Figure 6), built on the *stable* RADIX-PARTITION primitive so that every
//! payload column can be partitioned into exactly the same layout as its key
//! column — the property bucket chaining cannot give (non-determinism and
//! fragmentation, Section 3.2/4.3).
//!
//! The same match-finding machinery also runs the GFUR pattern
//! ([`phj_om_gfur`]) by partitioning `(key, physical ID)` instead of
//! payloads — the paper points out this flexibility makes the implementation
//! competitive for low-match-ratio workloads too.

use crate::kinds::{apply_kind_timed, JoinKind};
use crate::smj::{dispatch_keys, iota};
use crate::{choose_radix_bits, timed_phase, Algorithm, JoinConfig, JoinOutput, JoinStats};
use columnar::{Column, ColumnElement, Relation};
use primitives::{
    gather, gather_column, gather_column_or_null, join_copartitions, radix_partition, MatchResult,
};
use sim::{Device, DeviceBuffer, PhaseTimes};

/// Partition a payload column together with the relation's keys. Stability
/// of the radix partition guarantees a layout identical to every other
/// column partitioned with the same keys.
fn partition_payload_with_key<K: ColumnElement>(
    dev: &Device,
    keys: &DeviceBuffer<K>,
    payload: &Column,
    bits: u32,
) -> (DeviceBuffer<K>, Column, Vec<u32>) {
    match payload {
        Column::I32(v) => {
            let p = radix_partition(dev, keys, v, bits);
            (p.keys, Column::I32(p.vals), p.offsets)
        }
        Column::I64(v) => {
            let p = radix_partition(dev, keys, v, bits);
            (p.keys, Column::I64(p.vals), p.offsets)
        }
    }
}

/// PHJ-OM with the GFTR pattern (Algorithm 1 with `transform = partition`).
pub fn phj_om(dev: &Device, r: &Relation, s: &Relation, config: &JoinConfig) -> JoinOutput {
    fn typed<K: ColumnElement>(
        r_keys: &DeviceBuffer<K>,
        s_keys: &DeviceBuffer<K>,
        dev: &Device,
        r: &Relation,
        s: &Relation,
        config: &JoinConfig,
    ) -> JoinOutput {
        dev.reset_peak_mem();
        let mut reservation =
            crate::OutputReservation::new(dev, r, s, crate::estimated_out_rows(config, s));
        let mut phases = PhaseTimes::default();
        let bits = choose_radix_bits(dev, r.len().max(1), K::SIZE, config);

        // Transformation: partition keys with the first payload column of
        // each relation (histogram + prefix sum for offsets included).
        let ((rt, st), t) = timed_phase(dev, "transform", || {
            let rt = match r.payloads().first() {
                Some(p) => {
                    let (k, p, off) = partition_payload_with_key(dev, r_keys, p, bits);
                    (k, Some(p), off)
                }
                None => {
                    let ids = iota(dev, r_keys.len(), "phj_om.r_ids");
                    let p = radix_partition(dev, r_keys, &ids, bits);
                    (p.keys, None, p.offsets)
                }
            };
            let st = match s.payloads().first() {
                Some(p) => {
                    let (k, p, off) = partition_payload_with_key(dev, s_keys, p, bits);
                    (k, Some(p), off)
                }
                None => {
                    let ids = iota(dev, s_keys.len(), "phj_om.s_ids");
                    let p = radix_partition(dev, s_keys, &ids, bits);
                    (p.keys, None, p.offsets)
                }
            };
            (rt, st)
        });
        phases.transform = t;

        // Match finding: shared-memory hash join per co-partition; the
        // emitted positions are virtual IDs into the partitioned relations,
        // clustered on the probe side.
        let (rt_keys, mut rt_p0, rt_off) = rt;
        let (st_keys, mut st_p0, st_off) = st;
        let (m, t) = timed_phase(dev, "match_find", || {
            reservation.release_keys();
            join_copartitions(dev, &rt_keys, &rt_off, &st_keys, &st_off).0
        });
        phases.match_find = t;
        // Kind adjustment in transformed (partitioned) space.
        let adj = apply_kind_timed(dev, config.kind, m, &st_keys, st_keys.len());
        phases.match_find += adj.time;
        // GFTR frees the transformed keys here, keeping only the first
        // transformed payload columns (Section 4.4).
        drop((rt_keys, st_keys));

        // Materialization: clustered gathers; columns beyond the first are
        // partitioned lazily, one at a time, and released once gathered.
        let gather_r = |src: &Column, map| {
            if config.kind == JoinKind::Outer {
                gather_column_or_null(dev, src, map)
            } else {
                gather_column(dev, src, map)
            }
        };
        let ((r_payloads, s_payloads), t) = timed_phase(dev, "materialize", || {
            let mut rp = Vec::with_capacity(r.num_payloads());
            if adj.materialize_r {
                if let Some(p0) = rt_p0.take() {
                    reservation.release_r(0);
                    rp.push(gather_r(&p0, &adj.r_map));
                }
                for (i, c) in r.payloads().iter().enumerate().skip(1) {
                    let (_, part, _) = partition_payload_with_key(dev, r_keys, c, bits);
                    reservation.release_r(i);
                    rp.push(gather_r(&part, &adj.r_map));
                }
            }
            let mut sp = Vec::with_capacity(s.num_payloads());
            if let Some(p0) = st_p0.take() {
                reservation.release_s(0);
                sp.push(gather_column(dev, &p0, &adj.s_map));
            }
            for (i, c) in s.payloads().iter().enumerate().skip(1) {
                let (_, part, _) = partition_payload_with_key(dev, s_keys, c, bits);
                reservation.release_s(i);
                sp.push(gather_column(dev, &part, &adj.s_map));
            }
            (rp, sp)
        });
        phases.materialize = t;

        let rows = adj.keys.len();
        JoinOutput {
            keys: K::wrap(adj.keys),
            r_payloads,
            s_payloads,
            stats: JoinStats::new(Algorithm::PhjOm, phases, rows, dev.mem_report().peak_bytes),
        }
    }
    dispatch_keys!(r, s, typed(dev, r, s, config))
}

/// The same partitioned hash join run in GFUR mode: partition `(key,
/// physical ID)` only, then gather payloads from the untransformed inputs.
pub fn phj_om_gfur(dev: &Device, r: &Relation, s: &Relation, config: &JoinConfig) -> JoinOutput {
    fn typed<K: ColumnElement>(
        r_keys: &DeviceBuffer<K>,
        s_keys: &DeviceBuffer<K>,
        dev: &Device,
        r: &Relation,
        s: &Relation,
        config: &JoinConfig,
    ) -> JoinOutput {
        dev.reset_peak_mem();
        let mut reservation =
            crate::OutputReservation::new(dev, r, s, crate::estimated_out_rows(config, s));
        let mut phases = PhaseTimes::default();
        let bits = choose_radix_bits(dev, r.len().max(1), K::SIZE, config);

        let ((rp, sp), t) = timed_phase(dev, "transform", || {
            let r_ids = iota(dev, r_keys.len(), "phj_gfur.r_ids");
            let s_ids = iota(dev, s_keys.len(), "phj_gfur.s_ids");
            (
                radix_partition(dev, r_keys, &r_ids, bits),
                radix_partition(dev, s_keys, &s_ids, bits),
            )
        });
        phases.transform = t;

        let ((keys, r_ids, s_ids), t) = timed_phase(dev, "match_find", || {
            reservation.release_keys();
            let (m, _) = join_copartitions(dev, &rp.keys, &rp.offsets, &sp.keys, &sp.offsets);
            // Positions -> physical IDs (clustered reads of the partitioned
            // ID arrays).
            let r_ids = gather(dev, &rp.vals, &m.r_idx);
            let s_ids = gather(dev, &sp.vals, &m.s_idx);
            (m.keys, r_ids, s_ids)
        });
        phases.match_find = t;
        drop((rp, sp));
        // Kind adjustment in physical-ID space.
        let adj = apply_kind_timed(
            dev,
            config.kind,
            MatchResult {
                keys,
                r_idx: r_ids,
                s_idx: s_ids,
            },
            s_keys,
            s.len(),
        );
        phases.match_find += adj.time;

        let ((r_payloads, s_payloads), t) = timed_phase(dev, "materialize", || {
            let rp: Vec<Column> = if adj.materialize_r {
                r.payloads()
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        reservation.release_r(i);
                        if config.kind == JoinKind::Outer {
                            gather_column_or_null(dev, c, &adj.r_map)
                        } else {
                            gather_column(dev, c, &adj.r_map)
                        }
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let sp: Vec<Column> = s
                .payloads()
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    reservation.release_s(i);
                    gather_column(dev, c, &adj.s_map)
                })
                .collect();
            (rp, sp)
        });
        phases.materialize = t;

        let rows = adj.keys.len();
        JoinOutput {
            keys: K::wrap(adj.keys),
            r_payloads,
            s_payloads,
            stats: JoinStats::new(
                Algorithm::PhjOmGfur,
                phases,
                rows,
                dev.mem_report().peak_bytes,
            ),
        }
    }
    dispatch_keys!(r, s, typed(dev, r, s, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::hash_join_oracle;
    use columnar::Column;
    use sim::Device;

    fn inputs(dev: &Device, nr: usize, ns: usize) -> (Relation, Relation) {
        let pk: Vec<i32> = (0..nr as i32).rev().collect();
        let fk: Vec<i32> = (0..ns).map(|i| ((i * 13 + 5) % nr) as i32).collect();
        let r = Relation::new(
            "R",
            Column::from_i32(dev, pk.clone(), "rk"),
            vec![
                Column::from_i64(dev, pk.iter().map(|&k| k as i64 * 3).collect(), "r1"),
                Column::from_i32(dev, pk.iter().map(|&k| k + 7).collect(), "r2"),
            ],
        );
        let s = Relation::new(
            "S",
            Column::from_i32(dev, fk.clone(), "sk"),
            vec![Column::from_i32(
                dev,
                fk.iter().map(|&k| -k).collect(),
                "s1",
            )],
        );
        (r, s)
    }

    #[test]
    fn phj_om_matches_oracle() {
        let dev = Device::a100();
        let (r, s) = inputs(&dev, 700, 2000);
        let out = phj_om(&dev, &r, &s, &JoinConfig::default());
        assert_eq!(out.rows_sorted(), hash_join_oracle(&r, &s));
        assert_eq!(out.stats.rows, 2000);
    }

    #[test]
    fn phj_om_gfur_matches_oracle() {
        let dev = Device::a100();
        let (r, s) = inputs(&dev, 700, 2000);
        let out = phj_om_gfur(&dev, &r, &s, &JoinConfig::default());
        assert_eq!(out.rows_sorted(), hash_join_oracle(&r, &s));
    }

    #[test]
    fn explicit_radix_bits_respected_and_correct() {
        let dev = Device::a100();
        let (r, s) = inputs(&dev, 1000, 1000);
        for bits in [1, 4, 10] {
            let cfg = JoinConfig {
                radix_bits: Some(bits),
                ..JoinConfig::default()
            };
            let out = phj_om(&dev, &r, &s, &cfg);
            assert_eq!(out.rows_sorted(), hash_join_oracle(&r, &s), "bits={bits}");
        }
    }

    #[test]
    fn duplicates_and_non_matching_keys() {
        let dev = Device::a100();
        let r = Relation::new(
            "R",
            Column::from_i32(&dev, vec![3, 3, 8, 100], "k"),
            vec![Column::from_i32(&dev, vec![30, 31, 80, 1], "p")],
        );
        let s = Relation::new(
            "S",
            Column::from_i32(&dev, vec![8, 3, 42], "k"),
            vec![Column::from_i64(&dev, vec![800, 300, 4200], "q")],
        );
        let cfg = JoinConfig {
            unique_build: false,
            ..JoinConfig::default()
        };
        let out = phj_om(&dev, &r, &s, &cfg);
        assert_eq!(out.rows_sorted(), hash_join_oracle(&r, &s));
    }

    #[test]
    fn i64_keys() {
        let dev = Device::a100();
        let r = Relation::new(
            "R",
            Column::from_i64(&dev, (0..100).map(|i| i * 1_000_000_007).collect(), "k"),
            vec![Column::from_i32(&dev, (0..100).collect(), "p")],
        );
        let s = Relation::new(
            "S",
            Column::from_i64(&dev, (0..50).map(|i| i * 2 * 1_000_000_007).collect(), "k"),
            vec![Column::from_i32(&dev, (0..50).collect(), "q")],
        );
        let out = phj_om(&dev, &r, &s, &JoinConfig::default());
        assert_eq!(out.rows_sorted(), hash_join_oracle(&r, &s));
    }

    #[test]
    fn empty_probe_side() {
        let dev = Device::a100();
        let r = Relation::new(
            "R",
            Column::from_i32(&dev, vec![1, 2], "k"),
            vec![Column::from_i32(&dev, vec![1, 2], "p")],
        );
        let s = Relation::new("S", Column::from_i32(&dev, vec![], "k"), vec![]);
        let out = phj_om(&dev, &r, &s, &JoinConfig::default());
        assert!(out.is_empty());
    }

    #[test]
    fn probe_side_ids_clustered_under_gftr() {
        // The property GFTR is built on: matched probe positions ascend.
        let dev = Device::a100();
        let (r, s) = inputs(&dev, 512, 4096);
        let out = phj_om(&dev, &r, &s, &JoinConfig::default());
        // Indirectly verified through result equality above; here check the
        // partition-level invariant via GFUR mode's internals by running a
        // narrow join and confirming identical results across modes.
        let out2 = phj_om_gfur(&dev, &r, &s, &JoinConfig::default());
        assert_eq!(out.rows_sorted(), out2.rows_sorted());
    }
}
