//! A real multi-threaded CPU radix join — the stand-in for the optimized
//! CPU baseline of Balkesen et al. used in Figure 8.
//!
//! Unlike every other algorithm in this crate, nothing here is simulated:
//! the join runs on host threads (crossbeam scoped) and reports *measured*
//! wall-clock, converted into [`sim::SimTime`] so the benchmark harness can
//! chart CPU and GPU series together. The structure is the classic
//! partitioned radix join: parallel histogram + scatter into contiguous
//! partitions, then per-partition hash build/probe, then payload
//! materialization by tuple ID.

use crate::kinds::JoinKind;
use crate::smj::dispatch_keys;
use crate::{Algorithm, JoinConfig, JoinOutput, JoinStats};
use columnar::{Column, ColumnElement, Relation};
use sim::{Device, DeviceBuffer, Element, PhaseTimes, SimTime};
use std::time::Instant;

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// Parallel stable radix partition of `(key, 0..n)` into `2^bits`
/// contiguous partitions. Returns `(keys, ids, offsets)`.
fn partition_parallel<K: ColumnElement>(keys: &[K], bits: u32) -> (Vec<K>, Vec<u32>, Vec<u32>) {
    let n = keys.len();
    let parts = 1usize << bits;
    let mask = (parts - 1) as u64;
    let threads = num_threads().min(n.max(1));
    let chunk = n.div_ceil(threads.max(1)).max(1);

    // Per-thread histograms.
    let mut histograms = vec![vec![0u32; parts]; threads];
    crossbeam::scope(|scope| {
        for (t, hist) in histograms.iter_mut().enumerate() {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            scope.spawn(move |_| {
                for k in &keys[lo..hi.max(lo)] {
                    hist[(k.to_radix() & mask) as usize] += 1;
                }
            });
        }
    })
    .expect("partition histogram threads panicked");

    // Global offsets: partition-major, thread-minor (keeps the pass stable).
    let mut write_base = vec![vec![0u32; parts]; threads];
    let mut offsets = vec![0u32; parts + 1];
    let mut acc = 0u32;
    for p in 0..parts {
        offsets[p] = acc;
        for t in 0..threads {
            write_base[t][p] = acc;
            acc += histograms[t][p];
        }
    }
    offsets[parts] = acc;

    // Parallel scatter through disjoint output windows.
    let mut out_keys = vec![K::default(); n];
    let mut out_ids = vec![0u32; n];
    {
        // Hand each thread its own cursor row; windows are disjoint by
        // construction, so the raw-pointer writes below never alias.
        struct SendPtr<T>(*mut T);
        unsafe impl<T> Send for SendPtr<T> {}
        unsafe impl<T> Sync for SendPtr<T> {}
        let kp = SendPtr(out_keys.as_mut_ptr());
        let ip = SendPtr(out_ids.as_mut_ptr());
        let kp = &kp;
        let ip = &ip;
        crossbeam::scope(|scope| {
            for (t, mut cursor) in write_base.into_iter().enumerate() {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                scope.spawn(move |_| {
                    for (i, k) in (lo..hi.max(lo)).zip(&keys[lo..hi.max(lo)]) {
                        let p = (k.to_radix() & mask) as usize;
                        let pos = cursor[p] as usize;
                        cursor[p] += 1;
                        // SAFETY: each (thread, partition) window is
                        // disjoint, sized by that thread's histogram.
                        unsafe {
                            *kp.0.add(pos) = *k;
                            *ip.0.add(pos) = i as u32;
                        }
                    }
                });
            }
        })
        .expect("partition scatter threads panicked");
    }
    (out_keys, out_ids, offsets)
}

/// Per-partition hash join, partitions spread over threads. Returns matched
/// `(key, r_id, s_id)` triples concatenated in partition order.
fn join_partitions<K: ColumnElement>(
    r_keys: &[K],
    r_ids: &[u32],
    r_off: &[u32],
    s_keys: &[K],
    s_ids: &[u32],
    s_off: &[u32],
) -> (Vec<K>, Vec<u32>, Vec<u32>) {
    let parts = r_off.len() - 1;
    let threads = num_threads().min(parts.max(1));
    let per_thread = parts.div_ceil(threads);
    let mut shards: Vec<(Vec<K>, Vec<u32>, Vec<u32>)> = Vec::new();
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let p_lo = t * per_thread;
            let p_hi = ((t + 1) * per_thread).min(parts);
            handles.push(scope.spawn(move |_| {
                let mut keys = Vec::new();
                let mut ri = Vec::new();
                let mut si = Vec::new();
                let mut table: Vec<(u64, u32)> = Vec::new();
                for p in p_lo..p_hi {
                    let rr = r_off[p] as usize..r_off[p + 1] as usize;
                    let sr = s_off[p] as usize..s_off[p + 1] as usize;
                    if rr.is_empty() || sr.is_empty() {
                        continue;
                    }
                    let slots = (rr.len() * 2).next_power_of_two().max(4);
                    let mask = slots - 1;
                    table.clear();
                    table.resize(slots, (u64::MAX, u32::MAX));
                    for i in rr {
                        let k = r_keys[i].to_radix();
                        let mut h = (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask;
                        while table[h].1 != u32::MAX {
                            h = (h + 1) & mask;
                        }
                        table[h] = (k, r_ids[i]);
                    }
                    for j in sr {
                        let k = s_keys[j].to_radix();
                        let mut h = (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask;
                        while table[h].1 != u32::MAX {
                            if table[h].0 == k {
                                keys.push(s_keys[j]);
                                ri.push(table[h].1);
                                si.push(s_ids[j]);
                            }
                            h = (h + 1) & mask;
                        }
                    }
                }
                (keys, ri, si)
            }));
        }
        shards = handles.into_iter().map(|h| h.join().unwrap()).collect();
    })
    .expect("join threads panicked");

    let total: usize = shards.iter().map(|s| s.0.len()).sum();
    let mut keys = Vec::with_capacity(total);
    let mut ri = Vec::with_capacity(total);
    let mut si = Vec::with_capacity(total);
    for (k, r, s) in shards {
        keys.extend(k);
        ri.extend(r);
        si.extend(s);
    }
    (keys, ri, si)
}

/// Materialize one payload column by tuple IDs, in parallel. `u32::MAX`
/// entries (outer-join nulls) produce the type's null sentinel.
fn gather_cpu(col: &Column, ids: &[u32], dev: &Device) -> Column {
    fn typed<T: Element>(src: &DeviceBuffer<T>, ids: &[u32], null: T) -> Vec<T> {
        let n = ids.len();
        let threads = num_threads().min(n.max(1));
        let chunk = n.div_ceil(threads.max(1)).max(1);
        let mut out = vec![T::default(); n];
        crossbeam::scope(|scope| {
            for (slice, id_chunk) in out.chunks_mut(chunk).zip(ids.chunks(chunk)) {
                scope.spawn(move |_| {
                    for (o, &m) in slice.iter_mut().zip(id_chunk) {
                        *o = if m == u32::MAX { null } else { src[m as usize] };
                    }
                });
            }
        })
        .expect("gather threads panicked");
        out
    }
    match col {
        Column::I32(b) => Column::from_i32(dev, typed(b, ids, i32::MIN), "cpu.gather"),
        Column::I64(b) => Column::from_i64(dev, typed(b, ids, i64::MIN), "cpu.gather"),
    }
}

/// Host-side kind adjustment of the matched triple (see
/// [`crate::kinds::JoinKind`]); the CPU baseline supports all four kinds.
fn apply_kind_cpu<K: Element + Copy>(
    kind: JoinKind,
    keys: Vec<K>,
    r_ids: Vec<u32>,
    s_ids: Vec<u32>,
    s_keys: &[K],
) -> (Vec<K>, Vec<u32>, Vec<u32>, bool) {
    match kind {
        JoinKind::Inner => (keys, r_ids, s_ids, true),
        JoinKind::Semi => {
            let mut k = Vec::new();
            let mut sm = Vec::new();
            for i in 0..s_ids.len() {
                if i == 0 || s_ids[i] != s_ids[i - 1] {
                    k.push(keys[i]);
                    sm.push(s_ids[i]);
                }
            }
            (k, Vec::new(), sm, false)
        }
        JoinKind::Anti => {
            let mut matched = vec![false; s_keys.len()];
            for &sid in &s_ids {
                matched[sid as usize] = true;
            }
            let sm: Vec<u32> = (0..s_keys.len() as u32)
                .filter(|&i| !matched[i as usize])
                .collect();
            let k = sm.iter().map(|&i| s_keys[i as usize]).collect();
            (k, Vec::new(), sm, false)
        }
        JoinKind::Outer => {
            let mut matched = vec![false; s_keys.len()];
            for &sid in &s_ids {
                matched[sid as usize] = true;
            }
            let mut k = keys;
            let mut rm = r_ids;
            let mut sm = s_ids;
            for i in 0..s_keys.len() as u32 {
                if !matched[i as usize] {
                    k.push(s_keys[i as usize]);
                    rm.push(u32::MAX);
                    sm.push(i);
                }
            }
            (k, rm, sm, true)
        }
    }
}

/// Multi-threaded CPU radix join. Wall-clock measured; no simulated costs.
pub fn cpu_radix_join(dev: &Device, r: &Relation, s: &Relation, config: &JoinConfig) -> JoinOutput {
    fn typed<K: ColumnElement>(
        r_keys: &DeviceBuffer<K>,
        s_keys: &DeviceBuffer<K>,
        dev: &Device,
        r: &Relation,
        s: &Relation,
        config: &JoinConfig,
    ) -> JoinOutput {
        let bits = config.radix_bits.unwrap_or_else(|| {
            // Partitions sized to roughly fit L2 per core.
            let target = 16_384u64;
            let parts = (r.len() as u64).div_ceil(target).max(1);
            (64 - (parts - 1).leading_zeros()).clamp(4, 14)
        });
        let mut phases = PhaseTimes::default();

        let t0 = Instant::now();
        let (rk, ri, ro) = partition_parallel(r_keys.as_slice(), bits);
        let (sk, si, so) = partition_parallel(s_keys.as_slice(), bits);
        phases.transform = SimTime::from_secs(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let (keys, r_ids, s_ids) = join_partitions(&rk, &ri, &ro, &sk, &si, &so);
        let (keys, r_ids, s_ids, materialize_r) =
            apply_kind_cpu(config.kind, keys, r_ids, s_ids, s_keys.as_slice());
        phases.match_find = SimTime::from_secs(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let r_payloads: Vec<Column> = if materialize_r {
            r.payloads()
                .iter()
                .map(|c| gather_cpu(c, &r_ids, dev))
                .collect()
        } else {
            Vec::new()
        };
        let s_payloads: Vec<Column> = s
            .payloads()
            .iter()
            .map(|c| gather_cpu(c, &s_ids, dev))
            .collect();
        phases.materialize = SimTime::from_secs(t0.elapsed().as_secs_f64());

        let rows = keys.len();
        JoinOutput {
            keys: K::wrap(dev.upload(keys, "cpu.out_keys")),
            r_payloads,
            s_payloads,
            // peak 0: host memory, not device-ledger tracked
            stats: JoinStats::new(Algorithm::CpuRadix, phases, rows, 0),
        }
    }
    dispatch_keys!(r, s, typed(dev, r, s, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::hash_join_oracle;
    use columnar::Column;
    use sim::Device;

    #[test]
    fn cpu_join_matches_oracle() {
        let dev = Device::a100();
        let pk: Vec<i32> = (0..2000).map(|i| (i * 7 + 3) % 2000).collect();
        let fk: Vec<i32> = (0..5000).map(|i| i % 2500).collect();
        let r = Relation::new(
            "R",
            Column::from_i32(&dev, pk.clone(), "rk"),
            vec![Column::from_i64(
                &dev,
                pk.iter().map(|&k| k as i64 * 2).collect(),
                "r1",
            )],
        );
        let s = Relation::new(
            "S",
            Column::from_i32(&dev, fk.clone(), "sk"),
            vec![Column::from_i32(
                &dev,
                fk.iter().map(|&k| k + 9).collect(),
                "s1",
            )],
        );
        let out = cpu_radix_join(&dev, &r, &s, &JoinConfig::default());
        assert_eq!(out.rows_sorted(), hash_join_oracle(&r, &s));
        assert!(out.stats.phases.total().secs() > 0.0);
    }

    #[test]
    fn cpu_join_with_duplicates_and_i64_keys() {
        let dev = Device::a100();
        let r = Relation::new(
            "R",
            Column::from_i64(&dev, vec![5, 5, -9, 300], "k"),
            vec![Column::from_i32(&dev, vec![1, 2, 3, 4], "p")],
        );
        let s = Relation::new(
            "S",
            Column::from_i64(&dev, vec![-9, 5, 5, 17], "k"),
            vec![Column::from_i64(&dev, vec![10, 20, 30, 40], "q")],
        );
        let cfg = JoinConfig {
            unique_build: false,
            radix_bits: Some(4),
            ..JoinConfig::default()
        };
        let out = cpu_radix_join(&dev, &r, &s, &cfg);
        assert_eq!(out.rows_sorted(), hash_join_oracle(&r, &s));
    }

    #[test]
    fn empty_inputs() {
        let dev = Device::a100();
        let r = Relation::new("R", Column::from_i32(&dev, vec![], "k"), vec![]);
        let s = Relation::new("S", Column::from_i32(&dev, vec![], "k"), vec![]);
        let out = cpu_radix_join(&dev, &r, &s, &JoinConfig::default());
        assert!(out.is_empty());
    }
}
