//! Out-of-core joins: inputs larger than device memory, processed in
//! probe-side chunks.
//!
//! The paper scopes itself to in-memory joins and cites out-of-memory
//! processing as orthogonal work (Kaldewey et al., Rui et al., Sioulas et
//! al. — Section 6); this module provides the straightforward composition:
//! keep the build relation resident, stream the probe relation through the
//! device in chunks sized so that one chunk's join (inputs + the
//! reservation + the transformation intermediates, per the Section 4.4
//! model) fits the remaining memory, and concatenate the chunk outputs.
//! Inner, semi and outer kinds distribute over probe chunks; anti does too
//! (each probe row's fate depends only on the resident build side).
//!
//! The chunk budget is computed from the same memory model Tables 1-2
//! validate, so a workload that OOMs the direct path runs chunked without
//! trial and error.

use crate::{estimated_out_rows, run_join, Algorithm, JoinConfig, JoinOutput, JoinStats};
use columnar::{Column, Relation};
use primitives::gather_column;
use sim::{Device, PhaseTimes};

/// How the chunked driver split the work.
#[derive(Debug, Clone, Copy)]
pub struct ChunkPlan {
    /// Probe rows per chunk.
    pub chunk_rows: usize,
    /// Number of chunks.
    pub chunks: usize,
}

/// Upper bound on the *additional* device bytes one chunk's join needs
/// beyond what is already resident, from the Section 4.4 accounting: the
/// staged probe chunk + the chunk's output reservation + GFTR
/// transformation state (`M_t + 4 M_c` with a histogram-sized `M_t`).
fn chunk_bytes_needed(r: &Relation, s: &Relation, chunk_rows: usize, out_rows: usize) -> u64 {
    let s_row = s.size_bytes() / s.len().max(1) as u64;
    let out_row: u64 = r.key().dtype().size()
        + r.payloads().iter().map(|c| c.dtype().size()).sum::<u64>()
        + s.payloads().iter().map(|c| c.dtype().size()).sum::<u64>();
    let m_c = (chunk_rows.max(r.len()) as u64) * 8; // widest column pairs
                                                    // Transformation intermediates: histograms and scans sized to the
                                                    // fan-out the build side needs, plus fixed kernel scratch.
    let m_t = (64 << 10) + (r.len() as u64 / 512) * 16;
    chunk_rows as u64 * s_row           // staged probe chunk
        + out_rows as u64 * out_row     // output reservation for the chunk
        + m_t + 4 * m_c // transformation state (Table 2)
}

/// Plan the probe-side chunking for the device's free memory. Returns
/// `None` when even a single-row chunk cannot fit (the build side itself is
/// too large — build-side chunking is future work, as in the papers cited).
pub fn plan_chunks(dev: &Device, r: &Relation, s: &Relation) -> Option<ChunkPlan> {
    // `mem_capacity` is the query's reserved budget on a scheduler query
    // handle (and the device's global memory otherwise), so a budget-capped
    // tenant re-plans out-of-core instead of OOMing.
    let budget = dev
        .mem_capacity()
        .saturating_sub(dev.mem_report().current_bytes);
    // The output of a PK-FK chunk is at most the chunk itself; general
    // joins can explode, so leave a 2x factor.
    let fits = |rows: usize| chunk_bytes_needed(r, s, rows, rows * 2) <= budget;
    if !fits(1) {
        return None;
    }
    if fits(s.len().max(1)) {
        return Some(ChunkPlan {
            chunk_rows: s.len().max(1),
            chunks: 1,
        });
    }
    // Largest power-of-two chunk that fits.
    let mut rows = 1usize;
    while rows * 2 <= s.len() && fits(rows * 2) {
        rows *= 2;
    }
    Some(ChunkPlan {
        chunk_rows: rows,
        chunks: s.len().div_ceil(rows),
    })
}

/// Join `r ⋈ s` in probe-side chunks with the given algorithm. Falls back
/// to a single direct run when everything fits. Panics (device OOM) only if
/// even one-row chunks cannot fit.
///
/// Chunk outputs are staged host-side as they complete (out-of-core output
/// lives on the host by definition); the returned [`JoinOutput`] re-uploads
/// the concatenation for API uniformity, so the *final* result must fit the
/// device alongside the inputs. Callers that stream further (e.g. to disk)
/// can adapt the loop to consume per-chunk outputs instead.
pub fn chunked_join(
    dev: &Device,
    algorithm: Algorithm,
    r: &Relation,
    s: &Relation,
    config: &JoinConfig,
) -> (JoinOutput, ChunkPlan) {
    let plan = plan_chunks(dev, r, s).unwrap_or_else(|| {
        panic!(
            "build side ({} bytes) alone exceeds device memory; build-side \
             chunking is not implemented",
            r.size_bytes()
        )
    });
    if plan.chunks == 1 {
        return (run_join(dev, algorithm, r, s, config), plan);
    }

    let counters_before = dev.counters();
    let mut phases = PhaseTimes::default();
    let mut peak = 0u64;
    let mut out_keys: Vec<i64> = Vec::new();
    let mut out_r: Vec<Vec<i64>> = vec![Vec::new(); r.num_payloads()];
    let mut out_s: Vec<Vec<i64>> = vec![Vec::new(); s.num_payloads()];
    let mut r_cols_present = r.num_payloads();

    let tracing = dev.tracing_enabled();
    for c in 0..plan.chunks {
        let chunk_t0 = dev.elapsed();
        let lo = c * plan.chunk_rows;
        let hi = ((c + 1) * plan.chunk_rows).min(s.len());
        // Chunk transfer: on hardware this is the host->device copy of the
        // chunk; charge one streaming pass (a clustered gather of the rows).
        let sel = dev.upload((lo as u32..hi as u32).collect::<Vec<u32>>(), "chunk.sel");
        let key = gather_column(dev, s.key(), &sel);
        let payloads = s
            .payloads()
            .iter()
            .map(|col| gather_column(dev, col, &sel))
            .collect();
        let chunk = Relation::new(format!("{}#{}", s.name(), c), key, payloads);

        let chunk_config = JoinConfig {
            expected_out_rows: Some(estimated_out_rows(config, &chunk).min(chunk.len() * 2)),
            ..config.clone()
        };
        let out = run_join(dev, algorithm, r, &chunk, &chunk_config);
        phases += out.stats.phases;
        peak = peak.max(out.stats.peak_mem_bytes);
        out_keys.extend(out.keys.iter_i64());
        r_cols_present = out.r_payloads.len();
        for (acc, col) in out_r.iter_mut().zip(&out.r_payloads) {
            acc.extend(col.iter_i64());
        }
        for (acc, col) in out_s.iter_mut().zip(&out.s_payloads) {
            acc.extend(col.iter_i64());
        }
        if tracing {
            // Covers the staging gathers plus the chunk's join run.
            dev.trace_span(
                sim::SpanCat::Chunk,
                &format!("chunk {}/{} [{lo}..{hi})", c + 1, plan.chunks),
                chunk_t0,
                dev.elapsed(),
            );
        }
    }

    // Reassemble in the original column types.
    let keys = rebuild(dev, r.key(), out_keys);
    let r_payloads = out_r
        .into_iter()
        .take(r_cols_present)
        .zip(r.payloads())
        .map(|(vals, proto)| rebuild(dev, proto, vals))
        .collect();
    let s_payloads = out_s
        .into_iter()
        .zip(s.payloads())
        .map(|(vals, proto)| rebuild(dev, proto, vals))
        .collect();
    let keys_len = keys.len();
    let mut stats = JoinStats::new(algorithm, phases, keys_len, peak);
    // Counter delta over all chunks, including the staging gathers.
    stats.op.counters = dev.counters().delta_since(&counters_before).0;
    (
        JoinOutput {
            keys,
            r_payloads,
            s_payloads,
            stats,
        },
        plan,
    )
}

fn rebuild(dev: &Device, proto: &Column, vals: Vec<i64>) -> Column {
    match proto.dtype() {
        columnar::DType::I32 => Column::from_i32(
            dev,
            vals.into_iter().map(|v| v as i32).collect(),
            "chunk.out",
        ),
        columnar::DType::I64 => Column::from_i64(dev, vals, "chunk.out"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::JoinKind;
    use crate::oracle::{hash_join_oracle, join_oracle_kind};
    use sim::DeviceConfig;

    fn small_device(bytes: u64) -> Device {
        let mut cfg = DeviceConfig::a100();
        cfg.global_mem_bytes = bytes;
        Device::new(cfg)
    }

    fn inputs(dev: &Device, nr: usize, ns: usize) -> (Relation, Relation) {
        let pk: Vec<i32> = (0..nr as i32).collect();
        let fk: Vec<i32> = (0..ns).map(|i| ((i * 13) % nr) as i32).collect();
        (
            Relation::new(
                "R",
                Column::from_i32(dev, pk.clone(), "rk"),
                vec![
                    Column::from_i32(dev, pk.iter().map(|&k| k * 2).collect(), "r1"),
                    Column::from_i32(dev, pk.iter().map(|&k| k + 1).collect(), "r2"),
                ],
            ),
            Relation::new(
                "S",
                Column::from_i32(dev, fk.clone(), "sk"),
                vec![Column::from_i64(
                    dev,
                    fk.iter().map(|&k| k as i64).collect(),
                    "s1",
                )],
            ),
        )
    }

    #[test]
    fn everything_fits_runs_direct() {
        let dev = Device::a100();
        let (r, s) = inputs(&dev, 500, 2000);
        let (out, plan) = chunked_join(&dev, Algorithm::PhjOm, &r, &s, &JoinConfig::default());
        assert_eq!(plan.chunks, 1);
        assert_eq!(out.rows_sorted(), hash_join_oracle(&r, &s));
    }

    #[test]
    fn chunked_matches_oracle_on_a_tight_device() {
        // A device barely big enough for R plus a fraction of S: the direct
        // join OOMs, the chunked one succeeds with the same result.
        let dev = small_device(1 << 20);
        let (r, s) = inputs(&dev, 2000, 30_000);
        let direct = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_join(&dev, Algorithm::PhjOm, &r, &s, &JoinConfig::default())
        }));
        assert!(direct.is_err(), "the direct path must OOM on this device");

        let (out, plan) = chunked_join(&dev, Algorithm::PhjOm, &r, &s, &JoinConfig::default());
        assert!(
            plan.chunks > 1,
            "expected probe-side chunking, got {plan:?}"
        );
        assert_eq!(out.rows_sorted(), hash_join_oracle(&r, &s));
        assert!(
            dev.mem_report().current_bytes <= dev.config().global_mem_bytes,
            "nothing beyond the device capacity stays resident"
        );
    }

    #[test]
    fn chunked_kinds_distribute_over_probe_chunks() {
        let dev = small_device(1 << 20);
        let pk: Vec<i32> = (0..1500).collect();
        let fk: Vec<i32> = (0..24_000).map(|i| i % 3000).collect(); // half dangle
        let r = Relation::new(
            "R",
            Column::from_i32(&dev, pk.clone(), "rk"),
            vec![Column::from_i32(&dev, pk.clone(), "r1")],
        );
        let s = Relation::new(
            "S",
            Column::from_i32(&dev, fk.clone(), "sk"),
            vec![Column::from_i32(&dev, fk, "s1")],
        );
        for kind in [JoinKind::Semi, JoinKind::Anti, JoinKind::Outer] {
            let config = JoinConfig {
                kind,
                unique_build: false,
                ..JoinConfig::default()
            };
            let (out, plan) = chunked_join(&dev, Algorithm::PhjOm, &r, &s, &config);
            assert!(plan.chunks > 1);
            assert_eq!(
                out.rows_sorted(),
                join_oracle_kind(&r, &s, kind),
                "{} chunked",
                kind.name()
            );
        }
    }

    #[test]
    fn oversized_build_side_is_rejected() {
        // Capacity just above the inputs themselves: the relations fit, but
        // no chunk of any size leaves room for the join's working state.
        let dev = small_device(250 << 10);
        let (r, s) = inputs(&dev, 20_000, 100);
        assert!(plan_chunks(&dev, &r, &s).is_none());
    }

    #[test]
    fn chunk_plan_is_conservative() {
        let dev = small_device(4 << 20);
        let (r, s) = inputs(&dev, 2000, 100_000);
        let plan = plan_chunks(&dev, &r, &s).expect("build side fits");
        // The planned chunk must actually fit the Section 4.4 accounting
        // within what the inputs left free.
        let budget = dev.config().global_mem_bytes - dev.mem_report().current_bytes;
        assert!(chunk_bytes_needed(&r, &s, plan.chunk_rows, plan.chunk_rows * 2) <= budget);
    }
}
