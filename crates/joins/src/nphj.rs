//! NPHJ: the traditional non-partitioned hash join over a global hash table
//! in device memory — the cuDF baseline of the evaluation (Section 5.2.2).
//!
//! There is no transformation phase: R's keys go straight into a global
//! table, S's keys probe it. Both steps are dominated by random accesses
//! into the table, which is why the paper finds it the slowest of the GPU
//! joins for large inputs (but respectable for small ones, where the table
//! fits in L2). Materialization gathers the probe side clustered (matches
//! come out in probe order) and the build side unclustered.

use crate::kinds::{apply_kind_timed, JoinKind};
use crate::smj::dispatch_keys;
use crate::{timed_phase, Algorithm, JoinConfig, JoinOutput, JoinStats};
use columnar::{Column, ColumnElement, Relation};
use primitives::{gather_column, gather_column_or_null, GlobalHashTable};
use sim::{Device, DeviceBuffer, PhaseTimes};

/// Non-partitioned (global hash table) join, GFUR materialization.
pub fn nphj(dev: &Device, r: &Relation, s: &Relation, config: &JoinConfig) -> JoinOutput {
    #[allow(clippy::too_many_arguments)]
    fn typed<K: ColumnElement>(
        r_keys: &DeviceBuffer<K>,
        s_keys: &DeviceBuffer<K>,
        dev: &Device,
        r: &Relation,
        s: &Relation,
        config: &JoinConfig,
    ) -> JoinOutput {
        dev.reset_peak_mem();
        let mut reservation =
            crate::OutputReservation::new(dev, r, s, crate::estimated_out_rows(config, s));
        let mut phases = PhaseTimes::default();

        // Match finding: build + probe (no transformation phase at all —
        // the cuDF structure the paper describes for Figure 8).
        let (m, t) = timed_phase(dev, "match_find", || {
            let mut ht = GlobalHashTable::new(dev, r_keys.len());
            ht.build(dev, r_keys);
            reservation.release_keys();
            ht.probe(dev, s_keys)
        });
        phases.match_find = t;
        // Kind adjustment in physical-ID space (NPHJ never transforms).
        let adj = apply_kind_timed(dev, config.kind, m, s_keys, s.len());
        phases.match_find += adj.time;

        // Materialization: r_map is a random permutation (hash order), s_map
        // is the probe order — clustered.
        let ((r_payloads, s_payloads), t) = timed_phase(dev, "materialize", || {
            let rp: Vec<Column> = if adj.materialize_r {
                r.payloads()
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        reservation.release_r(i);
                        if config.kind == JoinKind::Outer {
                            gather_column_or_null(dev, c, &adj.r_map)
                        } else {
                            gather_column(dev, c, &adj.r_map)
                        }
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let sp: Vec<Column> = s
                .payloads()
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    reservation.release_s(i);
                    gather_column(dev, c, &adj.s_map)
                })
                .collect();
            (rp, sp)
        });
        phases.materialize = t;

        let rows = adj.keys.len();
        JoinOutput {
            keys: K::wrap(adj.keys),
            r_payloads,
            s_payloads,
            stats: JoinStats::new(Algorithm::Nphj, phases, rows, dev.mem_report().peak_bytes),
        }
    }
    dispatch_keys!(r, s, typed(dev, r, s, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::hash_join_oracle;
    use columnar::Column;
    use sim::Device;

    #[test]
    fn nphj_matches_oracle() {
        let dev = Device::a100();
        let pk: Vec<i32> = (0..997).map(|i| (i * 31) % 997).collect();
        let fk: Vec<i32> = (0..3000).map(|i| i % 1400).collect();
        let r = Relation::new(
            "R",
            Column::from_i32(&dev, pk.clone(), "rk"),
            vec![Column::from_i64(
                &dev,
                pk.iter().map(|&k| k as i64).collect(),
                "r1",
            )],
        );
        let s = Relation::new(
            "S",
            Column::from_i32(&dev, fk.clone(), "sk"),
            vec![Column::from_i32(&dev, fk, "s1")],
        );
        let out = nphj(&dev, &r, &s, &JoinConfig::default());
        assert_eq!(out.rows_sorted(), hash_join_oracle(&r, &s));
        // No transformation phase.
        assert_eq!(out.stats.phases.transform.secs(), 0.0);
    }

    #[test]
    fn nphj_duplicates() {
        let dev = Device::a100();
        let r = Relation::new(
            "R",
            Column::from_i32(&dev, vec![1, 1, 2], "k"),
            vec![Column::from_i32(&dev, vec![10, 11, 20], "p")],
        );
        let s = Relation::new(
            "S",
            Column::from_i32(&dev, vec![1, 2, 2, 3], "k"),
            vec![Column::from_i32(&dev, vec![100, 200, 201, 300], "q")],
        );
        let out = nphj(&dev, &r, &s, &JoinConfig::default());
        assert_eq!(out.rows_sorted(), hash_join_oracle(&r, &s));
    }

    #[test]
    fn large_table_is_slower_per_tuple_than_small() {
        // Shrunken 1 MB L2: the 2^15-entry table (768 KB) stays resident,
        // the 2^21-entry one (48 MB) does not — the regime split behind the
        // paper's "cuDF is fine on small inputs, worst on large" finding.
        let mut cfg = sim::DeviceConfig::rtx3090();
        cfg.l2_bytes = 1 << 20;
        let dev = Device::new(cfg);
        let make = |n: usize| {
            let keys: Vec<i32> = (0..n as i32)
                .map(|i| (i.wrapping_mul(2654435761u32 as i32)) % n as i32)
                .collect();
            let keys: Vec<i32> = keys.iter().map(|k| k.rem_euclid(n as i32)).collect();
            (
                Relation::new(
                    "R",
                    Column::from_i32(&dev, keys.clone(), "rk"),
                    vec![Column::from_i32(&dev, keys.clone(), "r1")],
                ),
                Relation::new(
                    "S",
                    Column::from_i32(&dev, keys.clone(), "sk"),
                    vec![Column::from_i32(&dev, keys, "s1")],
                ),
            )
        };
        let cfg = JoinConfig {
            unique_build: false,
            ..JoinConfig::default()
        };
        // Small: table fits L2 — probes mostly hit. Large: it does not —
        // hit rate collapses and the random-access tax dominates.
        let (r, s) = make(1 << 15);
        dev.reset_stats();
        let _ = nphj(&dev, &r, &s, &cfg);
        let small_hits = dev.counters().l2_hit_rate();
        let (r, s) = make(1 << 21);
        dev.reset_stats();
        dev.flush_l2();
        let large = nphj(&dev, &r, &s, &cfg);
        let large_hits = dev.counters().l2_hit_rate();
        assert!(
            small_hits > 0.6 && large_hits < 0.4,
            "hit rates: small {small_hits} vs large {large_hits}"
        );
        // The random-access tax shows up as a per-warp coalescing failure.
        assert!(dev.counters().sectors_per_request() > 8.0);
        assert!(large.stats.phases.match_find.secs() > 0.0);
    }
}
