//! Sequences of joins (Section 5.2.7, Figure 16): a fact table with `N`
//! foreign keys joined against `N` dimension tables in a pipeline.
//!
//! Following the paper, the fact table carries physical tuple identifiers
//! and each foreign-key column is materialized (gathered by the surviving
//! tuple IDs) *right before* the join that needs it, so irrelevant FKs are
//! never moved. The i-th join processes `(FK_i, ID, P_1..P_{i-1}) ⋈ D_i`,
//! accumulating one more dimension payload column per step — which is why
//! later joins materialize ever wider tuples and the GFTR implementations
//! pull ahead as the sequence grows.

use crate::{run_join, timed, Algorithm, JoinConfig, JoinStats};
use columnar::{Column, Relation};
use primitives::gather_column;
use sim::{Device, OpStats, PhaseTimes, SimTime};

/// A fact table for star-schema pipelines: `N` foreign-key columns
/// (`FK_1..FK_N`), one per dimension table.
pub struct FactTable {
    fks: Vec<Column>,
}

impl FactTable {
    /// Assemble from equally long FK columns.
    pub fn new(fks: Vec<Column>) -> Self {
        assert!(!fks.is_empty(), "a fact table needs at least one FK column");
        let n = fks[0].len();
        assert!(
            fks.iter().all(|c| c.len() == n),
            "all FK columns must have the same length"
        );
        FactTable { fks }
    }

    /// Number of fact rows.
    pub fn len(&self) -> usize {
        self.fks[0].len()
    }

    /// True when there are no fact rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of foreign-key columns (= joins in the pipeline).
    pub fn num_fks(&self) -> usize {
        self.fks.len()
    }

    /// FK column `i`.
    pub fn fk(&self, i: usize) -> &Column {
        &self.fks[i]
    }
}

/// Statistics for one step of the pipeline.
#[derive(Debug, Clone)]
pub struct StepStats {
    /// Time to materialize this step's FK column from the surviving IDs.
    pub fk_fetch: SimTime,
    /// The join itself.
    pub join: JoinStats,
}

/// Result of a join sequence.
pub struct SequenceOutput {
    /// One materialized payload column per dimension joined, in join order.
    pub payloads: Vec<Column>,
    /// Per-step statistics.
    pub steps: Vec<StepStats>,
    /// Surviving fact rows.
    pub rows: usize,
}

impl SequenceOutput {
    /// Total simulated time across all steps (FK fetches included).
    pub fn total_time(&self) -> SimTime {
        self.steps
            .iter()
            .map(|s| s.fk_fetch + s.join.phases.total())
            .sum()
    }

    /// Summed phase breakdown across steps (FK fetch counts as
    /// materialization, since it is a gather of fact data).
    pub fn phases(&self) -> PhaseTimes {
        let mut p = PhaseTimes::default();
        for s in &self.steps {
            p += s.join.phases;
            p.materialize += s.fk_fetch;
        }
        p
    }

    /// The whole sequence as one shared [`OpStats`] record: summed phases
    /// and counters, peak memory of the worst step, final cardinality.
    pub fn op_stats(&self) -> OpStats {
        let mut stats = OpStats::new(
            self.phases(),
            self.rows,
            self.steps
                .iter()
                .map(|s| s.join.peak_mem_bytes)
                .max()
                .unwrap_or(0),
        );
        for s in &self.steps {
            stats.other += s.join.other;
            stats.counters += &s.join.counters;
        }
        stats
    }
}

/// Run the pipeline `F ⋈ D_1 ⋈ ... ⋈ D_N` with the given join algorithm.
///
/// Each `dims[i]` must be a relation whose key matches `fact.fk(i)`'s type
/// and whose payloads are the columns to carry into the result. Dimension
/// keys are assumed unique (the PK-FK star-schema setting of Figure 16).
pub fn join_sequence(
    dev: &Device,
    fact: &FactTable,
    dims: &[Relation],
    algorithm: Algorithm,
    config: &JoinConfig,
) -> SequenceOutput {
    assert_eq!(
        fact.num_fks(),
        dims.len(),
        "need one dimension table per FK column"
    );

    // Surviving fact rows, as IDs into the fact table. Starts as identity
    // (None avoids materializing an explicit iota for the first join).
    let mut ids: Option<sim::DeviceBuffer<u32>> = None;
    let mut carried: Vec<Column> = Vec::new();
    let mut steps: Vec<StepStats> = Vec::new();

    for (i, dim) in dims.iter().enumerate() {
        // Materialize FK_i for the surviving rows.
        let (fk_col, fk_fetch) = match &ids {
            None => {
                // First join: FK_1 is used in place (no gather needed).
                let col = match fact.fk(i) {
                    Column::I32(b) => Column::from_i32(dev, b.to_vec(), "seq.fk"),
                    Column::I64(b) => Column::from_i64(dev, b.to_vec(), "seq.fk"),
                };
                (col, SimTime::ZERO)
            }
            Some(ids) => timed(dev, || gather_column(dev, fact.fk(i), ids)),
        };

        // Surviving IDs ride along as a payload column of the probe side.
        let id_col = match &ids {
            None => Column::from_i32(dev, (0..fact.len() as i32).collect(), "seq.ids"),
            Some(ids) => Column::from_i32(dev, ids.iter().map(|&v| v as i32).collect(), "seq.ids"),
        };

        let mut s_payloads: Vec<Column> = Vec::with_capacity(carried.len() + 1);
        s_payloads.append(&mut carried);
        s_payloads.push(id_col);
        let probe = Relation::new(format!("F_step{i}"), fk_col, s_payloads);

        let out = run_join(dev, algorithm, dim, &probe, config);

        // Unpack: dim payloads join the carried set; the ID column (last S
        // payload) becomes the new survivor list.
        let mut s_pay = out.s_payloads;
        let id_col = s_pay.pop().expect("ID column is always carried");
        ids = Some(dev.upload(
            id_col.iter_i64().map(|v| v as u32).collect(),
            "seq.ids.next",
        ));
        carried = s_pay;
        carried.extend(out.r_payloads);

        steps.push(StepStats {
            fk_fetch,
            join: out.stats,
        });
    }

    let rows = carried
        .first()
        .map_or_else(|| ids.as_ref().map_or(0, |i| i.len()), Column::len);
    SequenceOutput {
        payloads: carried,
        steps,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Device;

    /// Build a star schema: |F| fact rows, N dimensions of |D| rows each.
    /// FK_i of row j = (j * (i + 3)) % |D|; payload of D_i's key k = the
    /// recognizable value k * 10^0..  (i+1)*1000 + k.
    fn star(dev: &Device, f: usize, d: usize, n: usize) -> (FactTable, Vec<Relation>) {
        let fks = (0..n)
            .map(|i| {
                Column::from_i32(
                    dev,
                    (0..f).map(|j| ((j * (i + 3)) % d) as i32).collect(),
                    "fk",
                )
            })
            .collect();
        let dims = (0..n)
            .map(|i| {
                let keys: Vec<i32> = (0..d as i32).rev().collect();
                Relation::new(
                    format!("D{i}"),
                    Column::from_i32(dev, keys.clone(), "k"),
                    vec![Column::from_i64(
                        dev,
                        keys.iter()
                            .map(|&k| (i as i64 + 1) * 1000 + k as i64)
                            .collect(),
                        "p",
                    )],
                )
            })
            .collect();
        (FactTable::new(fks), dims)
    }

    #[test]
    fn sequence_produces_correct_values_for_all_algorithms() {
        let dev = Device::a100();
        let (fact, dims) = star(&dev, 500, 64, 3);
        for alg in [
            Algorithm::SmjUm,
            Algorithm::SmjOm,
            Algorithm::PhjUm,
            Algorithm::PhjOm,
            Algorithm::Nphj,
        ] {
            let out = join_sequence(&dev, &fact, &dims, alg, &JoinConfig::default());
            assert_eq!(out.rows, 500, "{alg}: all FKs match, rows survive");
            assert_eq!(out.payloads.len(), 3, "{alg}");
            // Every output row must agree with the direct computation,
            // regardless of row order: collect (p1, p2, p3) sets.
            let mut got: Vec<(i64, i64, i64)> = (0..out.rows)
                .map(|r| {
                    (
                        out.payloads[0].value(r),
                        out.payloads[1].value(r),
                        out.payloads[2].value(r),
                    )
                })
                .collect();
            got.sort_unstable();
            let mut expected: Vec<(i64, i64, i64)> = (0..500usize)
                .map(|j| {
                    let fk = |i: usize| ((j * (i + 3)) % 64) as i64;
                    (1000 + fk(0), 2000 + fk(1), 3000 + fk(2))
                })
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "{alg}");
        }
    }

    #[test]
    fn later_joins_cost_more_through_widening() {
        let dev = Device::a100();
        let (fact, dims) = star(&dev, 1 << 15, 1 << 12, 4);
        let out = join_sequence(&dev, &fact, &dims, Algorithm::PhjOm, &JoinConfig::default());
        assert_eq!(out.steps.len(), 4);
        let first = out.steps[0].join.phases.total();
        let last = out.steps[3].join.phases.total();
        assert!(
            last.secs() > first.secs(),
            "join 4 materializes 3 extra columns and must cost more: {first} vs {last}"
        );
        assert!(out.total_time().secs() > 0.0);
        // The shared record sums the whole sequence.
        let agg = out.op_stats();
        assert_eq!(agg.rows, out.rows);
        assert_eq!(agg.phases.total(), out.phases().total());
        let per_step: u64 = out.steps.iter().map(|s| s.join.counters.dram_bytes()).sum();
        assert_eq!(agg.counters.dram_bytes(), per_step);
        assert!(agg.peak_mem_bytes >= out.steps[0].join.peak_mem_bytes);
    }

    #[test]
    #[should_panic(expected = "one dimension table per FK")]
    fn mismatched_dims_rejected() {
        let dev = Device::a100();
        let (fact, mut dims) = star(&dev, 10, 4, 2);
        dims.pop();
        let _ = join_sequence(&dev, &fact, &dims, Algorithm::PhjOm, &JoinConfig::default());
    }
}
