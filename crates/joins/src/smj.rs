//! Sort-merge joins: SMJ-UM (Section 3.1, the GFUR state of the art) and
//! SMJ-OM (Section 4.2, the paper's GFTR variant).
//!
//! Both sort with [`primitives::sort_pairs`] and match with the merge-path
//! merge join. They differ only in what gets sorted and where payload values
//! are gathered from:
//!
//! * **SMJ-UM** sorts `(key, physical ID)` and materializes by gathering
//!   payloads from the *original* relations — the IDs are a random
//!   permutation after sorting, so every gather is unclustered.
//! * **SMJ-OM** sorts each payload column *with* the key (Algorithm 1) and
//!   gathers from the *sorted* columns using the merge join's virtual IDs,
//!   which are clustered. The first payload column of each side rides along
//!   with the key sort in the transformation phase; the rest are sorted
//!   lazily in the materialization phase, one at a time, which also keeps
//!   peak memory below GFUR's (Tables 1-2).

use crate::kinds::{apply_kind_timed, JoinKind};
use crate::{timed_phase, Algorithm, JoinConfig, JoinOutput, JoinStats};
use columnar::{Column, ColumnElement, Relation};
use primitives::{
    gather, gather_column, gather_column_or_null, merge_join, sort_pairs, MatchResult,
};
use sim::{Device, DeviceBuffer, PhaseTimes};

/// Generate physical tuple identifiers `0..n` (one streaming write).
pub(crate) fn iota(dev: &Device, n: usize, label: &'static str) -> DeviceBuffer<u32> {
    let ids = dev.upload((0..n as u32).collect(), label);
    dev.kernel("iota")
        .items(n as u64, primitives::STREAM_WARP_INSTR)
        .seq_write_bytes(n as u64 * 4)
        .launch();
    ids
}

/// Sort a payload column by the relation's key column, returning the sorted
/// keys and the co-sorted payload. Stability of the radix sort guarantees
/// every payload column of a relation ends up in the *same* order.
pub(crate) fn sort_payload_with_key<K: ColumnElement>(
    dev: &Device,
    keys: &DeviceBuffer<K>,
    payload: &Column,
) -> (DeviceBuffer<K>, Column) {
    match payload {
        Column::I32(v) => {
            let (k, v) = sort_pairs(dev, keys, v);
            (k, Column::I32(v))
        }
        Column::I64(v) => {
            let (k, v) = sort_pairs(dev, keys, v);
            (k, Column::I64(v))
        }
    }
}

/// Dispatch a typed join body over the (matching) key types of two
/// relations.
macro_rules! dispatch_keys {
    ($r:expr, $s:expr, $body:ident($($args:expr),*)) => {
        match ($r.key(), $s.key()) {
            (Column::I32(rk), Column::I32(sk)) => $body(rk, sk $(, $args)*),
            (Column::I64(rk), Column::I64(sk)) => $body(rk, sk $(, $args)*),
            (a, b) => panic!(
                "join keys must share a physical type, got {:?} vs {:?}",
                a.dtype(),
                b.dtype()
            ),
        }
    };
}
pub(crate) use dispatch_keys;

/// SMJ-UM: sort-merge join with unoptimized (GFUR) materialization.
///
/// For *narrow* joins (at most one payload column per side) the classic
/// implementation sorts the payload directly as the value of the
/// `(key, value)` pair instead of taking the ID + gather detour, which makes
/// it operationally identical to SMJ-OM — exactly the paper's observation
/// ("since the joins are narrow, SMJ-OM is identical to SMJ-UM",
/// Section 5.2.2). We reuse the GFTR code path for that case and relabel.
pub fn smj_um(dev: &Device, r: &Relation, s: &Relation, config: &JoinConfig) -> JoinOutput {
    if r.num_payloads() <= 1 && s.num_payloads() <= 1 {
        let mut out = smj_om(dev, r, s, config);
        out.stats.algorithm = Algorithm::SmjUm;
        return out;
    }
    fn typed<K: ColumnElement>(
        r_keys: &DeviceBuffer<K>,
        s_keys: &DeviceBuffer<K>,
        dev: &Device,
        r: &Relation,
        s: &Relation,
        config: &JoinConfig,
    ) -> JoinOutput {
        dev.reset_peak_mem();
        let mut reservation =
            crate::OutputReservation::new(dev, r, s, crate::estimated_out_rows(config, s));
        let mut phases = PhaseTimes::default();

        // Transformation: associate physical IDs, sort (key, ID) pairs.
        let ((rs, ss), t) = timed_phase(dev, "transform", || {
            let r_ids = iota(dev, r_keys.len(), "smj_um.r_ids");
            let s_ids = iota(dev, s_keys.len(), "smj_um.s_ids");
            (
                sort_pairs(dev, r_keys, &r_ids),
                sort_pairs(dev, s_keys, &s_ids),
            )
        });
        phases.transform = t;

        // Match finding: merge the sorted keys, then translate the merge
        // positions into physical IDs (clustered lookups into the sorted ID
        // arrays — on hardware the IDs ride through the merge kernel).
        let ((keys, r_ids, s_ids), t) = timed_phase(dev, "match_find", || {
            reservation.release_keys();
            let m = merge_join(dev, &rs.0, &ss.0, config.unique_build);
            let r_ids = gather(dev, &rs.1, &m.r_idx);
            let s_ids = gather(dev, &ss.1, &m.s_idx);
            (m.keys, r_ids, s_ids)
        });
        phases.match_find = t;
        drop((rs, ss));
        // Kind adjustment in physical-ID space (original S keys source).
        let adj = apply_kind_timed(
            dev,
            config.kind,
            MatchResult {
                keys,
                r_idx: r_ids,
                s_idx: s_ids,
            },
            s_keys,
            s.len(),
        );
        phases.match_find += adj.time;

        // Materialization: unclustered gathers from the original columns.
        let ((r_payloads, s_payloads), t) = timed_phase(dev, "materialize", || {
            let rp: Vec<Column> = if adj.materialize_r {
                r.payloads()
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        reservation.release_r(i);
                        if config.kind == JoinKind::Outer {
                            gather_column_or_null(dev, c, &adj.r_map)
                        } else {
                            gather_column(dev, c, &adj.r_map)
                        }
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let sp: Vec<Column> = s
                .payloads()
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    reservation.release_s(i);
                    gather_column(dev, c, &adj.s_map)
                })
                .collect();
            (rp, sp)
        });
        phases.materialize = t;

        let rows = adj.keys.len();
        JoinOutput {
            keys: K::wrap(adj.keys),
            r_payloads,
            s_payloads,
            stats: JoinStats::new(Algorithm::SmjUm, phases, rows, dev.mem_report().peak_bytes),
        }
    }
    dispatch_keys!(r, s, typed(dev, r, s, config))
}

/// SMJ-OM: sort-merge join with optimized (GFTR) materialization —
/// Algorithm 1 with `transform = sort`.
pub fn smj_om(dev: &Device, r: &Relation, s: &Relation, config: &JoinConfig) -> JoinOutput {
    fn typed<K: ColumnElement>(
        r_keys: &DeviceBuffer<K>,
        s_keys: &DeviceBuffer<K>,
        dev: &Device,
        r: &Relation,
        s: &Relation,
        config: &JoinConfig,
    ) -> JoinOutput {
        dev.reset_peak_mem();
        let mut reservation =
            crate::OutputReservation::new(dev, r, s, crate::estimated_out_rows(config, s));
        let mut phases = PhaseTimes::default();

        // Transformation (Algorithm 1, lines 1-2): sort keys together with
        // the *first* payload column of each side. Payload-less sides sort
        // keys alone (modeled as a key-only pair sort with 4-byte IDs).
        let ((rt, st), t) = timed_phase(dev, "transform", || {
            let rt = match r.payloads().first() {
                Some(p) => {
                    let (k, p) = sort_payload_with_key(dev, r_keys, p);
                    (k, Some(p))
                }
                None => {
                    let ids = iota(dev, r_keys.len(), "smj_om.r_ids");
                    (sort_pairs(dev, r_keys, &ids).0, None)
                }
            };
            let st = match s.payloads().first() {
                Some(p) => {
                    let (k, p) = sort_payload_with_key(dev, s_keys, p);
                    (k, Some(p))
                }
                None => {
                    let ids = iota(dev, s_keys.len(), "smj_om.s_ids");
                    (sort_pairs(dev, s_keys, &ids).0, None)
                }
            };
            (rt, st)
        });
        phases.transform = t;

        // Match finding (line 3): virtual IDs fall straight out of the
        // merge — they are positions in the sorted relations.
        let (rt_keys, mut rt_p0) = rt;
        let (st_keys, mut st_p0) = st;
        let (m, t) = timed_phase(dev, "match_find", || {
            reservation.release_keys();
            merge_join(dev, &rt_keys, &st_keys, config.unique_build)
        });
        phases.match_find = t;
        // Kind adjustment in transformed (sorted) space — the sorted S keys
        // supply unmatched-row key values for anti/outer joins.
        let adj = apply_kind_timed(dev, config.kind, m, &st_keys, st_keys.len());
        phases.match_find += adj.time;
        // GFTR frees the transformed *keys* after match finding but keeps
        // the transformed payload columns (Section 4.4).
        drop((rt_keys, st_keys));

        // Materialization (lines 4-9): clustered gather of the two already
        // sorted payload columns; remaining columns are sorted on demand,
        // one at a time, then gathered (and each transformed column is
        // released as soon as its gather completes — Table 2).
        let gather_r = |src: &Column, map| {
            if config.kind == JoinKind::Outer {
                gather_column_or_null(dev, src, map)
            } else {
                gather_column(dev, src, map)
            }
        };
        let ((r_payloads, s_payloads), t) = timed_phase(dev, "materialize", || {
            let mut rp = Vec::with_capacity(r.num_payloads());
            if adj.materialize_r {
                if let Some(p0) = rt_p0.take() {
                    reservation.release_r(0);
                    rp.push(gather_r(&p0, &adj.r_map));
                }
                for (i, c) in r.payloads().iter().enumerate().skip(1) {
                    let (_, sorted) = sort_payload_with_key(dev, r_keys, c);
                    reservation.release_r(i);
                    rp.push(gather_r(&sorted, &adj.r_map));
                }
            }
            let mut sp = Vec::with_capacity(s.num_payloads());
            if let Some(p0) = st_p0.take() {
                reservation.release_s(0);
                sp.push(gather_column(dev, &p0, &adj.s_map));
            }
            for (i, c) in s.payloads().iter().enumerate().skip(1) {
                let (_, sorted) = sort_payload_with_key(dev, s_keys, c);
                reservation.release_s(i);
                sp.push(gather_column(dev, &sorted, &adj.s_map));
            }
            (rp, sp)
        });
        phases.materialize = t;

        let rows = adj.keys.len();
        JoinOutput {
            keys: K::wrap(adj.keys),
            r_payloads,
            s_payloads,
            stats: JoinStats::new(Algorithm::SmjOm, phases, rows, dev.mem_report().peak_bytes),
        }
    }
    dispatch_keys!(r, s, typed(dev, r, s, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::hash_join_oracle;
    use columnar::Column;
    use sim::Device;

    fn pk_fk_inputs(dev: &Device, nr: usize, ns: usize) -> (Relation, Relation) {
        // Shuffled primary keys 0..nr; foreign keys cycle with stride.
        let mut pk: Vec<i32> = (0..nr as i32).collect();
        // Deterministic shuffle (LCG swap).
        let mut state = 0x2545F491u64;
        for i in (1..pk.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            pk.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let fk: Vec<i32> = (0..ns).map(|i| ((i * 7) % nr) as i32).collect();
        let r = Relation::new(
            "R",
            Column::from_i32(dev, pk.clone(), "rk"),
            vec![
                Column::from_i32(dev, pk.iter().map(|&k| k * 10).collect(), "r1"),
                Column::from_i64(dev, pk.iter().map(|&k| k as i64 * 100).collect(), "r2"),
            ],
        );
        let s = Relation::new(
            "S",
            Column::from_i32(dev, fk.clone(), "sk"),
            vec![Column::from_i32(
                dev,
                fk.iter().map(|&k| k + 1).collect(),
                "s1",
            )],
        );
        (r, s)
    }

    #[test]
    fn smj_um_matches_oracle() {
        let dev = Device::a100();
        let (r, s) = pk_fk_inputs(&dev, 500, 1200);
        let out = smj_um(&dev, &r, &s, &JoinConfig::default());
        assert_eq!(out.rows_sorted(), hash_join_oracle(&r, &s));
        assert_eq!(out.stats.rows, 1200);
    }

    #[test]
    fn smj_om_matches_oracle() {
        let dev = Device::a100();
        let (r, s) = pk_fk_inputs(&dev, 500, 1200);
        let out = smj_om(&dev, &r, &s, &JoinConfig::default());
        assert_eq!(out.rows_sorted(), hash_join_oracle(&r, &s));
    }

    #[test]
    fn duplicate_keys_on_both_sides() {
        let dev = Device::a100();
        let r = Relation::new(
            "R",
            Column::from_i32(&dev, vec![5, 5, 9, 1], "k"),
            vec![Column::from_i32(&dev, vec![50, 51, 90, 10], "p")],
        );
        let s = Relation::new(
            "S",
            Column::from_i32(&dev, vec![5, 9, 5], "k"),
            vec![Column::from_i64(&dev, vec![500, 900, 501], "q")],
        );
        let cfg = JoinConfig {
            unique_build: false,
            ..JoinConfig::default()
        };
        for f in [smj_um, smj_om] {
            let out = f(&dev, &r, &s, &cfg);
            assert_eq!(out.rows_sorted(), hash_join_oracle(&r, &s));
        }
    }

    #[test]
    fn payloadless_join() {
        let dev = Device::a100();
        let r = Relation::new("R", Column::from_i32(&dev, vec![1, 2, 3], "k"), vec![]);
        let s = Relation::new("S", Column::from_i32(&dev, vec![2, 3, 4], "k"), vec![]);
        for f in [smj_um, smj_om] {
            let out = f(&dev, &r, &s, &JoinConfig::default());
            assert_eq!(out.rows_sorted(), hash_join_oracle(&r, &s));
            assert!(out.r_payloads.is_empty() && out.s_payloads.is_empty());
        }
    }

    #[test]
    fn i64_keys_work() {
        let dev = Device::a100();
        let r = Relation::new(
            "R",
            Column::from_i64(&dev, vec![10, -20, 30], "k"),
            vec![Column::from_i32(&dev, vec![1, 2, 3], "p")],
        );
        let s = Relation::new(
            "S",
            Column::from_i64(&dev, vec![-20, 30, 99], "k"),
            vec![Column::from_i32(&dev, vec![7, 8, 9], "q")],
        );
        for f in [smj_um, smj_om] {
            let out = f(&dev, &r, &s, &JoinConfig::default());
            assert_eq!(out.rows_sorted(), hash_join_oracle(&r, &s));
        }
    }

    #[test]
    #[should_panic(expected = "share a physical type")]
    fn mixed_key_types_rejected() {
        let dev = Device::a100();
        let r = Relation::new("R", Column::from_i32(&dev, vec![1], "k"), vec![]);
        let s = Relation::new("S", Column::from_i64(&dev, vec![1], "k"), vec![]);
        let _ = smj_um(&dev, &r, &s, &JoinConfig::default());
    }

    #[test]
    fn om_spends_less_time_materializing_wide_joins() {
        // The paper's wide-join regime needs the gathered regions to dwarf
        // the L2 (2^27 rows vs 40 MB on the A100). To keep the test fast we
        // shrink the L2 instead of growing the data: 2^21-row columns (8 MB)
        // against a 1 MB cache, with the paper's Figure 10 layout — two
        // 4-byte payload columns on each side.
        let mut cfg = sim::DeviceConfig::rtx3090();
        cfg.l2_bytes = 1 << 20;
        let dev = Device::new(cfg);
        let n = 1 << 21;
        // Properly shuffled PKs: after sorting, the physical IDs are a
        // random permutation — exactly what makes UM's gathers unclustered.
        let mut pk: Vec<i32> = (0..n as i32).collect();
        let mut state = 0x9E3779B97F4A7C15u64;
        for i in (1..pk.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            pk.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let fk: Vec<i32> = (0..n).map(|i| pk[(i * 7) % n]).collect();
        let r = Relation::new(
            "R",
            Column::from_i32(&dev, pk.clone(), "rk"),
            vec![
                Column::from_i32(&dev, pk.iter().map(|&k| k * 10).collect(), "r1"),
                Column::from_i32(&dev, pk.iter().map(|&k| k + 3).collect(), "r2"),
            ],
        );
        let s = Relation::new(
            "S",
            Column::from_i32(&dev, fk.clone(), "sk"),
            vec![
                Column::from_i32(&dev, fk.iter().map(|&k| k + 1).collect(), "s1"),
                Column::from_i32(&dev, fk.iter().map(|&k| k - 1).collect(), "s2"),
            ],
        );
        let um = smj_um(&dev, &r, &s, &JoinConfig::default());
        let om = smj_om(&dev, &r, &s, &JoinConfig::default());
        assert_eq!(um.rows_sorted(), om.rows_sorted());
        assert!(
            om.stats.phases.materialize < um.stats.phases.materialize,
            "OM materialize {} should beat UM {}",
            om.stats.phases.materialize,
            um.stats.phases.materialize
        );
        // And end to end, the Figure 10 ordering: SMJ-OM beats SMJ-UM.
        assert!(om.stats.phases.total() < um.stats.phases.total());
    }
}
